"""CNF encoding of technology-independent networks.

Each node's on-set minimum SOP is Tseitin-encoded (one auxiliary variable
per cube).  Used by the secondary simplification's exact cube-reachability
checks on circuits too large for global truth tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sat import Solver
from .levels import min_sops
from .network import Network


def encode_network(
    solver: Solver, net: Network, pi_vars: Optional[Sequence[int]] = None
) -> Dict[int, int]:
    """Encode the network into ``solver``; returns node id -> solver var.

    ``pi_vars`` allows sharing PI variables across multiple encodings (for
    care-set checks spanning two networks).
    """
    var_of: Dict[int, int] = {}
    if pi_vars is None:
        pi_vars = [solver.new_var() for _ in range(len(net.pis))]
    if len(pi_vars) != len(net.pis):
        raise ValueError("one solver variable per PI required")
    for pi, sv in zip(net.pis, pi_vars):
        var_of[pi] = sv
    for nid in net.topo_order():
        node = net.nodes[nid]
        out = solver.new_var()
        var_of[nid] = out
        tt = node.tt
        if tt.is_const0:
            solver.add_clause([-out])
            continue
        if tt.is_const1:
            solver.add_clause([out])
            continue
        on_cover, _ = min_sops(tt)
        aux_vars: List[int] = []
        for cube in on_cover:
            lits = [
                (var_of[node.fanins[var]] if pol else -var_of[node.fanins[var]])
                for var, pol in cube.literals()
            ]
            if len(lits) == 1:
                aux_vars.append(lits[0])
                continue
            aux = solver.new_var()
            aux_vars.append(aux)
            for l in lits:
                solver.add_clause([-aux, l])
            solver.add_clause([aux] + [-l for l in lits])
        # out <-> OR(aux_vars)
        solver.add_clause([-out] + aux_vars)
        for a in aux_vars:
            solver.add_clause([out, -a])
    return var_of
