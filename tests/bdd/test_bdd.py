"""Tests for the BDD package (against truth tables as the oracle)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD, FALSE, TRUE, aig_to_bdd, ref_not
from repro.tt import TruthTable
from repro.aig import AIG, po_tts


def tt_to_bdd(bdd, t):
    if t.is_const0:
        return FALSE
    if t.is_const1:
        return TRUE
    i = max(t.support())
    hi = tt_to_bdd(bdd, t.cofactor(i, True))
    lo = tt_to_bdd(bdd, t.cofactor(i, False))
    return bdd.ite(bdd.var(i), hi, lo)


def bdd_to_tt(bdd, ref, nvars):
    bits = 0
    for m in range(1 << nvars):
        if bdd.eval(ref, {i: bool((m >> i) & 1) for i in range(nvars)}):
            bits |= 1 << m
    return TruthTable(bits, nvars)


def tt_strategy(max_vars=5):
    return st.integers(1, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable, st.integers(0, (1 << (1 << n)) - 1), st.just(n)
        )
    )


class TestCanonicity:
    @given(tt_strategy())
    def test_same_function_same_ref(self, t):
        bdd = BDD()
        r1 = tt_to_bdd(bdd, t)
        r2 = tt_to_bdd(bdd, ~~t)
        assert r1 == r2

    @given(tt_strategy())
    def test_complement_is_ref_not(self, t):
        bdd = BDD()
        assert tt_to_bdd(bdd, ~t) == ref_not(tt_to_bdd(bdd, t))

    def test_var_structure(self):
        bdd = BDD()
        v = bdd.var(3)
        assert bdd.level_of(v) == 3


class TestOps:
    @given(tt_strategy(4), tt_strategy(4))
    @settings(deadline=None)
    def test_binary_ops(self, t1, t2):
        n = max(t1.nvars, t2.nvars)
        t1, t2 = t1.extend(n), t2.extend(n)
        bdd = BDD()
        r1, r2 = tt_to_bdd(bdd, t1), tt_to_bdd(bdd, t2)
        assert bdd_to_tt(bdd, bdd.and_(r1, r2), n) == (t1 & t2)
        assert bdd_to_tt(bdd, bdd.or_(r1, r2), n) == (t1 | t2)
        assert bdd_to_tt(bdd, bdd.xor_(r1, r2), n) == (t1 ^ t2)

    @given(tt_strategy(4), st.integers(0, 3), st.booleans())
    @settings(deadline=None)
    def test_restrict(self, t, var, value):
        var %= t.nvars
        bdd = BDD()
        r = tt_to_bdd(bdd, t)
        assert bdd_to_tt(bdd, bdd.restrict(r, var, value), t.nvars) == \
            t.cofactor(var, value)

    @given(tt_strategy(4), st.integers(0, 3))
    @settings(deadline=None)
    def test_quantification(self, t, var):
        var %= t.nvars
        bdd = BDD()
        r = tt_to_bdd(bdd, t)
        assert bdd_to_tt(bdd, bdd.exists(r, [var]), t.nvars) == t.exists(var)
        assert bdd_to_tt(bdd, bdd.forall(r, [var]), t.nvars) == t.forall(var)

    @given(tt_strategy(3), tt_strategy(3), st.integers(0, 2))
    @settings(deadline=None)
    def test_compose(self, f, g, var):
        n = max(f.nvars, g.nvars)
        f, g = f.extend(n), g.extend(n)
        var %= n
        bdd = BDD()
        rf, rg = tt_to_bdd(bdd, f), tt_to_bdd(bdd, g)
        composed = bdd.compose(rf, var, rg)
        v = TruthTable.var(var, n)
        expected = (g & f.cofactor(var, True)) | (~g & f.cofactor(var, False))
        assert bdd_to_tt(bdd, composed, n) == expected


class TestQueries:
    @given(tt_strategy())
    def test_sat_count(self, t):
        bdd = BDD()
        assert bdd.sat_count(tt_to_bdd(bdd, t), t.nvars) == t.count_ones()

    @given(tt_strategy())
    def test_pick_one(self, t):
        bdd = BDD()
        r = tt_to_bdd(bdd, t)
        one = bdd.pick_one(r)
        if t.is_const0:
            assert one is None
        else:
            assert bdd.eval(r, one)

    @given(tt_strategy())
    def test_support(self, t):
        bdd = BDD()
        assert bdd.support(tt_to_bdd(bdd, t)) == t.support()

    @given(tt_strategy(4), tt_strategy(4))
    def test_implies(self, t1, t2):
        n = max(t1.nvars, t2.nvars)
        t1, t2 = t1.extend(n), t2.extend(n)
        bdd = BDD()
        assert bdd.implies(tt_to_bdd(bdd, t1), tt_to_bdd(bdd, t2)) == \
            t1.implies(t2)


class TestFromAig:
    def test_aig_to_bdd_matches_po_tts(self):
        aig = AIG()
        xs = [aig.add_pi() for _ in range(5)]
        f = aig.mux_(xs[0], aig.xor_(xs[1], xs[2]), aig.and_(xs[3], xs[4]))
        g = aig.or_many(xs)
        aig.add_po(f)
        aig.add_po(g)
        bdd = BDD()
        refs = aig_to_bdd(bdd, aig, aig.pos)
        for ref, tt in zip(refs, po_tts(aig)):
            assert bdd_to_tt(bdd, ref, 5) == tt

    def test_size_limit_aborts(self):
        aig = AIG()
        xs = [aig.add_pi() for _ in range(12)]
        f = aig.xor_many(xs)
        bdd = BDD()
        assert aig_to_bdd(bdd, aig, [f], size_limit=3) is None
