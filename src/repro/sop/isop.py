"""Irredundant sum-of-products via the Minato-Morreale procedure.

:func:`isop` computes an irredundant cover ``F`` with ``lower <= F <= upper``
from truth tables of the lower bound (on-set) and upper bound (on-set union
don't-care set).  This is the standard ISOP recursion used by ABC's
refactoring and by our network node SOPs.
"""

from __future__ import annotations

from typing import List, Optional

from ..tt import TruthTable
from .cube import Cube
from .sop import Cover


def _pick_var(lower: TruthTable, upper: TruthTable) -> int:
    """Split on the highest variable that either bound depends on."""
    for i in range(lower.nvars - 1, -1, -1):
        if lower.depends_on(i) or upper.depends_on(i):
            return i
    raise AssertionError("called on constant bounds")


def _isop_rec(lower: TruthTable, upper: TruthTable) -> List[Cube]:
    if lower.is_const0:
        return []
    if upper.is_const1:
        return [Cube.full(lower.nvars)]
    var = _pick_var(lower, upper)
    l0 = lower.cofactor(var, False)
    l1 = lower.cofactor(var, True)
    u0 = upper.cofactor(var, False)
    u1 = upper.cofactor(var, True)
    # Cubes that must contain the negative / positive literal of `var`.
    f0 = _isop_rec(l0 & ~u1, u0)
    f1 = _isop_rec(l1 & ~u0, u1)
    covered0 = _tt_of(f0, lower.nvars)
    covered1 = _tt_of(f1, lower.nvars)
    # Remainder can be covered without mentioning `var`.
    l_rest = (l0 & ~covered0) | (l1 & ~covered1)
    f_rest = _isop_rec(l_rest, u0 & u1)
    cubes = [c.with_literal(var, False) for c in f0]
    cubes += [c.with_literal(var, True) for c in f1]
    cubes += f_rest
    return cubes


def _tt_of(cubes: List[Cube], nvars: int) -> TruthTable:
    t = TruthTable.const(False, nvars)
    for c in cubes:
        t |= c.to_tt()
    return t


def isop(lower: TruthTable, upper: Optional[TruthTable] = None) -> Cover:
    """Irredundant SOP cover ``F`` with ``lower <= F <= upper``.

    With ``upper`` omitted the cover is an exact ISOP of ``lower``.
    """
    if upper is None:
        upper = lower
    if lower.nvars != upper.nvars:
        raise ValueError("bound variable counts differ")
    if not lower.implies(upper):
        raise ValueError("lower bound not contained in upper bound")
    return Cover(_isop_rec(lower, upper), lower.nvars)
