"""Tests for the CEC structural-hashing fast path."""

import time

from repro.adders import ripple_carry_adder
from repro.aig import AIG, lit_not
from repro.cec import check_equivalence


def test_identical_large_circuits_are_fast():
    # Structurally identical circuits must collapse in the joint strash
    # phase — no SAT, so even large instances check in well under a second.
    a = ripple_carry_adder(64)
    b = ripple_carry_adder(64)
    start = time.time()
    assert check_equivalence(a, b)
    assert time.time() - start < 5.0


def test_partially_shared_circuits():
    # One output restructured, others identical: only the changed cone
    # should need proving.
    a = ripple_carry_adder(8)
    b = ripple_carry_adder(8)
    # Rebuild b's cout cone differently (De Morgan'd).
    from repro.adders import carry_lookahead_adder

    c = carry_lookahead_adder(8)
    assert check_equivalence(a, c)


def test_counterexample_is_faithful():
    a = AIG()
    x, y = a.add_pi(), a.add_pi()
    a.add_po(a.and_(x, y))
    b = AIG()
    x2, y2 = b.add_pi(), b.add_pi()
    b.add_po(b.or_(x2, y2))
    result = check_equivalence(a, b, sim_width=8)
    assert not result
    from repro.aig import evaluate

    assert evaluate(a, result.counterexample) != evaluate(
        b, result.counterexample
    )


def test_sat_phase_finds_deep_discrepancy():
    # Equivalent except on the all-ones minterm, unlikely to be hit by a
    # tiny random simulation: the SAT phase must find it.
    n = 12
    a = AIG()
    xs = [a.add_pi() for _ in range(n)]
    a.add_po(a.and_many(xs))
    b = AIG()
    ys = [b.add_pi() for _ in range(n)]
    b.add_po(0)  # constant false
    result = check_equivalence(a, b, sim_width=4, seed=1)
    assert not result
    assert all(result.counterexample)
