"""Structural property tests for the adder generators."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import (
    brent_kung_adder,
    carry_lookahead_adder,
    carry_select_adder,
    kogge_stone_adder,
    optimal_cla_levels,
    ripple_carry_adder,
    sklansky_adder,
)
from repro.aig import depth
from repro.cec import check_equivalence


class TestDepthScaling:
    @pytest.mark.parametrize("gen", [kogge_stone_adder, sklansky_adder])
    def test_prefix_depth_logarithmic(self, gen):
        depths = {n: depth(gen(n)) for n in (4, 8, 16, 32)}
        for n in (8, 16, 32):
            # Doubling the width adds a constant (one prefix stage).
            assert depths[n] - depths[n // 2] <= 3

    def test_kogge_stone_matches_formula(self):
        # Depth ~ 2*log2(n) + constant for the sum path.
        for n in (4, 8, 16):
            d = depth(kogge_stone_adder(n))
            assert d <= 2 * math.ceil(math.log2(n)) + 6

    def test_optimum_column_close_to_kogge_stone_cout(self):
        # The theoretical optimum (cout cone) is within a couple levels of
        # the synthesized Kogge-Stone cout cone.
        from repro.aig import levels, lit_var

        for n in (4, 8, 16):
            aig = kogge_stone_adder(n)
            cout_level = levels(aig)[lit_var(aig.pos[-1])]
            assert abs(cout_level - optimal_cla_levels(n)) <= 3


class TestSizeScaling:
    def test_kogge_stone_larger_than_brent_kung(self):
        # The classic area ordering of prefix networks.
        for n in (8, 16, 32):
            assert (
                kogge_stone_adder(n).num_ands()
                >= brent_kung_adder(n).num_ands()
            )

    def test_ripple_smallest(self):
        for n in (8, 16):
            ripple = ripple_carry_adder(n).num_ands()
            assert ripple <= kogge_stone_adder(n).num_ands()
            assert ripple <= carry_select_adder(n).num_ands()


class TestCrossEquivalence:
    @given(st.integers(1, 12))
    @settings(deadline=None, max_examples=8)
    def test_all_widths_equivalent(self, n):
        ref = ripple_carry_adder(n)
        for gen in (carry_lookahead_adder, kogge_stone_adder,
                    brent_kung_adder):
            assert check_equivalence(ref, gen(n)), (gen.__name__, n)


class TestBlockParameters:
    @pytest.mark.parametrize("block", [1, 2, 3, 4, 8])
    def test_cla_block_sizes(self, block):
        ref = ripple_carry_adder(6)
        cla = carry_lookahead_adder(6, block=block)
        assert check_equivalence(ref, cla)

    @pytest.mark.parametrize("block", [1, 2, 5])
    def test_select_block_sizes(self, block):
        ref = ripple_carry_adder(6)
        sel = carry_select_adder(6, block=block)
        assert check_equivalence(ref, sel)

    def test_without_carry_in(self):
        a = ripple_carry_adder(4, with_cin=False)
        b = kogge_stone_adder(4, with_cin=False)
        assert a.num_pis == 8
        assert check_equivalence(a, b)
