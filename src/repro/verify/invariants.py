"""The invariants the fuzzer checks after driving each entry point.

Every invariant is a pure predicate of a :class:`Case` — a circuit plus
an optimizer configuration and optional prescribed arrivals — returning
``None`` on success or a human-readable failure detail.  Purity is what
makes delta-debugging possible: the shrinker re-evaluates the same
invariant on ever-smaller circuits, so an invariant must not depend on
ambient state (worker counts and caches are pinned explicitly).

The contract they collectively enforce is the paper's:
``y = ITE(Σ1, y_pos, y_neg)`` must equal the original output for every
minterm (CEC), the result must never be worse under the active delay
model (quality gate), and every implementation strategy — serial or
parallel, cached or cold, incremental or full timing — must be a pure
scheduling/memoization change with bit-identical results.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..aig import AIG, read_aag, read_blif, write_aag, write_blif
from ..cec import check_equivalence
from ..core import LookaheadOptimizer, lookahead_flow
from ..timing import AigTimingEngine, NetworkTimingEngine, resolve_arrivals


@dataclass
class Case:
    """One fuzz case: the circuit and how the optimizer is configured."""

    aig: AIG
    config: Dict = field(default_factory=dict)
    arrival_times: Optional[Dict[str, int]] = None

    def optimizer(self, **overrides) -> LookaheadOptimizer:
        kwargs = dict(self.config)
        kwargs.update(overrides)
        return LookaheadOptimizer(
            arrival_times=self.arrival_times, **kwargs
        )

    def model(self):
        return resolve_arrivals(self.arrival_times)


Invariant = Callable[[Case], Optional[str]]


def _dump(aig: AIG) -> str:
    buf = io.StringIO()
    write_aag(aig, buf)
    return buf.getvalue()


def _depth(aig: AIG, case: Case):
    return AigTimingEngine(aig, case.model()).depth()


def _cec_detail(a: AIG, b: AIG) -> Optional[str]:
    result = check_equivalence(a, b)
    if result:
        return None
    return f"not equivalent: po {result.po_index}, cex {result.counterexample}"


# -- optimizer contract -------------------------------------------------------


def optimizer_equivalence(case: Case) -> Optional[str]:
    """`optimize()` output is equivalent and never worse in completion."""
    with case.optimizer(workers=1) as opt:
        out = opt.optimize(case.aig)
    detail = _cec_detail(case.aig, out)
    if detail:
        return f"optimize() broke equivalence — {detail}"
    before, after = _depth(case.aig, case), _depth(out, case)
    if after > before:
        return f"optimize() made depth worse: {before} -> {after}"
    return None


def serial_parallel_identical(case: Case) -> Optional[str]:
    """workers=2 must be a pure scheduling change vs. workers=1."""
    # Lift any per-round output cap so the round actually fans out more
    # than one cone — a single task takes the serial path either way.
    with case.optimizer(workers=1, max_outputs_per_round=None) as opt:
        serial = opt.optimize(case.aig)
    with case.optimizer(workers=2, max_outputs_per_round=None) as opt:
        parallel = opt.optimize(case.aig)
    if _dump(serial) != _dump(parallel):
        return (
            "serial and parallel outputs differ: "
            f"serial={serial!r} parallel={parallel!r}"
        )
    return None


def cached_cold_identical(case: Case) -> Optional[str]:
    """A warm ConeCache must be a pure memoization, not a result change."""
    with case.optimizer(workers=1) as opt:
        first = opt.optimize(case.aig)
        warm = opt.optimize(case.aig)  # second run hits the cache
    with case.optimizer(workers=1) as opt:
        cold = opt.optimize(case.aig)
    if _dump(first) != _dump(cold):
        return "same-config optimize() runs are not deterministic"
    if _dump(warm) != _dump(cold):
        return (
            "cache-warm optimize() differs from cold: "
            f"warm={warm!r} cold={cold!r}"
        )
    return None


def store_warm_equals_cold(case: Case) -> Optional[str]:
    """A disk-warm persistent store is a pure memoization (DESIGN 3.20).

    Three runs of the same configuration — storeless, store-backed cold,
    and store-backed against the database the cold run left behind (with
    the process runtime reset in between, so hits come from disk, not the
    memory tier) — must be bit-identical: the store may only ever replay
    results the cold computation would have produced.
    """
    import os
    import shutil
    import tempfile

    from ..store import runtime as store_runtime

    tmpdir = tempfile.mkdtemp(prefix="repro-store-fuzz-")
    path = os.path.join(tmpdir, "results.db")
    try:
        with case.optimizer(workers=1) as opt:
            baseline = opt.optimize(case.aig)
        store_runtime.reset()
        with case.optimizer(workers=1, store=path) as opt:
            cold = opt.optimize(case.aig)
        store_runtime.reset()  # drop the memory tier: warm = disk only
        with case.optimizer(workers=1, store=path) as opt:
            warm = opt.optimize(case.aig)
        if _dump(cold) != _dump(baseline):
            return (
                "store-backed optimize() differs from the storeless run: "
                f"store={cold!r} baseline={baseline!r}"
            )
        if _dump(warm) != _dump(cold):
            return (
                "disk-warm optimize() differs from cold: "
                f"warm={warm!r} cold={cold!r}"
            )
        detail = _cec_detail(case.aig, warm)
        if detail:
            return f"store-warm optimize() broke equivalence — {detail}"
        return None
    finally:
        store_runtime.reset()  # restore the ambient no-store state
        shutil.rmtree(tmpdir, ignore_errors=True)


def spcf_tiers_agree(case: Case) -> Optional[str]:
    """Exact and degraded SPCF tiers agree on the optimizer contract.

    The SPCF is only a guide metric (the paper, Sec. 3.1): degrading the
    kernel to the timed-simulation signature tier may steer the search
    differently, but every tier's output must stay CEC-equivalent to the
    input and pass the same never-worse depth gate.
    """
    with case.optimizer(workers=1) as opt:
        exact = opt.optimize(case.aig)
    with case.optimizer(workers=1, spcf_tier="signature") as opt:
        degraded = opt.optimize(case.aig)
    before = _depth(case.aig, case)
    for tier, out in (("exact", exact), ("signature", degraded)):
        detail = _cec_detail(case.aig, out)
        if detail:
            return f"{tier}-tier optimize broke equivalence — {detail}"
        after = _depth(out, case)
        if after > before:
            return (
                f"{tier}-tier optimize made depth worse: "
                f"{before} -> {after}"
            )
    return None


def sat_portfolio_agree(case: Case) -> Optional[str]:
    """Every SAT portfolio mode upholds the optimizer contract.

    Racing modes may settle borderline (budget-limited) queries that the
    single-config flow left UNKNOWN — and an UNSAT-cache hit can upgrade
    one — so outputs are deliberately *not* bit-compared across modes
    (see DESIGN 3.19).  What must hold for every mode: the output is
    CEC-equivalent to the input, the never-worse depth gate passes, and
    a repeat run from the same cache state is bit-identical.
    """
    from ..sat.portfolio import GLOBAL_UNSAT_CACHE

    before = _depth(case.aig, case)
    for mode in ("off", "sprint", "race"):
        GLOBAL_UNSAT_CACHE.clear()  # pin the ambient cache state (purity)
        with case.optimizer(workers=1, sat_portfolio=mode) as opt:
            out = opt.optimize(case.aig)
        detail = _cec_detail(case.aig, out)
        if detail:
            return f"sat_portfolio={mode!r} broke equivalence — {detail}"
        after = _depth(out, case)
        if after > before:
            return (
                f"sat_portfolio={mode!r} made depth worse: "
                f"{before} -> {after}"
            )
        GLOBAL_UNSAT_CACHE.clear()
        with case.optimizer(workers=1, sat_portfolio=mode) as opt:
            again = opt.optimize(case.aig)
        if _dump(out) != _dump(again):
            return (
                f"sat_portfolio={mode!r} is not deterministic from a "
                "cold cache"
            )
    GLOBAL_UNSAT_CACHE.clear()
    return None


def rank_prune_never_worse(case: Case) -> Optional[str]:
    """``--rank prune`` may cost QoR headroom only, never soundness.

    Two halves (DESIGN 3.23).  An all-prune model (threshold above every
    possible score) prunes every window whole, and wholly pruned windows
    are trusted (no fallback re-run) — so the maximally wrong model must
    degenerate to exactly "no optimization": the output is the untouched
    input copy, still CEC-equivalent and never deeper than the input.
    And a model fitted at recall 1.0 on the case's own ``--rank log``
    trajectory must keep the output CEC-equivalent to the input and
    never deeper than the unranked result — the winning walk's
    quality-kept rows score above threshold by construction (and its
    feature state is walk-local, so other walks' prunes cannot shift
    it), so that walk replays exactly and the cross-walk ``min()``
    returns a result at least as good as the unranked one.
    """
    from ..rank import RankLogger, fit_model, passthrough_model

    with case.optimizer(workers=1) as opt:
        off = opt.optimize(case.aig)

    allprune = passthrough_model()
    allprune.threshold = 2.0  # scores are probabilities: prunes everything
    with case.optimizer(
        workers=1, rank="prune", rank_model=allprune
    ) as opt:
        no_work = opt.optimize(case.aig)
    if _dump(no_work) != _dump(case.aig.extract()):
        return (
            "all-prune model did not degenerate to the untouched input: "
            f"got={no_work!r} input={case.aig!r}"
        )

    logger = RankLogger()
    with case.optimizer(workers=1, rank="log", rank_data=logger) as opt:
        logged = opt.optimize(case.aig)
    if _dump(logged) != _dump(off):
        return "rank='log' changed the result vs rank='off'"
    model = fit_model(logger.rows, target_recall=1.0)
    with case.optimizer(workers=1, rank="prune", rank_model=model) as opt:
        pruned = opt.optimize(case.aig)
    detail = _cec_detail(case.aig, pruned)
    if detail:
        return f"rank='prune' broke equivalence — {detail}"
    off_depth, pruned_depth = _depth(off, case), _depth(pruned, case)
    if pruned_depth > off_depth:
        return (
            "rank='prune' made depth worse than rank='off': "
            f"{off_depth} -> {pruned_depth}"
        )
    return None


def area_recovery_equiv(case: Case) -> Optional[str]:
    """Area recovery preserves function and never worsens depth or size.

    Every effort level of :func:`repro.core.recover_area` must return a
    CEC-equivalent circuit that is no deeper (under the case's delay
    model) and no larger than a plain structural cleanup — sweeping,
    redundancy removal, and the arrival guard only ever trade wall-clock
    for area.
    """
    from ..core import recover_area

    model = case.model()
    before_depth = _depth(case.aig, case)
    baseline = case.aig.extract().num_ands()
    for effort in ("low", "medium", "high"):
        out = recover_area(case.aig, effort=effort, delay_model=model)
        detail = _cec_detail(case.aig, out)
        if detail:
            return f"recover_area({effort!r}) broke equivalence — {detail}"
        after = _depth(out, case)
        if after > before_depth:
            return (
                f"recover_area({effort!r}) made depth worse: "
                f"{before_depth} -> {after}"
            )
        if out.num_ands() > baseline:
            return (
                f"recover_area({effort!r}) grew the circuit: "
                f"{baseline} -> {out.num_ands()} ANDs"
            )
    return None


def flow_equivalence(case: Case) -> Optional[str]:
    """`lookahead_flow` preserves the function and the quality gate."""
    out = lookahead_flow(
        case.aig, max_iterations=2, arrival_times=case.arrival_times
    )
    detail = _cec_detail(case.aig, out)
    if detail:
        return f"lookahead_flow broke equivalence — {detail}"
    before, after = _depth(case.aig, case), _depth(out, case)
    if after > before:
        return f"lookahead_flow made depth worse: {before} -> {after}"
    return None


# -- interchange formats ------------------------------------------------------


def aiger_roundtrip(case: Case) -> Optional[str]:
    """write_aag -> read_aag preserves function, names, and is stable."""
    text = _dump(case.aig)
    back = read_aag(io.StringIO(text))
    if back.pi_names != case.aig.pi_names:
        return f"AIGER roundtrip changed PI names: {back.pi_names}"
    if back.po_names != case.aig.po_names:
        return f"AIGER roundtrip changed PO names: {back.po_names}"
    detail = _cec_detail(case.aig, back)
    if detail:
        return f"AIGER roundtrip broke equivalence — {detail}"
    if _dump(back) != text:
        return "AIGER write/read/write is not a fixpoint"
    return None


def blif_roundtrip(case: Case) -> Optional[str]:
    """write_blif -> read_blif preserves the function and interfaces."""
    buf = io.StringIO()
    write_blif(case.aig, buf)
    buf.seek(0)
    back = read_blif(buf)
    if back.pi_names != case.aig.pi_names:
        return f"BLIF roundtrip changed PI names: {back.pi_names}"
    if back.po_names != case.aig.po_names:
        return f"BLIF roundtrip changed PO names: {back.po_names}"
    detail = _cec_detail(case.aig, back)
    if detail:
        return f"BLIF roundtrip broke equivalence — {detail}"
    return None


# -- timing engines -----------------------------------------------------------


def timing_incremental_full(case: Case) -> Optional[str]:
    """Incremental AIG timing extension equals a cold full pass."""
    aig = case.aig.extract()
    engine = AigTimingEngine(aig, case.model())
    engine.arrivals()  # full pass on the prefix
    # Deterministic structural extension: a small chain over existing
    # signals, mimicking what a lookahead round appends.
    lits = [2 * v for v in aig.pis[:2]]
    if aig.pos:
        lits.append(aig.pos[-1])
    tip = lits[0]
    for lit in lits[1:]:
        tip = aig.and_(tip, lit)
    aig.add_po(aig.or_(tip, lits[0]), "probe")
    incremental = list(engine.arrivals())
    full = list(AigTimingEngine(aig, case.model()).arrivals())
    if incremental != full:
        bad = next(
            i for i, (x, y) in enumerate(zip(incremental, full)) if x != y
        )
        return (
            "incremental timing diverged from full recompute at var "
            f"{bad}: {incremental[bad]} != {full[bad]}"
        )
    return None


def network_timing_consistent(case: Case) -> Optional[str]:
    """Dirty-set recompute of the network engine equals a fresh engine."""
    from ..netlist import renode

    net = renode(case.aig, 6)
    engine = NetworkTimingEngine(net, case.model())
    levels = dict(engine.levels())
    engine.invalidate(list(net.nodes))  # dirty everything; values unchanged
    relevels = dict(engine.levels())
    fresh = dict(NetworkTimingEngine(net, case.model()).levels())
    if relevels != fresh:
        return "invalidate-all recompute diverged from a fresh engine"
    if levels != fresh:
        return "network levels are not stable across engines"
    return None


def mapped_timing_sane(case: Case) -> Optional[str]:
    """Mapper + mapped STA hold their basic contracts on any circuit."""
    from ..mapping import map_aig
    from ..timing import MappedTimingEngine

    netlist = map_aig(case.aig)
    engine = MappedTimingEngine(netlist)
    if engine.depth() < 0:
        return f"mapped delay is negative: {engine.depth()}"
    slack = engine.worst_slack()
    if abs(slack) > 1e-6:
        return f"worst slack at the default target is {slack}, not 0"
    return None


#: Registry used by the fuzz driver, the replay harness, and the CLI.
INVARIANTS: Dict[str, Invariant] = {
    "optimizer_equivalence": optimizer_equivalence,
    "serial_parallel_identical": serial_parallel_identical,
    "cached_cold_identical": cached_cold_identical,
    "store_warm_equals_cold": store_warm_equals_cold,
    "spcf_tiers_agree": spcf_tiers_agree,
    "sat_portfolio_agree": sat_portfolio_agree,
    "rank_prune_never_worse": rank_prune_never_worse,
    "area_recovery_equiv": area_recovery_equiv,
    "flow_equivalence": flow_equivalence,
    "aiger_roundtrip": aiger_roundtrip,
    "blif_roundtrip": blif_roundtrip,
    "timing_incremental_full": timing_incremental_full,
    "network_timing_consistent": network_timing_consistent,
    "mapped_timing_sane": mapped_timing_sane,
}

#: Invariants expensive enough to run on a stride, not every case.
EXPENSIVE = {
    "serial_parallel_identical": 8,
    "flow_equivalence": 5,
    "sat_portfolio_agree": 4,
    "rank_prune_never_worse": 4,
    "spcf_tiers_agree": 3,
    "store_warm_equals_cold": 3,
    "cached_cold_identical": 2,
}


def run_invariant(name: str, case: Case) -> Optional[str]:
    """Run one named invariant; exceptions count as failures too."""
    try:
        return INVARIANTS[name](case)
    except Exception as exc:  # a crash is as much a bug as a miscompile
        return f"{type(exc).__name__}: {exc}"
