"""Speed-path characteristic functions (SPCF).

The SPCF of an output ``y`` at threshold ``delta`` is the set of input
minterms that sensitize paths of length >= ``delta`` logic levels in the
decomposed circuit (Sec. 3 of the paper).  Three computations are provided:

* :func:`spcf_exact_tt` — exact static-sensitization SPCF as a truth table,
  via a dynamic program over (node, required-length) pairs (the path-based
  exact algorithms of [7, 19] reformulated as a node recurrence);
* :func:`spcf_overapprox_tt` — the node-based over-approximation in the
  spirit of telescopic units [20, 21]: a side input may be either
  non-controlling *or itself critical*, which is a superset of the exact
  condition but far cheaper to reason about;
* :func:`spcf_signature` — a floating-mode timed-simulation estimate over a
  random pattern set, used on circuits too large for global functions.

The SPCF is *only a guide metric* (the paper, Sec. 3.1): approximate SPCFs
never compromise correctness of the synthesized lookahead circuit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import perf
from ..aig import AIG, levels, lit_neg, lit_var, node_tts, random_patterns
from ..tt import TruthTable
from .signatures import (
    DEFAULT_SIGNATURE_WIDTH,
    EXHAUSTIVE_PI_LIMIT,
    SpcfPrefilter,
    pack_signature,
    timed_value_simulation,
    unpack_patterns,
)

#: Back-compat alias: the floating-mode simulation moved to
#: :mod:`repro.core.signatures` with the tiered-kernel refactor.
timed_simulation = timed_value_simulation

SpcfMemo = Dict[Tuple[int, int], TruthTable]
"""DP table of one cone: ``(var, required-length) -> SPCF truth table``.

Entries depend only on the cone structure, the node truth tables, and the
arrival profile — *not* on the queried Δ — so one memo serves the entire
Δ-relaxation loop, every output sharing the cone, and later rounds (see
:func:`repro.core.cache.dp_memo_cached`)."""


def _sensitization_dp(
    aig: AIG,
    po_lit: int,
    delta: int,
    relaxed: bool,
    tts: Optional[List[TruthTable]] = None,
    arrivals: Optional[Sequence[int]] = None,
    memo: Optional[SpcfMemo] = None,
    prefilter: Optional[SpcfPrefilter] = None,
) -> TruthTable:
    """Shared DP for the exact and over-approximate SPCF truth tables.

    ``tts`` lets callers pass precomputed node truth tables so the
    Δ-relaxation loop (and the cross-round cone cache) tabulates the
    circuit once instead of once per Δ.

    ``arrivals`` are engine-reported arrival times (integer unit-gate
    model): Δ is interpreted relative to them, so with prescribed PI
    arrivals a path is Δ-critical when it *completes* at time >= Δ —
    a late PI absorbs the residual budget up to its own arrival time.

    ``memo`` is a shared :data:`SpcfMemo`; passing the same dict across
    calls reuses every previously tabulated ``(var, t)`` entry, which is
    valid whenever ``(aig, tts, arrivals, relaxed)`` are unchanged.

    ``prefilter`` short-circuits entries whose floating-mode arrival bound
    proves them empty (see :class:`repro.core.signatures.SpcfPrefilter`);
    with an exhaustive prefilter the result is bit-identical to the
    unfiltered DP.
    """
    n = aig.num_pis
    if tts is None:
        tts = node_tts(aig)
    lvl = arrivals if arrivals is not None else levels(aig)
    const0 = TruthTable.const(False, n)
    const1 = TruthTable.const(True, n)
    if memo is None:
        memo = {}

    def lit_tt(lit: int) -> TruthTable:
        t = tts[lit_var(lit)]
        return ~t if lit_neg(lit) else t

    target = (lit_var(po_lit), delta)
    stack = [target]
    while stack:
        var, t = stack[-1]
        if (var, t) in memo:
            stack.pop()
            continue
        if t <= 0:
            memo[(var, t)] = const1
            stack.pop()
            continue
        if not aig.is_and(var):
            # A PI absorbs any residual budget within its arrival time
            # (always 0 under unit delay); the constant starts nothing.
            memo[(var, t)] = const1 if t <= lvl[var] else const0
            stack.pop()
            continue
        if lvl[var] < t:
            # A node arriving before t cannot terminate a t-path.
            memo[(var, t)] = const0
            stack.pop()
            continue
        if prefilter is not None and prefilter.prunes(var, t):
            # No simulated pattern drives the floating-mode arrival of
            # this node to t; with an exhaustive pattern set that is a
            # proof the entry is empty — memoized without materializing
            # a truth table, and the whole sub-DP below it is skipped.
            memo[(var, t)] = const0
            perf.incr("spcf.prefilter_hits")
            stack.pop()
            continue
        f0, f1 = aig.fanins(var)
        v0, v1 = lit_var(f0), lit_var(f1)
        pending = [
            key for key in ((v0, t - 1), (v1, t - 1)) if key not in memo
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        crit0 = memo[(v0, t - 1)]
        crit1 = memo[(v1, t - 1)]
        side0 = lit_tt(f0)  # non-controlling value of input 0 (AND: 1)
        side1 = lit_tt(f1)
        if relaxed:
            through0 = crit0 & (side1 | crit1)
            through1 = crit1 & (side0 | crit0)
        else:
            through0 = crit0 & side1
            through1 = crit1 & side0
        memo[(var, t)] = through0 | through1
    return memo[target]


def spcf_exact_tt(
    aig: AIG,
    po_index: int,
    delta: int,
    tts: Optional[List[TruthTable]] = None,
    arrivals: Optional[Sequence[int]] = None,
    memo: Optional[SpcfMemo] = None,
    prefilter: Optional[SpcfPrefilter] = None,
) -> TruthTable:
    """Exact static-sensitization SPCF of a PO as a PI-space truth table."""
    return _sensitization_dp(
        aig, aig.pos[po_index], delta, relaxed=False, tts=tts,
        arrivals=arrivals, memo=memo, prefilter=prefilter,
    )


def spcf_overapprox_tt(
    aig: AIG,
    po_index: int,
    delta: int,
    tts: Optional[List[TruthTable]] = None,
    arrivals: Optional[Sequence[int]] = None,
    memo: Optional[SpcfMemo] = None,
    prefilter: Optional[SpcfPrefilter] = None,
) -> TruthTable:
    """Node-based over-approximate SPCF (superset of the exact SPCF)."""
    return _sensitization_dp(
        aig, aig.pos[po_index], delta, relaxed=True, tts=tts,
        arrivals=arrivals, memo=memo, prefilter=prefilter,
    )


# -- simulation-based SPCF ------------------------------------------------------


def spcf_signature(
    aig: AIG,
    po_index: int,
    delta: int,
    pi_bits: np.ndarray,
    timed: Optional[Tuple[List[np.ndarray], List[np.ndarray]]] = None,
) -> int:
    """Packed signature of patterns whose floating-mode delay is >= delta."""
    if timed is None:
        timed = timed_simulation(aig, pi_bits)
    _values, arrivals = timed
    po_var = lit_var(aig.pos[po_index])
    return pack_signature(arrivals[po_var] >= delta)


def spcf_exact_bdd(
    aig: AIG,
    po_index: int,
    delta: int,
    bdd,
    size_limit: int = 500_000,
    arrivals: Optional[Sequence[int]] = None,
) -> Optional[int]:
    """Exact static-sensitization SPCF of a PO as a BDD reference.

    Same (node, required-length) dynamic program as the truth-table
    version, run on BDDs so circuits beyond the exhaustive-table limit get
    exact SPCFs too.  Returns None on manager blowup (caller falls back to
    the simulation estimate).
    """
    from ..bdd import FALSE, TRUE, aig_to_bdd, ref_not

    po_lit = aig.pos[po_index]
    lvl = arrivals if arrivals is not None else levels(aig)
    roots = [make_var_lit(v) for v in _cone_and_vars(aig, po_lit)]
    node_refs_list = aig_to_bdd(bdd, aig, roots, size_limit=size_limit)
    if node_refs_list is None:
        return None
    node_refs: Dict[int, int] = {0: FALSE}
    for i, pi in enumerate(aig.pis):
        node_refs[pi] = bdd.var(i)
    for lit, ref in zip(roots, node_refs_list):
        node_refs[lit_var(lit)] = ref

    def lit_ref(lit: int) -> int:
        r = node_refs[lit_var(lit)]
        return ref_not(r) if lit_neg(lit) else r

    memo: Dict[Tuple[int, int], int] = {}
    target = (lit_var(po_lit), delta)
    stack = [target]
    while stack:
        var, t = stack[-1]
        if (var, t) in memo:
            stack.pop()
            continue
        if t <= 0:
            memo[(var, t)] = TRUE
            stack.pop()
            continue
        if not aig.is_and(var):
            memo[(var, t)] = TRUE if t <= lvl[var] else FALSE
            stack.pop()
            continue
        if lvl[var] < t:
            memo[(var, t)] = FALSE
            stack.pop()
            continue
        f0, f1 = aig.fanins(var)
        v0, v1 = lit_var(f0), lit_var(f1)
        pending = [
            key for key in ((v0, t - 1), (v1, t - 1)) if key not in memo
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        through0 = bdd.and_(memo[(v0, t - 1)], lit_ref(f1))
        through1 = bdd.and_(memo[(v1, t - 1)], lit_ref(f0))
        memo[(var, t)] = bdd.or_(through0, through1)
        if bdd.size() > size_limit:
            return None
    return memo[target]


def _cone_and_vars(aig: AIG, po_lit: int):
    seen = set()
    stack = [lit_var(po_lit)]
    order = []
    while stack:
        v = stack.pop()
        if v in seen or not aig.is_and(v):
            continue
        seen.add(v)
        order.append(v)
        f0, f1 = aig.fanins(v)
        stack.append(lit_var(f0))
        stack.append(lit_var(f1))
    return order


def make_var_lit(var: int) -> int:
    """Positive literal of a variable (local helper)."""
    return var << 1


class SpcfTierConfig:
    """Per-cone support-size budgets for tiered SPCF evaluation.

    Cones up to ``exact_limit`` PIs get the requested exact (or relaxed)
    truth-table DP; up to ``overapprox_limit`` they degrade to the
    over-approximate DP; anything wider falls back to the timed-simulation
    signature estimate.  ``force`` pins every cone to one tier regardless
    of size (the CLI's ``--spcf-tier`` knob).  ``prefilter`` attaches the
    floating-mode arrival bound to the DP; it is only ever *applied* when
    the cone is small enough (``exhaustive_limit``) for the bound to be a
    proof, so truth-table tiers stay bit-identical to the unfiltered DP.
    ``sat_portfolio`` is the solver policy of the cone-processing task
    this config describes (see :mod:`repro.sat.portfolio`); the SPCF
    kernels themselves are SAT-free, so the field rides along for the
    downstream care checker and stays out of :meth:`key`.
    """

    __slots__ = (
        "exact_limit",
        "overapprox_limit",
        "sim_width",
        "seed",
        "prefilter",
        "exhaustive_limit",
        "force",
        "sat_portfolio",
    )

    def __init__(
        self,
        exact_limit: int = 12,
        overapprox_limit: int = 14,
        sim_width: int = 1024,
        seed: int = 0,
        prefilter: bool = True,
        exhaustive_limit: int = EXHAUSTIVE_PI_LIMIT,
        force: Optional[str] = None,
        sat_portfolio: str = "off",
    ):
        if force not in (None, "exact", "overapprox", "signature"):
            raise ValueError(f"unknown SPCF tier {force!r}")
        self.exact_limit = exact_limit
        self.overapprox_limit = overapprox_limit
        self.sim_width = sim_width
        self.seed = seed
        self.prefilter = prefilter
        self.exhaustive_limit = exhaustive_limit
        self.force = force
        self.sat_portfolio = sat_portfolio

    def key(self) -> Tuple:
        """Hashable identity for cache keys (anything result-affecting).

        ``sat_portfolio`` is deliberately excluded: the SPCF kernels run
        no SAT queries, so the portfolio mode cannot affect their results
        and including it would only split otherwise-shareable memo
        entries.
        """
        return (
            self.exact_limit,
            self.overapprox_limit,
            self.sim_width,
            self.seed,
            self.prefilter,
            self.exhaustive_limit,
            self.force,
        )

    def __repr__(self) -> str:
        return (
            f"SpcfTierConfig(exact<={self.exact_limit}, "
            f"overapprox<={self.overapprox_limit}, force={self.force})"
        )


def resolve_spcf_tier(
    num_pis: int, kind: str, config: SpcfTierConfig
) -> str:
    """Effective tier for a cone: the requested kind, or a degradation.

    ``force`` pins the tier outright; otherwise the cone's support size is
    measured against the config's budgets — exact (or the requested
    relaxed) DP up to ``exact_limit`` PIs, over-approximate DP up to
    ``overapprox_limit``, timed-simulation signatures beyond.
    """
    if config.force is not None:
        return config.force
    if num_pis <= config.exact_limit:
        return kind
    if num_pis <= config.overapprox_limit:
        return "overapprox"
    return "signature"


class SpcfKernel:
    """Tiered SPCF evaluation of one cone with shared memo/signature pools.

    One kernel serves every Δ of the relaxation loop (and, through the
    injected ``memo`` dicts, later rounds revisiting the same cone): node
    truth tables are tabulated once, the ``(node, budget)`` DP table is
    shared across Δ queries, the floating-mode prefilter is simulated
    once, and the signature tier reuses a single timed simulation.

    ``kind`` is the requested DP flavour (``'exact'`` / ``'overapprox'``);
    the effective tier may degrade by support size per ``config`` and is
    recorded in the ``spcf.tier.*`` perf counters.  The SPCF is a guide
    metric (paper Sec. 3.1), so degraded tiers never compromise
    correctness of the synthesized circuit; the exact tier is bit-identical
    to the direct DP because the shared memo is Δ-independent and the
    prefilter is only applied when exhaustive (a proof).
    """

    def __init__(
        self,
        aig: AIG,
        kind: str = "exact",
        config: Optional[SpcfTierConfig] = None,
        arrivals: Optional[Sequence[int]] = None,
        pi_arrivals: Optional[Sequence[int]] = None,
        tts: Optional[List[TruthTable]] = None,
        memo: Optional[SpcfMemo] = None,
        relaxed_memo: Optional[SpcfMemo] = None,
    ):
        if kind not in ("exact", "overapprox"):
            raise ValueError(f"unknown SPCF kind {kind!r}")
        self.aig = aig
        self.kind = kind
        self.config = config if config is not None else SpcfTierConfig()
        self.arrivals = arrivals
        self.pi_arrivals = pi_arrivals
        self.tier = resolve_spcf_tier(aig.num_pis, kind, self.config)
        self._tts = tts
        self._memo: SpcfMemo = memo if memo is not None else {}
        self._relaxed_memo: SpcfMemo = (
            relaxed_memo if relaxed_memo is not None else {}
        )
        self._prefilter: Optional[SpcfPrefilter] = None
        self._prefilter_built = False
        self._timed = None
        self._counted = False

    # -- lazily built shared state ----------------------------------------

    def _node_tts(self) -> List[TruthTable]:
        if self._tts is None:
            self._tts = node_tts(self.aig)
        return self._tts

    def _dp_prefilter(self) -> Optional[SpcfPrefilter]:
        """The arrival bound, or None when it would not be a proof."""
        if not self._prefilter_built:
            self._prefilter_built = True
            cfg = self.config
            if cfg.prefilter and self.aig.num_pis <= cfg.exhaustive_limit:
                self._prefilter = SpcfPrefilter.for_cone(
                    self.aig,
                    pi_arrivals=self.pi_arrivals,
                    seed=cfg.seed,
                    exhaustive_limit=cfg.exhaustive_limit,
                )
        return self._prefilter

    def _timed_sim(self):
        if self._timed is None:
            cfg = self.config
            pi_bits = unpack_patterns(
                random_patterns(self.aig.num_pis, cfg.sim_width, cfg.seed),
                cfg.sim_width,
            )
            self._timed = timed_value_simulation(
                self.aig, pi_bits, pi_arrivals=self.pi_arrivals
            )
        return self._timed

    # -- evaluation --------------------------------------------------------

    def spcf(self, po_index: int, delta: int) -> Spcf:
        """SPCF of a PO at threshold Δ, in the resolved tier's domain."""
        if not self._counted:
            self._counted = True
            perf.incr(f"spcf.tier.{self.tier}")
        if self.tier == "signature":
            sig = spcf_signature(
                self.aig, po_index, delta, None, timed=self._timed_sim()
            )
            return Spcf("sim", signature=sig)
        relaxed = self.tier == "overapprox"
        tt = _sensitization_dp(
            self.aig,
            self.aig.pos[po_index],
            delta,
            relaxed=relaxed,
            tts=self._node_tts(),
            arrivals=self.arrivals,
            memo=self._relaxed_memo if relaxed else self._memo,
            prefilter=self._dp_prefilter(),
        )
        return Spcf("tt", tt=tt)


class Spcf:
    """An SPCF in the truth-table, BDD, or signature domain."""

    __slots__ = ("mode", "tt", "signature", "bdd", "ref", "count")

    def __init__(
        self,
        mode: str,
        tt: Optional[TruthTable] = None,
        signature: Optional[int] = None,
        bdd=None,
        ref: Optional[int] = None,
        num_pis: Optional[int] = None,
    ):
        self.mode = mode
        self.tt = tt
        self.signature = signature
        self.bdd = bdd
        self.ref = ref
        if mode == "tt":
            if tt is None:
                raise ValueError("tt mode requires a truth table")
            self.count = tt.count_ones()
        elif mode == "sim":
            if signature is None:
                raise ValueError("sim mode requires a signature")
            self.count = bin(signature).count("1")
        elif mode == "bdd":
            if bdd is None or ref is None or num_pis is None:
                raise ValueError("bdd mode requires bdd, ref, and num_pis")
            self.count = bdd.sat_count(ref, num_pis)
        else:
            raise ValueError(f"unknown SPCF mode {mode!r}")

    def is_empty(self) -> bool:
        return self.count == 0

    def __repr__(self) -> str:
        return f"Spcf(mode={self.mode}, count={self.count})"
