"""Quickstart: optimize a small timing-critical circuit.

Builds an 8-bit ripple-carry adder (the paper's canonical example of a
circuit with a long sensitizable chain), runs the lookahead optimizer, and
verifies the result is equivalent.

Run:  python examples/quickstart.py
"""

from repro.adders import ripple_carry_adder
from repro.aig import depth
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer


def main() -> None:
    aig = ripple_carry_adder(8)
    print(f"original : {aig.num_ands():4d} AND nodes, {depth(aig):2d} levels")

    optimizer = LookaheadOptimizer(max_rounds=12)
    optimized = optimizer.optimize(aig)
    print(
        f"lookahead: {optimized.num_ands():4d} AND nodes, "
        f"{depth(optimized):2d} levels"
    )

    result = check_equivalence(aig, optimized)
    print(f"equivalence check: {'PASS' if result else 'FAIL'}")
    if not result:
        raise SystemExit(1)

    reduction = 100.0 * (depth(aig) - depth(optimized)) / depth(aig)
    print(f"logic-level reduction: {reduction:.0f}%")


if __name__ == "__main__":
    main()
