"""Global-function models of a (mutating) technology-independent network.

Cube weights — the guide metric of `Simplify` — need the global function of
every network node in the same domain as the SPCF.  Two interchangeable
models are provided:

* :class:`ExactModel` — global truth tables over the PIs (small circuits);
* :class:`SignatureModel` — packed random-simulation signatures (any size).

Both expose the same small algebra (literal/conj/complement/count) so the
core algorithms are mode-agnostic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..netlist import Network, min_sops
from ..sop import Cube
from ..tt import TruthTable
from .spcf import Spcf


class ExactModel:
    """Global truth tables of every network node."""

    mode = "tt"

    def __init__(self, net: Network):
        self.net = net
        self.num_pis = len(net.pis)
        self.fns: Dict[int, TruthTable] = {}
        self.recompute()

    def recompute(self) -> None:
        """Recompute all node functions after network mutation."""
        self.fns = self.net.global_tts()

    def fn(self, nid: int) -> TruthTable:
        return self.fns[nid]

    def literal(self, fn: TruthTable, pol: bool) -> TruthTable:
        return fn if pol else ~fn

    def conj(self, fns: Sequence[TruthTable]) -> TruthTable:
        out = TruthTable.const(True, self.num_pis)
        for f in fns:
            out &= f
            if out.is_const0:
                break
        return out

    def complement(self, fn: TruthTable) -> TruthTable:
        return ~fn

    def count(self, fn: TruthTable) -> int:
        return fn.count_ones()

    def cube_condition(self, nid: int, cube: Cube) -> TruthTable:
        """Global condition: node ``nid``'s fan-ins lie inside ``cube``."""
        node = self.net.nodes[nid]
        terms = [
            self.literal(self.fn(node.fanins[var]), pol)
            for var, pol in cube.literals()
        ]
        return self.conj(terms)

    def spcf_fn(self, spcf: Spcf) -> TruthTable:
        if spcf.mode != "tt":
            raise ValueError("SPCF domain mismatch (expected tt)")
        return spcf.tt

    def cube_weight(self, spcf_fn: TruthTable, nid: int, cube: Cube) -> float:
        """Fraction of SPCF minterms driving the node's fan-ins into cube."""
        total = self.count(spcf_fn)
        if total == 0:
            return 0.0
        hit = self.count(self.conj([spcf_fn, self.cube_condition(nid, cube)]))
        return hit / total


class BddModel:
    """Global BDD functions of every network node (exact, mid-size PIs).

    Same interface as :class:`ExactModel` with BDD references as the
    function domain; raises :class:`BddBlowup` when the manager exceeds
    its node budget so callers can fall back to signatures.
    """

    mode = "bdd"

    def __init__(self, net: Network, bdd=None, size_limit: int = 500_000):
        from ..bdd import BDD

        self.net = net
        self.num_pis = len(net.pis)
        self.bdd = bdd if bdd is not None else BDD()
        self.size_limit = size_limit
        self.fns: Dict[int, int] = {}
        self.recompute()

    def recompute(self) -> None:
        from ..bdd import FALSE, TRUE, ref_not

        bdd = self.bdd
        fns: Dict[int, int] = {}
        for i, pi in enumerate(self.net.pis):
            fns[pi] = bdd.var(i)
        for nid in self.net.topo_order():
            node = self.net.nodes[nid]
            tt = node.tt
            if tt.is_const0:
                fns[nid] = FALSE
                continue
            if tt.is_const1:
                fns[nid] = TRUE
                continue
            on_cover, _ = min_sops(tt)
            acc = FALSE
            for cube in on_cover:
                term = TRUE
                for var, pol in cube.literals():
                    f = fns[node.fanins[var]]
                    term = bdd.and_(term, f if pol else ref_not(f))
                    if term == FALSE:
                        break
                acc = bdd.or_(acc, term)
            fns[nid] = acc
            if bdd.size() > self.size_limit:
                raise BddBlowup(
                    f"BDD manager exceeded {self.size_limit} nodes"
                )
        self.fns = fns

    def fn(self, nid: int) -> int:
        return self.fns[nid]

    def literal(self, fn: int, pol: bool) -> int:
        from ..bdd import ref_not

        return fn if pol else ref_not(fn)

    def conj(self, fns: Sequence[int]) -> int:
        from ..bdd import FALSE, TRUE

        acc = TRUE
        for f in fns:
            acc = self.bdd.and_(acc, f)
            if acc == FALSE:
                break
        return acc

    def complement(self, fn: int) -> int:
        from ..bdd import ref_not

        return ref_not(fn)

    def count(self, fn: int) -> int:
        return self.bdd.sat_count(fn, self.num_pis)

    def cube_condition(self, nid: int, cube: Cube) -> int:
        node = self.net.nodes[nid]
        terms = [
            self.literal(self.fn(node.fanins[var]), pol)
            for var, pol in cube.literals()
        ]
        return self.conj(terms)

    def spcf_fn(self, spcf) -> int:
        if spcf.mode != "bdd":
            raise ValueError("SPCF domain mismatch (expected bdd)")
        if spcf.bdd is not self.bdd:
            raise ValueError("SPCF built in a different BDD manager")
        return spcf.ref

    def cube_weight(self, spcf_fn: int, nid: int, cube: Cube) -> float:
        total = self.count(spcf_fn)
        if total == 0:
            return 0.0
        hit = self.count(
            self.conj([spcf_fn, self.cube_condition(nid, cube)])
        )
        return hit / total


class BddBlowup(RuntimeError):
    """Raised when a BDD-domain model exceeds its node budget."""


class SignatureModel:
    """Packed random-simulation signatures of every network node."""

    mode = "sim"

    def __init__(self, net: Network, pi_words: Sequence[int], width: int):
        if len(pi_words) != len(net.pis):
            raise ValueError("one pattern word per PI required")
        self.net = net
        self.width = width
        self.mask = (1 << width) - 1
        self.pi_words = list(pi_words)
        self.fns: Dict[int, int] = {}
        self.recompute()

    def recompute(self) -> None:
        fns: Dict[int, int] = {}
        for pi, word in zip(self.net.pis, self.pi_words):
            fns[pi] = word & self.mask
        for nid in self.net.topo_order():
            node = self.net.nodes[nid]
            fanin_words = [fns[f] for f in node.fanins]
            fns[nid] = self._eval_node(node.tt, fanin_words)
        self.fns = fns

    def _eval_node(self, tt: TruthTable, fanin_words: List[int]) -> int:
        if tt.is_const0:
            return 0
        if tt.is_const1:
            return self.mask
        on_cover, _off = min_sops(tt)
        out = 0
        for cube in on_cover:
            term = self.mask
            for var, pol in cube.literals():
                w = fanin_words[var]
                term &= w if pol else (w ^ self.mask)
                if not term:
                    break
            out |= term
            if out == self.mask:
                break
        return out

    def fn(self, nid: int) -> int:
        return self.fns[nid]

    def literal(self, fn: int, pol: bool) -> int:
        return fn if pol else (fn ^ self.mask)

    def conj(self, fns: Sequence[int]) -> int:
        out = self.mask
        for f in fns:
            out &= f
            if not out:
                break
        return out

    def complement(self, fn: int) -> int:
        return fn ^ self.mask

    def count(self, fn: int) -> int:
        return bin(fn).count("1")

    def cube_condition(self, nid: int, cube: Cube) -> int:
        node = self.net.nodes[nid]
        terms = [
            self.literal(self.fn(node.fanins[var]), pol)
            for var, pol in cube.literals()
        ]
        return self.conj(terms)

    def spcf_fn(self, spcf: Spcf) -> int:
        if spcf.mode != "sim":
            raise ValueError("SPCF domain mismatch (expected sim)")
        return spcf.signature & self.mask

    def cube_weight(self, spcf_fn: int, nid: int, cube: Cube) -> float:
        total = self.count(spcf_fn)
        if total == 0:
            return 0.0
        hit = self.count(spcf_fn & self.cube_condition(nid, cube))
        return hit / total
