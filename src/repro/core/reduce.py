"""The critical-cone reduction walk (Fig. 2 of the paper).

``primary_reduce`` runs the paper's ``Reduce`` loop on a single-output cone
network: starting at the highest-level node of the output's fan-in cone,
nodes along the critical structure are handed to ``Simplify`` and the walk
descends through critical fan-ins until the output level drops below the
original network depth (or no candidates remain).  The collected windows
are conjoined into the window function Σ1, which is instantiated as network
nodes on top of the simplified cone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import perf
from ..netlist import Network, critical_inputs
from ..timing import NetworkTimingEngine
from ..tt import TruthTable
from .simplify import simplify_node


class PrimaryResult:
    """Outcome of the primary simplification on one output cone."""

    __slots__ = ("success", "windows", "sigma_nid", "final_level")

    def __init__(
        self,
        success: bool,
        windows: Dict[int, TruthTable],
        sigma_nid: Optional[int],
        final_level: int,
    ):
        self.success = success
        self.windows = windows  # node id -> local window function
        self.sigma_nid = sigma_nid  # network node computing Σ1
        self.final_level = final_level

    def __repr__(self) -> str:
        return (
            f"PrimaryResult(success={self.success}, "
            f"marked={len(self.windows)}, level={self.final_level})"
        )


AND2_TT = TruthTable.from_function(lambda a, b: a and b, 2)


def _highest_cone_node(
    net: Network, root: int, levels: Dict[int, int]
) -> Optional[int]:
    cone = net.fanin_cone([root])
    internal = [
        nid for nid in cone if net.nodes[nid].kind == "node"
    ]
    if not internal:
        return None
    return max(internal, key=lambda nid: (levels[nid], nid))


def primary_reduce(
    net: Network,
    po_index: int,
    model,
    spcf_fn,
    target_level: Optional[int] = None,
    max_steps: int = 200,
    window_limit: Optional[int] = None,
    walk_mode: str = "target",
    delay_model=None,
) -> PrimaryResult:
    """Fig. 2 ``Reduce``: walk and simplify the critical cone of one output.

    ``net`` must be a single-output cone network (see
    ``Network.extract_po_cone``); it is mutated in place.  ``target_level``
    defaults to the output's current level (the paper's ``l_T``).

    ``walk_mode='target'`` stops as soon as the output level beats the
    target (the paper's ``until level(y) < l_T``); ``'full'`` keeps
    simplifying along the critical path to its end, which collects the
    full window conjunction (the carry-skip shape) at a higher area cost.

    ``delay_model`` seeds PI arrivals (non-uniform arrival regime); the
    timing engine re-evaluates only the simplified node's fanout cone
    after each accepted simplification instead of the whole network.
    """
    root, _neg = net.pos[po_index]
    engine = NetworkTimingEngine(net, delay_model)
    levels = engine.levels()
    if target_level is None:
        target_level = levels[root]
    if window_limit is None:
        # Budget so that Σ1 plus the reconstruction mux stays below the
        # target: window AND-tree and the ITE add a few levels on top.
        window_limit = max(1, target_level - 3)
    windows: Dict[int, TruthTable] = {}
    visited = set()
    current = _highest_cone_node(net, root, levels)
    steps = 0
    while current is not None and steps < max_steps:
        steps += 1
        perf.incr("reduce.steps")
        visited.add(current)
        node = net.nodes[current]
        fanin_levels = [levels[f] for f in node.fanins]
        outcome = simplify_node(
            net, current, fanin_levels, model, spcf_fn, window_limit
        )
        if outcome.changed:
            perf.incr("reduce.simplified")
            windows[current] = outcome.window
            model.recompute()
            engine.invalidate(current)
            levels = engine.levels()
            if walk_mode == "target" and levels[root] < target_level:
                break
        # Descend: highest unvisited critical fan-in of the current node.
        node = net.nodes[current]
        fanin_levels = [levels[f] for f in node.fanins]
        crit_positions = critical_inputs(node.tt, fanin_levels)
        candidates = [
            node.fanins[i]
            for i in crit_positions
            if net.nodes[node.fanins[i]].kind == "node"
            and node.fanins[i] not in visited
        ]
        if not candidates:
            # Fall back to any unvisited internal fan-in before giving up.
            candidates = [
                f
                for f in node.fanins
                if net.nodes[f].kind == "node" and f not in visited
            ]
        if not candidates:
            break
        current = max(candidates, key=lambda nid: (levels[nid], nid))

    success = bool(windows) and levels[root] < target_level
    sigma_nid = build_sigma(net, windows) if windows else None
    return PrimaryResult(success, windows, sigma_nid, levels[root])


def build_sigma(net: Network, windows: Dict[int, TruthTable]) -> int:
    """Instantiate Σ1 = AND of per-node windows as network nodes.

    Each window is a local function over the marked node's fan-ins; the
    conjunction is built as a binary AND tree.
    """
    terms: List[int] = []
    for nid, window in sorted(windows.items()):
        node = net.nodes[nid]
        small, support = window.shrink()
        if small.is_const1:
            continue
        fanins = [node.fanins[i] for i in support]
        terms.append(net.add_node(fanins, small, name=f"win{nid}"))
    if not terms:
        return net.add_const(True)
    while len(terms) > 1:
        nxt = []
        for i in range(0, len(terms) - 1, 2):
            nxt.append(net.add_node([terms[i], terms[i + 1]], AND2_TT))
        if len(terms) % 2:
            nxt.append(terms[-1])
        terms = nxt
    return terms[0]
