"""The ddmin shrinker must reduce planted bugs to tiny repros."""

from __future__ import annotations

import random

import pytest

from repro import perf
from repro.aig import lit_var
from repro.cec import check_equivalence
from repro.verify import (
    random_aig,
    rebuild_without,
    restrict_pos,
    shrink_aig,
)


def _has_planted_and(aig) -> bool:
    """The planted 'bug': an AND gate over the first two PIs."""
    if aig.num_pis < 2:
        return False
    targets = {aig.pis[0], aig.pis[1]}
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        if {lit_var(f0), lit_var(f1)} == targets:
            return True
    return False


class TestHelpers:
    def test_restrict_pos_keeps_function(self):
        aig = random_aig(random.Random(11))
        if aig.num_pos < 2:
            pytest.skip("generator produced a single-output circuit")
        sub = restrict_pos(aig, [1])
        assert sub.num_pos == 1
        assert sub.po_names == [aig.po_names[1]]
        assert sub.pi_names == aig.pi_names

    def test_rebuild_without_substitutes_fanin(self):
        aig = random_aig(random.Random(12))
        ands = list(aig.and_vars())
        sub = rebuild_without(aig, {ands[-1]})
        assert sub.num_ands() < aig.num_ands()
        assert sub.num_pos == aig.num_pos
        assert sub.num_pis == aig.num_pis

    def test_rebuild_without_empty_drop_is_identity(self):
        aig = random_aig(random.Random(13))
        same = rebuild_without(aig, set())
        assert check_equivalence(aig, same)


class TestShrink:
    def test_planted_bug_shrinks_to_tiny_repro(self):
        # Find a random circuit that contains the planted structure, then
        # ddmin it down: the minimal repro is the one AND gate itself.
        for s in range(100):
            aig = random_aig(random.Random(s), num_pis=5, num_gates=40)
            if _has_planted_and(aig):
                break
        else:
            pytest.fail("no generated circuit contained the planted AND")
        shrunk = shrink_aig(aig, _has_planted_and)
        assert _has_planted_and(shrunk)
        assert shrunk.num_ands() <= 5
        assert shrunk.num_pos <= aig.num_pos

    def test_probe_counter_advances(self):
        aig = random_aig(random.Random(1), num_pis=4, num_gates=20)
        before = perf.counter("verify.shrink.probes")
        shrink_aig(aig, lambda c: True)  # everything "fails"
        assert perf.counter("verify.shrink.probes") > before

    def test_rejects_non_failing_input(self):
        aig = random_aig(random.Random(2))
        with pytest.raises(ValueError, match="non-failing"):
            shrink_aig(aig, lambda c: False)

    def test_crashing_predicate_counts_as_failing(self):
        # Invariant wrappers may crash on degenerate circuits mid-shrink;
        # the shrinker must treat a crash as "still reproduces".
        aig = random_aig(random.Random(3), num_pis=4, num_gates=12)

        def cranky(circuit):
            if circuit.num_ands() < 2:
                raise RuntimeError("degenerate circuit")
            return True

        shrunk = shrink_aig(aig, cranky)
        assert shrunk.num_ands() <= aig.num_ands()
