"""Gate-level structural Verilog emission for mapped netlists.

Lets mapped results flow into standard downstream tooling (simulators,
STA).  Cells are emitted as primitive-gate instantiations so the output is
self-contained — no external liberty/cell models needed to simulate it.
"""

from __future__ import annotations

from typing import Dict, List, TextIO

from ..tt import TruthTable
from .mapper import GateInstance, MappedNetlist, Signal

#: Verilog expression template per cell, over pin names a, b, c, d.
_CELL_EXPR = {
    "INV": "~a",
    "BUF": "a",
    "NAND2": "~(a & b)",
    "NAND3": "~(a & b & c)",
    "NAND4": "~(a & b & c & d)",
    "NOR2": "~(a | b)",
    "NOR3": "~(a | b | c)",
    "NOR4": "~(a | b | c | d)",
    "AND2": "(a & b)",
    "OR2": "(a | b)",
    "XOR2": "(a ^ b)",
    "XNOR2": "~(a ^ b)",
    "AOI21": "~((a & b) | c)",
    "OAI21": "~((a | b) & c)",
    "AOI22": "~((a & b) | (c & d))",
    "OAI22": "~((a | b) & (c | d))",
    "MUX2": "(a ? b : c)",
    "MAJ3": "((a & b) | (a & c) | (b & c))",
}

_PIN_NAMES = "abcd"


def _sop_expr(tt: TruthTable, pins: List[str]) -> str:
    """Fallback: flat SOP expression of an arbitrary cell function."""
    from ..sop import min_sop

    cover = min_sop(tt)
    if cover.is_empty():
        return "1'b0"
    terms = []
    for cube in cover:
        lits = [
            (pins[var] if pol else f"~{pins[var]}")
            for var, pol in cube.literals()
        ]
        terms.append(" & ".join(lits) if lits else "1'b1")
    return " | ".join(f"({t})" for t in terms)


def _signal_name(netlist: MappedNetlist, sig: Signal) -> str:
    var, neg = sig
    if var == 0:
        return "1'b1" if neg else "1'b0"
    aig = netlist.aig
    if aig.is_pi(var):
        base = aig.pi_names[aig.pis.index(var)]
    else:
        base = f"n{var}"
    return f"{base}_bar" if neg else base


def write_verilog(
    netlist: MappedNetlist, fh: TextIO, module: str = "top"
) -> None:
    """Emit the mapped netlist as a structural Verilog module."""
    aig = netlist.aig
    inputs = list(aig.pi_names)
    outputs = list(aig.po_names)
    fh.write(f"module {module} (\n")
    ports = [f"  input wire {n}" for n in inputs]
    ports += [f"  output wire {n}" for n in outputs]
    fh.write(",\n".join(ports))
    fh.write("\n);\n\n")

    declared = set()

    def declare(sig: Signal) -> str:
        name = _signal_name(netlist, sig)
        var, _ = sig
        if (
            var != 0
            and not aig.is_pi(var) or (aig.is_pi(var) and sig[1])
        ):
            if name not in declared and not name.startswith("1'b"):
                declared.add(name)
                fh.write(f"  wire {name};\n")
        return name

    # Declare all internal wires first.
    for gate in netlist.gates:
        declare(gate.output)
    fh.write("\n")

    for idx, gate in enumerate(netlist.gates):
        pins = [_signal_name(netlist, s) for s in gate.inputs]
        mapping = dict(zip(_PIN_NAMES, pins))
        template = _CELL_EXPR.get(gate.cell.name)
        if template is None:
            expr = _sop_expr(gate.cell.tt, pins)
        else:
            expr = "".join(
                mapping.get(ch, ch) if ch in _PIN_NAMES else ch
                for ch in template
            )
        out = _signal_name(netlist, gate.output)
        fh.write(f"  assign {out} = {expr};  // {gate.cell.name} g{idx}\n")

    fh.write("\n")
    for po_name, sig in zip(outputs, netlist.po_signals):
        fh.write(f"  assign {po_name} = {_signal_name(netlist, sig)};\n")
    fh.write("endmodule\n")
