"""Tests for ISOP, Quine-McCluskey, and espresso-style minimization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sop import espresso, isop, min_sop, minimize_exact, prime_implicants
from repro.sop.espresso import _supercube
from repro.tt import TruthTable


def tt_pair_strategy(max_vars=5):
    """(on, dc) pair of disjoint truth tables."""

    def build(n):
        full = (1 << (1 << n)) - 1
        return st.tuples(
            st.integers(0, full), st.integers(0, full), st.just(n)
        ).map(
            lambda t: (
                TruthTable(t[0] & ~t[1], t[2]),
                TruthTable(t[1], t[2]),
            )
        )

    return st.integers(1, max_vars).flatmap(build)


class TestIsop:
    @given(tt_pair_strategy())
    def test_isop_within_bounds(self, pair):
        on, dc = pair
        cov = isop(on, on | dc)
        tt = cov.to_tt()
        assert on.implies(tt)
        assert tt.implies(on | dc)

    @given(tt_pair_strategy())
    def test_isop_exact_without_dc(self, pair):
        on, _ = pair
        assert isop(on).to_tt() == on

    def test_isop_rejects_bad_bounds(self):
        on = TruthTable.var(0, 2)
        with pytest.raises(ValueError):
            isop(on, ~on)

    @given(tt_pair_strategy(4))
    def test_isop_irredundant(self, pair):
        on, dc = pair
        cov = isop(on, on | dc)
        # Every cube must cover at least one on-set minterm not covered by
        # the other cubes (irredundancy).
        for i in range(len(cov)):
            rest = TruthTable.const(False, on.nvars)
            for j, c in enumerate(cov.cubes):
                if j != i:
                    rest |= c.to_tt()
            unique = cov.cubes[i].to_tt() & on & ~rest
            assert not unique.is_const0


class TestQuineMcCluskey:
    def test_primes_of_majority(self):
        maj = TruthTable.from_function(lambda a, b, c: (a + b + c) >= 2, 3)
        primes = {p.to_string() for p in prime_implicants(maj)}
        assert primes == {"-11", "1-1", "11-"}

    @given(tt_pair_strategy(4))
    def test_primes_are_implicants_and_maximal(self, pair):
        on, dc = pair
        if on.is_const0:
            return
        upper = on | dc
        for p in prime_implicants(on, dc):
            assert p.to_tt().implies(upper)
            # Maximality: dropping any literal escapes the upper bound.
            for var, _pol in p.literals():
                assert not p.without(var).to_tt().implies(upper)

    @given(tt_pair_strategy(4))
    def test_minimize_exact_correct(self, pair):
        on, dc = pair
        cov = minimize_exact(on, dc)
        tt = cov.to_tt()
        assert on.implies(tt)
        assert tt.implies(on | dc)

    def test_known_minimum(self):
        # f = a'b' + ab needs exactly 2 cubes.
        f = TruthTable.from_function(lambda a, b: a == b, 2)
        assert len(minimize_exact(f)) == 2


class TestEspresso:
    @given(tt_pair_strategy())
    @settings(deadline=None)
    def test_espresso_correct(self, pair):
        on, dc = pair
        cov = espresso(on, dc)
        tt = cov.to_tt()
        assert on.implies(tt)
        assert tt.implies(on | dc)

    @given(tt_pair_strategy())
    @settings(deadline=None)
    def test_min_sop_correct(self, pair):
        on, dc = pair
        cov = min_sop(on, dc)
        tt = cov.to_tt()
        assert on.implies(tt)
        assert tt.implies(on | dc)

    def test_min_sop_never_worse_than_isop(self):
        # Classic espresso win: xor-adjacent clusters.
        f = TruthTable(0b0111_1110, 3)
        assert len(min_sop(f)) <= len(isop(f))

    def test_supercube(self):
        t = TruthTable.from_minterms([0b101, 0b111], 3)
        sc = _supercube(t)
        assert sc.to_string() == "1-1"

    def test_dc_enables_smaller_cover(self):
        on = TruthTable.from_minterms([0b00], 2)
        dc = TruthTable.from_minterms([0b01, 0b10, 0b11], 2)
        assert len(min_sop(on, dc)) == 1
        assert min_sop(on, dc).cubes[0].num_literals() == 0
