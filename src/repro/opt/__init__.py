"""Baseline optimization flows (the paper's SIS/ABC/DC comparators)."""

from .balance import balance
from .rewrite import refactor, rewrite
from .speedup import speed_up
from .exact_synthesis import ExactSynthesisResult, chain_to_aig_lit, exact_aig
from .npn_rewrite import database_size, rewrite_exact
from .scripts import (
    BASELINE_FLOWS,
    abc_resyn2rs,
    dc_map_effort_high,
    sis_best,
    sis_minimize,
)

__all__ = [
    "balance",
    "refactor",
    "rewrite",
    "speed_up",
    "ExactSynthesisResult",
    "chain_to_aig_lit",
    "exact_aig",
    "database_size",
    "rewrite_exact",
    "BASELINE_FLOWS",
    "abc_resyn2rs",
    "dc_map_effort_high",
    "sis_best",
    "sis_minimize",
]
