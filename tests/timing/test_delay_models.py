"""Delay models: parsing, keys, load-aware delays, mapped-netlist STA."""

import json

import pytest

from repro.adders.generators import ripple_carry_adder
from repro.mapping import map_aig, required_times, slacks
from repro.timing import (
    INF,
    AigTimingEngine,
    LoadAwareDelay,
    MappedTimingEngine,
    PrescribedArrival,
    UnitDelay,
    load_arrival_file,
    parse_arrival_spec,
    resolve_arrivals,
)


class TestParsing:
    def test_spec_ints_and_floats(self):
        spec = parse_arrival_spec("a0=3, b1=2.5 ,c=0")
        assert spec == {"a0": 3, "b1": 2.5, "c": 0}
        assert isinstance(spec["a0"], int)

    def test_spec_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_arrival_spec("a0")
        with pytest.raises(ValueError):
            parse_arrival_spec("a0=xyz")

    def test_arrival_file_roundtrip(self, tmp_path):
        path = tmp_path / "arr.json"
        path.write_text(json.dumps({"a0": 4, "b0": 2.0}))
        arr = load_arrival_file(str(path))
        assert arr == {"a0": 4, "b0": 2}
        assert isinstance(arr["b0"], int)  # whole floats collapse to int

    def test_arrival_file_rejects_non_numbers(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"a0": "late"}))
        with pytest.raises(ValueError):
            load_arrival_file(str(path))

    def test_spec_rejects_non_finite(self):
        # Regression: "nan"/"inf" parsed as floats and a NaN arrival
        # silently poisoned every downstream min/max comparison.
        for bad in ("a0=nan", "a0=inf", "a0=-inf", "a0=Infinity"):
            with pytest.raises(ValueError, match="finite"):
                parse_arrival_spec(bad)

    def test_arrival_file_rejects_non_finite(self, tmp_path):
        # json.load happily produces NaN/Infinity; the loader must not.
        for literal in ("NaN", "Infinity", "-Infinity"):
            path = tmp_path / f"bad_{literal}.json"
            path.write_text('{"a0": %s}' % literal)
            with pytest.raises(ValueError, match="finite"):
                load_arrival_file(str(path))

    def test_resolve(self):
        assert resolve_arrivals(None) is None
        assert resolve_arrivals({}) is None
        model = resolve_arrivals({"x": 2})
        assert isinstance(model, PrescribedArrival)
        assert model.pi_arrival(0, "x") == 2
        assert model.pi_arrival(1, "y") == 0


class TestModelKeys:
    def test_keys_distinguish_models(self):
        unit = UnitDelay()
        p1 = PrescribedArrival({"a": 1})
        p2 = PrescribedArrival({"a": 2})
        keys = {unit.key(), p1.key(), p2.key()}
        assert len(keys) == 3
        assert p1.key() == PrescribedArrival({"a": 1}).key()


class TestLoadAware:
    def test_fanout_sensitivity(self):
        model = LoadAwareDelay()
        assert model.gate_delay(2) > model.gate_delay(1)

    def test_engine_with_load_model(self):
        aig = ripple_carry_adder(3)
        engine = AigTimingEngine(aig, LoadAwareDelay())
        unit_depth = AigTimingEngine(aig).depth()
        d = engine.depth()
        assert d > 0
        # ps-scale delays: strictly more than one unit per level.
        assert d > unit_depth
        # Appending nodes forces a coherent full recompute.
        a, b = aig.pis[0] * 2, aig.pis[1] * 2
        aig.and_(a, b)
        fresh = AigTimingEngine(aig, LoadAwareDelay())
        assert list(engine.arrivals()) == list(fresh.arrivals())


class TestMappedEngine:
    def test_worst_slack_zero_at_own_target(self):
        netlist = map_aig(ripple_carry_adder(4))
        engine = MappedTimingEngine(netlist)
        assert engine.worst_slack() == pytest.approx(0.0, abs=1e-9)
        assert engine.critical_signals()
        req = engine.required_times()
        for sig, r in req.items():
            if r != INF:
                assert r >= engine.arrival(sig) - 1e-9

    def test_netlist_timing_accessor_and_sta_helpers(self):
        netlist = map_aig(ripple_carry_adder(4))
        engine = netlist.timing()
        assert engine.depth() == pytest.approx(netlist.timing().depth())
        s = slacks(netlist)
        assert min(s.values()) == pytest.approx(0.0, abs=1e-9)
        req = required_times(netlist, target=engine.depth() + 10.0)
        # Loosening the target adds exactly the margin everywhere.
        for sig, r in engine.required_times().items():
            if r != INF:
                assert req[sig] == pytest.approx(r + 10.0)
