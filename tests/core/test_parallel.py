"""Determinism of the parallel per-output lookahead rounds.

The parallel path must be a pure scheduling change: with any worker
count, the optimizer must produce a bit-identical AIG to the serial
path, because replacements are computed on independent cones and applied
in fixed output order.
"""

from __future__ import annotations

import io

import pytest

from repro import perf
from repro.adders import ripple_carry_adder
from repro.aig import depth, write_aag
from repro.bench import BENCHMARKS
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer


def _dump(aig) -> str:
    buf = io.StringIO()
    write_aag(aig, buf)
    return buf.getvalue()


def _optimize(aig, workers, **kw):
    return LookaheadOptimizer(workers=workers, **kw).optimize(aig)


class TestParallelDeterminism:
    def test_adder_tt_mode_bit_identical(self):
        # 9 PIs -> exhaustive truth-table mode.
        aig = ripple_carry_adder(4)
        serial = _optimize(aig, 1, max_rounds=4)
        parallel = _optimize(aig, 4, max_rounds=4)
        assert _dump(serial) == _dump(parallel)
        assert depth(serial) < depth(aig)
        assert check_equivalence(aig, serial)

    def test_interrupt_controller_sim_mode_bit_identical(self):
        # The C432 stand-in (priority interrupt controller): 36 PIs ->
        # signature mode, where workers recompute cone-local simulations.
        aig = BENCHMARKS["C432"]()
        kw = dict(
            max_rounds=2,
            max_outputs_per_round=4,
            sim_width=256,
            walk_modes=("target",),
        )
        serial = _optimize(aig, 1, **kw)
        parallel = _optimize(aig, 4, **kw)
        assert _dump(serial) == _dump(parallel)
        assert check_equivalence(aig, serial)

    def test_parallel_round_counter_bumped(self):
        aig = ripple_carry_adder(4)
        before = perf.counter("rounds.parallel")
        _optimize(aig, 4, max_rounds=2, walk_modes=("target",))
        assert perf.counter("rounds.parallel") > before

    def test_workers_env_fallback(self, monkeypatch):
        monkeypatch.setenv(perf.WORKERS_ENV, "3")
        assert perf.get_workers() == 3
        assert perf.get_workers(override=2) == 2
        monkeypatch.setenv(perf.WORKERS_ENV, "0")
        assert perf.get_workers() == 1  # clamped to the serial floor
        monkeypatch.setenv(perf.WORKERS_ENV, "zippy")
        with pytest.raises(ValueError):
            perf.get_workers()

    def test_executor_lifecycle_close(self):
        # Regression: the lazily created ProcessPoolExecutor leaked worker
        # processes with no way to shut it down; close() (and the context-
        # manager form) must exist, kill the pool, and stay idempotent.
        aig = ripple_carry_adder(3)
        opt = LookaheadOptimizer(
            workers=2, max_rounds=1, walk_modes=("target",)
        )
        opt.optimize(aig)
        assert opt._executor is not None  # pool persists across calls...
        opt.optimize(aig)
        assert opt._executor is not None
        opt.close()  # ...until explicitly closed
        assert opt._executor is None
        opt.close()  # idempotent

    def test_executor_reused_across_optimize_calls(self):
        aig = ripple_carry_adder(3)
        with LookaheadOptimizer(
            workers=2, max_rounds=1, walk_modes=("target",)
        ) as opt:
            opt.optimize(aig)
            pool = opt._executor
            opt.optimize(aig)
            assert opt._executor is pool  # warm pool, not a fresh spawn
        assert opt._executor is None  # __exit__ closed it

    def test_env_controls_optimizer_default(self, monkeypatch):
        # workers=None defers to REPRO_WORKERS at round time.
        monkeypatch.setenv(perf.WORKERS_ENV, "2")
        aig = ripple_carry_adder(3)
        before = perf.counter("rounds.parallel")
        out = LookaheadOptimizer(
            max_rounds=1, walk_modes=("target",)
        ).optimize(aig)
        assert perf.counter("rounds.parallel") > before
        assert check_equivalence(aig, out)
