"""Exhaustive correctness of the Tseitin encoding against simulation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import evaluate, lit_var, node_tts
from repro.sat import AigCnf

from ..aig.test_aig import random_aig


@given(st.integers(0, 60))
@settings(deadline=None, max_examples=15)
def test_forced_values_match_simulation(seed):
    aig = random_aig(seed, n_pis=4, n_nodes=20, n_pos=2)
    enc = AigCnf()
    var_map = enc.encode(aig)
    for m in range(1 << aig.num_pis):
        bits = [bool((m >> i) & 1) for i in range(aig.num_pis)]
        assumptions = [
            var_map[pi] if bit else -var_map[pi]
            for pi, bit in zip(aig.pis, bits)
        ]
        assert enc.solver.solve(assumptions)
        tts = node_tts(aig)
        for var in aig.and_vars():
            got = enc.solver.model_value(var_map[var])
            assert got == tts[var].value(m)


@given(st.integers(0, 60))
@settings(deadline=None, max_examples=15)
def test_onset_count_via_enumeration(seed):
    # Blocking-clause enumeration of all models equals the truth-table
    # on-set size of the first PO.
    aig = random_aig(seed, n_pis=4, n_nodes=15, n_pos=1)
    enc = AigCnf()
    var_map = enc.encode(aig)
    po = aig.pos[0]
    po_lit = enc.lit(var_map, po)
    pi_vars = [var_map[pi] for pi in aig.pis]
    enc.solver.add_clause([po_lit])
    count = 0
    while enc.solver.solve():
        count += 1
        model = [enc.solver.model_value(v) for v in pi_vars]
        enc.solver.reset()
        blocking = [
            -v if val else v for v, val in zip(pi_vars, model)
        ]
        if not enc.solver.add_clause(blocking):
            break
    from repro.aig import po_tts

    assert count == po_tts(aig)[0].count_ones()
