"""Levels, depth, and critical-path extraction on AIGs.

The paper's primary quality metric is the number of AIG logic levels; the
critical machinery here (arrival/required times, critical node and PI sets)
also feeds SPCF computation.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .aig import AIG, lit_var

INF = float("inf")


def levels(aig: AIG) -> List[int]:
    """Arrival level of every variable (PIs and constant at level 0)."""
    lvl = [0] * aig.num_vars
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        lvl[var] = 1 + max(lvl[lit_var(f0)], lvl[lit_var(f1)])
    return lvl


def depth(aig: AIG) -> int:
    """Number of logic levels of the AIG (max over POs)."""
    lvl = levels(aig)
    if not aig.pos:
        return 0
    return max(lvl[lit_var(po)] for po in aig.pos)


def po_levels(aig: AIG) -> List[int]:
    """Arrival level of each primary output."""
    lvl = levels(aig)
    return [lvl[lit_var(po)] for po in aig.pos]


def required_times(aig: AIG, target_depth: int = None) -> List[float]:
    """Required level of every variable against ``target_depth``.

    Defaults to the AIG's own depth, so slack 0 marks critical nodes.
    """
    if target_depth is None:
        target_depth = depth(aig)
    req: List[float] = [INF] * aig.num_vars
    for po in aig.pos:
        var = lit_var(po)
        req[var] = min(req[var], float(target_depth))
    for var in reversed(list(aig.and_vars())):
        if req[var] == INF:
            continue
        f0, f1 = aig.fanins(var)
        for fi in (f0, f1):
            fv = lit_var(fi)
            req[fv] = min(req[fv], req[var] - 1)
    return req


def critical_vars(aig: AIG) -> Set[int]:
    """Variables with zero slack (on some topologically longest path)."""
    lvl = levels(aig)
    req = required_times(aig)
    return {
        var
        for var in range(aig.num_vars)
        if req[var] != INF and lvl[var] == req[var]
    }


def critical_pis(aig: AIG) -> Set[int]:
    """PI variables lying on a critical path."""
    crit = critical_vars(aig)
    return {var for var in crit if aig.is_pi(var)}


def critical_pos(aig: AIG) -> List[int]:
    """PO indices whose cone contains a critical path."""
    lvl = levels(aig)
    d = depth(aig)
    return [i for i, po in enumerate(aig.pos) if lvl[lit_var(po)] == d]


def a_critical_path(aig: AIG) -> List[int]:
    """One longest path as a list of variables from a PI to a PO."""
    lvl = levels(aig)
    d = depth(aig)
    start = None
    for po in aig.pos:
        if lvl[lit_var(po)] == d:
            start = lit_var(po)
            break
    if start is None:
        return []
    path = [start]
    var = start
    while aig.is_and(var):
        f0, f1 = aig.fanins(var)
        v0, v1 = lit_var(f0), lit_var(f1)
        var = v0 if lvl[v0] >= lvl[v1] else v1
        path.append(var)
    path.reverse()
    return path


def slack_histogram(aig: AIG) -> Dict[int, int]:
    """Count of AND nodes per integer slack value (diagnostics)."""
    lvl = levels(aig)
    req = required_times(aig)
    hist: Dict[int, int] = {}
    for var in aig.and_vars():
        if req[var] == INF:
            continue
        s = int(req[var]) - lvl[var]
        hist[s] = hist.get(s, 0) + 1
    return hist
