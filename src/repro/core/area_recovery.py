"""Area recovery: SAT sweeping plus incremental redundancy removal.

After reconstruction the paper runs "standard redundancy elimination
algorithms" (Sec. 3.2).  Two passes implement that here:

* :func:`sat_sweep` — merge simulation-equivalent node classes after
  bounded SAT proofs (including constant detection), then clean up
  structurally.
* :class:`RedundancyEngine` / :func:`remove_redundant_edges` — drop AND
  fan-in edges whose stuck-at-1 fault is untestable.  The engine keeps
  one persistent incremental CNF encoding of the circuit and answers
  each candidate edge with a single bounded SAT query under two
  assumption literals — no per-candidate AIG rebuild, no full CEC — with
  a shared bit-parallel simulation prefilter
  (:mod:`repro.core.signatures`) screening out the testable majority
  before the solver is ever consulted.

:func:`recover_area` packages both passes behind one effort knob; the
lookahead optimizer calls it once per accepted round.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional

import numpy as np

from .. import perf
from ..sat import Solver
from ..sat.portfolio import PortfolioRunner, PortfolioSpec, resolve_portfolio
from ..aig import (
    AIG,
    CONST0,
    CONST1,
    fanout_lists,
    lit_neg,
    lit_not,
    lit_notif,
    lit_var,
    random_patterns,
    simulate,
)
from ..aig.cone import lit_fingerprint, var_fingerprints
from ..sat.cnf import AigCnf
from ..store import runtime as store_runtime
from .signatures import random_pi_bits, value_signatures

#: Valid effort levels for :func:`recover_area`.
AREA_EFFORTS = ("low", "medium", "high")

_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)

#: SAT counterexamples are batched into whole signature words before a
#: re-simulation folds them into the prefilter matrix.
_WITNESS_BATCH = 64


def sat_sweep(
    aig: AIG,
    sim_width: int = 1024,
    seed: int = 0,
    max_pairs: int = 5000,
    max_conflicts: int = 300,
    size_limit: int = 6000,
    delay_model=None,
) -> AIG:
    """Merge functionally equivalent internal nodes (SAT-proved).

    Simulation partitions nodes into candidate classes (up to complement);
    each candidate merge is proved by an incremental SAT query (bounded by
    ``max_conflicts``; unknown means no merge) before being applied.
    Circuits beyond ``size_limit`` AND nodes are only cleaned structurally.
    Returns a rebuilt, cleaned AIG, never larger than ``aig.extract()``
    (a sweep whose dead-representative merges grew the net result is
    retried on the cleaned circuit, where growth is impossible).
    ``delay_model`` makes the
    never-worsen-arrival merge guard respect non-uniform PI arrivals.
    """
    if aig.num_ands() > size_limit:
        return aig.extract()
    mask = (1 << sim_width) - 1
    patterns = random_patterns(aig.num_pis, sim_width, seed)
    values = simulate(aig, patterns, sim_width)
    # Candidate classes keyed by polarity-canonical signature.
    classes: Dict[int, List[int]] = {}
    for var in range(aig.num_vars):
        if var != 0 and not aig.is_and(var):
            continue  # keep PIs out of merging
        sig = values[var] & mask
        key = min(sig, sig ^ mask)
        classes.setdefault(key, []).append(var)

    enc: Optional[AigCnf] = None
    var_map: Dict[int, int] = {}

    def prove_equal(v1: int, v2: int, complemented: bool) -> bool:
        nonlocal enc, var_map
        if enc is None:
            enc = AigCnf()
            var_map = enc.encode(aig)
        s1 = var_map[v1]
        s2 = var_map[v2]
        if complemented:
            s2 = -s2
        enc.solver.reset()
        x = enc.add_xor(s1, s2)
        perf.incr("area.sweep.queries")
        start = time.perf_counter()
        result = enc.solver.solve([x], max_conflicts=max_conflicts)
        perf.observe("sat.query.sweep", time.perf_counter() - start)
        enc.solver.reset()
        return result is False

    # representative literal for each merged variable.
    replacement: Dict[int, int] = {}
    pairs_checked = 0
    for members in classes.values():
        if pairs_checked >= max_pairs:
            break  # budget exhausted: stop scanning classes entirely
        if len(members) < 2:
            continue
        rep = members[0]
        rep_sig = values[rep] & mask
        for var in members[1:]:
            if pairs_checked >= max_pairs:
                break
            pairs_checked += 1
            complemented = (values[var] & mask) != rep_sig
            if prove_equal(rep, var, complemented):
                perf.incr("area.sweep.merges")
                replacement[var] = lit_notif(rep * 2, complemented)

    if not replacement:
        return aig.extract()

    # Rebuild with replacements applied (reps have smaller ids, hence are
    # rebuilt before their members in topological order).  A merge is only
    # taken when the representative arrives no later than the node it
    # replaces, so area recovery never undoes a depth/arrival gain.  The
    # timing engine extends its arrival array incrementally as the rebuild
    # appends nodes.
    from ..timing import AigTimingEngine

    dest = AIG()
    engine = AigTimingEngine(dest, delay_model)
    mapping: Dict[int, int] = {0: CONST0}
    for var, name in zip(aig.pis, aig.pi_names):
        mapping[var] = dest.add_pi(name)

    def mapped(lit: int) -> int:
        return lit_notif(mapping[lit_var(lit)], lit_neg(lit))

    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        own = dest.and_(mapped(f0), mapped(f1))
        target = replacement.get(var)
        if target is not None and engine.arrival(
            lit_var(mapped(target))
        ) <= engine.arrival(lit_var(own)):
            mapping[var] = mapped(target)
        else:
            mapping[var] = own
    for po, name in zip(aig.pos, aig.po_names):
        dest.add_po(mapped(po), name)
    result = dest.extract()
    # Merge classes deliberately include *dead* nodes: collapsing a live
    # node onto an equivalent dead representative with a smaller cone is
    # a real area win.  It can also backfire — resurrecting a dead cone
    # larger than what it replaces.  If the net effect grew the cleaned
    # circuit, retry on the cleanup itself: with every node live, merges
    # can only redirect onto already-counted logic, so the retry cannot
    # grow and cannot recurse again.
    cleaned = aig.extract()
    if result.num_ands() > cleaned.num_ands():
        perf.incr("area.sweep.growth_rejected")
        return sat_sweep(
            cleaned,
            sim_width=sim_width,
            seed=seed,
            max_pairs=max_pairs,
            max_conflicts=max_conflicts,
            size_limit=size_limit,
            delay_model=delay_model,
        )
    return result


class RedundancyEngine:
    """Incremental stuck-at-1 redundancy removal over one persistent CNF.

    An AND fan-in edge whose stuck-at-1 fault is untestable can be
    replaced by constant 1, i.e. the AND collapses onto its other fan-in.
    We prove untestability in the *implication framing*: for the node
    ``v = AND(keep, drop)``, the edge to ``drop`` is redundant iff
    ``keep -> drop`` as circuit functions — the stuck-at-1 difference
    ``keep & !drop`` has no exciting input.  Each candidate is one
    incremental SAT query ``solve([keep, -drop])`` against a single
    Tseitin encoding of the circuit built once up front; the two
    assumption literals select the edge under test, so no clauses are
    ever added or retracted between queries.

    This framing is what keeps the persistent encoding *sound*: an
    accepted drop makes ``v`` functionally identical to ``keep`` (it is a
    pure equivalence, not an observability-don't-care rewrite), so no
    node function ever changes and both the CNF and the simulation
    signatures stay valid for every later query.  The price is that
    don't-care-only redundancies are out of scope — those are exactly the
    ones that would invalidate the incremental encoding.

    Candidate edges come off a fanout-driven worklist: every AND node is
    visited once in topological order, and an accepted drop re-enqueues
    only the fanouts of the collapsed node (their resolved fan-ins
    changed), instead of restarting the scan from node zero.  A bounded
    query returning unknown keeps the edge — timeouts can only cost
    area, never correctness.  SAT counterexamples are harvested into new
    signature columns (batched per :data:`_WITNESS_BATCH`) so each
    testable edge pattern also prefilters its structural neighbours.
    """

    def __init__(
        self,
        aig: AIG,
        max_checks: int = 2000,
        sim_width: int = 512,
        seed: int = 1,
        max_conflicts: int = 300,
        delay_model=None,
        sat_portfolio: PortfolioSpec = None,
    ):
        self.aig = aig
        self.max_checks = max_checks
        self.max_conflicts = max_conflicts
        self.delay_model = delay_model
        self.portfolio = resolve_portfolio(sat_portfolio)
        self._runner: Optional[PortfolioRunner] = None
        #: var -> replacement literal (an equivalence; targets always have
        #: smaller var ids, so chains terminate).
        self.replacement: Dict[int, int] = {}
        self.checks = 0
        # Shared bit-parallel prefilter domain (repro.core.signatures).
        width = max(0, sim_width)
        self._values = value_signatures(
            aig, random_pi_bits(aig.num_pis, width, seed)
        )
        nwords = self._values.shape[1]
        self._valid = np.zeros(nwords, dtype=np.uint64)
        for w in range(nwords):
            bits = min(64, max(0, width - 64 * w))
            self._valid[w] = _FULL if bits == 64 else np.uint64(
                (1 << bits) - 1
            )
        self._witnesses: List[List[bool]] = []
        # Lazy persistent CNF: circuits fully resolved by simulation never
        # pay for an encoding.
        self._enc: Optional[AigCnf] = None
        self._var_map: Dict[int, int] = {}
        # Accepted-drop verdicts, keyed by the (keep, drop) literals'
        # structural fingerprints, live in the result store's
        # ``redundant`` namespace when the process has a persistent
        # store.  Only UNSAT verdicts are stored (an accepted drop is a
        # proved implication — true regardless of the budget that proved
        # it), so a warm hit replays exactly the decision the cold run
        # made; SAT/unknown outcomes are never cached.
        self._lit_fps: Optional[List[int]] = None

    # -- resolution through accepted equivalences ----------------------------

    def _resolve(self, lit: int) -> int:
        var, neg = lit_var(lit), lit_neg(lit)
        while var in self.replacement:
            target = self.replacement[var]
            var, neg = lit_var(target), neg ^ lit_neg(target)
        return lit_notif(2 * var, neg)

    # -- simulation prefilter ------------------------------------------------

    def _lit_words(self, lit: int) -> np.ndarray:
        words = self._values[lit_var(lit)]
        if lit_neg(lit):
            words = words ^ _FULL
        return words

    def _sim_testable(self, keep: int, drop: int) -> bool:
        """Does any simulated pattern excite the fault (keep=1, drop=0)?"""
        diff = self._lit_words(keep) & ~self._lit_words(drop) & self._valid
        return bool(diff.any())

    def _harvest_witness(self, solver: Solver) -> None:
        """Fold a solver's counterexample into the prefilter matrix.

        ``solver`` is whichever solver produced the SAT model — the
        single persistent encoding, or the winning portfolio racer — so
        witnesses from any configuration sharpen the shared prefilter.
        """
        if self.aig.num_pis == 0:
            return
        column = [
            solver.model_value(self._var_map[pi]) or False
            for pi in self.aig.pis
        ]
        self._witnesses.append(column)
        perf.incr("area.redundancy.witnesses")
        if len(self._witnesses) < _WITNESS_BATCH:
            return
        batch = np.array(self._witnesses, dtype=bool).T  # (num_pis, B)
        self._witnesses = []
        extra = value_signatures(self.aig, batch)
        self._values = np.hstack([self._values, extra])
        self._valid = np.concatenate(
            [self._valid, np.full(extra.shape[1], _FULL, dtype=np.uint64)]
        )

    # -- the SAT oracle ------------------------------------------------------

    def _ensure_runner(self) -> PortfolioRunner:
        if self._runner is None:

            def build(config) -> Solver:
                enc = AigCnf(Solver(config))
                # Identical clause streams give every racer the same
                # variable numbering, so one map serves them all.
                self._var_map = enc.encode(self.aig)
                return enc.solver

            self._runner = PortfolioRunner(self.portfolio, build)
            self._runner.solver(0)  # materialize the variable map
        return self._runner

    def _verdict_key(self, keep: int, drop: int):
        if self._lit_fps is None:
            self._lit_fps = var_fingerprints(self.aig)
        return (
            lit_fingerprint(self._lit_fps, keep),
            lit_fingerprint(self._lit_fps, drop),
            self.aig.num_pis,
        )

    def _sat_redundant(self, keep: int, drop: int) -> bool:
        """Bounded proof of ``keep -> drop``; unknown keeps the edge."""
        self.checks += 1
        persistent = store_runtime.is_persistent()
        if persistent:
            key = self._verdict_key(keep, drop)
            ns = store_runtime.get_store().namespace("redundant")
            if ns.contains(key):
                perf.incr("area.redundancy.store_hits")
                return True
        perf.incr("area.redundancy.queries")
        if self.portfolio.mode != "off":
            runner = self._ensure_runner()
            assumptions = [
                AigCnf._sat_lit(self._var_map, keep),
                -AigCnf._sat_lit(self._var_map, drop),
            ]
            start = time.perf_counter()
            result = runner.solve(
                assumptions, baseline_conflicts=self.max_conflicts
            )
            perf.observe("sat.query.redundancy", time.perf_counter() - start)
            if result is True:
                self._harvest_witness(runner.winner)
            elif result is None:
                perf.incr("area.redundancy.unknown")
            if result is False and persistent:
                ns.put(key, True)
            return result is False
        if self._enc is None:
            self._enc = AigCnf()
            self._var_map = self._enc.encode(self.aig)
        start = time.perf_counter()
        result = self._enc.solver.solve(
            [
                self._enc.lit(self._var_map, keep),
                -self._enc.lit(self._var_map, drop),
            ],
            max_conflicts=self.max_conflicts,
        )
        perf.observe("sat.query.redundancy", time.perf_counter() - start)
        if result is True:
            self._harvest_witness(self._enc.solver)
        elif result is None:
            perf.incr("area.redundancy.unknown")
        if result is False and persistent:
            ns.put(key, True)
        return result is False

    # -- the worklist pass ---------------------------------------------------

    def _try_node(self, var: int) -> bool:
        """Try to collapse ``var`` onto one of its resolved fan-ins."""
        f0, f1 = (self._resolve(l) for l in self.aig.fanins(var))
        # Constant and duplicate folds need no oracle at all.
        for keep, drop in ((f0, f1), (f1, f0)):
            if drop == CONST1 or drop == keep:
                self.replacement[var] = keep
                perf.incr("area.redundancy.folds")
                return True
            if drop == CONST0 or drop == lit_not(keep):
                self.replacement[var] = CONST0
                perf.incr("area.redundancy.folds")
                return True
        for keep, drop in ((f0, f1), (f1, f0)):
            if self._sim_testable(keep, drop):
                perf.incr("area.prefilter.hit")
                continue
            perf.incr("area.prefilter.miss")
            if self.checks >= self.max_checks:
                return False  # budget exhausted: keep every further edge
            if self._sat_redundant(keep, drop):
                self.replacement[var] = keep
                perf.incr("area.redundancy.removed")
                return True
        return False

    def run(self) -> AIG:
        """One worklist pass; returns the rebuilt, cleaned AIG."""
        fanouts = fanout_lists(self.aig)
        queue = deque(self.aig.and_vars())
        queued = set(queue)
        while queue:
            var = queue.popleft()
            queued.discard(var)
            if var in self.replacement:
                continue
            if self._try_node(var):
                for fo in fanouts[var]:
                    if fo not in queued and fo not in self.replacement:
                        queue.append(fo)
                        queued.add(fo)
            elif self.checks >= self.max_checks:
                break
        return self._rebuild()

    # -- applying the replacement map ----------------------------------------

    def _rebuild(self) -> AIG:
        """One rebuild applying all accepted drops, under an arrival guard.

        A replacement target always lies in the collapsed node's fan-in
        cone, so under fanout-insensitive models the guard is trivially
        satisfied; under :class:`~repro.timing.LoadAwareDelay` the extra
        load on the surviving fan-in can matter, and the incremental
        timing engine on the rebuilt prefix rejects any drop that would
        worsen the arrival — the same never-worsen guard ``sat_sweep``
        applies to merges.
        """
        aig = self.aig
        if not self.replacement:
            return aig.extract()
        from ..timing import AigTimingEngine

        dest = AIG()
        engine = AigTimingEngine(dest, self.delay_model)
        mapping: Dict[int, int] = {0: CONST0}
        for var, name in zip(aig.pis, aig.pi_names):
            mapping[var] = dest.add_pi(name)

        def mapped(lit: int) -> int:
            return lit_notif(mapping[lit_var(lit)], lit_neg(lit))

        for var in aig.and_vars():
            f0, f1 = aig.fanins(var)
            own = dest.and_(mapped(f0), mapped(f1))
            if var in self.replacement:
                target = mapped(self._resolve(2 * var))
                if engine.arrival(lit_var(target)) <= engine.arrival(
                    lit_var(own)
                ):
                    mapping[var] = target
                    continue
                perf.incr("area.redundancy.arrival_rejected")
            mapping[var] = own
        for po, name in zip(aig.pos, aig.po_names):
            dest.add_po(mapped(po), name)
        return dest.extract()


def remove_redundant_edges(
    aig: AIG,
    max_checks: int = 2000,
    sim_width: int = 512,
    seed: int = 1,
    max_conflicts: int = 300,
    delay_model=None,
    sat_portfolio: PortfolioSpec = None,
) -> AIG:
    """Drop AND edges whose stuck-at-1 fault is untestable.

    One :class:`RedundancyEngine` pass: a persistent incremental CNF of
    the whole circuit answers each candidate edge with a single bounded
    two-assumption SAT query (``max_checks`` queries, ``max_conflicts``
    conflicts each; unknown keeps the edge), after a shared bit-parallel
    simulation prefilter (``sim_width`` patterns, plus harvested SAT
    counterexamples) has discharged the testable majority.  Accepted
    drops are pure node equivalences applied in one final rebuild under a
    never-worsen-arrival guard driven by ``delay_model``.
    """
    return RedundancyEngine(
        aig,
        max_checks=max_checks,
        sim_width=sim_width,
        seed=seed,
        max_conflicts=max_conflicts,
        delay_model=delay_model,
        sat_portfolio=sat_portfolio,
    ).run()


def recover_area(
    aig: AIG,
    effort: str = "medium",
    seed: int = 0,
    delay_model=None,
    sat_portfolio: PortfolioSpec = None,
) -> AIG:
    """The post-reconstruction area-recovery pipeline, by effort level.

    * ``"low"`` — SAT sweeping only (the pre-engine behaviour).
    * ``"medium"`` — SAT sweeping followed by one incremental
      redundancy-removal pass (the optimizer default).
    * ``"high"`` — iterate both passes with enlarged budgets until the
      AND count stops shrinking.

    Every pass preserves the circuit function and never worsens depth or
    completion time under ``delay_model`` (arrival-guarded merges/drops),
    so effort only trades wall-clock for area.
    """
    if effort not in AREA_EFFORTS:
        raise ValueError(
            f"unknown area effort {effort!r}; expected one of {AREA_EFFORTS}"
        )
    with perf.timer("area.recover"):
        current = sat_sweep(aig, seed=seed, delay_model=delay_model)
        if effort == "low":
            return current
        if effort == "medium":
            return remove_redundant_edges(
                current, seed=seed + 1, delay_model=delay_model,
                sat_portfolio=sat_portfolio,
            )
        for _ in range(4):
            before = current.num_ands()
            current = remove_redundant_edges(
                current,
                max_checks=20000,
                sim_width=1024,
                seed=seed + 1,
                max_conflicts=1000,
                delay_model=delay_model,
                sat_portfolio=sat_portfolio,
            )
            current = sat_sweep(
                current,
                max_pairs=20000,
                max_conflicts=1000,
                seed=seed,
                delay_model=delay_model,
            )
            if current.num_ands() >= before:
                break
        return current
