"""Tests for the core AIG structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import (
    AIG,
    CONST0,
    CONST1,
    depth,
    levels,
    lit_neg,
    lit_not,
    lit_var,
    make_lit,
    node_tts,
    po_tts,
)
from repro.tt import TruthTable


def random_aig(seed, n_pis=5, n_nodes=30, n_pos=3):
    import random

    rng = random.Random(seed)
    aig = AIG()
    lits = [aig.add_pi() for _ in range(n_pis)]
    for _ in range(n_nodes):
        a = rng.choice(lits) ^ rng.randint(0, 1)
        b = rng.choice(lits) ^ rng.randint(0, 1)
        lits.append(getattr(aig, rng.choice(["and_", "or_", "xor_"]))(a, b))
    for _ in range(n_pos):
        aig.add_po(rng.choice(lits) ^ rng.randint(0, 1))
    return aig


class TestLiterals:
    def test_encoding(self):
        assert lit_var(make_lit(7, True)) == 7
        assert lit_neg(make_lit(7, True))
        assert lit_not(make_lit(7, True)) == make_lit(7, False)

    def test_constants(self):
        assert CONST1 == lit_not(CONST0)


class TestConstruction:
    def test_constant_folding(self):
        aig = AIG()
        x = aig.add_pi()
        assert aig.and_(x, CONST0) == CONST0
        assert aig.and_(x, CONST1) == x
        assert aig.and_(x, x) == x
        assert aig.and_(x, lit_not(x)) == CONST0
        assert aig.num_ands() == 0

    def test_structural_hashing(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        n1 = aig.and_(a, b)
        n2 = aig.and_(b, a)
        assert n1 == n2
        assert aig.num_ands() == 1

    def test_unknown_literal_rejected(self):
        aig = AIG()
        with pytest.raises(ValueError):
            aig.and_(2, 100)

    def test_derived_ops_semantics(self):
        aig = AIG()
        a, b, c = (aig.add_pi() for _ in range(3))
        aig.add_po(aig.or_(a, b))
        aig.add_po(aig.xor_(a, b))
        aig.add_po(aig.mux_(c, a, b))
        aig.add_po(aig.xnor_(a, b))
        aig.add_po(aig.nand_(a, b))
        aig.add_po(aig.nor_(a, b))
        tts = po_tts(aig)
        va, vb, vc = (TruthTable.var(i, 3) for i in range(3))
        assert tts[0] == va | vb
        assert tts[1] == va ^ vb
        assert tts[2] == (vc & va) | (~vc & vb)
        assert tts[3] == ~(va ^ vb)
        assert tts[4] == ~(va & vb)
        assert tts[5] == ~(va | vb)

    def test_tree_builders(self):
        aig = AIG()
        xs = [aig.add_pi() for _ in range(5)]
        aig.add_po(aig.and_many(xs))
        aig.add_po(aig.or_many(xs))
        aig.add_po(aig.xor_many(xs))
        tts = po_tts(aig)
        acc_and = TruthTable.const(True, 5)
        acc_or = TruthTable.const(False, 5)
        acc_xor = TruthTable.const(False, 5)
        for i in range(5):
            v = TruthTable.var(i, 5)
            acc_and &= v
            acc_or |= v
            acc_xor ^= v
        assert tts == [acc_and, acc_or, acc_xor]

    def test_empty_tree_rejected(self):
        aig = AIG()
        with pytest.raises(ValueError):
            aig.and_many([])


class TestLevels:
    def test_balanced_tree_depth(self):
        aig = AIG()
        xs = [aig.add_pi() for _ in range(8)]
        aig.add_po(aig.and_many(xs))
        assert depth(aig) == 3

    def test_chain_depth(self):
        aig = AIG()
        xs = [aig.add_pi() for _ in range(8)]
        acc = xs[0]
        for x in xs[1:]:
            acc = aig.and_(acc, x)
        aig.add_po(acc)
        assert depth(aig) == 7

    def test_levels_of_pis_zero(self):
        aig = random_aig(0)
        lvl = levels(aig)
        assert all(lvl[pi] == 0 for pi in aig.pis)


class TestExtract:
    @given(st.integers(0, 30))
    @settings(deadline=None, max_examples=15)
    def test_extract_preserves_function(self, seed):
        aig = random_aig(seed)
        copy = aig.extract()
        assert po_tts(copy) == po_tts(aig)
        assert copy.num_ands() <= aig.num_ands()

    def test_extract_drops_dangling(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        aig.and_(a, b)  # dangling
        aig.add_po(aig.or_(a, b))
        assert aig.extract().num_ands() == 1  # or = 1 AND + complement edges

    def test_copy_cone_missing_pi_mapping(self):
        aig = AIG()
        a = aig.add_pi()
        dest = AIG()
        with pytest.raises(KeyError):
            aig.copy_cone(dest, {}, [a])
