"""Pluggable delay models for the unified timing engine.

A :class:`DelayModel` answers two questions about a circuit node: when do
primary inputs arrive, and how long does one gate take.  The engine keeps
the traversal; the model keeps the physics.  Three models ship:

* :class:`UnitDelay` — every PI arrives at 0 and every gate costs one
  level.  This reproduces the paper's logic-level metric bit-for-bit
  (all-integer arithmetic, so ``levels()`` facades stay ``List[int]``).
* :class:`PrescribedArrival` — unit gate delay with per-PI prescribed
  arrival times, the non-uniform regime of Held & Spirkl and
  Brenner & Hermann.  Integer arrivals keep the whole analysis integral.
* :class:`LoadAwareDelay` — gate delay from a reference cell of the 70 nm
  library (:mod:`repro.mapping.library`): intrinsic delay plus the load
  slope times the capacitive load implied by the node's fanout count.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Mapping, Optional, Sequence, Union

Number = Union[int, float]


class DelayModel:
    """Base delay model: uniform zero arrivals, unit gate delay.

    Subclasses override :meth:`pi_arrival` and/or :meth:`gate_delay`.
    Models must be deterministic and stateless with respect to the engine
    (the engine may call them in any order, any number of times).
    """

    #: Short tag used in cache keys and reports.
    name = "unit"

    def pi_arrival(self, index: int, pi_name: str) -> Number:
        """Arrival time of the PI at position ``index`` (named ``pi_name``)."""
        return 0

    def gate_delay(self, fanout: int = 1) -> Number:
        """Delay through one gate driving ``fanout`` sinks."""
        return 1

    def key(self) -> tuple:
        """Hashable identity for cache keys; equal keys == equal model."""
        return (self.name,)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UnitDelay(DelayModel):
    """The paper's logic-level model: PIs at 0, one level per AND node."""


class PrescribedArrival(DelayModel):
    """Unit gate delay with prescribed (non-uniform) PI arrival times.

    ``arrivals`` maps PI names to arrival times; PIs not mentioned default
    to ``default`` (0).  Integer times keep every derived quantity an int,
    which the SPCF dynamic program and the Δ-relaxation loop rely on.
    """

    name = "prescribed"

    def __init__(
        self,
        arrivals: Optional[Mapping[str, Number]] = None,
        default: Number = 0,
    ):
        self.arrivals: Dict[str, Number] = dict(arrivals or {})
        self.default = default

    def pi_arrival(self, index: int, pi_name: str) -> Number:
        return self.arrivals.get(pi_name, self.default)

    def key(self) -> tuple:
        return (
            self.name,
            self.default,
            tuple(sorted(self.arrivals.items())),
        )

    def __repr__(self) -> str:
        return f"PrescribedArrival({self.arrivals!r})"


class LoadAwareDelay(DelayModel):
    """Fanout/load-aware gate delay backed by the standard-cell library.

    Each AND node is costed as the reference cell (default NAND2 — the
    natural AIG gate) driving ``fanout`` pins of its own input capacitance
    plus a fixed wire capacitance.  Arrivals are in picoseconds; prescribed
    PI arrivals (also ps) may be layered on top.
    """

    name = "load"

    def __init__(
        self,
        cell_name: str = "NAND2",
        wire_cap_ff: float = 0.6,
        arrivals: Optional[Mapping[str, Number]] = None,
    ):
        from ..mapping.library import default_library

        self.cell = next(
            c for c in default_library() if c.name == cell_name
        )
        self.wire_cap_ff = wire_cap_ff
        self.arrivals: Dict[str, Number] = dict(arrivals or {})

    def pi_arrival(self, index: int, pi_name: str) -> Number:
        return self.arrivals.get(pi_name, 0.0)

    def gate_delay(self, fanout: int = 1) -> Number:
        load = self.wire_cap_ff + max(fanout, 1) * self.cell.input_cap
        return self.cell.delay(load)

    def key(self) -> tuple:
        return (
            self.name,
            self.cell.name,
            self.wire_cap_ff,
            tuple(sorted(self.arrivals.items())),
        )

    def __repr__(self) -> str:
        return f"LoadAwareDelay(cell={self.cell.name!r})"


# -- arrival-time specification parsing ---------------------------------------


def parse_arrival_spec(spec: str) -> Dict[str, Number]:
    """Parse ``name=t,name=t,...`` into an arrival map.

    Times parse as int when possible (keeping the level model integral),
    else float.  Raises ``ValueError`` on malformed entries.
    """
    arrivals: Dict[str, Number] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, sep, value = entry.partition("=")
        if not sep or not name.strip():
            raise ValueError(
                f"bad arrival entry {entry!r}; expected name=time"
            )
        arrivals[name.strip()] = _parse_time(value.strip())
    return arrivals


def load_arrival_file(path: str) -> Dict[str, Number]:
    """Load a JSON arrival map ``{"pi_name": time, ...}`` from ``path``."""
    with open(path) as fh:
        raw = json.load(fh)
    if not isinstance(raw, dict):
        raise ValueError(f"{path}: arrival file must be a JSON object")
    out: Dict[str, Number] = {}
    for name, value in raw.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"{path}: arrival of {name!r} must be a number")
        if not math.isfinite(value):
            raise ValueError(
                f"{path}: arrival of {name!r} must be finite, got {value!r}"
            )
        out[str(name)] = int(value) if float(value).is_integer() else value
    return out


def _parse_time(text: str) -> Number:
    # A NaN arrival poisons every downstream min/max comparison and an
    # infinite one breaks the integer-level arithmetic, so both are
    # rejected here rather than wherever they first misbehave.
    try:
        value: Number = int(text)
    except ValueError:
        try:
            value = float(text)
        except ValueError:
            raise ValueError(f"bad arrival time {text!r}") from None
    if not math.isfinite(value):
        raise ValueError(f"arrival time must be finite, got {text!r}")
    return value


def resolve_arrivals(
    arrival_times: Optional[Mapping[str, Number]],
) -> Optional[DelayModel]:
    """Arrival map -> delay model (None means unit delay / no override)."""
    if not arrival_times:
        return None
    return PrescribedArrival(arrival_times)
