"""Cone, fanout, and transitive-fanout utilities on AIGs."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from .aig import AIG, lit_var


def fanin_cone_vars(aig: AIG, lits: Iterable[int]) -> Set[int]:
    """All variables in the transitive fan-in of the given literals."""
    seen: Set[int] = set()
    stack = [lit_var(lit) for lit in lits]
    while stack:
        var = stack.pop()
        if var in seen:
            continue
        seen.add(var)
        if aig.is_and(var):
            f0, f1 = aig.fanins(var)
            stack.append(lit_var(f0))
            stack.append(lit_var(f1))
    return seen


def cone_pis(aig: AIG, lits: Iterable[int]) -> List[int]:
    """PI variables in the transitive fan-in, in PI order."""
    cone = fanin_cone_vars(aig, lits)
    return [var for var in aig.pis if var in cone]


def fanout_lists(aig: AIG) -> List[List[int]]:
    """For each variable, the list of AND variables that read it."""
    fanouts: List[List[int]] = [[] for _ in range(aig.num_vars)]
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        fanouts[lit_var(f0)].append(var)
        if lit_var(f1) != lit_var(f0):
            fanouts[lit_var(f1)].append(var)
    return fanouts


def fanout_counts(aig: AIG) -> List[int]:
    """Reference count of each variable (PO references included)."""
    counts = [0] * aig.num_vars
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        counts[lit_var(f0)] += 1
        counts[lit_var(f1)] += 1
    for po in aig.pos:
        counts[lit_var(po)] += 1
    return counts


def tfo_vars(aig: AIG, roots: Iterable[int]) -> Set[int]:
    """Transitive fan-out variable set of the given root variables."""
    fanouts = fanout_lists(aig)
    seen: Set[int] = set()
    stack = list(roots)
    while stack:
        var = stack.pop()
        if var in seen:
            continue
        seen.add(var)
        stack.extend(fanouts[var])
    return seen


def mffc_vars(aig: AIG, root: int) -> Set[int]:
    """Maximum fanout-free cone of ``root``: nodes used only inside it."""
    counts = fanout_counts(aig)
    mffc: Set[int] = set()
    stack = [root]
    while stack:
        var = stack.pop()
        if var in mffc or not aig.is_and(var):
            continue
        mffc.add(var)
        f0, f1 = aig.fanins(var)
        for fv in (lit_var(f0), lit_var(f1)):
            # A fanin joins the MFFC when all its references are inside.
            if aig.is_and(fv):
                outside = counts[fv] - sum(
                    1
                    for u in mffc
                    if fv in (lit_var(aig.fanins(u)[0]), lit_var(aig.fanins(u)[1]))
                )
                if outside <= 0:
                    stack.append(fv)
    return mffc
