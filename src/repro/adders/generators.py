"""Adder generators (the paper's case study, Sec. 4, and Table 1 workload).

All generators return an :class:`~repro.aig.AIG` with PIs ordered
``a0..a(n-1), b0..b(n-1), cin`` and POs ``s0..s(n-1), cout``.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..aig import AIG, lit_not


def _adder_inputs(n: int, with_cin: bool) -> Tuple[AIG, List[int], List[int], int]:
    aig = AIG()
    a = [aig.add_pi(f"a{i}") for i in range(n)]
    b = [aig.add_pi(f"b{i}") for i in range(n)]
    cin = aig.add_pi("cin") if with_cin else 0
    return aig, a, b, cin


def ripple_carry_adder(n: int, with_cin: bool = True) -> AIG:
    """Linear cascade of full adders: O(n) carry delay (the paper's input)."""
    aig, a, b, carry = _adder_inputs(n, with_cin)
    for i in range(n):
        axb = aig.xor_(a[i], b[i])
        s = aig.xor_(axb, carry)
        carry = aig.or_(aig.and_(a[i], b[i]), aig.and_(axb, carry))
        aig.add_po(s, f"s{i}")
    aig.add_po(carry, "cout")
    return aig


def carry_lookahead_adder(n: int, block: int = 4, with_cin: bool = True) -> AIG:
    """Single-level blocked CLA: flat lookahead inside each block."""
    aig, a, b, cin = _adder_inputs(n, with_cin)
    g = [aig.and_(a[i], b[i]) for i in range(n)]
    p = [aig.or_(a[i], b[i]) for i in range(n)]
    carries = [cin]
    for i in range(n):
        # c_{i+1} = g_i + p_i g_{i-1} + ... + p_i..p_j g_j + p_i..p_0 c_in,
        # flattened within the block for O(log block) depth.
        terms = [g[i]]
        prefix = p[i]
        j = i - 1
        start = (i // block) * block
        while j >= start:
            terms.append(aig.and_(prefix, g[j]))
            prefix = aig.and_(prefix, p[j])
            j -= 1
        terms.append(aig.and_(prefix, carries[start]))
        carries.append(aig.or_many(terms))
    for i in range(n):
        axb = aig.xor_(a[i], b[i])
        aig.add_po(aig.xor_(axb, carries[i]), f"s{i}")
    aig.add_po(carries[n], "cout")
    return aig


def carry_select_adder(n: int, block: int = 4, with_cin: bool = True) -> AIG:
    """Blocks computed for both carry-in values, selected by the real carry."""
    aig, a, b, cin = _adder_inputs(n, with_cin)
    carry = cin
    for start in range(0, n, block):
        end = min(start + block, n)
        sums = {}
        carries = {}
        for assumed in (0, 1):
            c = lit_not(0) if assumed else 0  # constant literal
            block_sums = []
            for i in range(start, end):
                axb = aig.xor_(a[i], b[i])
                block_sums.append(aig.xor_(axb, c))
                c = aig.or_(aig.and_(a[i], b[i]), aig.and_(axb, c))
            sums[assumed] = block_sums
            carries[assumed] = c
        for offset, i in enumerate(range(start, end)):
            aig.add_po(
                aig.mux_(carry, sums[1][offset], sums[0][offset]), f"s{i}"
            )
        carry = aig.mux_(carry, carries[1], carries[0])
    aig.add_po(carry, "cout")
    return aig


def carry_skip_adder(n: int, block: int = 4, with_cin: bool = True) -> AIG:
    """Ripple blocks with a propagate-bypass path around each block."""
    aig, a, b, cin = _adder_inputs(n, with_cin)
    carry = cin
    sums = []
    for start in range(0, n, block):
        end = min(start + block, n)
        block_in = carry
        c = block_in
        propagate_all = lit_not(0)
        for i in range(start, end):
            axb = aig.xor_(a[i], b[i])
            sums.append(aig.xor_(axb, c))
            c = aig.or_(aig.and_(a[i], b[i]), aig.and_(axb, c))
            # The skip condition must use XOR-propagate: with OR-propagate a
            # generated carry (a=b=1) would be bypassed incorrectly.
            propagate_all = aig.and_(propagate_all, axb)
        carry = aig.mux_(propagate_all, block_in, c)
    for i, s in enumerate(sums):
        aig.add_po(s, f"s{i}")
    aig.add_po(carry, "cout")
    return aig


def _prefix_adder(n: int, with_cin: bool, combine_pairs) -> AIG:
    """Shared skeleton for parallel-prefix adders.

    ``combine_pairs(n)`` yields rounds of ``(i, j)`` pairs meaning
    "combine prefix at i with prefix at j" ((g,p) o operator).
    """
    aig, a, b, cin = _adder_inputs(n, with_cin)
    g = [aig.and_(a[i], b[i]) for i in range(n)]
    p = [aig.xor_(a[i], b[i]) for i in range(n)]
    # Prefix (G, P) pairs; index i holds the prefix over bits [?, i].
    bigg = list(g)
    bigp = list(p)
    for rounds in combine_pairs(n):
        new_g = list(bigg)
        new_p = list(bigp)
        for i, j in rounds:
            new_g[i] = aig.or_(bigg[i], aig.and_(bigp[i], bigg[j]))
            new_p[i] = aig.and_(bigp[i], bigp[j])
        bigg, bigp = new_g, new_p
    carries = [cin]
    for i in range(n):
        carries.append(aig.or_(bigg[i], aig.and_(bigp[i], cin)))
    for i in range(n):
        aig.add_po(aig.xor_(p[i], carries[i]), f"s{i}")
    aig.add_po(carries[n], "cout")
    return aig


def kogge_stone_adder(n: int, with_cin: bool = True) -> AIG:
    """Minimal-depth, maximal-wiring parallel-prefix adder."""

    def rounds(n: int):
        dist = 1
        while dist < n:
            yield [(i, i - dist) for i in range(dist, n)]
            dist *= 2

    return _prefix_adder(n, with_cin, rounds)


def sklansky_adder(n: int, with_cin: bool = True) -> AIG:
    """Divide-and-conquer prefix tree (minimal depth, high fanout)."""

    def rounds(n: int):
        dist = 1
        while dist < n:
            pairs = []
            for start in range(dist, n, 2 * dist):
                for i in range(start, min(start + dist, n)):
                    pairs.append((i, start - 1))
            yield pairs
            dist *= 2

    return _prefix_adder(n, with_cin, rounds)


def brent_kung_adder(n: int, with_cin: bool = True) -> AIG:
    """Area-efficient prefix tree (2*log2(n) - 1 prefix levels)."""

    def rounds(n: int):
        # Up-sweep.
        dist = 1
        while dist < n:
            yield [
                (i, i - dist)
                for i in range(2 * dist - 1, n, 2 * dist)
            ]
            dist *= 2
        # Down-sweep.
        dist //= 4 if dist >= 4 else 1
        dist = dist if dist >= 1 else 1
        d = dist
        while d >= 1:
            yield [
                (i + d, i) for i in range(2 * d - 1, n - d, 2 * d)
            ]
            d //= 2

    return _prefix_adder(n, with_cin, rounds)


def optimal_cla_levels(n: int) -> int:
    """Theoretical AIG levels to generate cout in a parallel-prefix CLA.

    One level for the (g, p) pairs, ``ceil(log2 n)`` prefix stages of two
    levels each (AND-OR), and one level folding in the carry-in — matching
    Table 1's "Optimum" column (5 for n=2, then 7, 9, 11).
    """
    if n <= 1:
        return 3
    return 2 * math.ceil(math.log2(n)) + 3
