"""Canonical forms of small truth tables.

Two canonicalizations are provided:

* :func:`p_canonical` — canonical under input *permutation* only; used by the
  technology mapper to match cut functions against library-cell functions
  whose pins are freely assignable but whose polarities are fixed.
* :func:`npn_canonical` — canonical under input negation, input permutation
  and output negation (NPN); used by cut rewriting to cache synthesized
  replacement structures per function class.

Both are exhaustive over the permutation group, which is fine for the ≤ 5
variables these are used with (5! = 120 permutations, x 2^6 polarities for
NPN on 5 vars = 7680 variants).
"""

from __future__ import annotations

from itertools import permutations
from typing import List, Tuple

from .truthtable import TruthTable


def p_canonical(tt: TruthTable) -> Tuple[int, Tuple[int, ...]]:
    """Smallest table bits over all input permutations.

    Returns ``(bits, perm)`` such that ``tt.permute(perm).bits == bits``.
    """
    best_bits = None
    best_perm: Tuple[int, ...] = tuple(range(tt.nvars))
    for perm in permutations(range(tt.nvars)):
        bits = tt.permute(perm).bits
        if best_bits is None or bits < best_bits:
            best_bits = bits
            best_perm = perm
    assert best_bits is not None
    return best_bits, best_perm


class NPNTransform:
    """Record of the transform that maps a function to its NPN class.

    ``canonical = output_neg XOR f(x[perm[i]] XOR input_neg[i])`` — i.e. apply
    input flips, then the permutation, then the output flip.
    """

    __slots__ = ("perm", "input_neg", "output_neg")

    def __init__(self, perm: Tuple[int, ...], input_neg: int, output_neg: bool):
        self.perm = perm
        self.input_neg = input_neg
        self.output_neg = output_neg

    def apply(self, tt: TruthTable) -> TruthTable:
        """Apply this transform to a truth table."""
        out = tt
        for i in range(tt.nvars):
            if (self.input_neg >> i) & 1:
                out = out.flip(i)
        out = out.permute(self.perm)
        if self.output_neg:
            out = ~out
        return out

    def __repr__(self) -> str:
        return (
            f"NPNTransform(perm={self.perm}, input_neg={self.input_neg:b}, "
            f"output_neg={self.output_neg})"
        )


def npn_canonical(tt: TruthTable) -> Tuple[int, NPNTransform]:
    """Smallest table bits over the NPN group of the function.

    Returns ``(bits, transform)`` with ``transform.apply(tt).bits == bits``.
    Exhaustive; intended for nvars <= 4 (the rewriting cut size).
    """
    best_bits = None
    best_tf = NPNTransform(tuple(range(tt.nvars)), 0, False)
    for input_neg in range(1 << tt.nvars):
        flipped = tt
        for i in range(tt.nvars):
            if (input_neg >> i) & 1:
                flipped = flipped.flip(i)
        for perm in permutations(range(tt.nvars)):
            permuted = flipped.permute(perm)
            for output_neg in (False, True):
                bits = (~permuted).bits if output_neg else permuted.bits
                if best_bits is None or bits < best_bits:
                    best_bits = bits
                    best_tf = NPNTransform(perm, input_neg, output_neg)
    assert best_bits is not None
    return best_bits, best_tf


def all_input_orders(n: int) -> List[Tuple[int, ...]]:
    """All permutations of ``range(n)`` (convenience for matching loops)."""
    return list(permutations(range(n)))
