"""Candidate-outcome dataset for the learned lookahead ranker.

Under ``--rank log`` the optimizer records one row per candidate whose
accept/reject verdict was determined during a round window: the cheap
per-candidate features (computed parent-side from static timing and the
bit-parallel signature layer, so serial and parallel runs log identical
rows) plus the outcome.  Rows are canonical JSON lines — ``sort_keys``
with compact separators — so the dataset itself is byte-deterministic
for a fixed (circuit, seed, config) and diffs cleanly across runs.

This module is dependency-free (stdlib only); the feature *computation*
lives in :mod:`repro.rank.features`.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

FEATURE_NAMES = (
    "cone_ands",
    "support",
    "po_arrival",
    "depth_slack",
    "sig_gap",
    "walk_full",
    "reject_streak",
)
"""Feature vector layout, in order.  ``cone_ands``/``support`` are the
candidate cone's AND count and PI support width; ``po_arrival`` /
``depth_slack`` locate the output against the circuit's critical time;
``sig_gap`` is the static-arrival vs. simulated floating-mode
arrival-bound gap (large gap = mostly-unsensitizable critical paths);
``walk_full`` flags the ``full`` walk strategy; ``reject_streak`` counts
this cone's consecutive rejections within the current optimize call."""


def encode_row(row: Dict) -> str:
    """Canonical one-line JSON encoding of a dataset row."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def decode_row(line: str) -> Dict:
    return json.loads(line)


class RankLogger:
    """Accumulates candidate rows, optionally appending them to a file.

    With ``path=None`` rows are only kept in memory (``rows``), which is
    what the determinism tests and the fuzz invariant consume; with a
    path every row is also appended as one JSON line, flushed per row so
    a crashed run keeps its data.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.rows: List[Dict] = []
        self._fh = None

    def log(self, row: Dict) -> None:
        self.rows.append(row)
        if self.path is not None:
            if self._fh is None:
                self._fh = open(self.path, "a")
            self._fh.write(encode_row(row) + "\n")
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __len__(self) -> int:
        return len(self.rows)

    def __enter__(self) -> "RankLogger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def load_dataset(paths: Iterable[str]) -> List[Dict]:
    """Read rows from one or more JSONL dataset files, in file order."""
    rows: List[Dict] = []
    for path in paths:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    rows.append(decode_row(line))
    return rows
