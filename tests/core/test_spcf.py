"""Tests for SPCF computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import ripple_carry_adder
from repro.aig import AIG, depth, levels, lit_var, random_patterns
from repro.core import (
    Spcf,
    pack_signature,
    spcf_exact_tt,
    spcf_overapprox_tt,
    spcf_signature,
    timed_simulation,
    unpack_patterns,
)
from repro.tt import TruthTable

from ..aig.test_aig import random_aig


class TestExactSpcf:
    def test_and_chain(self):
        # y = x0 & x1 & ... in a chain: the full-length path through x0 is
        # sensitized iff all the other inputs are 1.
        aig = AIG()
        xs = [aig.add_pi() for _ in range(4)]
        acc = xs[0]
        for x in xs[1:]:
            acc = aig.and_(acc, x)
        aig.add_po(acc)
        d = depth(aig)  # 3
        spcf = spcf_exact_tt(aig, 0, d)
        v = [TruthTable.var(i, 4) for i in range(4)]
        # Two length-3 paths exist: from x0 (sides x1,x2,x3 = 1) and from
        # x1 (sides x0,x2,x3 = 1).
        assert spcf == (v[1] & v[2] & v[3]) | (v[0] & v[2] & v[3])

    def test_delta_zero_is_tautology(self):
        aig = random_aig(0, n_pis=4, n_nodes=10, n_pos=1)
        assert spcf_exact_tt(aig, 0, 0).is_const1

    def test_delta_above_depth_empty(self):
        aig = random_aig(1, n_pis=4, n_nodes=10, n_pos=1)
        d = levels(aig)[lit_var(aig.pos[0])]
        assert spcf_exact_tt(aig, 0, d + 1).is_const0

    def test_adder_carry_chain(self):
        # Full-length carry propagation requires every propagate bit set:
        # a_i XOR b_i for all i must be 1 in every SPCF minterm.
        n = 3
        aig = ripple_carry_adder(n)
        cout_po = n  # po index of cout
        d = levels(aig)[lit_var(aig.pos[cout_po])]
        spcf = spcf_exact_tt(aig, cout_po, d)
        assert not spcf.is_const0
        nv = aig.num_pis
        for m in spcf.minterms():
            a = [(m >> i) & 1 for i in range(n)]
            b = [(m >> (n + i)) & 1 for i in range(n)]
            # The longest paths launch inside slice 0 and must propagate
            # through every later slice: a_i != b_i for i >= 1.
            assert all(a[i] != b[i] for i in range(1, n)), (
                "SPCF minterm does not propagate through later bit slices"
            )

    @given(st.integers(0, 20))
    @settings(deadline=None, max_examples=10)
    def test_monotone_in_delta(self, seed):
        aig = random_aig(seed, n_pis=4, n_nodes=20, n_pos=1)
        d = levels(aig)[lit_var(aig.pos[0])]
        prev = None
        for delta in range(d, 0, -1):
            cur = spcf_exact_tt(aig, 0, delta)
            if prev is not None:
                assert prev.implies(cur)  # longer requirement -> fewer minterms
            prev = cur


class TestOverapprox:
    @given(st.integers(0, 30))
    @settings(deadline=None, max_examples=15)
    def test_contains_exact(self, seed):
        aig = random_aig(seed, n_pis=5, n_nodes=25, n_pos=2)
        for po in range(aig.num_pos):
            d = levels(aig)[lit_var(aig.pos[po])]
            if d == 0:
                continue
            exact = spcf_exact_tt(aig, po, d)
            over = spcf_overapprox_tt(aig, po, d)
            assert exact.implies(over)


class TestTimedSimulation:
    def test_controlled_and_is_fast(self):
        # A controlling 0 at one AND input masks a late other input.
        aig = AIG()
        xs = [aig.add_pi() for _ in range(4)]
        late = aig.and_(aig.and_(xs[0], xs[1]), xs[2])
        out = aig.and_(late, xs[3])
        aig.add_po(out)
        bits = np.array([[1], [1], [1], [0]], dtype=bool)
        values, arrivals = timed_simulation(aig, bits)
        assert not values[lit_var(out)][0]
        assert arrivals[lit_var(out)][0] == 1  # killed directly by x3=0

    def test_uncontrolled_and_is_slow(self):
        aig = AIG()
        xs = [aig.add_pi() for _ in range(4)]
        late = aig.and_(aig.and_(xs[0], xs[1]), xs[2])
        out = aig.and_(late, xs[3])
        aig.add_po(out)
        bits = np.array([[1], [1], [1], [1]], dtype=bool)
        _values, arrivals = timed_simulation(aig, bits)
        assert arrivals[lit_var(out)][0] == 3

    def test_pack_unpack_roundtrip(self):
        words = [0b1011, 0b0110]
        bits = unpack_patterns(words, 4)
        assert bits.shape == (2, 4)
        assert pack_signature(bits[0]) == 0b1011
        assert pack_signature(bits[1]) == 0b0110

    def test_signature_consistent_with_exact_on_propagating_patterns(self):
        # Floating-mode arrival == static length on the and-chain circuit.
        aig = AIG()
        xs = [aig.add_pi() for _ in range(4)]
        acc = xs[0]
        for x in xs[1:]:
            acc = aig.and_(acc, x)
        aig.add_po(acc)
        width = 16
        words = random_patterns(4, width, 3)
        bits = unpack_patterns(words, width)
        sig = spcf_signature(aig, 0, 3, bits)
        exact = spcf_exact_tt(aig, 0, 3)
        for p in range(width):
            m = sum(
                (1 << i) for i in range(4) if bits[i][p]
            )
            assert bool((sig >> p) & 1) == exact.value(m)


class TestSpcfContainer:
    def test_tt_mode(self):
        s = Spcf("tt", tt=TruthTable.var(0, 2))
        assert s.count == 2 and not s.is_empty()

    def test_sim_mode(self):
        s = Spcf("sim", signature=0b101)
        assert s.count == 2

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            Spcf("magic")
        with pytest.raises(ValueError):
            Spcf("tt")
