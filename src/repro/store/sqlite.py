"""Persistent SQLite result store (WAL mode, schema-versioned).

One database file holds every namespace as rows of a single ``entries``
table keyed by ``(ns, key)``; the key is the canonical text encoding of
:func:`repro.store.serialize.encode_key` and the value a versioned codec
payload.  Design points:

* **WAL journaling** — readers never block the (single) writer and vice
  versa, which is exactly the daemon-shaped access pattern the store is
  built for: many concurrent warm readers, occasional writers.  Multiple
  writers are *safe* (SQLite serializes them through the write lock and a
  generous busy timeout) just not fast; a loaded deployment should keep
  one writer per namespace.
* **Thread safety** — the connection is opened with
  ``check_same_thread=False`` so daemon handler/runner threads can share
  one store, and a per-store :class:`threading.RLock` serializes every
  use of the connection (``sqlite3`` serializes individual statements,
  but our execute/fetch and error/rebuild sequences span several calls
  and would otherwise interleave cursor state between threads).
* **Schema versioning** — ``meta`` records the schema and payload-codec
  versions this file was written with.  A mismatch on open wipes the
  tables and starts cold: a stale format is self-invalidating, never
  misread.
* **Corruption = cold start, never a crash** — a file that does not
  parse as a database (truncated, garbage, wrong format) is deleted and
  rebuilt; a row that fails payload decoding reads as a miss.  If the
  rebuild itself keeps failing (e.g. the parent directory becomes
  unwritable mid-run), the store *degrades* after
  :data:`MAX_REBUILD_ATTEMPTS` consecutive failures instead of
  propagating: reads return ``MISSING``, writes are dropped, and the
  ``store.degraded`` counter records the transition.  Losing a cache is
  always acceptable; serving a wrong payload or taking the optimizer
  down is not.  Only *construction* of a store over an unusable path
  raises — that is a configuration error the caller must see (and
  :func:`repro.store.runtime.configure` relies on it to leave the
  previous store installed).
* **Fork safety** — SQLite connections must not cross ``fork()``.  Every
  operation checks the owning PID and transparently reopens in a child
  process (the parent's connection is dropped unclosed there; closing it
  from the child would corrupt the parent's file descriptors).

Latency of disk hits is observed in the ``store.load`` histogram so
``--profile`` answers "is the warm path actually fast".
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from typing import Any, Dict, Optional

from .. import perf
from .base import MISSING, ResultStore
from .serialize import (
    PAYLOAD_VERSION,
    StoreDecodeError,
    dumps,
    encode_key,
    key_fingerprint,
    loads,
)

SCHEMA_VERSION = 1
"""Bump on any table-layout change; old files then rebuild cold."""

BUSY_TIMEOUT_MS = 10_000
"""How long a writer waits on the database lock before erroring."""

MAX_REBUILD_ATTEMPTS = 3
"""Consecutive failed cold rebuilds before the store degrades to a
read-as-miss / drop-writes stub (see the module docstring)."""


class SqliteStore(ResultStore):
    """Durable result store over one SQLite file."""

    persistent = True

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn: Optional[sqlite3.Connection] = None
        self._pid = -1
        # RLock: the op -> error -> _rebuild path re-enters with the lock
        # already held.
        self._lock = threading.RLock()
        self._rebuild_failures = 0
        self._degraded = False
        self._connect(initial=True)

    # -- connection & schema lifecycle -------------------------------------

    def _connect(self, initial: bool = False) -> None:
        """(Re)open the database; ``initial`` raises on an unusable path."""
        self._pid = os.getpid()
        parent = os.path.dirname(os.path.abspath(self.path))
        try:
            os.makedirs(parent, exist_ok=True)
        except OSError:
            if initial:
                raise  # unusable path at construction: surface it
            self._note_rebuild_failure()
            return
        try:
            self._conn = self._open()
            self._rebuild_failures = 0
        except sqlite3.Error:
            # Unreadable database: rebuild cold rather than crash.
            self._rebuild(initial=initial)

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path,
            timeout=BUSY_TIMEOUT_MS / 1000.0,
            isolation_level=None,  # autocommit; puts are single statements
            check_same_thread=False,
        )
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " ns TEXT NOT NULL,"
                " key TEXT NOT NULL,"
                " fp TEXT NOT NULL,"
                " value BLOB NOT NULL,"
                " PRIMARY KEY (ns, key))"
            )
            conn.execute(
                "CREATE INDEX IF NOT EXISTS entries_fp ON entries (ns, fp)"
            )
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'version'"
            ).fetchone()
            version = f"{SCHEMA_VERSION}.{PAYLOAD_VERSION}"
            if row is None:
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES ('version', ?)",
                    (version,),
                )
            elif row[0] != version:
                # Foreign schema or payload format: self-invalidate.
                perf.incr("store.schema_invalidations")
                conn.execute("DELETE FROM entries")
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES ('version', ?)",
                    (version,),
                )
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    def _rebuild(self, initial: bool = False) -> None:
        """Delete the damaged file (and WAL sidecars) and start cold.

        Never raises mid-run: a rebuild whose fresh ``_open`` fails counts
        toward :data:`MAX_REBUILD_ATTEMPTS`, after which the store
        degrades (reads miss, writes drop) rather than crash the caller.
        ``initial`` (construction) re-raises instead — an unusable path is
        a configuration error, not runtime damage.
        """
        with self._lock:
            if self._degraded:
                return
            perf.incr("store.rebuilds")
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.remove(self.path + suffix)
                except OSError:
                    pass
            try:
                self._conn = self._open()
                self._rebuild_failures = 0
            except (sqlite3.Error, OSError):
                if initial:
                    raise
                self._note_rebuild_failure()

    def _note_rebuild_failure(self) -> None:
        self._rebuild_failures += 1
        if (
            self._rebuild_failures >= MAX_REBUILD_ATTEMPTS
            and not self._degraded
        ):
            self._degraded = True
            perf.incr("store.degraded")

    @property
    def degraded(self) -> bool:
        """Whether the store gave up rebuilding and now drops all traffic."""
        return self._degraded

    def _db(self) -> Optional[sqlite3.Connection]:
        """The live connection, or ``None`` when the store is degraded."""
        if self._degraded:
            return None
        if self._pid != os.getpid():
            # Forked child: the inherited connection belongs to the
            # parent.  Drop the reference without closing and reopen.
            self._conn = None
            self._connect()
        elif self._conn is None:
            self._connect()
        return self._conn

    # -- the store protocol -------------------------------------------------

    def get(self, ns: str, key: Any) -> Any:
        start = time.perf_counter()
        with self._lock:
            try:
                conn = self._db()
                if conn is None:
                    perf.incr("store.degraded.drops")
                    return MISSING
                row = conn.execute(
                    "SELECT value FROM entries WHERE ns = ? AND key = ?",
                    (ns, encode_key(key)),
                ).fetchone()
            except (sqlite3.Error, OSError):
                self._rebuild()
                return MISSING
            finally:
                perf.observe("store.load", time.perf_counter() - start)
        if row is None:
            return MISSING
        try:
            return loads(row[0])
        except StoreDecodeError:
            perf.incr("store.decode_errors")
            return MISSING

    def put(self, ns: str, key: Any, value: Any) -> None:
        payload = dumps(value)  # encode before touching the DB
        with self._lock:
            try:
                conn = self._db()
                if conn is None:
                    perf.incr("store.degraded.drops")
                    return
                conn.execute(
                    "INSERT OR REPLACE INTO entries VALUES (?, ?, ?, ?)",
                    (ns, encode_key(key), str(key_fingerprint(key)), payload),
                )
            except (sqlite3.Error, OSError):
                # A failed write loses one memo entry, nothing else.
                self._rebuild()

    def invalidate(
        self, ns: Optional[str] = None, fingerprint: Optional[int] = None
    ) -> int:
        clauses, params = [], []
        if ns is not None:
            clauses.append("ns = ?")
            params.append(ns)
        if fingerprint is not None:
            clauses.append("fp = ?")
            params.append(str(fingerprint))
        sql = "DELETE FROM entries"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        with self._lock:
            try:
                conn = self._db()
                if conn is None:
                    perf.incr("store.degraded.drops")
                    return 0
                return conn.execute(sql, params).rowcount
            except (sqlite3.Error, OSError):
                self._rebuild()
                return 0

    def stats(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            try:
                conn = self._db()
                if conn is None:
                    perf.incr("store.degraded.drops")
                    return {}
                rows = conn.execute(
                    "SELECT ns, COUNT(*) FROM entries GROUP BY ns"
                ).fetchall()
            except (sqlite3.Error, OSError):
                self._rebuild()
                return {}
        return {ns: {"entries": count} for ns, count in rows}

    def file_size(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def close(self) -> None:
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
            self._conn = None

    def __repr__(self) -> str:
        return f"SqliteStore({self.path!r})"
