"""Differential fuzzing and equivalence guardrails.

The adversarial correctness gate over the whole flow: seeded random
circuits and configurations drive every public entry point — the
optimizer, the flow, serial vs. parallel workers, warm vs. cold caches,
the interchange formats, and the three timing engines — and a registry
of invariants checks the results.  Failures are ddmin-shrunk to minimal
reproducing circuits and recorded as replayable regression artifacts.

Entry points: :func:`fuzz` (the driver; also ``repro fuzz`` on the CLI),
:data:`INVARIANTS` (the checks), :func:`shrink_aig` (the shrinker), and
:func:`replay_artifact` (the regression harness).
"""

from .invariants import (
    EXPENSIVE,
    INVARIANTS,
    Case,
    run_invariant,
)
from .random_circuits import random_aig, random_arrival_map, random_config
from .shrink import rebuild_without, restrict_pos, shrink_aig
from .fuzz import (
    FuzzFailure,
    FuzzReport,
    dump_aig,
    fuzz,
    load_artifact,
    make_case,
    replay_artifact,
    write_artifact,
)

__all__ = [
    "EXPENSIVE",
    "INVARIANTS",
    "Case",
    "run_invariant",
    "random_aig",
    "random_arrival_map",
    "random_config",
    "rebuild_without",
    "restrict_pos",
    "shrink_aig",
    "FuzzFailure",
    "FuzzReport",
    "dump_aig",
    "fuzz",
    "load_artifact",
    "make_case",
    "replay_artifact",
    "write_artifact",
]
