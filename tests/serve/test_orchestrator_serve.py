"""Serve-side orchestrator behavior: effort-knob configs, pool_limit LRU
eviction, and concurrent mixed-config clients answering bit-identically
to local runs.

The bench orchestrator ships Table 2's size-scaled effort tiers to the
daemon as explicit job options; these tests pin the daemon-side half of
that contract.
"""

from __future__ import annotations

import io
import threading

import pytest

from repro import perf
from repro.adders import ripple_carry_adder
from repro.aig import write_aag
from repro.core.flow import (
    execute_optimize_job,
    job_config_key,
    normalize_job_config,
)
from repro.serve import ReproDaemon, ServeClient
from repro.store import runtime as store_runtime


@pytest.fixture(autouse=True)
def _isolated_runtime():
    store_runtime.reset()
    perf.reset()
    yield
    store_runtime.reset()


def _rca_text(width: int = 2) -> str:
    buf = io.StringIO()
    write_aag(ripple_carry_adder(width), buf)
    return buf.getvalue()


def _local_answer(width: int, options: dict) -> str:
    config = normalize_job_config(options)
    out = execute_optimize_job(
        ripple_carry_adder(width), config, workers=1
    )
    buf = io.StringIO()
    write_aag(out, buf)
    return buf.getvalue()


class TestPoolLimitEviction:
    def test_many_distinct_configs_keep_pool_bounded(self, tmp_path):
        """Each distinct effort config warms its own pooled optimizer;
        pool_limit LRU-evicts idle ones instead of growing forever."""
        daemon = ReproDaemon(
            store=None,
            workers=1,
            pool_limit=2,
            job_timeout=120.0,
            endpoint_file=str(tmp_path / "d.serve.json"),
        )
        daemon.start()
        try:
            client = ServeClient(daemon.host, daemon.port)
            text = _rca_text()
            keys = set()
            for sim_width in (64, 128, 256, 512, 1024):
                options = {
                    "flow": "lookahead-only",
                    "max_rounds": 1,
                    "sim_width": sim_width,
                }
                result = client.submit(text, options=options, timeout=120)
                assert result["depth"] >= 1
                keys.add(job_config_key(normalize_job_config(options)))
            assert len(keys) == 5  # genuinely distinct configs
            with daemon._pool_lock:
                assert 0 < len(daemon._pool) <= 2
        finally:
            daemon.stop()

    def test_busy_entries_survive_eviction_pressure(self, tmp_path):
        """_evict_one skips checked-out optimizers: over-budget beats
        closing an optimizer mid-job (covered via direct checkout)."""
        daemon = ReproDaemon(
            store=None,
            workers=1,
            pool_limit=1,
            endpoint_file=str(tmp_path / "d.serve.json"),
        )
        daemon.start()
        try:
            from repro.serve.daemon import Job

            job_a = Job(1, normalize_job_config(
                {"flow": "lookahead-only", "max_rounds": 1}
            ), ripple_carry_adder(2), 60.0, False)
            job_b = Job(2, normalize_job_config(
                {"flow": "lookahead-only", "max_rounds": 2}
            ), ripple_carry_adder(2), 60.0, False)
            entry_a = daemon._checkout(job_a)  # busy (lock held)
            entry_b = daemon._checkout(job_b)  # over budget, still granted
            with daemon._pool_lock:
                assert len(daemon._pool) >= 1
            daemon._checkin(entry_b)
            daemon._checkin(entry_a)
        finally:
            daemon.stop()


class TestConcurrentMixedConfigs:
    def test_two_clients_mixed_configs_bit_identical_to_local(
        self, tmp_path
    ):
        """Concurrent submits with different effort configs each answer
        exactly what a local run of that config produces."""
        options_a = {"flow": "lookahead-only", "max_rounds": 1,
                     "sim_width": 256}
        options_b = {"flow": "lookahead-only", "max_rounds": 2,
                     "walk_modes": ["target"]}
        key_a = job_config_key(normalize_job_config(options_a))
        key_b = job_config_key(normalize_job_config(options_b))
        assert key_a != key_b
        local = {
            "a": _local_answer(2, options_a),
            "b": _local_answer(2, options_b),
        }
        daemon = ReproDaemon(
            store=str(tmp_path / "store.db"),
            workers=1,
            runners=2,
            job_timeout=120.0,
            endpoint_file=str(tmp_path / "d.serve.json"),
        )
        daemon.start()
        try:
            text = _rca_text()
            results = {}
            errors = []

            def submit(tag, options):
                try:
                    client = ServeClient(daemon.host, daemon.port)
                    results[tag] = [
                        client.submit(text, options=options, timeout=120)
                        for _ in range(2)
                    ]
                except Exception as exc:  # surfaced after join
                    errors.append((tag, exc))

            threads = [
                threading.Thread(target=submit, args=("a", options_a)),
                threading.Thread(target=submit, args=("b", options_b)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            assert not errors, errors
            for tag in ("a", "b"):
                for result in results[tag]:
                    assert result["circuit"] == local[tag], (
                        f"served config {tag} diverged from local run"
                    )
        finally:
            daemon.stop()
