"""Learned candidate ranking for the lookahead optimizer (DESIGN 3.23).

Three pieces: a feature/outcome dataset logged by the optimizer under
``--rank log`` (:mod:`repro.rank.dataset`), a dependency-free logistic
fitter producing versioned JSON artifacts (:mod:`repro.rank.model`),
and the per-round feature extractor the runtime gate shares with the
logger (:mod:`repro.rank.features`).
"""

from .dataset import (
    FEATURE_NAMES,
    RankLogger,
    decode_row,
    encode_row,
    load_dataset,
)
from .model import (
    MIN_FIT_ROWS,
    RANK_MODEL_FORMAT,
    RANK_MODEL_VERSION,
    RankModel,
    fit_model,
    passthrough_model,
    resolve_model,
)
from .features import RANK_SIM_WIDTH, RoundFeatureExtractor

__all__ = [
    "FEATURE_NAMES",
    "MIN_FIT_ROWS",
    "RANK_MODEL_FORMAT",
    "RANK_MODEL_VERSION",
    "RANK_SIM_WIDTH",
    "RankLogger",
    "RankModel",
    "RoundFeatureExtractor",
    "decode_row",
    "encode_row",
    "fit_model",
    "load_dataset",
    "passthrough_model",
    "resolve_model",
]
