"""Table 2: the 15-circuit comparison of SIS / ABC / DC / Lookahead.

For every benchmark circuit and flow this regenerates the paper's row:
AIG gates, AIG levels, technology-mapped delay, and power at 1 GHz, plus
the headline averages (level and delay reduction of lookahead synthesis
over each baseline).  Absolute numbers differ from the paper (different
cell library, stand-in netlists); the reproduced quantity is the *shape*:
who wins, and by roughly what factor.

Run:  pytest benchmarks/bench_table2_circuits.py --benchmark-only -s
Set REPRO_BENCH_QUICK=1 to restrict to the small circuits.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.bench import BENCHMARKS

from conftest import FLOWS, quick_mode, run_flow

QUICK_SET = ["C432", "C880", "C1908", "C3540", "dalu"]

_aig_cache = {}


def circuit_names() -> List[str]:
    if quick_mode():
        return QUICK_SET
    return list(BENCHMARKS)


def get_aig(name: str):
    if name not in _aig_cache:
        _aig_cache[name] = BENCHMARKS[name]()
    return _aig_cache[name]


@pytest.mark.parametrize("name", circuit_names())
def test_table2_row(benchmark, name):
    aig = get_aig(name)

    def build_row():
        return {
            flow: run_flow(name, flow, aig) for flow in FLOWS
        }

    row = benchmark.pedantic(build_row, rounds=1, iterations=1)
    # Per-circuit shape: lookahead is never worse than the best baseline
    # on levels, and never worse than ABC on mapped delay.
    best_baseline_levels = min(
        row[f]["levels"] for f in ("SIS", "ABC", "DC")
    )
    assert row["Lookahead"]["levels"] <= best_baseline_levels
    assert row["Lookahead"]["delay_ps"] <= row["ABC"]["delay_ps"] * 1.05


def test_print_table2_and_averages(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    names = circuit_names()
    flows = list(FLOWS)
    print("\n\nTable 2: benchmark comparison (per flow: gates/levels/delay ps/power uW)")
    header = f"{'circuit':24s}" + "".join(f"{f:>34}" for f in flows)
    print(header)
    rows = {}
    for name in names:
        aig = get_aig(name)
        rows[name] = {f: run_flow(name, f, aig) for f in flows}
        cells = []
        for f in flows:
            r = rows[name][f]
            cells.append(
                f"{r['gates']:6d}/{r['levels']:3d}/{r['delay_ps']:7.0f}/{r['power_uw']:8.1f}"
            )
        print(f"{name:24s}" + "".join(f"{c:>34}" for c in cells))

    # Headline averages: reduction of lookahead vs each baseline
    # (the paper reports 40/56/22 % levels and 21/56/10 % delay).
    print("\nAverage reduction of Lookahead vs baselines:")
    for baseline in ("SIS", "ABC", "DC"):
        level_red = []
        delay_red = []
        power_ratio = []
        for name in names:
            base = rows[name][baseline]
            look = rows[name]["Lookahead"]
            if base["levels"]:
                level_red.append(1 - look["levels"] / base["levels"])
            if base["delay_ps"]:
                delay_red.append(1 - look["delay_ps"] / base["delay_ps"])
            if base["power_uw"]:
                power_ratio.append(look["power_uw"] / base["power_uw"])
        print(
            f"  vs {baseline:3s}: levels -{100 * sum(level_red) / len(level_red):5.1f}%"
            f"   delay -{100 * sum(delay_red) / len(delay_red):5.1f}%"
            f"   power x{sum(power_ratio) / len(power_ratio):4.2f}"
        )
