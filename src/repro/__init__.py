"""Reproduction of "Timing-driven optimization using lookahead logic
circuits" (Choudhury & Mohanram, DAC 2009).

Public API re-exports live at the subpackage level; the most common entry
points are imported here for convenience.
"""

__version__ = "1.0.0"
