"""Shannon reconstruction with implication-rule simplification.

``reconstruct`` rebuilds ``y = ITE(Σ1, y_pos, y_neg)`` in an AIG, trying the
paper's implication-based simplified forms.  The paper identifies 28 such
rules but does not list them; we realize the rule space systematically: a
set of candidate templates over ``(s, a, b)`` (products, sums, single
signals, mixed forms — each in both output polarities) is instantiated, and
each candidate is *verified* equivalent to the full ITE (simulation filter
plus SAT proof) before it may be selected.  Among valid candidates the one
with the smallest arrival level wins, so a rule is applied exactly when its
implication side-condition holds — without hard-coding an unpublished list.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..aig import AIG, CONST0, lit_not
from ..cec import lits_equivalent
from ..netlist import ArrivalAwareBuilder

_B = ArrivalAwareBuilder  # alias for template signatures

#: Candidate templates: name -> builder(s, a, b) using an ArrivalAwareBuilder.
TEMPLATES: List[Tuple[str, Callable[[_B, int, int, int], int]]] = [
    ("a", lambda bld, s, a, b: a),
    ("b", lambda bld, s, a, b: b),
    ("s", lambda bld, s, a, b: s),
    ("!s", lambda bld, s, a, b: lit_not(s)),
    ("a&b", lambda bld, s, a, b: bld.and_(a, b)),
    ("a|b", lambda bld, s, a, b: bld.or_(a, b)),
    ("s&a", lambda bld, s, a, b: bld.and_(s, a)),
    ("!s&b", lambda bld, s, a, b: bld.and_(lit_not(s), b)),
    ("s|a", lambda bld, s, a, b: bld.or_(s, a)),
    ("!s|b", lambda bld, s, a, b: bld.or_(lit_not(s), b)),
    ("s|b", lambda bld, s, a, b: bld.or_(s, b)),
    ("!s|a", lambda bld, s, a, b: bld.or_(lit_not(s), a)),
    ("s&b", lambda bld, s, a, b: bld.and_(s, b)),
    ("!s&a", lambda bld, s, a, b: bld.and_(lit_not(s), a)),
    ("s&a|b", lambda bld, s, a, b: bld.or_(bld.and_(s, a), b)),
    ("!s&b|a", lambda bld, s, a, b: bld.or_(bld.and_(lit_not(s), b), a)),
    ("(s|b)&a", lambda bld, s, a, b: bld.and_(bld.or_(s, b), a)),
    ("(!s|a)&b", lambda bld, s, a, b: bld.and_(bld.or_(lit_not(s), a), b)),
    ("s^b", lambda bld, s, a, b: bld.or_(
        bld.and_(s, lit_not(b)), bld.and_(lit_not(s), b)
    )),
    ("s^a", lambda bld, s, a, b: bld.or_(
        bld.and_(s, lit_not(a)), bld.and_(lit_not(s), a)
    )),
]


def build_ite(builder: ArrivalAwareBuilder, s: int, a: int, b: int) -> int:
    """The always-valid full Shannon form ``s&a | !s&b``."""
    return builder.or_(
        builder.and_(s, a), builder.and_(lit_not(s), b)
    )


def reconstruct(
    builder: ArrivalAwareBuilder,
    sigma: int,
    y_pos: int,
    y_neg: int,
    use_rules: bool = True,
    sim_width: int = 256,
) -> int:
    """Best verified realization of ``ITE(sigma, y_pos, y_neg)``.

    With ``use_rules=False`` (ablation) only the full Shannon form is built.

    Candidates are synthesized and judged in a *scratch* AIG (the cones of
    ``sigma``/``y_pos``/``y_neg`` copied over), and only the winning form
    is replayed into the caller's builder: losing templates — and the full
    Shannon base when a rule beats it — must leave no dead nodes behind,
    the same purity contract ``LookaheadOptimizer._rebuild`` enforces for
    whole reconstructions.  Simulation patterns and SAT verdicts depend
    only on cone structure over the shared PIs, so the scratch judgement
    selects exactly the template the in-place scan used to.
    """
    if not use_rules:
        return build_ite(builder, sigma, y_pos, y_neg)
    aig = builder.aig
    scratch = AIG()
    smap: Dict[int, int] = {0: CONST0}
    for var, name in zip(aig.pis, aig.pi_names):
        smap[var] = scratch.add_pi(name)
    s_s, s_a, s_b = aig.copy_cone(scratch, smap, [sigma, y_pos, y_neg])
    judge = ArrivalAwareBuilder(scratch, builder.engine.model)
    base = build_ite(judge, s_s, s_a, s_b)
    winner: Callable[[_B, int, int, int], int] = build_ite
    best_level = judge.level(base)
    for _name, template in TEMPLATES:
        candidate = template(judge, s_s, s_a, s_b)
        level = judge.level(candidate)
        if level >= best_level:
            continue
        if lits_equivalent(scratch, candidate, base, sim_width=sim_width):
            winner = template
            best_level = level
    return winner(builder, sigma, y_pos, y_neg)


def applicable_rules(
    aig_factory: Callable[[], Tuple[AIG, int, int, int]],
) -> List[str]:
    """Names of templates valid for the (s, a, b) triple built by the factory.

    Diagnostic helper used by tests and the case-study example: the factory
    returns a fresh AIG plus the three literals.
    """
    names = []
    for name, template in TEMPLATES:
        aig, s, a, b = aig_factory()
        builder = ArrivalAwareBuilder(aig)
        base = build_ite(builder, s, a, b)
        candidate = template(builder, s, a, b)
        if lits_equivalent(aig, candidate, base):
            names.append(name)
    return names
