"""The unified timing engine: arrivals, required times, slack, criticality.

One engine per subject — :class:`AigTimingEngine` for AIGs,
:class:`NetworkTimingEngine` for technology-independent networks,
:class:`MappedTimingEngine` for mapped netlists — all sharing the
:class:`TimingEngine` query API (``arrival`` / ``required`` / ``slack`` /
``depth`` / critical sets) and a pluggable :class:`~repro.timing.delay.
DelayModel`.

Analysis is *incremental*: engines cache arrival times and recompute only
what a structural edit dirtied.  AIGs are append-only, so extension is the
incremental case (new variables get arrivals without re-walking the old
prefix); networks mutate in place, so :meth:`NetworkTimingEngine.
invalidate` dirties a node and the recompute pass re-evaluates only the
dirty set, its transitive fanout, and nodes added since the last pass.
Per-phase counters (``timing.*``) land in the :mod:`repro.perf` registry
and surface under ``repro optimize --profile``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

# Submodule import (not the package) so the aig package's own facade can
# import this module during its initialization without a cycle.
from .. import perf
from ..aig.aig import AIG, lit_var
from .delay import DelayModel, Number, UnitDelay

INF = float("inf")


class TimingEngine:
    """Common query API over a timed subject.

    Subclasses own the forward (arrival) and backward (required) passes;
    this base provides the derived quantities.  ``target`` defaults to the
    subject's own depth, so slack 0 marks nodes on a longest path.
    """

    model: DelayModel

    # -- forward ----------------------------------------------------------

    def arrival(self, node) -> Number:
        raise NotImplementedError

    def depth(self) -> Number:
        raise NotImplementedError

    # -- backward ---------------------------------------------------------

    def required(self, node, target: Optional[Number] = None) -> Number:
        raise NotImplementedError

    def slack(self, node, target: Optional[Number] = None) -> Number:
        """Required minus arrival; 0 on a critical path, INF if unused."""
        return self.required(node, target) - self.arrival(node)


class AigTimingEngine(TimingEngine):
    """Arrival/required/slack analysis of an AIG under a delay model.

    The AIG is append-only, so the engine syncs lazily: a query first
    extends the cached arrival array over any variables created since the
    last sync (counted as ``timing.recompute.incremental``), falling back
    to a full pass only on first use or when the model is fanout-sensitive
    (fanouts of old nodes change as new readers appear).
    """

    def __init__(self, aig: AIG, model: Optional[DelayModel] = None):
        self.aig = aig
        self.model = model if model is not None else UnitDelay()
        self._arr: List[Number] = []
        self._gate_delay: List[Number] = []
        self._fanout_sensitive = self.model.gate_delay(1) != self.model.gate_delay(2)

    # -- forward pass ------------------------------------------------------

    def _pi_arrivals(self) -> Dict[int, Number]:
        return {
            var: self.model.pi_arrival(i, name)
            for i, (var, name) in enumerate(
                zip(self.aig.pis, self.aig.pi_names)
            )
        }

    def _fanouts(self) -> List[int]:
        counts = [0] * self.aig.num_vars
        for var in self.aig.and_vars():
            f0, f1 = self.aig.fanins(var)
            counts[lit_var(f0)] += 1
            counts[lit_var(f1)] += 1
        for po in self.aig.pos:
            counts[lit_var(po)] += 1
        return counts

    def _sync(self) -> None:
        n = self.aig.num_vars
        start = len(self._arr)
        if start == n:
            return
        if start == 0 or self._fanout_sensitive:
            # Full pass: first use, or the model reads fanout counts that
            # appended readers may have changed for old variables.
            perf.incr("timing.recompute.full")
            start = 0
            fanouts = self._fanouts() if self._fanout_sensitive else None
            pi_arr = self._pi_arrivals()
            self._arr = [0] * n
            self._gate_delay = [0] * n
            for var in range(n):
                if self.aig.is_pi(var):
                    self._arr[var] = pi_arr[var]
                elif self.aig.is_and(var):
                    f0, f1 = self.aig.fanins(var)
                    d = self.model.gate_delay(
                        fanouts[var] if fanouts else 1
                    )
                    self._gate_delay[var] = d
                    self._arr[var] = d + max(
                        self._arr[lit_var(f0)], self._arr[lit_var(f1)]
                    )
            perf.incr("timing.nodes.recomputed", n)
            return
        # Incremental extension over the appended suffix only.
        perf.incr("timing.recompute.incremental")
        pi_arr = None
        for var in range(start, n):
            if self.aig.is_pi(var):
                if pi_arr is None:
                    pi_arr = self._pi_arrivals()
                self._arr.append(pi_arr[var])
                self._gate_delay.append(0)
            elif self.aig.is_and(var):
                f0, f1 = self.aig.fanins(var)
                d = self.model.gate_delay(1)
                self._gate_delay.append(d)
                self._arr.append(
                    d + max(self._arr[lit_var(f0)], self._arr[lit_var(f1)])
                )
            else:
                self._arr.append(0)
                self._gate_delay.append(0)
        perf.incr("timing.nodes.recomputed", n - start)

    def invalidate(self) -> None:
        """Drop all cached analysis (next query recomputes from scratch)."""
        self._arr = []
        self._gate_delay = []

    # -- queries -----------------------------------------------------------

    def arrivals(self) -> List[Number]:
        """Arrival time of every variable (shared list; do not mutate)."""
        self._sync()
        return self._arr

    def arrival(self, var: int) -> Number:
        self._sync()
        return self._arr[var]

    def po_arrivals(self) -> List[Number]:
        arr = self.arrivals()
        return [arr[lit_var(po)] for po in self.aig.pos]

    def depth(self) -> Number:
        if not self.aig.pos:
            return 0
        return max(self.po_arrivals())

    def required_times(
        self, target: Optional[Number] = None
    ) -> List[Number]:
        """Required time of every variable against ``target`` (INF unused)."""
        self._sync()
        if target is None:
            target = self.depth()
        req: List[Number] = [INF] * self.aig.num_vars
        for po in self.aig.pos:
            var = lit_var(po)
            req[var] = min(req[var], float(target))
        for var in reversed(list(self.aig.and_vars())):
            if req[var] == INF:
                continue
            f0, f1 = self.aig.fanins(var)
            slack_time = req[var] - self._gate_delay[var]
            for fi in (f0, f1):
                fv = lit_var(fi)
                req[fv] = min(req[fv], slack_time)
        return req

    def required(self, var: int, target: Optional[Number] = None) -> Number:
        return self.required_times(target)[var]

    # -- criticality -------------------------------------------------------

    def critical_vars(self) -> Set[int]:
        """Variables with zero slack (on some maximal-arrival path)."""
        arr = self.arrivals()
        req = self.required_times()
        return {
            var
            for var in range(self.aig.num_vars)
            if req[var] != INF and arr[var] == req[var]
        }

    def critical_pis(self) -> Set[int]:
        crit = self.critical_vars()
        return {var for var in crit if self.aig.is_pi(var)}

    def critical_pos(self) -> List[int]:
        """PO indices whose arrival equals the circuit depth."""
        arr = self.arrivals()
        d = self.depth()
        return [
            i for i, po in enumerate(self.aig.pos) if arr[lit_var(po)] == d
        ]

    def critical_path(self) -> List[int]:
        """One maximal-arrival path as variables from a PI to a PO."""
        arr = self.arrivals()
        d = self.depth()
        start = None
        for po in self.aig.pos:
            if arr[lit_var(po)] == d:
                start = lit_var(po)
                break
        if start is None:
            return []
        path = [start]
        var = start
        while self.aig.is_and(var):
            f0, f1 = self.aig.fanins(var)
            v0, v1 = lit_var(f0), lit_var(f1)
            var = v0 if arr[v0] >= arr[v1] else v1
            path.append(var)
        path.reverse()
        return path

    def slack_histogram(self) -> Dict[int, int]:
        """Count of AND nodes per integer slack value (diagnostics)."""
        arr = self.arrivals()
        req = self.required_times()
        hist: Dict[int, int] = {}
        for var in self.aig.and_vars():
            if req[var] == INF:
                continue
            s = int(req[var] - arr[var])
            hist[s] = hist.get(s, 0) + 1
        return hist


class NetworkTimingEngine(TimingEngine):
    """Level analysis of a technology-independent network.

    Node levels follow the paper's SOP model (:func:`repro.netlist.levels.
    node_level`), seeded with the delay model's PI arrivals.  The network
    mutates in place, so edits must be declared through :meth:`invalidate`;
    the next query then re-evaluates only the dirty nodes, their transitive
    fanout, and any nodes added since the last pass — ``node_level`` (an
    SOP minimization per node) is the expensive step this avoids.

    Required times use an additive per-node delay (the node's level minus
    its latest fanin, the collapsed-DAG STA view); exact required times are
    not well defined under the non-additive SOP tree model.
    """

    def __init__(self, net, model: Optional[DelayModel] = None):
        self.net = net
        self.model = model if model is not None else UnitDelay()
        self._levels: Dict[int, Number] = {}
        self._dirty: Set[int] = set()
        self._ever_synced = False

    def invalidate(self, nids: Union[int, Sequence[int]]) -> None:
        """Mark nodes whose local function or fanins changed."""
        if isinstance(nids, int):
            nids = [nids]
        self._dirty.update(nids)

    def _sync(self) -> None:
        net = self.net
        known = self._levels
        order = net.topo_order()
        if self._ever_synced and not self._dirty and all(
            nid in known for nid in order
        ):
            return
        from ..netlist.levels import node_level

        perf.incr(
            "timing.net.incremental" if self._ever_synced
            else "timing.net.full"
        )
        for i, pi in enumerate(net.pis):
            known[pi] = self.model.pi_arrival(i, net.nodes[pi].name)
        changed: Set[int] = set(self._dirty)
        recomputed = 0
        for nid in order:
            node = net.nodes[nid]
            stale = (
                nid not in known
                or nid in self._dirty
                or any(f in changed for f in node.fanins)
            )
            if not stale:
                continue
            fl = [known[f] for f in node.fanins]
            value = node_level(node.tt, fl)
            recomputed += 1
            if known.get(nid) != value:
                changed.add(nid)
            known[nid] = value
        perf.incr("timing.nodes.recomputed", recomputed)
        self._dirty.clear()
        self._ever_synced = True

    # -- queries -----------------------------------------------------------

    def levels(self) -> Dict[int, Number]:
        """Level of every node, PIs included (shared dict; do not mutate)."""
        self._sync()
        return self._levels

    def arrival(self, nid: int) -> Number:
        self._sync()
        return self._levels[nid]

    def po_arrival(self, po_index: int) -> Number:
        nid, _neg = self.net.pos[po_index]
        return self.arrival(nid)

    def depth(self) -> Number:
        self._sync()
        if not self.net.pos:
            return 0
        return max(self._levels[nid] for nid, _neg in self.net.pos)

    def required_times(
        self, target: Optional[Number] = None
    ) -> Dict[int, Number]:
        self._sync()
        if target is None:
            target = self.depth()
        req: Dict[int, Number] = {nid: INF for nid in self.net.nodes}
        for nid, _neg in self.net.pos:
            req[nid] = min(req[nid], target)
        for nid in reversed(self.net.topo_order()):
            if req[nid] == INF:
                continue
            node = self.net.nodes[nid]
            if not node.fanins:
                continue
            latest = max(self._levels[f] for f in node.fanins)
            delay = self._levels[nid] - latest
            for f in node.fanins:
                req[f] = min(req[f], req[nid] - delay)
        return req

    def required(self, nid: int, target: Optional[Number] = None) -> Number:
        return self.required_times(target)[nid]

    def critical_nodes(self) -> Set[int]:
        """Nodes with zero slack under the additive required-time view."""
        self._sync()
        req = self.required_times()
        return {
            nid
            for nid in self.net.nodes
            if req[nid] != INF and self._levels[nid] == req[nid]
        }


class MappedTimingEngine(TimingEngine):
    """Load-aware STA over a mapped netlist (the Table 2 delay metric).

    Arrivals come from :func:`repro.mapping.sta.analyze`; required times
    run the same gate delays backward from the POs, giving the mapper and
    reporting layers one shared required-time/slack interface.
    """

    def __init__(self, netlist, target: Optional[float] = None):
        from ..mapping.sta import analyze, signal_loads
        from ..mapping.library import NOMINAL_LOAD_FF

        self.netlist = netlist
        self.model = UnitDelay()  # gate delays come from cells, not a model
        worst, arrival = analyze(netlist)
        self._arrival = arrival
        self._worst = worst
        self._loads = signal_loads(netlist)
        self._nominal = NOMINAL_LOAD_FF
        self._target = worst if target is None else target
        self._required: Optional[Dict] = None

    def arrival(self, signal) -> float:
        return self._arrival.get(signal, 0.0)

    def depth(self) -> float:
        return self._worst

    def required_times(
        self, target: Optional[float] = None
    ) -> Dict:
        if target is None:
            target = self._target
        if self._required is not None and target == self._target:
            return self._required
        req: Dict = {}
        for sig in self.netlist.po_signals:
            req[sig] = min(req.get(sig, INF), target)
        for gate in reversed(self.netlist.gates):
            r = req.get(gate.output, INF)
            if r == INF:
                continue
            load = self._loads.get(gate.output, self._nominal)
            launch = r - gate.cell.delay(load)
            for sig in gate.inputs:
                req[sig] = min(req.get(sig, INF), launch)
        if target == self._target:
            self._required = req
        return req

    def required(self, signal, target: Optional[float] = None) -> float:
        return self.required_times(target).get(signal, INF)

    def worst_slack(self, target: Optional[float] = None) -> float:
        """Minimum slack over the PO signals (0 when target is the depth)."""
        req = self.required_times(target)
        return min(
            (
                req.get(sig, INF) - self.arrival(sig)
                for sig in self.netlist.po_signals
            ),
            default=0.0,
        )

    def critical_signals(self, tol: float = 1e-9) -> Set:
        """Signals whose slack is within ``tol`` of zero."""
        req = self.required_times()
        return {
            sig
            for sig, r in req.items()
            if r != INF and abs(r - self.arrival(sig)) <= tol
        }
