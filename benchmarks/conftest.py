"""Shared infrastructure for the reproduction benches.

The definition of a Table 2 row (flows, effort scaling, metrics) lives
in :mod:`repro.bench.table2` so the pytest benches, the sharded
orchestrator (`repro bench`) and the golden QoR suite agree on it; this
conftest only adds the pytest-side conveniences: a per-session result
cache so the four metrics of one row come from a single optimization
run, and a terminal-summary hook that prints the aggregated table after
the benched items finish (the printer is *not* a benchmark, so it never
pollutes timing data).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bench.table2 import (
    BASELINES,
    QUICK_SET,
    circuit_names,
    flow_functions,
    get_circuit,
    quick_mode,
    run_flow_row,
)

FLOWS = flow_functions()

_flow_cache: Dict[Tuple[str, str], dict] = {}


def run_flow(circuit_name: str, flow_name: str, aig=None) -> dict:
    """Optimize, equivalence-check, map, and measure one table cell."""
    key = (circuit_name, flow_name)
    if key not in _flow_cache:
        _flow_cache[key] = run_flow_row(circuit_name, flow_name, aig=aig)
    return _flow_cache[key]


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print the aggregated Table 2 rows computed during the session."""
    names = [n for n in circuit_names() if (n, "Lookahead") in _flow_cache]
    if not names:
        return
    flows = [f for f in FLOWS if any((n, f) in _flow_cache for n in names)]
    tw = terminalreporter
    tw.section("Table 2: benchmark comparison")
    tw.write_line("per flow: gates/levels/delay ps/power uW")
    tw.write_line(
        f"{'circuit':24s}" + "".join(f"{f:>34}" for f in flows)
    )
    for name in names:
        cells = []
        for flow in flows:
            row = _flow_cache.get((name, flow))
            if row is None:
                cells.append("—")
                continue
            cells.append(
                f"{row['gates']:6d}/{row['levels']:3d}/"
                f"{row['delay_ps']:7.0f}/{row['power_uw']:8.1f}"
            )
        tw.write_line(f"{name:24s}" + "".join(f"{c:>34}" for c in cells))

    tw.write_line("")
    tw.write_line("Average reduction of Lookahead vs baselines:")
    for baseline in BASELINES:
        level_red = []
        delay_red = []
        power_ratio = []
        for name in names:
            base = _flow_cache.get((name, baseline))
            look = _flow_cache.get((name, "Lookahead"))
            if not base or not look:
                continue
            if base["levels"]:
                level_red.append(1 - look["levels"] / base["levels"])
            if base["delay_ps"]:
                delay_red.append(1 - look["delay_ps"] / base["delay_ps"])
            if base["power_uw"]:
                power_ratio.append(look["power_uw"] / base["power_uw"])
        if not level_red:
            continue
        tw.write_line(
            f"  vs {baseline:3s}: levels -{100 * sum(level_red) / len(level_red):5.1f}%"
            f"   delay -{100 * sum(delay_red) / len(delay_red):5.1f}%"
            f"   power x{sum(power_ratio) / len(power_ratio):4.2f}"
        )
