"""Skewed-arrival adders: completion time under prescribed PI arrivals.

The non-uniform-arrival extension (Sec. 3's framework under the
Held/Spirkl-style prescribed arrival regime): high-order adder inputs
arrive late — bit ``i`` of each operand at time ``i``, the classic
cascaded-datapath skew — and the lookahead optimizer is run once blind to
the skew and once against it.  The table reports completion time (worst
PO arrival under the skew) and the timing-engine telemetry of the
arrival-aware run.

Run:  pytest benchmarks/bench_arrival_adders.py --benchmark-only -s
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro import perf
from repro.adders import ripple_carry_adder
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer
from repro.timing import AigTimingEngine, PrescribedArrival

SIZES = (4, 8, 16)

_results: Dict[int, Dict[str, float]] = {}


def _staircase(n: int) -> Dict[str, int]:
    return {f"{p}{i}": i for p in "ab" for i in range(n)}


def _completion(aig, skew) -> int:
    return AigTimingEngine(aig, PrescribedArrival(skew)).depth()


def _row(n: int) -> Dict[str, float]:
    if n in _results:
        return _results[n]
    aig = ripple_carry_adder(n)
    skew = _staircase(n)
    rounds = 12 if n <= 8 else 8
    uniform = LookaheadOptimizer(max_rounds=rounds).optimize(aig)
    perf.reset()
    skewed = LookaheadOptimizer(
        max_rounds=rounds, arrival_times=skew
    ).optimize(aig)
    counters = perf.snapshot().get("counters", {})
    assert check_equivalence(aig, skewed)
    row = {
        "raw": _completion(aig, skew),
        "uniform-opt": _completion(uniform, skew),
        "skew-opt": _completion(skewed, skew),
        "timing.full": counters.get("timing.recompute.full", 0),
        "timing.incr": counters.get("timing.recompute.incremental", 0),
    }
    _results[n] = row
    return row


@pytest.mark.slow
@pytest.mark.parametrize("n", SIZES)
def test_arrival_row(benchmark, n):
    row = benchmark.pedantic(_row, args=(n,), rounds=1, iterations=1)
    assert row["skew-opt"] <= row["uniform-opt"] <= row["raw"]


@pytest.mark.slow
def test_print_arrival_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n\nSkewed-arrival adders: completion time (bit i at t=i)")
    cols = ["raw", "uniform-opt", "skew-opt", "timing.full", "timing.incr"]
    print(f"{'n':>4} " + " ".join(f"{c:>12}" for c in cols))
    for n in SIZES:
        row = _row(n)
        print(f"{n:>4} " + " ".join(f"{row[c]:>12.0f}" for c in cols))
