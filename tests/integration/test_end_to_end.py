"""Integration tests: full pipelines across subsystem boundaries."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import carry_select_adder, ripple_carry_adder
from repro.aig import AIG, depth, po_tts, read_aag, write_aag
from repro.bench import BENCHMARKS
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer, lookahead_flow
from repro.mapping import map_aig, mapped_delay
from repro.opt import abc_resyn2rs, dc_map_effort_high, sis_best

from ..aig.test_aig import random_aig


class TestOptimizeMapPipeline:
    def test_optimize_then_map_preserves_function(self):
        aig = ripple_carry_adder(5)
        optimized = LookaheadOptimizer(max_rounds=8).optimize(aig)
        assert check_equivalence(aig, optimized)
        netlist = map_aig(optimized)
        for m in range(64):
            bits = [bool((m >> i) & 1) for i in range(aig.num_pis)]
            from repro.aig import evaluate

            assert netlist.evaluate(bits) == evaluate(aig, bits)

    def test_depth_gain_translates_to_mapped_delay(self):
        aig = ripple_carry_adder(8)
        optimized = lookahead_flow(aig)
        assert mapped_delay(map_aig(optimized)) < mapped_delay(map_aig(aig))


class TestFlowOnBenchmarks:
    @pytest.mark.parametrize("name", ["C432", "C1908"])
    def test_small_benchmark_full_flow(self, name):
        aig = BENCHMARKS[name]()
        out = lookahead_flow(
            aig,
            LookaheadOptimizer(max_rounds=4, max_outputs_per_round=4),
            max_iterations=2,
        )
        assert check_equivalence(aig, out)
        assert depth(out) < depth(aig)

    def test_flow_never_worse_than_dc(self):
        aig = BENCHMARKS["C1908"]()
        flow_out = lookahead_flow(
            aig,
            LookaheadOptimizer(max_rounds=2, max_outputs_per_round=4),
            max_iterations=1,
        )
        dc_out = dc_map_effort_high(aig)
        assert depth(flow_out) <= depth(dc_out)


class TestSerializationRoundTrip:
    def test_optimized_circuit_survives_aiger(self):
        aig = ripple_carry_adder(4)
        optimized = LookaheadOptimizer(max_rounds=6).optimize(aig)
        buf = io.StringIO()
        write_aag(optimized, buf)
        buf.seek(0)
        back = read_aag(buf)
        assert check_equivalence(aig, back)


class TestCrossCheckAdders:
    def test_all_adder_architectures_equivalent(self):
        from repro.adders import (
            brent_kung_adder,
            carry_lookahead_adder,
            carry_skip_adder,
            kogge_stone_adder,
            sklansky_adder,
        )

        ref = ripple_carry_adder(6)
        for gen in (
            carry_lookahead_adder,
            carry_select_adder,
            carry_skip_adder,
            kogge_stone_adder,
            sklansky_adder,
            brent_kung_adder,
        ):
            assert check_equivalence(ref, gen(6)), gen.__name__

    def test_optimizer_matches_architecture_family(self):
        # The optimized ripple adder must stay equivalent to every
        # hand-built fast adder (they are all the same function).
        aig = ripple_carry_adder(4)
        optimized = lookahead_flow(aig)
        assert check_equivalence(optimized, carry_select_adder(4))


class TestBaselineVsLookaheadShape:
    @given(st.integers(0, 20))
    @settings(deadline=None, max_examples=5)
    def test_flow_never_increases_depth_random(self, seed):
        aig = random_aig(seed, n_pis=6, n_nodes=45, n_pos=3)
        out = lookahead_flow(
            aig, LookaheadOptimizer(max_rounds=2), max_iterations=1
        )
        assert check_equivalence(aig, out)
        assert depth(out) <= depth(aig)
