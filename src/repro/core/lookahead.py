"""The lookahead synthesis flow (Sec. 3.1 of the paper).

Each round performs one level of the timing-driven decomposition of Eqn. 2:

1. cluster the AIG into a technology-independent network ``T`` (renode);
2. compute the SPCF of every critical output of the decomposed circuit;
3. *primary simplification*: the Reduce/Simplify walk yields the simplified
   cone ``y_pos`` and the window function Σ1;
4. *secondary simplification*: the original cone is re-minimized under the
   care set !Σ1, yielding ``y_neg``;
5. *reconstruction*: ``y = ITE(Σ1, y_pos, y_neg)``, simplified through the
   implication-rule engine, is synthesized arrival-aware into a fresh AIG
   together with all untouched outputs;
6. area recovery (SAT sweeping) cleans the result.

Rounds repeat while the AIG depth improves, which realizes the iterated
window sequence Σ1, Σ2, ..., Σl of the carry-lookahead analogy.

Steps 2–4 are *per-output cone computations*: each critical output is
processed on a standalone copy of its fan-in cone, with no shared mutable
state.  The round therefore fans the per-output pipeline out over a
``ProcessPoolExecutor`` (``workers`` / ``REPRO_WORKERS``; see
:mod:`repro.perf`): each worker receives one extracted cone, returns the
serialized replacement networks, and the main process applies accepted
replacements in fixed output order — so the result is bit-identical to the
serial path.  A cross-round :class:`~repro.core.cache.ConeCache` memoizes
SPCFs and rejected-cone fingerprints by structural hash, skipping cones
that did not change between rounds (or between ``optimize()`` calls).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .. import perf
from ..aig import (
    AIG,
    CONST0,
    aig_fingerprint,
    cone_fingerprint,
    lit_not,
    lit_var,
    random_patterns,
)
from ..rank import RankLogger, RoundFeatureExtractor, resolve_model
from ..netlist import (
    ArrivalAwareBuilder,
    Network,
    renode,
    synthesize_into,
)
from ..sat.portfolio import MODES as PORTFOLIO_MODES
from ..store import MISSING, StoreSpec
from ..store import runtime as store_runtime
from .area_recovery import AREA_EFFORTS, recover_area
from .cache import ConeCache, dp_memo_cached, node_tts_cached
from .model import BddBlowup, BddModel, ExactModel, SignatureModel
from .reconstruct import reconstruct
from .reduce import primary_reduce
from .secondary import ExactCareChecker, SatCareChecker, secondary_simplify
from ..timing import AigTimingEngine, resolve_arrivals
from .spcf import (
    Spcf,
    SpcfKernel,
    SpcfTierConfig,
    resolve_spcf_tier,
    spcf_exact_bdd,
    spcf_exact_tt,
    spcf_overapprox_tt,
    spcf_signature,
    timed_simulation,
    unpack_patterns,
)

TT_MODE_PI_LIMIT = 12
"""Exhaustive truth-table global functions are used up to this many PIs."""

BDD_MODE_PI_LIMIT = 26
"""BDD-domain exact functions are attempted up to this many PIs."""

WALK_MODES = ("target", "full")
"""Admissible critical-walk strategies for ``walk_modes``."""

RANK_MODES = ("off", "log", "prune")
"""Candidate-ranking modes: 'off' is the unranked flow bit-for-bit,
'log' records per-candidate features and outcomes to a dataset, 'prune'
gates candidates on a fitted model's accept probability."""

BUDGET_WINDOWS = 2
"""Budget windows a round may try before giving up: when every
replacement in the first window is rejected, the round slides once to
the next ``max_outputs_per_round`` eligible candidates instead of
ending — bounded, so a terminal round costs at most twice the old
budget."""


def validate_walk_modes(walk_modes) -> Tuple[str, ...]:
    """Validate a walk-mode sequence; returns it as a tuple.

    Shared by the optimizer constructor, the CLI, and the serve job
    validator so all entry points reject bad values identically.
    """
    if isinstance(walk_modes, str) or not isinstance(
        walk_modes, (list, tuple)
    ) or not walk_modes:
        raise ValueError(
            "walk_modes must be a non-empty list of mode names"
        )
    unknown_modes = [m for m in walk_modes if m not in WALK_MODES]
    if unknown_modes:
        raise ValueError(
            f"unknown walk modes {unknown_modes!r}; "
            f"expected a subset of {WALK_MODES}"
        )
    return tuple(walk_modes)


# -- per-output cone pipeline (runs in worker processes) ---------------------
#
# A cone task is a plain picklable tuple:
#
#   (po_index, cone_aig | None, cone_net, mode, spcf_kind, sim_width, seed,
#    walk_mode, spcf_payload | None, arrival_map | None, spcf_tier,
#    spcf_prefilter, sat_portfolio, store_spec)
#
# ``arrival_map`` is the raw PI-name -> arrival-time dict (delay-model
# objects stay out of the tuple so pickling never depends on model state);
# workers rebuild the cone-local timing engine from it.
#
# ``cone_aig`` is the output's critical cone extracted over the full PI
# space (``AIG.extract``), needed only when the SPCF is not already cached;
# ``cone_net`` is the renoded cone (``Network.extract_po_cone``).  The
# result is (po_index, ok, pos_net, sigma_nid, neg_net, spcf_payload,
# phase_seconds, perf_delta) — everything a worker touches is a private
# copy, so the pipeline is deterministic regardless of scheduling.  The
# perf delta carries the worker-registry counters this task bumped
# (spcf.tier.*, prefilter hits, cache pools) back to the parent; the
# serial path discards it, since those bumps already hit the parent
# registry directly.


def _serialize_spcf(spcf: Spcf) -> Optional[Tuple]:
    """SPCF -> process-independent payload (tt/sim modes only)."""
    if spcf.mode == "tt":
        return ("tt", spcf.tt.bits, spcf.tt.nvars)
    if spcf.mode == "sim":
        return ("sim", spcf.signature)
    return None  # BDD refs are manager-bound; never cached or shipped


def _deserialize_spcf(payload: Tuple) -> Spcf:
    if payload[0] == "tt":
        from ..tt import TruthTable

        return Spcf("tt", tt=TruthTable(payload[1], payload[2]))
    return Spcf("sim", signature=payload[1])


# -- whole-result replay ------------------------------------------------------
#
# A cone task is a pure function of its tuple (that is exactly what the
# serial==parallel fuzz invariant enforces), so on a persistent store the
# *entire* task result can be memoized and replayed bit-identically.  The
# key is built after the SPCF stage so the "SPCF cached" and "SPCF
# computed" code paths agree on it: given the serialized SPCF payload,
# the downstream pipeline depends only on (cone_net, mode, sim_width,
# seed, walk_mode, payload, arrivals, sat_portfolio).  This is what makes
# a disk-warm run skip the dominant primary/secondary (SAT) work instead
# of merely skipping SPCF recomputation.


def _cone_result_key(
    cone_net: Network,
    mode: str,
    sim_width: int,
    seed: int,
    walk_mode: str,
    payload: Tuple,
    arrival_map: Optional[Dict[str, int]],
    sat_portfolio: str,
) -> Tuple:
    root, _neg = cone_net.pos[0]
    arrivals = tuple(sorted(arrival_map.items())) if arrival_map else None
    return (
        cone_net.node_fingerprints()[root],
        cone_net.to_payload(),
        mode,
        sim_width,
        seed,
        walk_mode,
        payload,
        arrivals,
        sat_portfolio,
    )


def _encode_cone_result(value: Tuple) -> Tuple:
    ok, pos_net, sigma_nid, neg_net, payload = value
    return (
        bool(ok),
        None if pos_net is None else pos_net.to_payload(),
        sigma_nid,
        None if neg_net is None else neg_net.to_payload(),
        payload,
    )


def _decode_cone_result(value: Tuple) -> Tuple:
    ok, pos, sigma_nid, neg, payload = value
    return (
        bool(ok),
        None if pos is None else Network.from_payload(pos),
        sigma_nid,
        None if neg is None else Network.from_payload(neg),
        payload,
    )


def _pi_arrival_ints(model, pi_names: Sequence[str]) -> Optional[List[int]]:
    """Per-position integer PI arrivals of a delay model (None if uniform)."""
    if model is None:
        return None
    return [
        int(model.pi_arrival(i, name)) for i, name in enumerate(pi_names)
    ]


def _cone_spcf(
    cone_aig: AIG,
    mode: str,
    spcf_kind: str,
    sim_width: int,
    seed: int,
    arrival_map: Optional[Dict[str, int]] = None,
    spcf_tier: str = "auto",
    spcf_prefilter: bool = True,
    sat_portfolio: str = "off",
) -> Optional[Spcf]:
    """SPCF of a single-PO critical cone (PO index 0).

    Identical to the whole-circuit computation: the cone keeps the full PI
    space and the PO's fan-in logic, and the SPCF of an output depends on
    nothing else.  Starts at the full output depth and relaxes Δ: longest
    paths may be statically unsensitizable, and a near-empty SPCF makes a
    useless weight metric — the paper's Δ is a free threshold.

    ``arrival_map`` (PI name -> integer arrival) shifts the whole analysis
    into the non-uniform arrival regime: arrivals come from a cone-local
    timing engine and Δ is interpreted against completion times, so a late
    PI's short structural path can be the critical one.

    Evaluation goes through a :class:`SpcfKernel`: one kernel serves the
    whole Δ-relaxation loop, and its DP memo / node truth tables come from
    the process-local pools in :mod:`repro.core.cache`, so later rounds
    revisiting the same cone resume a warm table.  ``spcf_tier`` /
    ``spcf_prefilter`` carry the optimizer's tier ceiling and prefilter
    switch into the worker process.
    """
    model = resolve_arrivals(arrival_map)
    engine = AigTimingEngine(cone_aig, model)
    lvl = engine.arrivals()
    po_depth = int(lvl[lit_var(cone_aig.pos[0])])
    if po_depth == 0:
        return None
    config = SpcfTierConfig(
        exact_limit=TT_MODE_PI_LIMIT,
        sim_width=sim_width,
        seed=seed,
        prefilter=spcf_prefilter,
        force=(
            "signature"
            if (mode == "sim" or spcf_tier == "signature")
            else None
        ),
        sat_portfolio=sat_portfolio,
    )
    tier = resolve_spcf_tier(cone_aig.num_pis, spcf_kind, config)
    if mode == "tt" and tier == "signature":
        # The reduce/simplify model of a tt-mode cone consumes truth
        # tables, so degradation is capped at the over-approximate DP.
        tier = "overapprox"
        config.force = "overapprox"
    tts = None
    memo = relaxed_memo = None
    if tier in ("exact", "overapprox"):
        fp = cone_fingerprint(cone_aig, cone_aig.pos)
        model_key = model.key() if model is not None else ("unit",)
        tts = node_tts_cached(cone_aig, fp)
        memo = dp_memo_cached(fp, False, cone_aig.num_pis, model_key)
        relaxed_memo = dp_memo_cached(fp, True, cone_aig.num_pis, model_key)
    kernel = SpcfKernel(
        cone_aig,
        kind=spcf_kind,
        config=config,
        arrivals=lvl,
        pi_arrivals=_pi_arrival_ints(model, cone_aig.pi_names),
        tts=tts,
        memo=memo,
        relaxed_memo=relaxed_memo,
    )
    min_count = 1 if tier != "signature" else max(8, sim_width // 128)
    min_delta = max(1, po_depth // 2)
    fallback = None
    for delta in range(po_depth, min_delta - 1, -1):
        spcf = kernel.spcf(0, delta)
        if spcf.count >= min_count:
            return spcf
        if fallback is None and not spcf.is_empty():
            fallback = spcf
    return fallback


def _process_cone(
    cone_net: Network,
    spcf: Spcf,
    mode: str,
    sim_width: int,
    seed: int,
    walk_mode: str,
    phases: Dict[str, float],
    arrival_map: Optional[Dict[str, int]] = None,
    sat_portfolio: str = "off",
) -> Optional[Tuple[Network, int, Network]]:
    """Primary reduce + secondary simplify on a standalone cone network."""
    pos_net = cone_net
    neg_net = cone_net.clone()
    pi_words: List[int] = []
    if mode == "sim":
        pi_words = random_patterns(len(pos_net.pis), sim_width, seed)
        model = SignatureModel(pos_net, pi_words, sim_width)
    else:
        model = ExactModel(pos_net)
    spcf_fn = model.spcf_fn(spcf)
    t0 = time.perf_counter()
    primary = primary_reduce(
        pos_net, 0, model, spcf_fn, walk_mode=walk_mode,
        delay_model=resolve_arrivals(arrival_map),
    )
    phases["reduce"] = phases.get("reduce", 0.0) + time.perf_counter() - t0
    if not primary.success or primary.sigma_nid is None:
        return None
    model.recompute()  # include the freshly added window/Σ nodes
    sigma_fn = model.fn(primary.sigma_nid)
    care_fn = model.complement(sigma_fn)
    if mode == "sim":
        checker = SatCareChecker(
            SignatureModel(neg_net, pi_words, sim_width),
            care_fn,
            pos_net,
            primary.sigma_nid,
            neg_net,
            sat_portfolio=sat_portfolio,
        )
    else:
        checker = ExactCareChecker(ExactModel(neg_net), care_fn)
    t0 = time.perf_counter()
    secondary_simplify(neg_net, 0, checker, max_nodes=24)
    phases["secondary"] = (
        phases.get("secondary", 0.0) + time.perf_counter() - t0
    )
    return pos_net, primary.sigma_nid, neg_net


def _run_cone_task(task: Tuple) -> Tuple:
    """Run the full per-output pipeline on one extracted cone.

    Top-level so ``ProcessPoolExecutor`` can pickle it by reference; also
    called in-process on the serial (workers=1) path, which makes the two
    paths identical by construction.
    """
    (
        po_index,
        cone_aig,
        cone_net,
        mode,
        spcf_kind,
        sim_width,
        seed,
        walk_mode,
        payload,
        arrival_map,
        spcf_tier,
        spcf_prefilter,
        sat_portfolio,
        store_spec,
    ) = task
    # Workers rebuild their runtime store from the shipped spec (no-op
    # when it is already active); a persistent backend is then shared
    # with the parent through SQLite's WAL, never through a forked
    # connection.
    store_runtime.adopt(store_spec)
    start = time.perf_counter()
    before = perf.snapshot()
    phases: Dict[str, float] = {}
    if payload is None:
        t0 = time.perf_counter()
        spcf = _cone_spcf(
            cone_aig, mode, spcf_kind, sim_width, seed, arrival_map,
            spcf_tier, spcf_prefilter, sat_portfolio,
        )
        phases["spcf"] = time.perf_counter() - t0
        if spcf is not None and not spcf.is_empty():
            payload = _serialize_spcf(spcf)
    else:
        spcf = _deserialize_spcf(payload)
    if spcf is None or spcf.is_empty():
        phases["total"] = time.perf_counter() - start
        counters = perf.delta(before, perf.snapshot())
        return (po_index, False, None, None, None, None, phases, counters)
    cone_ns = key = None
    if payload is not None and store_runtime.is_persistent():
        cone_ns = store_runtime.get_store().namespace(
            "cone", encode=_encode_cone_result, decode=_decode_cone_result
        )
        key = _cone_result_key(
            cone_net, mode, sim_width, seed, walk_mode, payload,
            arrival_map, sat_portfolio,
        )
        stored = cone_ns.get(key, MISSING)
        if stored is not MISSING:
            ok, pos_net, sigma_nid, neg_net, payload = stored
            phases["total"] = time.perf_counter() - start
            counters = perf.delta(before, perf.snapshot())
            return (
                po_index, ok, pos_net, sigma_nid, neg_net, payload,
                phases, counters,
            )
    result = _process_cone(
        cone_net, spcf, mode, sim_width, seed, walk_mode, phases,
        arrival_map, sat_portfolio,
    )
    phases["total"] = time.perf_counter() - start
    counters = perf.delta(before, perf.snapshot())
    if result is None:
        if cone_ns is not None:
            cone_ns.put(key, (False, None, None, None, payload))
        return (
            po_index, False, None, None, None, payload, phases, counters
        )
    pos_net, sigma_nid, neg_net = result
    if cone_ns is not None:
        # Encoding snapshots the nets before the parent splices/mutates
        # anything downstream.
        cone_ns.put(key, (True, pos_net, sigma_nid, neg_net, payload))
    return (
        po_index, True, pos_net, sigma_nid, neg_net, payload, phases,
        counters,
    )


class LookaheadOptimizer:
    """Timing-driven optimizer producing lookahead logic circuits."""

    def __init__(
        self,
        max_rounds: int = 4,
        k: int = 6,
        mode: str = "auto",
        spcf_kind: str = "exact",
        sim_width: int = 1024,
        seed: int = 0,
        use_rules: bool = True,
        max_outputs_per_round: Optional[int] = None,
        verify: bool = False,
        area_recovery: bool = True,
        area_effort: str = "medium",
        walk_modes: Tuple[str, ...] = ("target", "full"),
        workers: Optional[int] = None,
        cache: Optional[ConeCache] = None,
        arrival_times: Optional[Dict[str, int]] = None,
        spcf_tier: str = "auto",
        spcf_prefilter: bool = True,
        sat_portfolio: str = "off",
        store: StoreSpec = None,
        rank: str = "off",
        rank_model=None,
        rank_data=None,
    ):
        """Configure the optimizer.

        ``mode``: 'tt' (exact global functions), 'sim' (signatures), or
        'auto' (by PI count).  ``spcf_kind``: 'exact' or 'overapprox'
        (truth-table modes only; simulation mode always estimates).
        ``spcf_tier``: ceiling for the tiered SPCF kernels — 'auto'
        (degrade by support size), 'exact'/'overapprox' (pin the DP
        flavour where truth tables are feasible), or 'signature' (force
        the timed-simulation estimate everywhere, which also selects sim
        mode).  ``spcf_prefilter`` toggles the floating-mode arrival
        bound that prunes provably-empty DP entries (sound, so results
        are bit-identical either way; see ``repro.core.signatures``).
        ``verify``: equivalence-check every accepted round (slow; tests).
        ``workers``: worker processes for the per-output fan-out; ``None``
        defers to ``REPRO_WORKERS`` / ``os.cpu_count()`` and ``1`` forces
        the serial path (see :func:`repro.perf.get_workers`).  ``cache``:
        a :class:`ConeCache` to share across optimizers; by default each
        optimizer owns one, which persists across its ``optimize()`` calls.
        ``arrival_times`` maps PI names to integer prescribed arrival
        times (non-uniform regime): criticality, SPCFs, reconstruction
        trees, and the acceptance metric all follow completion times
        instead of raw logic depth.  ``None`` is the unit-delay model and
        reproduces the uniform-arrival flow bit-for-bit.
        ``area_recovery`` toggles the post-round area-recovery pipeline
        entirely; ``area_effort`` ('low'/'medium'/'high') selects how
        hard :func:`repro.core.recover_area` works when it is on.
        ``sat_portfolio`` schedules the solver-bound queries (secondary
        simplification, redundancy removal): 'off' is the historical
        single-config path bit-for-bit, 'sprint' adds budgeted first
        passes with prefix reuse, 'race' additionally races diversified
        solver configurations on queries the sprint cannot settle (see
        :mod:`repro.sat.portfolio`).
        ``store`` plugs a :mod:`repro.store` result store under every
        memo layer: a database path (or :class:`repro.store.StoreConfig`
        / ready store) installs it as the process runtime store, backs
        the optimizer's :class:`ConeCache` with it, and ships the spec to
        pool workers, so SPCF payloads, rejected-cone verdicts, UNSAT
        cubes, witnesses, and redundancy proofs survive across
        invocations.  ``None`` (default) keeps every memo process-local —
        bit-identical to the historical behaviour; disk-warm runs are
        bit-identical in QoR to cold ones, just faster (DESIGN 3.20).
        ``rank`` selects the learned candidate ranker (DESIGN 3.23):
        'off' (default) is the unranked flow bit-for-bit, 'log' records
        per-candidate features and outcomes through ``rank_data`` (a
        JSONL path or :class:`repro.rank.RankLogger`; ``None`` keeps
        rows in memory), 'prune' skips candidates scoring under the
        threshold of ``rank_model`` (a path, payload dict, or
        :class:`repro.rank.RankModel`) before any SPCF/reconstruction
        work — with a zero-accept-window fallback that re-runs pruned
        candidates ungated, so a misprediction costs latency, never QoR.
        """
        if spcf_tier not in ("auto", "exact", "overapprox", "signature"):
            raise ValueError(f"unknown SPCF tier {spcf_tier!r}")
        if rank not in RANK_MODES:
            raise ValueError(
                f"unknown rank mode {rank!r}; expected one of {RANK_MODES}"
            )
        if rank == "prune" and rank_model is None:
            raise ValueError(
                "rank='prune' requires a rank_model "
                "(a model path, payload dict, or RankModel)"
            )
        if rank_data is not None and rank != "log":
            raise ValueError("rank_data is only meaningful with rank='log'")
        if sat_portfolio not in PORTFOLIO_MODES:
            raise ValueError(
                f"unknown SAT portfolio mode {sat_portfolio!r}; "
                f"expected one of {PORTFOLIO_MODES}"
            )
        if area_effort not in AREA_EFFORTS:
            raise ValueError(
                f"unknown area effort {area_effort!r}; "
                f"expected one of {AREA_EFFORTS}"
            )
        self.max_rounds = max_rounds
        self.k = k
        self.mode = mode
        self.spcf_kind = spcf_kind
        if spcf_tier in ("exact", "overapprox"):
            # A pinned DP flavour rides on the existing kind machinery.
            self.spcf_kind = spcf_tier
        self.spcf_tier = spcf_tier
        self.spcf_prefilter = spcf_prefilter
        self.sat_portfolio = sat_portfolio
        self.sim_width = sim_width
        self.seed = seed
        self.use_rules = use_rules
        self.max_outputs_per_round = max_outputs_per_round
        self.verify = verify
        self.area_recovery = area_recovery
        self.area_effort = area_effort
        self.walk_modes = validate_walk_modes(walk_modes)
        self.workers = workers
        self.rank = rank
        self._rank_model = (
            resolve_model(rank_model) if rank == "prune" else None
        )
        if rank == "log":
            self.rank_logger = (
                rank_data
                if isinstance(rank_data, RankLogger)
                else RankLogger(rank_data)
            )
        else:
            self.rank_logger = None
        # Per-optimize-call ranking state: config keys whose rejection
        # this call has (re)confirmed or predicted, per-cone consecutive
        # reject streaks, and the round counter stamped into log rows.
        self._call_rejected: Set[Tuple] = set()
        self._rank_streaks: Dict[int, int] = {}
        self._rank_round = 0
        self._round_rows: List[dict] = []
        self._call_rows: List[dict] = []
        self.store_spec = store
        if store is not None:
            store_runtime.configure(store)
        if cache is not None:
            self.cache = cache
        elif store is not None:
            self.cache = ConeCache(store=store_runtime.get_store())
        else:
            self.cache = ConeCache()
        self.arrival_times = dict(arrival_times) if arrival_times else None
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_workers = 0

    # -- delay model ------------------------------------------------------------

    def _delay_model(self):
        """Fresh delay model for the configured arrivals (None = unit)."""
        return resolve_arrivals(self.arrival_times)

    def _model_key(self) -> tuple:
        model = self._delay_model()
        return model.key() if model is not None else ("unit",)

    # -- public API -------------------------------------------------------------

    def _quality(self, aig: AIG) -> Tuple[int, int, int]:
        """Lexicographic quality: worst PO arrival, total arrival, size."""
        perf.incr("quality.evals")
        engine = AigTimingEngine(aig, self._delay_model())
        pol = engine.po_arrivals()
        return (max(pol) if pol else 0, sum(pol), aig.num_ands())

    def optimize(self, aig: AIG) -> AIG:
        """Optimize the AIG; returns an equivalent circuit, never worse in depth.

        Each walk strategy is run as its own full round sequence (greedy
        per-round mixing of strategies traps the search in local optima);
        the best final result wins.

        The worker pool (like the cone cache) persists across ``optimize``
        calls so repeated invocations — e.g. the ``lookahead_flow``
        iteration loop — reuse warm worker processes.  Call :meth:`close`
        (or use the optimizer as a context manager) when done.
        """
        # Ranking state is per call: verdict replay from earlier calls
        # flows through the cone cache, never through these.
        self._call_rejected = set()
        self._rank_streaks = {}
        self._rank_round = 0
        self._round_rows = []
        self._call_rows = []
        with perf.timer("optimize"):
            results = [
                self._optimize_with(aig, walk_mode)
                for walk_mode in self.walk_modes
            ]
        winner = min(range(len(results)), key=lambda i: results[i][1])
        self._log_call_rows(self.walk_modes[winner])
        return results[winner][0]

    def _log_call_rows(self, winning_walk: str) -> None:
        """Write the call's staged rows, demoting the losing walks.

        The final labelling level: a candidate only stays ``accept=1``
        when the walk strategy it ran under is the one whose result
        this call actually returned.  A quality-kept round inside a
        losing walk re-derived a result the winning walk already had —
        on one-critical-output circuits that duplicated secondary SAT
        pass is most of the wall-clock, and it is exactly the work a
        recall-1.0 prune model may skip without touching the returned
        circuit (DESIGN 3.23).
        """
        rows, self._call_rows = self._call_rows, []
        if self.rank_logger is None:
            return
        for row in rows:
            if row["walk"] != winning_walk:
                row["accept"] = 0
            perf.incr("rank.logged")
            self.rank_logger.log(row)

    def _optimize_with(self, aig: AIG, walk_mode: str) -> Tuple[AIG, Tuple]:
        """Run the round sequence for one walk; returns (AIG, quality).

        The incumbent's quality is computed once and cached across
        rounds (and handed to ``optimize``'s final comparison), so a
        sequence of rejected rounds costs one timing analysis per fresh
        candidate instead of two.

        The reject-streak counters are walk-local.  They feed the rank
        features, and a prune run's streak evolution must replay its
        training run's exactly for the recall-1.0 calibration to hold;
        a streak that leaked across walks would let one walk's pruned
        (but training-accepted) candidates shift a later walk's feature
        vectors — and with them, scores — off the logged trajectory
        (found by repro.verify fuzzing, seed 4 case 1112).  Config-key
        verdicts need no such scoping: ``cfg_key`` embeds the walk mode.
        """
        self._rank_streaks = {}
        current = aig.extract()
        current_q = self._quality(current)
        for _round in range(self.max_rounds):
            candidate = self._one_round(current, walk_mode)
            if candidate is None:
                self._flush_rank_rows(kept=False)
                break
            candidate_q = self._quality(candidate)
            kept = candidate_q < current_q
            self._flush_rank_rows(kept=kept)
            if not kept:
                break
            if self.verify:
                from ..cec import assert_equivalent

                assert_equivalent(current, candidate, "lookahead round")
            current, current_q = candidate, candidate_q
        return current, current_q

    def _flush_rank_rows(self, kept: bool) -> None:
        """Promote the round's staged rows to the call buffer.

        A candidate only keeps ``accept=1`` when its replacement was
        spliced in by ``_rebuild`` *and* the round's aggregate survived
        the quality gate: a rebuild-accepted cone in a quality-rejected
        round contributed nothing (the paper's metric discarded the
        whole candidate circuit), and labelling it positive would teach
        the prune gate to spend SPCF and SAT time on provably dead
        rounds.  The rows reach the logger in :meth:`_log_call_rows`,
        which applies the final walk-level demotion (DESIGN 3.23).
        """
        rows, self._round_rows = self._round_rows, []
        if self.rank_logger is None:
            return
        for row in rows:
            row["accept"] = int(row["accept"] and kept)
            self._call_rows.append(row)

    # -- worker pool ------------------------------------------------------------

    def _ensure_executor(self, nworkers: int) -> ProcessPoolExecutor:
        if self._executor is None or self._executor_workers != nworkers:
            self._shutdown_executor()
            self._executor = ProcessPoolExecutor(max_workers=nworkers)
            self._executor_workers = nworkers
        return self._executor

    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._executor_workers = 0

    def close(self) -> None:
        """Shut down the worker pool (idempotent; optimizer stays usable).

        Without this, a lazily created ``ProcessPoolExecutor`` keeps its
        worker processes alive until interpreter exit.  ``lookahead_flow``
        and the CLI close the optimizers they create; long-lived callers
        should do the same (or use ``with LookaheadOptimizer(...) as opt``).
        """
        self._shutdown_executor()
        if self.rank_logger is not None:
            self.rank_logger.close()

    def __enter__(self) -> "LookaheadOptimizer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:
        # Safety net for callers that forget close(); best-effort because
        # interpreter shutdown may have torn the pool machinery down.
        try:
            self.close()
        except Exception:
            pass

    # -- one decomposition level ---------------------------------------------------

    def _resolve_mode(self, aig: AIG) -> str:
        if self.spcf_tier == "signature":
            # Forcing the signature tier implies the simulation domain
            # end-to-end (SPCF, reduce model, and secondary checker).
            return "sim"
        if self.mode != "auto":
            return self.mode
        if aig.num_pis <= TT_MODE_PI_LIMIT:
            return "tt"
        if aig.num_pis <= BDD_MODE_PI_LIMIT:
            return "bdd"
        return "sim"

    def _one_round(self, aig: AIG, walk_mode: str = "target") -> Optional[AIG]:
        engine = AigTimingEngine(aig, self._delay_model())
        d = engine.depth()
        if d <= 1:
            return None
        mode = self._resolve_mode(aig)
        perf.incr("rounds")
        self._rank_round += 1
        self._round_rows = []
        aig_levels = engine.arrivals()
        # Criticality is judged on the decomposed circuit (the AIG), where
        # the SPCF and the paper's quality metric live; under prescribed
        # arrivals the engine's zero-slack POs replace the deepest ones.
        critical = engine.critical_pos()

        # Renoding is only needed once a cone actually dispatches, so the
        # windowed path takes it lazily: a round whose whole window the
        # rank gate prunes (or the cache replays) never pays for it.
        net_box: List[Network] = []

        def net_thunk() -> Network:
            if not net_box:
                with perf.timer("phase.renode"):
                    net_box.append(renode(aig, self.k))
            return net_box[0]

        if mode == "bdd":
            # BDD refs live inside one shared (unpicklable) manager, so the
            # BDD round stays in-process; cones that blow up fall back to
            # the signature domain per output, as before.  The BDD path
            # has no rejection cache, so the raw budget truncation stands.
            if self.max_outputs_per_round is not None:
                critical = critical[: self.max_outputs_per_round]
            processed = self._bdd_round(aig, net_thunk(), critical,
                                        aig_levels, walk_mode)
            if not processed:
                return None
            with perf.timer("phase.rebuild"):
                rebuilt, accepted = self._rebuild(aig, processed)
            if not accepted:
                # Nothing won: stop here rather than returning the
                # restrashed/swept copy.  A sweep-only "improvement" from
                # an all-rejected round would make the result depend on
                # whether rejected cones were skipped through the negative
                # cache — i.e. warm-cache runs would diverge from cold
                # ones (found by repro.verify fuzzing, seed 0 case 30).
                return None
        else:
            rebuilt = self._windowed_round(
                aig, net_thunk, critical, aig_levels, mode, walk_mode
            )
            if rebuilt is None:
                return None
        if self.area_recovery:
            with perf.timer("phase.area"):
                rebuilt = recover_area(
                    rebuilt, effort=self.area_effort, seed=self.seed,
                    delay_model=self._delay_model(),
                    sat_portfolio=self.sat_portfolio,
                )
        return rebuilt

    def _candidate_keys(
        self, aig: AIG, po_index: int, mode: str, walk_mode: str
    ) -> Tuple[int, Tuple, Tuple]:
        """(fingerprint, spcf_key, cfg_key) of one candidate output."""
        po_lit = aig.pos[po_index]
        fp = cone_fingerprint(aig, [po_lit])
        # The model key keeps unit and prescribed-arrival runs
        # from colliding in the shared cone cache.
        spcf_key = (fp, mode, self.spcf_kind, self.sim_width,
                    self.seed, self._model_key(),
                    self.spcf_tier)
        cfg_key = spcf_key + (
            walk_mode, self.k, self.use_rules, self.sat_portfolio,
        )
        return fp, spcf_key, cfg_key

    def _note_reject(self, fp: int) -> None:
        self._rank_streaks[fp] = self._rank_streaks.get(fp, 0) + 1

    def _unnote_reject(self, fp: int) -> None:
        streak = self._rank_streaks.get(fp, 0) - 1
        if streak > 0:
            self._rank_streaks[fp] = streak
        else:
            self._rank_streaks.pop(fp, None)

    def _select_window(
        self, aig: AIG, queue: List[int], mode: str, walk_mode: str
    ) -> Tuple[List[Tuple[int, int, Tuple, Tuple]], List[int]]:
        """Next budget window of candidates, plus the untouched tail.

        Walks the critical queue in order, drops candidates whose config
        key was rejected *during this optimize call*, and stops at the
        per-round budget.  Selection deliberately never consults bare
        cross-call cache state: a warm run replays inherited verdicts
        into ``_call_rejected`` at dispatch, exactly where a cold run
        records the same verdicts after evaluating — so warm and cold
        runs build identical windows (the cached_cold_identical /
        store_warm_equals_cold invariants).
        """
        budget = self.max_outputs_per_round
        window: List[Tuple[int, int, Tuple, Tuple]] = []
        tail: List[int] = []
        for pos, po_index in enumerate(queue):
            if budget is not None and len(window) >= budget:
                tail = queue[pos:]
                break
            fp, spcf_key, cfg_key = self._candidate_keys(
                aig, po_index, mode, walk_mode
            )
            if cfg_key in self._call_rejected:
                continue
            window.append((po_index, fp, spcf_key, cfg_key))
        return window, tail

    def _windowed_round(
        self,
        aig: AIG,
        net_thunk: Callable[[], Network],
        critical: List[int],
        aig_levels: List[int],
        mode: str,
        walk_mode: str,
    ) -> Optional[AIG]:
        """The cone path of one round, over up to BUDGET_WINDOWS windows.

        Candidates rejected earlier in this ``optimize`` call never
        occupy a budget slot again, and a window whose replacements were
        all rejected slides once to the next eligible window instead of
        ending the round — together the fix for warm rounds burning
        their whole budget on known-rejected cones.
        """
        queue = list(critical)
        extractor = None
        if self.rank != "off":
            extractor = RoundFeatureExtractor(
                aig,
                aig_levels,
                _pi_arrival_ints(self._delay_model(), aig.pi_names),
                self.seed,
            )
        max_windows = (
            1 if self.max_outputs_per_round is None else BUDGET_WINDOWS
        )
        for window_index in range(max_windows):
            if window_index:
                perf.incr("rounds.window_slides")
            window, queue = self._select_window(aig, queue, mode, walk_mode)
            if not window:
                return None
            rebuilt = self._run_window(
                aig, net_thunk, window, aig_levels, mode, walk_mode, extractor
            )
            if rebuilt is not None:
                return rebuilt
            if not queue:
                return None
        return None

    def _run_window(
        self,
        aig: AIG,
        net_thunk: Callable[[], Network],
        window: List[Tuple[int, int, Tuple, Tuple]],
        aig_levels: List[int],
        mode: str,
        walk_mode: str,
        extractor,
    ) -> Optional[AIG]:
        """One window: dispatch, judge, bookkeep; AIG if anything won.

        In prune mode, a *partially* pruned window re-runs the pruned
        candidates ungated before the rebuild judgment — once the gate
        has let anything through, the round is going to pay for a
        dispatch and a rebuild anyway, and evaluating the pruned
        candidates alongside keeps the round's accepted set identical
        to the unranked flow's (a pruned candidate that would have been
        accepted must cost extra latency, never QoR).  The predicted
        verdicts are rolled back first, so the fallback behaves exactly
        like an ungated window over those candidates.  A *wholly*
        pruned window (nothing dispatched at all) is instead trusted as
        the round verdict: the model was calibrated so that every
        winning-walk quality-kept training row scores above threshold,
        and re-running everything it prunes would make the gate's best
        case cost-neutral (DESIGN 3.23).
        """
        processed, reject_keys, pruned, features, dispatched = (
            self._cone_round(
                aig, net_thunk, window, aig_levels, mode, walk_mode,
                extractor, gate=True,
            )
        )
        fallback_pos: Set[int] = set()
        if pruned and dispatched:
            perf.incr("rank.fallback.windows")
            for _po, fp, _spcf_key, cfg_key in pruned:
                self._call_rejected.discard(cfg_key)
                self._unnote_reject(fp)
            f_processed, f_reject_keys, _pruned, _feats, _disp = (
                self._cone_round(
                    aig, net_thunk, pruned, aig_levels, mode, walk_mode,
                    extractor, gate=False,
                )
            )
            processed = processed + f_processed
            reject_keys.update(f_reject_keys)
            fallback_pos = {entry[0] for entry in f_processed}
        accepted: Set[int] = set()
        rebuilt: Optional[AIG] = None
        if processed:
            with perf.timer("phase.rebuild"):
                rebuilt, accepted = self._rebuild(aig, processed)
        rescued = accepted & fallback_pos
        if rescued:
            perf.incr("rank.false_prune_detected", len(rescued))
        fp_by_po = {entry[0]: entry[1] for entry in window}
        for po_index, key in reject_keys.items():
            if po_index in accepted:
                perf.incr("replacements.accepted")
                self._rank_streaks.pop(fp_by_po[po_index], None)
            else:
                perf.incr("replacements.rejected")
                self.cache.mark_rejected(key)
                self._call_rejected.add(key)
                self._note_reject(fp_by_po[po_index])
        if self.rank_logger is not None:
            # Rows are staged, not written: the label a candidate earns
            # here (did _rebuild splice it in?) is only half the story —
            # the round's aggregate must also survive the quality gate
            # in _optimize_with, which ANDs the verdict in at flush time.
            circuit_fp = format(aig_fingerprint(aig), "016x")
            for po_index, fp, _spcf_key, _cfg_key in window:
                feats = features.get(po_index)
                if feats is None:
                    continue
                self._round_rows.append({
                    "features": feats,
                    "accept": int(po_index in accepted),
                    "po": po_index,
                    "round": self._rank_round,
                    "walk": walk_mode,
                    "fp": format(fp, "016x"),
                    "circuit": circuit_fp,
                })
        if not accepted:
            return None
        return rebuilt

    def _cone_round(
        self,
        aig: AIG,
        net_thunk: Callable[[], Network],
        window: List[Tuple[int, int, Tuple, Tuple]],
        aig_levels: List[int],
        mode: str,
        walk_mode: str,
        extractor=None,
        gate: bool = True,
    ) -> Tuple[
        List[Tuple[int, Network, int, Network]],
        Dict[int, Tuple],
        List[Tuple[int, int, Tuple, Tuple]],
        Dict[int, List[float]],
        int,
    ]:
        """Fan the per-output pipeline out over extracted cones (tt/sim).

        ``window`` holds ``(po_index, fingerprint, spcf_key, cfg_key)``
        candidates from :meth:`_select_window`.  Builds one
        self-contained task per candidate, runs them in worker processes
        (or in-process when workers=1), and collects the results in
        fixed output order.  Cones whose fingerprint was already
        rejected under this configuration are skipped entirely; fresh
        SPCFs are cached for later rounds and flow iterations.
        ``net_thunk`` materialises the renoded network on first use, so
        a window that dispatches nothing never pays for renoding.

        Returns ``(processed, reject_keys, pruned, features,
        dispatched)``: ``pruned`` are candidates the rank gate skipped
        (``gate=True`` and a prune model is active); ``features`` maps
        po_index to the feature vector computed for logging/scoring;
        ``dispatched`` counts the tasks that actually ran (the caller's
        fallback heuristic needs to distinguish a wholly pruned window
        from a partially evaluated one).  Every candidate whose verdict
        is determined here — replayed, SPCF-empty, pruned, or
        walk-failed — lands in ``_call_rejected`` under its *config*
        key, so later window selections skip it regardless of which
        underlying verdict it was; that uniformity is what keeps a
        prune run's window composition bit-identical to its training
        run's (DESIGN 3.23).
        """
        nworkers = perf.get_workers(self.workers)
        gating = gate and self._rank_model is not None
        want_features = self.rank == "log" or gating

        # On the serial path, sim-mode SPCFs come from one shared timed
        # simulation of the whole circuit (cone-local simulation yields
        # bit-identical arrivals, but would redo the work per output —
        # that duplication only pays off when workers absorb it).
        shared_sim: List = []

        def shared_spcf(po_index: int) -> Optional[Spcf]:
            if not shared_sim:
                pi_words = random_patterns(
                    aig.num_pis, self.sim_width, self.seed
                )
                timed = timed_simulation(
                    aig,
                    unpack_patterns(pi_words, self.sim_width),
                    pi_arrivals=_pi_arrival_ints(
                        self._delay_model(), aig.pi_names
                    ),
                )
                shared_sim.append((pi_words, timed))
            pi_words, timed = shared_sim[0]
            return self._compute_spcf(
                aig, po_index, aig_levels, "sim", timed, pi_words
            )

        tasks: List[Tuple] = []
        spcf_keys: Dict[int, Tuple] = {}
        reject_keys: Dict[int, Tuple] = {}
        fp_by_po: Dict[int, int] = {}
        cached_payload: Set[int] = set()
        pruned: List[Tuple[int, int, Tuple, Tuple]] = []
        features: Dict[int, List[float]] = {}
        with perf.timer("phase.dispatch"):
            for po_index, fp, spcf_key, cfg_key in window:
                po_lit = aig.pos[po_index]
                fp_by_po[po_index] = fp
                score = None
                if want_features:
                    t0 = time.perf_counter()
                    feats = extractor.features(
                        po_index, self._rank_streaks.get(fp, 0), walk_mode
                    )
                    if gating:
                        score = self._rank_model.score(feats)
                        perf.observe(
                            "rank.score", time.perf_counter() - t0
                        )
                        perf.incr("rank.scored")
                    features[po_index] = feats
                if self.cache.is_rejected(cfg_key) or self.cache.is_rejected(
                    spcf_key
                ):
                    # Replay an inherited (cross-call) verdict into the
                    # in-call set so later windows skip it at selection.
                    self._call_rejected.add(cfg_key)
                    self._note_reject(fp)
                    continue
                if gating and score < self._rank_model.threshold:
                    perf.incr("rank.pruned")
                    self._call_rejected.add(cfg_key)
                    self._note_reject(fp)
                    pruned.append((po_index, fp, spcf_key, cfg_key))
                    continue
                payload = self.cache.get_spcf(spcf_key)
                cone_aig = None
                if payload is not None:
                    cached_payload.add(po_index)
                elif mode == "sim" and nworkers == 1:
                    with perf.timer("phase.spcf"):
                        spcf = shared_spcf(po_index)
                    if spcf is None or spcf.is_empty():
                        self.cache.mark_rejected(spcf_key)
                        self._call_rejected.add(cfg_key)
                        self._note_reject(fp)
                        continue
                    payload = _serialize_spcf(spcf)
                else:
                    cone_aig = aig.extract([po_lit])
                cone_net = net_thunk().extract_po_cone(po_index)
                spcf_keys[po_index] = spcf_key
                reject_keys[po_index] = cfg_key
                tasks.append(
                    (
                        po_index,
                        cone_aig,
                        cone_net,
                        mode,
                        self.spcf_kind,
                        self.sim_width,
                        self.seed,
                        walk_mode,
                        payload,
                        self.arrival_times,
                        self.spcf_tier,
                        self.spcf_prefilter,
                        self.sat_portfolio,
                        store_runtime.current_spec(),
                    )
                )

        start = time.perf_counter()
        parallel = nworkers > 1 and len(tasks) > 1
        if parallel:
            executor = self._ensure_executor(nworkers)
            results = list(executor.map(_run_cone_task, tasks))
            perf.incr("rounds.parallel")
        else:
            results = [_run_cone_task(task) for task in tasks]
            perf.incr("rounds.serial")
        elapsed = time.perf_counter() - start
        perf.add_time(
            "workers.capacity", elapsed * min(nworkers, max(1, len(tasks)))
        )

        processed: List[Tuple[int, Network, int, Network]] = []
        for (
            po_index, ok, pos_net, sigma_nid, neg_net, payload, phases,
            counters,
        ) in results:
            for name, seconds in phases.items():
                target = "workers.busy" if name == "total" else f"phase.{name}"
                perf.add_time(target, seconds)
            if parallel:
                # Worker-registry counters (tiers, prefilter, cache pools)
                # only exist in the worker process; fold the task's delta
                # in.  Serial tasks bumped this registry directly.
                perf.merge({"counters": counters.get("counters", {})})
            if payload is not None and po_index not in cached_payload:
                self.cache.put_spcf(spcf_keys[po_index], payload)
            if not ok:
                if payload is None:
                    # No sensitizable critical path: walk-independent, so
                    # reject the SPCF key itself.
                    self.cache.mark_rejected(spcf_keys[po_index])
                else:
                    self.cache.mark_rejected(reject_keys[po_index])
                self._call_rejected.add(reject_keys[po_index])
                self._note_reject(fp_by_po[po_index])
                del reject_keys[po_index]
                continue
            processed.append((po_index, pos_net, sigma_nid, neg_net))
        return processed, reject_keys, pruned, features, len(tasks)

    def _bdd_round(
        self,
        aig: AIG,
        net: Network,
        critical: List[int],
        aig_levels: List[int],
        walk_mode: str,
    ) -> List[Tuple[int, Network, int, Network]]:
        """Serial per-output loop for the BDD mode (shared manager)."""
        from ..bdd import BDD

        bdd_manager = BDD()
        pi_words: List[int] = []
        timed = None

        def ensure_sim():
            nonlocal pi_words, timed
            if timed is None:
                pi_words = random_patterns(
                    aig.num_pis, self.sim_width, self.seed
                )
                pi_bits = unpack_patterns(pi_words, self.sim_width)
                timed = timed_simulation(
                    aig,
                    pi_bits,
                    pi_arrivals=_pi_arrival_ints(
                        self._delay_model(), aig.pi_names
                    ),
                )

        processed: List[Tuple[int, Network, int, Network]] = []
        for po_index in critical:
            po_mode = "bdd"
            spcf = self._compute_spcf(
                aig, po_index, aig_levels, po_mode, timed, pi_words,
                bdd_manager,
            )
            if spcf is None:
                # BDD blowup: retry this output in the signature domain.
                po_mode = "sim"
                ensure_sim()
                spcf = self._compute_spcf(
                    aig, po_index, aig_levels, po_mode, timed, pi_words, None
                )
            if spcf is None or spcf.is_empty():
                continue  # output has no (sensitizable) critical path
            try:
                result = self._process_output(
                    net, po_index, spcf, po_mode, pi_words, walk_mode,
                    bdd_manager,
                )
            except BddBlowup:
                ensure_sim()
                spcf = self._compute_spcf(
                    aig, po_index, aig_levels, "sim", timed, pi_words, None
                )
                if spcf is None or spcf.is_empty():
                    continue
                result = self._process_output(
                    net, po_index, spcf, "sim", pi_words, walk_mode, None
                )
            if result is not None:
                processed.append(result)
        return processed

    def _compute_spcf(
        self,
        aig: AIG,
        po_index: int,
        aig_levels: List[int],
        mode: str,
        timed,
        pi_words: List[int],
        bdd_manager=None,
    ) -> Optional[Spcf]:
        po_depth = int(aig_levels[lit_var(aig.pos[po_index])])
        if po_depth == 0:
            return None
        if mode == "tt":
            perf.incr(f"spcf.tier.{self.spcf_kind}")
        elif mode == "bdd":
            perf.incr("spcf.tier.bdd")
        else:
            perf.incr("spcf.tier.signature")
        # Start at the full output depth and relax: longest paths may be
        # false (statically unsensitizable), and a near-empty SPCF makes a
        # useless weight metric — the paper's Delta is a free threshold.
        min_count = 1 if mode == "tt" else max(8, self.sim_width // 128)
        min_delta = max(1, po_depth // 2)
        fallback = None
        for delta in range(po_depth, min_delta - 1, -1):
            if mode == "tt":
                if self.spcf_kind == "overapprox":
                    tt = spcf_overapprox_tt(
                        aig, po_index, delta, arrivals=aig_levels
                    )
                else:
                    tt = spcf_exact_tt(
                        aig, po_index, delta, arrivals=aig_levels
                    )
                spcf = Spcf("tt", tt=tt)
            elif mode == "bdd":
                ref = spcf_exact_bdd(
                    aig, po_index, delta, bdd_manager, arrivals=aig_levels
                )
                if ref is None:
                    return None  # manager blowup: caller falls back
                spcf = Spcf(
                    "bdd", bdd=bdd_manager, ref=ref, num_pis=aig.num_pis
                )
            else:
                sig = spcf_signature(
                    aig, po_index, delta, None, timed=timed
                )
                spcf = Spcf("sim", signature=sig)
            if spcf.count >= min_count:
                return spcf
            if fallback is None and not spcf.is_empty():
                fallback = spcf
        return fallback

    def _process_output(
        self,
        net: Network,
        po_index: int,
        spcf: Spcf,
        mode: str,
        pi_words: List[int],
        walk_mode: str = "target",
        bdd_manager=None,
    ) -> Optional[Tuple[int, Network, int, Network]]:
        pos_net = net.extract_po_cone(po_index)
        neg_net = net.extract_po_cone(po_index)
        if mode == "tt":
            model = ExactModel(pos_net)
        elif mode == "bdd":
            model = BddModel(pos_net, bdd=bdd_manager)
        else:
            model = SignatureModel(pos_net, pi_words, self.sim_width)
        spcf_fn = model.spcf_fn(spcf)
        primary = primary_reduce(
            pos_net, 0, model, spcf_fn, walk_mode=walk_mode,
            delay_model=self._delay_model(),
        )
        if not primary.success or primary.sigma_nid is None:
            return None
        model.recompute()  # include the freshly added window/Σ nodes
        sigma_fn = model.fn(primary.sigma_nid)
        care_fn = model.complement(sigma_fn)
        if mode == "tt":
            checker = ExactCareChecker(ExactModel(neg_net), care_fn)
        elif mode == "bdd":
            checker = ExactCareChecker(
                BddModel(neg_net, bdd=bdd_manager), care_fn
            )
        else:
            checker = SatCareChecker(
                SignatureModel(neg_net, pi_words, self.sim_width),
                care_fn,
                pos_net,
                primary.sigma_nid,
                neg_net,
                sat_portfolio=self.sat_portfolio,
            )
        secondary_simplify(neg_net, 0, checker, max_nodes=24)
        return po_index, pos_net, primary.sigma_nid, neg_net

    def _rebuild(
        self,
        aig: AIG,
        processed: List[Tuple[int, Network, int, Network]],
    ) -> Tuple[AIG, Set[int]]:
        """Apply replacements in fixed PO order; returns (AIG, accepted set).

        Iterating ``aig.pos`` (not completion order) keeps the rebuild
        deterministic under any worker scheduling.  Each reconstruction is
        synthesized and judged in its own scratch AIG, and only the winners
        are copied into the result: a rejected candidate must leave no
        trace, or the output would depend on whether the cone was processed
        at all — cache-warm runs skip known-rejected cones entirely, and
        their results have to stay bit-identical to cold ones (found by
        repro.verify fuzzing, seed 1 case 104).
        """
        by_po = {entry[0]: entry for entry in processed}

        # Phase 1: judge each reconstruction cone-locally in a scratch AIG.
        winners: Dict[int, Tuple[AIG, int]] = {}
        for i, po_lit in enumerate(aig.pos):
            entry = by_po.get(i)
            if entry is None:
                continue
            _idx, pos_net, sigma_nid, neg_net = entry
            scratch = AIG()
            builder = ArrivalAwareBuilder(scratch, self._delay_model())
            smap: Dict[int, int] = {0: CONST0}
            spi_lits = []
            for var, name in zip(aig.pis, aig.pi_names):
                lit = scratch.add_pi(name)
                smap[var] = lit
                spi_lits.append(lit)
            pos_lits = synthesize_into(builder, pos_net, spi_lits)
            neg_lits = synthesize_into(builder, neg_net, spi_lits)
            root_p, neg_p = pos_net.pos[0]
            y_pos = pos_lits[root_p]
            if neg_p:
                y_pos = lit_not(y_pos)
            sigma = pos_lits[sigma_nid]
            root_n, neg_n = neg_net.pos[0]
            y_neg = neg_lits[root_n]
            if neg_n:
                y_neg = lit_not(y_neg)
            recon = reconstruct(builder, sigma, y_pos, y_neg, self.use_rules)
            original = aig.copy_cone(scratch, smap, [po_lit])[0]
            # Keep the original cone when the reconstruction did not win.
            if builder.level(recon) < builder.level(original):
                winners[i] = (scratch, recon)

        # Phase 2: emit — accepted reconstructions and untouched cones only.
        dest = AIG()
        mapping: Dict[int, int] = {0: CONST0}
        pi_lits = []
        for var, name in zip(aig.pis, aig.pi_names):
            lit = dest.add_pi(name)
            mapping[var] = lit
            pi_lits.append(lit)
        new_pos: List[int] = []
        accepted: Set[int] = set()
        for i, po_lit in enumerate(aig.pos):
            winner = winners.get(i)
            if winner is None:
                new_pos.append(aig.copy_cone(dest, mapping, [po_lit])[0])
                continue
            scratch, recon = winner
            wmap: Dict[int, int] = {0: CONST0}
            for svar, lit in zip(scratch.pis, pi_lits):
                wmap[svar] = lit
            new_pos.append(scratch.copy_cone(dest, wmap, [recon])[0])
            accepted.add(i)
        for lit, name in zip(new_pos, aig.po_names):
            dest.add_po(lit, name)
        return dest.extract(), accepted


def optimize_lookahead(aig: AIG, **kwargs) -> AIG:
    """One-call convenience wrapper around :class:`LookaheadOptimizer`."""
    with LookaheadOptimizer(**kwargs) as opt:
        return opt.optimize(aig)


def make_runtime_optimizer(**kwargs) -> LookaheadOptimizer:
    """An optimizer wired to the *already configured* runtime store.

    ``LookaheadOptimizer(store=spec)`` calls ``store_runtime.configure``,
    which tears the previous process store down and builds a fresh one —
    correct for the one-shot CLI, fatal for a daemon whose handler and
    runner threads all share the runtime store (a job arriving mid-flight
    would close the store out from under every other job).  This factory
    instead backs the optimizer's :class:`ConeCache` with the current
    runtime store as-is; worker task tuples still ship
    ``store_runtime.current_spec()``, so pool workers adopt the same
    backend exactly as on the CLI path.
    """
    assert "store" not in kwargs, (
        "make_runtime_optimizer wires the runtime store itself; "
        "configure it once via store_runtime.configure"
    )
    kwargs.setdefault("cache", ConeCache(store=store_runtime.get_store()))
    return LookaheadOptimizer(**kwargs)
