"""The lookahead synthesis flow (Sec. 3.1 of the paper).

Each round performs one level of the timing-driven decomposition of Eqn. 2:

1. cluster the AIG into a technology-independent network ``T`` (renode);
2. compute the SPCF of every critical output of the decomposed circuit;
3. *primary simplification*: the Reduce/Simplify walk yields the simplified
   cone ``y_pos`` and the window function Σ1;
4. *secondary simplification*: the original cone is re-minimized under the
   care set !Σ1, yielding ``y_neg``;
5. *reconstruction*: ``y = ITE(Σ1, y_pos, y_neg)``, simplified through the
   implication-rule engine, is synthesized arrival-aware into a fresh AIG
   together with all untouched outputs;
6. area recovery (SAT sweeping) cleans the result.

Rounds repeat while the AIG depth improves, which realizes the iterated
window sequence Σ1, Σ2, ..., Σl of the carry-lookahead analogy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..aig import AIG, CONST0, depth, levels, lit_not, lit_var, random_patterns
from ..netlist import (
    ArrivalAwareBuilder,
    Network,
    compute_levels,
    renode,
    synthesize_into,
)
from .area_recovery import sat_sweep
from .model import BddBlowup, BddModel, ExactModel, SignatureModel
from .reconstruct import reconstruct
from .reduce import primary_reduce
from .secondary import ExactCareChecker, SatCareChecker, secondary_simplify
from .spcf import (
    Spcf,
    spcf_exact_bdd,
    spcf_exact_tt,
    spcf_overapprox_tt,
    spcf_signature,
    timed_simulation,
    unpack_patterns,
)

TT_MODE_PI_LIMIT = 12
"""Exhaustive truth-table global functions are used up to this many PIs."""

BDD_MODE_PI_LIMIT = 26
"""BDD-domain exact functions are attempted up to this many PIs."""


class LookaheadOptimizer:
    """Timing-driven optimizer producing lookahead logic circuits."""

    def __init__(
        self,
        max_rounds: int = 4,
        k: int = 6,
        mode: str = "auto",
        spcf_kind: str = "exact",
        sim_width: int = 1024,
        seed: int = 0,
        use_rules: bool = True,
        max_outputs_per_round: Optional[int] = None,
        verify: bool = False,
        area_recovery: bool = True,
        walk_modes: Tuple[str, ...] = ("target", "full"),
    ):
        """Configure the optimizer.

        ``mode``: 'tt' (exact global functions), 'sim' (signatures), or
        'auto' (by PI count).  ``spcf_kind``: 'exact' or 'overapprox'
        (truth-table modes only; simulation mode always estimates).
        ``verify``: equivalence-check every accepted round (slow; tests).
        """
        self.max_rounds = max_rounds
        self.k = k
        self.mode = mode
        self.spcf_kind = spcf_kind
        self.sim_width = sim_width
        self.seed = seed
        self.use_rules = use_rules
        self.max_outputs_per_round = max_outputs_per_round
        self.verify = verify
        self.area_recovery = area_recovery
        self.walk_modes = walk_modes

    # -- public API -------------------------------------------------------------

    @staticmethod
    def _quality(aig: AIG) -> Tuple[int, int, int]:
        """Lexicographic quality: depth, then total PO levels, then size."""
        from ..aig import po_levels

        pol = po_levels(aig)
        return (max(pol) if pol else 0, sum(pol), aig.num_ands())

    def optimize(self, aig: AIG) -> AIG:
        """Optimize the AIG; returns an equivalent circuit, never worse in depth.

        Each walk strategy is run as its own full round sequence (greedy
        per-round mixing of strategies traps the search in local optima);
        the best final result wins.
        """
        results = [
            self._optimize_with(aig, walk_mode)
            for walk_mode in self.walk_modes
        ]
        return min(results, key=self._quality)

    def _optimize_with(self, aig: AIG, walk_mode: str) -> AIG:
        current = aig.extract()
        for _round in range(self.max_rounds):
            candidate = self._one_round(current, walk_mode)
            if candidate is None:
                break
            if self._quality(candidate) >= self._quality(current):
                break
            if self.verify:
                from ..cec import assert_equivalent

                assert_equivalent(current, candidate, "lookahead round")
            current = candidate
        return current

    # -- one decomposition level ---------------------------------------------------

    def _resolve_mode(self, aig: AIG) -> str:
        if self.mode != "auto":
            return self.mode
        if aig.num_pis <= TT_MODE_PI_LIMIT:
            return "tt"
        if aig.num_pis <= BDD_MODE_PI_LIMIT:
            return "bdd"
        return "sim"

    def _one_round(self, aig: AIG, walk_mode: str = "target") -> Optional[AIG]:
        d = depth(aig)
        if d <= 1:
            return None
        mode = self._resolve_mode(aig)
        net = renode(aig, self.k)
        aig_levels = levels(aig)
        # Criticality is judged on the decomposed circuit (the AIG), where
        # the SPCF and the paper's quality metric live.
        critical = [
            i
            for i, po in enumerate(aig.pos)
            if aig_levels[lit_var(po)] == d
        ]
        if self.max_outputs_per_round is not None:
            critical = critical[: self.max_outputs_per_round]

        pi_words: List[int] = []
        timed = None
        bdd_manager = None

        def ensure_sim():
            nonlocal pi_words, timed
            if timed is None:
                pi_words = random_patterns(
                    aig.num_pis, self.sim_width, self.seed
                )
                pi_bits = unpack_patterns(pi_words, self.sim_width)
                timed = timed_simulation(aig, pi_bits)

        if mode == "sim":
            ensure_sim()
        elif mode == "bdd":
            from ..bdd import BDD

            bdd_manager = BDD()

        processed: List[Tuple[int, Network, int, Network]] = []
        for po_index in critical:
            po_mode = mode
            spcf = self._compute_spcf(
                aig, po_index, aig_levels, po_mode, timed, pi_words,
                bdd_manager,
            )
            if po_mode == "bdd" and spcf is None:
                # BDD blowup: retry this output in the signature domain.
                po_mode = "sim"
                ensure_sim()
                spcf = self._compute_spcf(
                    aig, po_index, aig_levels, po_mode, timed, pi_words, None
                )
            if spcf is None or spcf.is_empty():
                continue  # output has no (sensitizable) critical path
            try:
                result = self._process_output(
                    net, po_index, spcf, po_mode, pi_words, walk_mode,
                    bdd_manager,
                )
            except BddBlowup:
                ensure_sim()
                spcf = self._compute_spcf(
                    aig, po_index, aig_levels, "sim", timed, pi_words, None
                )
                if spcf is None or spcf.is_empty():
                    continue
                result = self._process_output(
                    net, po_index, spcf, "sim", pi_words, walk_mode, None
                )
            if result is not None:
                processed.append(result)
        if not processed:
            return None
        rebuilt = self._rebuild(aig, processed)
        if self.area_recovery:
            rebuilt = sat_sweep(rebuilt, seed=self.seed)
        return rebuilt

    def _compute_spcf(
        self,
        aig: AIG,
        po_index: int,
        aig_levels: List[int],
        mode: str,
        timed,
        pi_words: List[int],
        bdd_manager=None,
    ) -> Optional[Spcf]:
        po_depth = aig_levels[lit_var(aig.pos[po_index])]
        if po_depth == 0:
            return None
        # Start at the full output depth and relax: longest paths may be
        # false (statically unsensitizable), and a near-empty SPCF makes a
        # useless weight metric — the paper's Delta is a free threshold.
        min_count = 1 if mode == "tt" else max(8, self.sim_width // 128)
        min_delta = max(1, po_depth // 2)
        fallback = None
        for delta in range(po_depth, min_delta - 1, -1):
            if mode == "tt":
                if self.spcf_kind == "overapprox":
                    tt = spcf_overapprox_tt(aig, po_index, delta)
                else:
                    tt = spcf_exact_tt(aig, po_index, delta)
                spcf = Spcf("tt", tt=tt)
            elif mode == "bdd":
                ref = spcf_exact_bdd(aig, po_index, delta, bdd_manager)
                if ref is None:
                    return None  # manager blowup: caller falls back
                spcf = Spcf(
                    "bdd", bdd=bdd_manager, ref=ref, num_pis=aig.num_pis
                )
            else:
                sig = spcf_signature(
                    aig, po_index, delta, None, timed=timed
                )
                spcf = Spcf("sim", signature=sig)
            if spcf.count >= min_count:
                return spcf
            if fallback is None and not spcf.is_empty():
                fallback = spcf
        return fallback

    def _process_output(
        self,
        net: Network,
        po_index: int,
        spcf: Spcf,
        mode: str,
        pi_words: List[int],
        walk_mode: str = "target",
        bdd_manager=None,
    ) -> Optional[Tuple[int, Network, int, Network]]:
        pos_net = net.extract_po_cone(po_index)
        neg_net = net.extract_po_cone(po_index)
        if mode == "tt":
            model = ExactModel(pos_net)
        elif mode == "bdd":
            model = BddModel(pos_net, bdd=bdd_manager)
        else:
            model = SignatureModel(pos_net, pi_words, self.sim_width)
        spcf_fn = model.spcf_fn(spcf)
        primary = primary_reduce(
            pos_net, 0, model, spcf_fn, walk_mode=walk_mode
        )
        if not primary.success or primary.sigma_nid is None:
            return None
        model.recompute()  # include the freshly added window/Σ nodes
        sigma_fn = model.fn(primary.sigma_nid)
        care_fn = model.complement(sigma_fn)
        if mode == "tt":
            checker = ExactCareChecker(ExactModel(neg_net), care_fn)
        elif mode == "bdd":
            checker = ExactCareChecker(
                BddModel(neg_net, bdd=bdd_manager), care_fn
            )
        else:
            checker = SatCareChecker(
                SignatureModel(neg_net, pi_words, self.sim_width),
                care_fn,
                pos_net,
                primary.sigma_nid,
                neg_net,
            )
        secondary_simplify(neg_net, 0, checker, max_nodes=24)
        return po_index, pos_net, primary.sigma_nid, neg_net

    def _rebuild(
        self,
        aig: AIG,
        processed: List[Tuple[int, Network, int, Network]],
    ) -> AIG:
        dest = AIG()
        builder = ArrivalAwareBuilder(dest)
        mapping: Dict[int, int] = {0: CONST0}
        pi_lits = []
        for var, name in zip(aig.pis, aig.pi_names):
            lit = dest.add_pi(name)
            mapping[var] = lit
            pi_lits.append(lit)
        by_po = {po_index: entry for entry in processed for po_index in [entry[0]]}
        new_pos: List[int] = []
        for i, po_lit in enumerate(aig.pos):
            entry = by_po.get(i)
            if entry is None:
                new_pos.append(aig.copy_cone(dest, mapping, [po_lit])[0])
                continue
            _idx, pos_net, sigma_nid, neg_net = entry
            pos_lits = synthesize_into(builder, pos_net, pi_lits)
            neg_lits = synthesize_into(builder, neg_net, pi_lits)
            root_p, neg_p = pos_net.pos[0]
            y_pos = pos_lits[root_p]
            if neg_p:
                y_pos = lit_not(y_pos)
            sigma = pos_lits[sigma_nid]
            root_n, neg_n = neg_net.pos[0]
            y_neg = neg_lits[root_n]
            if neg_n:
                y_neg = lit_not(y_neg)
            recon = reconstruct(builder, sigma, y_pos, y_neg, self.use_rules)
            original = aig.copy_cone(dest, mapping, [po_lit])[0]
            # Keep the original cone when the reconstruction did not win.
            if builder.level(recon) < builder.level(original):
                new_pos.append(recon)
            else:
                new_pos.append(original)
        for lit, name in zip(new_pos, aig.po_names):
            dest.add_po(lit, name)
        return dest.extract()


def optimize_lookahead(aig: AIG, **kwargs) -> AIG:
    """One-call convenience wrapper around :class:`LookaheadOptimizer`."""
    return LookaheadOptimizer(**kwargs).optimize(aig)
