"""Job-shaped flow entry points behind `repro serve` (core/flow.py)."""

from __future__ import annotations

import pytest

from repro.adders import ripple_carry_adder
from repro.cec import check_equivalence
from repro.core import (
    execute_optimize_job,
    job_config_key,
    normalize_job_config,
)
from repro.store import runtime as store_runtime


@pytest.fixture(autouse=True)
def _isolated_runtime():
    store_runtime.reset()
    yield
    store_runtime.reset()


class TestNormalize:
    def test_defaults(self):
        config = normalize_job_config(None)
        assert config["flow"] == "lookahead"
        assert config["arrivals"] is None
        assert config["verify"] is False

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            normalize_job_config({"flwo": "lookahead"})

    def test_unknown_flow_rejected(self):
        with pytest.raises(ValueError):
            normalize_job_config({"flow": "abc"})  # baselines not served

    def test_arrival_validation(self):
        config = normalize_job_config({"arrivals": {"a0": 3}})
        assert config["arrivals"] == {"a0": 3}
        for bad in ({}, {"a0": "3"}, {"a0": True}, {3: 1}, [("a0", 3)]):
            with pytest.raises(ValueError):
                normalize_job_config({"arrivals": bad})

    def test_effort_knobs_default_to_none(self):
        config = normalize_job_config(None)
        for knob in ("max_rounds", "max_outputs_per_round", "sim_width",
                     "walk_modes", "max_iterations"):
            assert config[knob] is None

    def test_effort_knob_validation(self):
        config = normalize_job_config({
            "max_rounds": 3,
            "max_outputs_per_round": 4,
            "sim_width": 512,
            "walk_modes": ("target",),
            "max_iterations": 2,
        })
        assert config["max_rounds"] == 3
        assert config["walk_modes"] == ["target"]  # JSON-compatible
        for bad in (
            {"max_rounds": 0},
            {"max_rounds": True},
            {"sim_width": -1},
            {"sim_width": "512"},
            {"max_iterations": 0},
            {"walk_modes": []},
            {"walk_modes": "target"},
            {"walk_modes": ["sideways"]},
        ):
            with pytest.raises(ValueError):
                normalize_job_config(bad)

    def test_effort_knobs_distinguish_configs(self):
        base = normalize_job_config(None)
        bounded = normalize_job_config({"max_rounds": 4, "sim_width": 512})
        assert job_config_key(base) != job_config_key(bounded)
        # walk-mode order is part of the identity (candidate order
        # matters to the optimizer).
        modes_a = normalize_job_config({"walk_modes": ["target", "full"]})
        modes_b = normalize_job_config({"walk_modes": ["full", "target"]})
        assert job_config_key(modes_a) != job_config_key(modes_b)

    def test_make_job_optimizer_applies_knobs(self):
        from repro.core.flow import make_job_optimizer

        config = normalize_job_config({
            "max_rounds": 4,
            "max_outputs_per_round": 6,
            "sim_width": 512,
            "walk_modes": ["target"],
        })
        opt = make_job_optimizer(config, workers=1)
        try:
            assert opt.max_rounds == 4
            assert opt.max_outputs_per_round == 6
            assert opt.sim_width == 512
            assert opt.walk_modes == ("target",)
        finally:
            opt.close()

    def test_key_ignores_verify_and_arrival_order(self):
        base = normalize_job_config({"arrivals": {"a": 1, "b": 2}})
        reordered = normalize_job_config({"arrivals": {"b": 2, "a": 1}})
        verified = normalize_job_config(
            {"arrivals": {"a": 1, "b": 2}, "verify": True}
        )
        assert job_config_key(base) == job_config_key(reordered)
        assert job_config_key(base) == job_config_key(verified)
        other = normalize_job_config({"arrivals": {"a": 1, "b": 3}})
        assert job_config_key(base) != job_config_key(other)


class TestExecute:
    def test_one_shot_job_matches_local_flow(self):
        aig = ripple_carry_adder(4)
        config = normalize_job_config({"flow": "lookahead-only"})
        out = execute_optimize_job(aig, config, workers=1)
        assert check_equivalence(aig, out)
