"""Tests for SAT-based exact synthesis and NPN-database rewriting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, depth, po_tts
from repro.cec import check_equivalence
from repro.netlist import ArrivalAwareBuilder
from repro.opt import chain_to_aig_lit, exact_aig, rewrite_exact
from repro.tt import TruthTable

from ..aig.test_aig import random_aig


KNOWN_MINIMAL = [
    (TruthTable.from_function(lambda a, b: a and b, 2), 1),
    (TruthTable.from_function(lambda a, b: a or b, 2), 1),
    (TruthTable.from_function(lambda a, b: not (a and b), 2), 1),
    (TruthTable.from_function(lambda a, b: a != b, 2), 3),
    (TruthTable.from_function(lambda s, a, b: a if s else b, 3), 3),
    (TruthTable.from_function(lambda a, b, c: (a + b + c) >= 2, 3), 4),
]


class TestExactAig:
    @pytest.mark.parametrize("tt,size", KNOWN_MINIMAL)
    def test_known_minimal_sizes(self, tt, size):
        result = exact_aig(tt, max_gates=size + 1)
        assert result is not None
        assert result.to_tt() == tt
        assert result.num_gates == size

    def test_constants_need_no_gates(self):
        r = exact_aig(TruthTable.const(True, 2))
        assert r is not None and r.num_gates == 0 and r.to_tt().is_const1

    def test_literal_returns_none(self):
        assert exact_aig(TruthTable.var(0, 2)) is None

    @given(st.integers(0, (1 << 8) - 1))
    @settings(deadline=None, max_examples=25)
    def test_random_3var_functions(self, bits):
        tt = TruthTable(bits, 3)
        result = exact_aig(tt, max_gates=7)
        if result is None:
            # Only literals/constants are gate-free; everything else of
            # 3 vars fits in 7 gates.
            sup = tt.support()
            assert len(sup) <= 1
        else:
            assert result.to_tt() == tt

    def test_budget_gives_up_gracefully(self):
        xor3 = TruthTable.from_function(
            lambda a, b, c: (a + b + c) % 2 == 1, 3
        )
        # 5-gate chains don't exist; with a tiny budget the r=6 proof
        # cannot complete either, so the call returns None rather than
        # hanging.
        assert exact_aig(xor3, max_gates=4, max_conflicts=50) is None

    def test_chain_instantiation(self):
        maj = TruthTable.from_function(lambda a, b, c: (a + b + c) >= 2, 3)
        result = exact_aig(maj, max_gates=5)
        aig = AIG()
        builder = ArrivalAwareBuilder(aig)
        ins = [aig.add_pi() for _ in range(3)]
        lit = chain_to_aig_lit(result, builder, ins)
        aig.add_po(lit)
        assert po_tts(aig)[0] == maj


class TestRewriteExact:
    @given(st.integers(0, 15))
    @settings(deadline=None, max_examples=5)
    def test_preserves_function(self, seed):
        aig = random_aig(seed, n_pis=5, n_nodes=20, n_pos=2)
        out = rewrite_exact(aig, max_gates=4, max_conflicts=500)
        assert check_equivalence(aig, out)

    def test_database_build_finds_xor_form(self):
        from repro.opt.npn_rewrite import _build_from_db
        from repro.tt import TruthTable

        xor2 = TruthTable.from_function(lambda a, b: a != b, 2)
        aig = AIG()
        builder = ArrivalAwareBuilder(aig)
        a, b = aig.add_pi(), aig.add_pi()
        lit = _build_from_db(builder, xor2, [a, b], 4, 2000)
        assert lit is not None
        aig.add_po(lit)
        assert po_tts(aig)[0] == xor2
        assert aig.extract().num_ands() == 3
