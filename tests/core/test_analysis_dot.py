"""Tests for decomposition analytics, DOT export, and area mapping."""

import io

import pytest

from repro.adders import ripple_carry_adder
from repro.aig import AIG, depth, write_dot
from repro.core import LookaheadOptimizer, analyze_round, print_round_report
from repro.mapping import map_aig, mapped_delay


class TestAnalyzeRound:
    def test_adder_round_report(self):
        aig = ripple_carry_adder(4)
        report = analyze_round(aig)
        assert report.aig_depth == depth(aig)
        assert report.num_successful >= 1
        for o in report.outputs:
            assert o.po_level == report.aig_depth
            if o.success:
                assert o.cone_level_after < o.cone_level_before
                assert o.marked_nodes >= 1
                assert o.sigma_level is not None

    def test_dry_run_does_not_mutate(self):
        aig = ripple_carry_adder(4)
        before = aig.num_ands()
        analyze_round(aig)
        assert aig.num_ands() == before

    def test_print_report_smoke(self, capsys):
        report = analyze_round(ripple_carry_adder(3))
        print_round_report(report)
        out = capsys.readouterr().out
        assert "AIG depth" in out

    def test_sim_mode_report(self):
        aig = ripple_carry_adder(8)  # 17 PIs -> sim in the dry run
        report = analyze_round(
            aig, LookaheadOptimizer(sim_width=256), max_outputs=2
        )
        assert len(report.outputs) <= 2
        assert all(o.spcf_mode in ("sim", "tt") for o in report.outputs)


class TestDotExport:
    def test_structure(self):
        aig = ripple_carry_adder(2)
        buf = io.StringIO()
        write_dot(aig, buf)
        text = buf.getvalue()
        assert text.startswith("digraph aig")
        assert text.count("invtriangle") == aig.num_pos
        assert text.count("shape=box") == aig.num_pis
        # Complemented edges appear dashed.
        assert "style=dashed" in text

    def test_size_limit(self):
        aig = ripple_carry_adder(16)
        with pytest.raises(ValueError):
            write_dot(aig, io.StringIO(), max_nodes=10)


class TestAreaMapping:
    def test_area_vs_delay_tradeoff(self):
        aig = ripple_carry_adder(8)
        delay_net = map_aig(aig, objective="delay")
        area_net = map_aig(aig, objective="area")
        assert area_net.area <= delay_net.area
        assert mapped_delay(delay_net) <= mapped_delay(area_net)

    def test_area_mapping_correct(self):
        aig = ripple_carry_adder(4)
        net = map_aig(aig, objective="area")
        from repro.aig import evaluate

        for m in range(64):
            bits = [bool((m >> i) & 1) for i in range(9)]
            assert net.evaluate(bits) == evaluate(aig, bits)

    def test_bad_objective_rejected(self):
        with pytest.raises(ValueError):
            map_aig(ripple_carry_adder(2), objective="power")
