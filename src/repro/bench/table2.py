"""One definition of a Table 2 row.

The paper's headline result is the 15-circuit MCNC / ISCAS-85 /
OpenSPARC comparison of SIS, ABC, DC and lookahead synthesis.  Every
consumer of that table — the pytest benches under ``benchmarks/``, the
sharded orchestrator (:mod:`repro.bench.orchestrator`), the golden QoR
suite and a ``repro serve`` daemon answering Lookahead jobs — must agree
on what a row *is*: which flow functions run, how the Lookahead column's
effort scales with circuit size, and which metrics a cell records.  This
module is that single definition; everything else imports it.

A row is ``{gates, levels, delay_ps, power_uw}`` per flow: AIG AND
count, AIG levels, technology-mapped delay, and dynamic power at 1 GHz.
Every optimized circuit is equivalence-checked against its original
before being measured, as in the paper.
"""

from __future__ import annotations

import io
from functools import lru_cache
from os import environ
from typing import Any, Callable, Dict, List, Optional

from ..aig import AIG, depth, read_aag
from ..cec import check_equivalence
from ..mapping import dynamic_power_uw, map_aig, mapped_delay
from .circuits import BENCHMARKS

FLOW_ORDER = ("SIS", "ABC", "DC", "Lookahead")
"""Table 2 column order."""

BASELINES = ("SIS", "ABC", "DC")
"""Flows the headline averages compare the Lookahead column against."""

QUICK_SET = ("C432", "C880", "C1908", "C3540", "dalu")
"""The small circuits run under ``REPRO_BENCH_QUICK=1`` (and by the CI
bench-orchestrator smoke job)."""

FULL_EFFORT_MAX_ANDS = 800
BOUNDED_EFFORT_MAX_ANDS = 2200


def quick_mode() -> bool:
    """REPRO_BENCH_QUICK=1 restricts Table 2 to the small circuits."""
    return environ.get("REPRO_BENCH_QUICK", "") == "1"


def circuit_names() -> List[str]:
    """The benched circuit set (honouring :func:`quick_mode`)."""
    if quick_mode():
        return list(QUICK_SET)
    return list(BENCHMARKS)


@lru_cache(maxsize=4)
def get_circuit(name: str) -> AIG:
    """Generate a Table 2 circuit, memoized with a small bound.

    The cache exists so the four flows of one row share a single
    generation; the bound keeps a full 15-circuit sweep from pinning
    every stand-in (the big fabrics included) in memory at once.
    Callers must treat the returned AIG as read-only.
    """
    return BENCHMARKS[name]()


def effort_options(num_ands: int) -> Dict[str, Any]:
    """Lookahead-column effort, scaled to circuit size, as job options.

    Small circuits get the full flow (empty dict = the flow's own
    defaults); large ones get bounded rounds and fewer flow iterations
    so the 15-circuit table regenerates in about an hour of CPU.  The
    returned dict is exactly the ``options`` payload of a ``repro
    serve`` submit (see :func:`repro.core.flow.normalize_job_config`),
    which is what makes a served Lookahead row bit-identical to a local
    one: the effort tier travels with the job.
    """
    if num_ands <= FULL_EFFORT_MAX_ANDS:
        return {}
    if num_ands <= BOUNDED_EFFORT_MAX_ANDS:
        return {
            "max_rounds": 4,
            "max_outputs_per_round": 6,
            "sim_width": 512,
            "walk_modes": ["target"],
            "max_iterations": 2,
        }
    return {
        "max_rounds": 3,
        "max_outputs_per_round": 4,
        "sim_width": 512,
        "walk_modes": ["target"],
        "max_iterations": 1,
    }


def lookahead_effort_scaled(aig: AIG) -> AIG:
    """The Lookahead column, executed locally.

    Routes through the job-shaped flow entry points so the local path
    and the served path run literally the same code on the same
    normalized config.
    """
    from ..core.flow import execute_optimize_job, normalize_job_config

    config = normalize_job_config(
        {"flow": "lookahead", **effort_options(aig.num_ands())}
    )
    return execute_optimize_job(aig, config)


def _baseline_flows() -> Dict[str, Callable[[AIG], AIG]]:
    from ..opt import abc_resyn2rs, dc_map_effort_high, sis_best

    return {"SIS": sis_best, "ABC": abc_resyn2rs, "DC": dc_map_effort_high}


def flow_functions() -> Dict[str, Callable[[AIG], AIG]]:
    """Flow name -> ``AIG -> AIG`` for every Table 2 column."""
    flows = dict(_baseline_flows())
    flows["Lookahead"] = lookahead_effort_scaled
    return flows


def measure(original: AIG, optimized: AIG, label: str = "flow") -> Dict[str, Any]:
    """Equivalence-check then map and measure one table cell."""
    if not check_equivalence(original, optimized):
        raise AssertionError(f"{label}: optimized circuit is not equivalent")
    netlist = map_aig(optimized)
    return {
        "gates": optimized.num_ands(),
        "levels": depth(optimized),
        "delay_ps": mapped_delay(netlist),
        "power_uw": dynamic_power_uw(netlist),
    }


def run_flow_row(
    circuit_name: str,
    flow_name: str,
    aig: Optional[AIG] = None,
    client=None,
    lookahead_options: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Compute one Table 2 cell: optimize, CEC, map, measure.

    ``client`` (a :class:`repro.serve.ServeClient`) offloads the
    Lookahead column to a running daemon — the returned circuit is
    re-checked and measured locally, so a served cell differs from a
    local one only in where the optimization ran.  Baselines always run
    locally (the daemon deliberately refuses them; they never touch the
    store).  ``lookahead_options`` pins the effort tier explicitly (the
    orchestrator passes the manifest's recorded options); by default it
    is derived from the circuit size.
    """
    if aig is None:
        aig = get_circuit(circuit_name)
    label = f"{flow_name} on {circuit_name}"
    if flow_name == "Lookahead":
        options = lookahead_options
        if options is None:
            options = effort_options(aig.num_ands())
        if client is not None:
            result = client.submit(
                aig, options={"flow": "lookahead", **options}
            )
            optimized = read_aag(io.StringIO(result["circuit"]))
        else:
            from ..core.flow import execute_optimize_job, normalize_job_config

            config = normalize_job_config({"flow": "lookahead", **options})
            optimized = execute_optimize_job(aig, config)
    elif flow_name in BASELINES:
        optimized = _baseline_flows()[flow_name](aig)
    else:
        raise ValueError(f"unknown Table 2 flow {flow_name!r}")
    return measure(aig, optimized, label)


# -- golden QoR configs -------------------------------------------------------

GOLDEN_W1 = {"max_rounds": 2, "max_outputs_per_round": 8, "sim_width": 512}
"""The serial bench_speed optimizer configuration (``lookahead-w1``).

Must stay in lockstep with ``benchmarks/bench_speed.py::_optimizer`` —
the goldens double as a check that BENCH_speed.json stays reproducible.
"""

GOLDEN_QUICK = {
    "max_rounds": 1,
    "max_outputs_per_round": 2,
    "sim_width": 256,
    "walk_modes": ("target",),
}
"""Quick-effort config for the big Table 2 circuits in the golden QoR
suite: one bounded round keeps the full 15-circuit surface inside the
tier-1 wall-clock budget while still pinning depth per circuit."""

_GOLDEN_W1_PINNED = frozenset({"rot"})
"""Circuits above the size threshold that keep the w1 config anyway
(rot is the BENCH_speed reference circuit; its goldens predate the
quick tier and must not silently change)."""


def golden_config(name: str, num_ands: int) -> Dict[str, Any]:
    """Optimizer kwargs the golden QoR suite uses for ``name``."""
    if name in _GOLDEN_W1_PINNED or num_ands <= FULL_EFFORT_MAX_ANDS:
        return dict(GOLDEN_W1)
    return dict(GOLDEN_QUICK)


def golden_area_effort(config: Dict[str, Any]) -> str:
    """Area-recovery effort paired with a golden config.

    Full-effort recovery on the quick-tier circuits would cost more
    than their optimization; ``medium`` keeps the ``ands_post`` bound
    deterministic at a fraction of the price.
    """
    return "medium" if config == GOLDEN_QUICK else "high"
