"""Property tests for truth-table composition (the global-function core)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tt import TruthTable


def tt_strategy(nvars):
    return st.builds(
        TruthTable, st.integers(0, (1 << (1 << nvars)) - 1), st.just(nvars)
    )


class TestComposeAlgebra:
    @given(tt_strategy(3), tt_strategy(4), tt_strategy(4), tt_strategy(4))
    @settings(deadline=None, max_examples=30)
    def test_pointwise_semantics(self, f, g0, g1, g2):
        composed = f.compose([g0, g1, g2])
        for m in range(1 << 4):
            inner = [g0.value(m), g1.value(m), g2.value(m)]
            assert composed.value(m) == f.evaluate(inner)

    @given(tt_strategy(2), tt_strategy(3), tt_strategy(3))
    @settings(deadline=None, max_examples=30)
    def test_complement_distributes(self, f, g0, g1):
        assert (~f).compose([g0, g1]) == ~(f.compose([g0, g1]))

    @given(tt_strategy(2), tt_strategy(2), tt_strategy(3), tt_strategy(3))
    @settings(deadline=None, max_examples=30)
    def test_and_distributes(self, f1, f2, g0, g1):
        lhs = (f1 & f2).compose([g0, g1])
        rhs = f1.compose([g0, g1]) & f2.compose([g0, g1])
        assert lhs == rhs

    @given(tt_strategy(3))
    @settings(deadline=None, max_examples=20)
    def test_identity_composition(self, f):
        identity = [TruthTable.var(i, 3) for i in range(3)]
        assert f.compose(identity) == f

    @given(tt_strategy(2), tt_strategy(3), tt_strategy(3))
    @settings(deadline=None, max_examples=20)
    def test_constant_absorbs(self, f, g0, g1):
        if f.is_const0:
            assert f.compose([g0, g1]).is_const0
        if f.is_const1:
            assert f.compose([g0, g1]).is_const1

    @given(tt_strategy(2), tt_strategy(2), tt_strategy(4), tt_strategy(4))
    @settings(deadline=None, max_examples=20)
    def test_nested_composition_associates(self, f, g, h0, h1):
        # Composing step-by-step equals composing the composed functions:
        # f(g(h0,h1), h0) built either way must agree.
        mid = f.compose([g, TruthTable.var(0, 2)])
        lhs = mid.compose([h0, h1])
        rhs = f.compose([g.compose([h0, h1]), h0])
        assert lhs == rhs
