"""A 70 nm-flavored standard-cell library (genlib-style).

The paper maps to "a library of gates for the 70nm CMOS technology" whose
exact contents are proprietary; this representative library preserves the
relevant structure — pin counts, relative areas, relative pin-to-pin
delays, and input/output capacitances — so mapped-delay and power *ratios*
between flows are meaningful.  Units: delay in picoseconds at a nominal
load, area in square-micron-ish relative units, capacitance in fF.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..tt import TruthTable


class Cell:
    """One library cell: a single-output combinational gate."""

    __slots__ = (
        "name",
        "tt",
        "area",
        "intrinsic_delay",
        "load_slope",
        "input_cap",
    )

    def __init__(
        self,
        name: str,
        tt: TruthTable,
        area: float,
        intrinsic_delay: float,
        load_slope: float,
        input_cap: float,
    ):
        self.name = name
        self.tt = tt
        self.area = area
        self.intrinsic_delay = intrinsic_delay
        self.load_slope = load_slope  # ps per fF of output load
        self.input_cap = input_cap  # fF per input pin

    @property
    def num_inputs(self) -> int:
        return self.tt.nvars

    def delay(self, load: float) -> float:
        """Pin-to-pin delay under an output load (fF)."""
        return self.intrinsic_delay + self.load_slope * load

    def __repr__(self) -> str:
        return f"Cell({self.name})"


def _tt(fn, n: int) -> TruthTable:
    return TruthTable.from_function(fn, n)


def default_library() -> List[Cell]:
    """The representative 70 nm cell set used throughout the benches."""
    cells = [
        # name, function, area, intrinsic ps, ps/fF, pin cap fF
        Cell("INV", _tt(lambda a: not a, 1), 1.0, 11.0, 3.2, 1.0),
        Cell("BUF", _tt(lambda a: a, 1), 1.5, 18.0, 2.2, 1.0),
        Cell("NAND2", _tt(lambda a, b: not (a and b), 2), 2.0, 14.0, 3.6, 1.1),
        Cell("NAND3", _tt(lambda a, b, c: not (a and b and c), 3), 3.0, 19.0, 4.2, 1.2),
        Cell("NAND4", _tt(lambda a, b, c, d: not (a and b and c and d), 4), 4.0, 25.0, 4.9, 1.3),
        Cell("NOR2", _tt(lambda a, b: not (a or b), 2), 2.0, 16.0, 4.1, 1.1),
        Cell("NOR3", _tt(lambda a, b, c: not (a or b or c), 3), 3.0, 23.0, 5.0, 1.2),
        Cell("NOR4", _tt(lambda a, b, c, d: not (a or b or c or d), 4), 4.0, 30.0, 5.8, 1.3),
        Cell("AND2", _tt(lambda a, b: a and b, 2), 2.5, 20.0, 3.0, 1.0),
        Cell("OR2", _tt(lambda a, b: a or b, 2), 2.5, 22.0, 3.1, 1.0),
        Cell("XOR2", _tt(lambda a, b: a != b, 2), 4.5, 26.0, 4.4, 1.8),
        Cell("XNOR2", _tt(lambda a, b: a == b, 2), 4.5, 26.0, 4.4, 1.8),
        Cell(
            "AOI21",
            _tt(lambda a, b, c: not ((a and b) or c), 3),
            3.0, 18.0, 4.4, 1.2,
        ),
        Cell(
            "OAI21",
            _tt(lambda a, b, c: not ((a or b) and c), 3),
            3.0, 18.0, 4.4, 1.2,
        ),
        Cell(
            "AOI22",
            _tt(lambda a, b, c, d: not ((a and b) or (c and d)), 4),
            4.0, 22.0, 5.0, 1.3,
        ),
        Cell(
            "OAI22",
            _tt(lambda a, b, c, d: not ((a or b) and (c or d)), 4),
            4.0, 22.0, 5.0, 1.3,
        ),
        Cell(
            "MUX2",  # s ? a : b  (pins ordered s, a, b)
            _tt(lambda s, a, b: a if s else b, 3),
            5.0, 28.0, 4.6, 1.5,
        ),
        Cell(
            "MAJ3",
            _tt(lambda a, b, c: (a + b + c) >= 2, 3),
            5.5, 30.0, 5.0, 1.5,
        ),
    ]
    return cells


NOMINAL_LOAD_FF = 3.0
"""Default output load assumed for unmapped fanout estimation."""

VDD = 0.9
"""Supply voltage (V) for the 70 nm-class node."""

FREQUENCY_HZ = 1.0e9
"""The paper reports power at 1 GHz."""
