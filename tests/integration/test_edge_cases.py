"""Edge-case and failure-injection tests across the toolchain."""

import pytest

from repro.aig import AIG, CONST0, CONST1, depth, lit_not, po_tts
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer, sat_sweep
from repro.mapping import map_aig
from repro.netlist import network_to_aig, renode
from repro.opt import abc_resyn2rs, balance, dc_map_effort_high, speed_up

ALL_PIPELINE = [
    balance,
    speed_up,
    abc_resyn2rs,
    dc_map_effort_high,
    lambda a: LookaheadOptimizer(max_rounds=2).optimize(a),
    sat_sweep,
]


def _degenerate_circuits():
    # Constant outputs.
    c1 = AIG()
    c1.add_pi("x")
    c1.add_po(CONST0, "zero")
    c1.add_po(CONST1, "one")
    # PO wired straight to a PI (both polarities) and duplicated POs.
    c2 = AIG()
    x = c2.add_pi("x")
    y = c2.add_pi("y")
    c2.add_po(x, "same")
    c2.add_po(lit_not(x), "inv")
    n = c2.and_(x, y)
    c2.add_po(n, "n1")
    c2.add_po(n, "n2")
    # Single gate.
    c3 = AIG()
    a, b = c3.add_pi(), c3.add_pi()
    c3.add_po(c3.and_(a, b))
    # Deep chain of one variable: x & x & ... collapses by strashing, so
    # alternate polarities to keep structure.
    c4 = AIG()
    xs = [c4.add_pi() for _ in range(3)]
    acc = xs[0]
    for i in range(6):
        acc = c4.xor_(acc, xs[i % 3])
    c4.add_po(acc)
    return [c1, c2, c3, c4]


@pytest.mark.parametrize("idx", range(4))
@pytest.mark.parametrize("flow_idx", range(len(ALL_PIPELINE)))
def test_flows_survive_degenerate_circuits(idx, flow_idx):
    aig = _degenerate_circuits()[idx]
    out = ALL_PIPELINE[flow_idx](aig)
    assert check_equivalence(aig, out)


@pytest.mark.parametrize("idx", range(4))
def test_renode_roundtrip_degenerate(idx):
    aig = _degenerate_circuits()[idx]
    back = network_to_aig(renode(aig))
    assert check_equivalence(aig, back)


@pytest.mark.parametrize("idx", range(4))
def test_mapping_degenerate(idx):
    aig = _degenerate_circuits()[idx]
    net = map_aig(aig)
    for m in range(1 << aig.num_pis):
        bits = [bool((m >> i) & 1) for i in range(aig.num_pis)]
        from repro.aig import evaluate

        assert net.evaluate(bits) == evaluate(aig, bits)


def test_optimizer_on_zero_po_circuit():
    aig = AIG()
    aig.add_pi()
    out = LookaheadOptimizer().optimize(aig)
    assert out.num_pos == 0


def test_optimizer_keeps_po_names():
    aig = AIG()
    a, b = aig.add_pi("alpha"), aig.add_pi("beta")
    aig.add_po(aig.xor_(a, b), "sum_out")
    out = LookaheadOptimizer(max_rounds=2).optimize(aig)
    assert out.po_names == ["sum_out"]
    assert out.pi_names == ["alpha", "beta"]


def test_deep_xor_ladder_optimizes_safely():
    # XOR ladders have no SPCF-maskable paths (every path sensitizable
    # both ways); the optimizer must not break or worsen them.
    aig = AIG()
    xs = [aig.add_pi() for _ in range(8)]
    acc = xs[0]
    for x in xs[1:]:
        acc = aig.xor_(acc, x)
    aig.add_po(acc)
    out = LookaheadOptimizer(max_rounds=4).optimize(aig)
    assert check_equivalence(aig, out)
    assert depth(out) <= depth(aig)
