"""Combinational equivalence checking (simulation-guided SAT miter).

The paper performs an equivalence check after every optimization; every
optimization test and the Table 2 bench go through this module.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..aig import AIG, lit_word, random_patterns, simulate
from ..sat.cnf import AigCnf


class EquivalenceResult:
    """Outcome of a CEC run."""

    __slots__ = ("equivalent", "counterexample", "po_index")

    def __init__(
        self,
        equivalent: bool,
        counterexample: Optional[List[bool]] = None,
        po_index: Optional[int] = None,
    ):
        self.equivalent = equivalent
        self.counterexample = counterexample
        self.po_index = po_index

    def __bool__(self) -> bool:
        return self.equivalent

    def __repr__(self) -> str:
        if self.equivalent:
            return "EquivalenceResult(equivalent)"
        return (
            f"EquivalenceResult(mismatch at po {self.po_index}, "
            f"cex={self.counterexample})"
        )


def check_equivalence(
    a: AIG, b: AIG, sim_width: int = 1024, seed: int = 0
) -> EquivalenceResult:
    """Check that two AIGs compute identical PO functions.

    PIs are matched by position, POs by position.  Random simulation first
    (cheap counterexamples), then a SAT miter per unresolved output.
    """
    if a.num_pis != b.num_pis:
        raise ValueError("PI counts differ")
    if a.num_pos != b.num_pos:
        raise ValueError("PO counts differ")
    # Phase 1: random simulation.
    patterns = random_patterns(a.num_pis, sim_width, seed)
    vals_a = simulate(a, patterns, sim_width)
    vals_b = simulate(b, patterns, sim_width)
    for i, (pa, pb) in enumerate(zip(a.pos, b.pos)):
        diff = lit_word(vals_a, pa, sim_width) ^ lit_word(vals_b, pb, sim_width)
        if diff:
            bit = (diff & -diff).bit_length() - 1
            cex = [bool((w >> bit) & 1) for w in patterns]
            return EquivalenceResult(False, cex, i)
    # Phase 2: joint structural hashing — cones that are structurally
    # identical (the common case after local optimization) collapse to the
    # same literal and need no proof.
    from ..aig import AIG as _AIG

    joint = _AIG()
    mapping_a = {0: 0}
    mapping_b = {0: 0}
    for pi_a, pi_b, name in zip(a.pis, b.pis, a.pi_names):
        lit = joint.add_pi(name)
        mapping_a[pi_a] = lit
        mapping_b[pi_b] = lit
    lits_a = a.copy_cone(joint, mapping_a, a.pos)
    lits_b = b.copy_cone(joint, mapping_b, b.pos)
    pending = [
        (i, la, lb)
        for i, (la, lb) in enumerate(zip(lits_a, lits_b))
        if la != lb
    ]
    if not pending:
        return EquivalenceResult(True)
    # Phase 3: SAT miter on the joint AIG, one shared encoding, per-PO
    # assumptions (learned clauses are reused across outputs).
    enc = AigCnf()
    roots = [l for _i, la, lb in pending for l in (la, lb)]
    var_map = enc.encode(joint, roots=roots)
    pi_vars = [var_map[pi] for pi in joint.pis]
    for i, la, lb in pending:
        x = enc.add_xor(enc.lit(var_map, la), enc.lit(var_map, lb))
        if enc.solver.solve([x]):
            cex = [
                enc.solver.model_value(v) or False for v in pi_vars
            ]
            return EquivalenceResult(False, cex, i)
    return EquivalenceResult(True)


def lits_equivalent(
    aig: AIG, lit1: int, lit2: int, sim_width: int = 256, seed: int = 0
) -> bool:
    """Check two literals of the *same* AIG for functional equality."""
    if lit1 == lit2:
        return True
    patterns = random_patterns(aig.num_pis, sim_width, seed)
    vals = simulate(aig, patterns, sim_width)
    if lit_word(vals, lit1, sim_width) != lit_word(vals, lit2, sim_width):
        return False
    enc = AigCnf()
    var_map = enc.encode(aig, roots=[lit1, lit2])
    x = enc.add_xor(enc.lit(var_map, lit1), enc.lit(var_map, lit2))
    return not enc.solver.solve([x])


def assert_equivalent(a: AIG, b: AIG, context: str = "") -> None:
    """Raise if the AIGs differ (used as a post-optimization safety net)."""
    result = check_equivalence(a, b)
    if not result:
        where = f" ({context})" if context else ""
        raise AssertionError(
            f"optimized circuit is NOT equivalent{where}: "
            f"po {result.po_index}, cex {result.counterexample}"
        )
