"""Focused tests for espresso-loop internals (expand/irredundant/reduce)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sop import Cover, Cube, isop
from repro.sop.espresso import _expand, _irredundant, _reduce, _supercube
from repro.tt import TruthTable


def tt_strategy(max_vars=4):
    return st.integers(2, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable, st.integers(1, (1 << (1 << n)) - 2), st.just(n)
        )
    )


class TestExpand:
    @given(tt_strategy())
    @settings(deadline=None, max_examples=30)
    def test_expand_stays_off_offset(self, on):
        off = ~on
        cover = isop(on)
        expanded = _expand(cover, off)
        assert (expanded.to_tt() & off).is_const0
        assert on.implies(expanded.to_tt())

    @given(tt_strategy())
    @settings(deadline=None, max_examples=30)
    def test_expand_never_adds_literals(self, on):
        cover = isop(on)
        expanded = _expand(cover, ~on)
        assert expanded.num_literals() <= cover.num_literals()


class TestIrredundant:
    @given(tt_strategy())
    @settings(deadline=None, max_examples=30)
    def test_removal_keeps_coverage(self, on):
        cover = isop(on)
        # Duplicate a cube to create redundancy.
        padded = Cover(cover.cubes + cover.cubes[:1], on.nvars)
        slim = _irredundant(padded, on)
        assert on.implies(slim.to_tt())
        assert len(slim) <= len(padded)

    def test_removes_absorbed_cube(self):
        cover = Cover.parse(["1--", "11-"])
        on = cover.to_tt()
        slim = _irredundant(cover, on)
        assert len(slim) == 1


class TestReduce:
    @given(tt_strategy())
    @settings(deadline=None, max_examples=40)
    def test_reduce_keeps_on_set_covered(self, on):
        # The regression hypothesis found: simultaneous (snapshot) reduce
        # can drop minterms shared by two cubes; sequential reduce must
        # keep the on-set fully covered.
        cover = isop(on)
        reduced = _reduce(cover, on)
        assert on.implies(reduced.to_tt())

    @given(tt_strategy())
    @settings(deadline=None, max_examples=30)
    def test_reduce_stays_within_original(self, on):
        cover = isop(on)
        reduced = _reduce(cover, on)
        assert reduced.to_tt().implies(cover.to_tt())


class TestSupercube:
    @given(tt_strategy())
    @settings(deadline=None, max_examples=30)
    def test_smallest_enclosing_cube(self, t):
        sc = _supercube(t)
        assert t.implies(sc.to_tt())
        # Minimality: every literal of the supercube is forced.
        for var, _pol in sc.literals():
            assert not t.implies(sc.without(var).to_tt()) or \
                sc.without(var).covers(sc)

    def test_exact_for_single_minterm(self):
        t = TruthTable.from_minterms([0b0110], 4)
        assert _supercube(t).to_string() == "0110"
