"""Tests for the baseline optimization flows."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import ripple_carry_adder
from repro.aig import AIG, depth
from repro.cec import check_equivalence
from repro.opt import (
    abc_resyn2rs,
    balance,
    dc_map_effort_high,
    refactor,
    rewrite,
    sis_best,
    sis_minimize,
    speed_up,
)

from ..aig.test_aig import random_aig

ALL_FLOWS = [
    balance,
    rewrite,
    refactor,
    speed_up,
    sis_minimize,
    abc_resyn2rs,
    sis_best,
    dc_map_effort_high,
]


class TestEquivalence:
    @given(st.integers(0, 40), st.sampled_from(ALL_FLOWS))
    @settings(deadline=None, max_examples=25)
    def test_flows_preserve_function(self, seed, flow):
        aig = random_aig(seed, n_pis=6, n_nodes=35, n_pos=3)
        out = flow(aig)
        assert check_equivalence(aig, out), flow.__name__

    @given(st.sampled_from(ALL_FLOWS))
    @settings(deadline=None, max_examples=8)
    def test_flows_on_adder(self, flow):
        aig = ripple_carry_adder(4)
        out = flow(aig)
        assert check_equivalence(aig, out), flow.__name__


class TestBalance:
    def test_flattens_and_chain(self):
        aig = AIG()
        xs = [aig.add_pi() for _ in range(8)]
        acc = xs[0]
        for x in xs[1:]:
            acc = aig.and_(acc, x)
        aig.add_po(acc)
        out = balance(aig)
        assert depth(out) == 3
        assert check_equivalence(aig, out)

    def test_respects_arrival_times(self):
        # A late leaf should end up near the root of the rebuilt tree.
        aig = AIG()
        xs = [aig.add_pi() for _ in range(6)]
        late = aig.xor_(aig.xor_(xs[0], xs[1]), xs[2])  # level 4
        acc = late
        for x in xs[3:]:
            acc = aig.and_(acc, x)
        aig.add_po(acc)
        out = balance(aig)
        assert depth(out) == 5  # late at 4, three early leaves merge below
        assert check_equivalence(aig, out)

    def test_never_increases_depth(self):
        for seed in range(10):
            aig = random_aig(seed, n_pis=5, n_nodes=30, n_pos=2)
            assert depth(balance(aig)) <= depth(aig)

    def test_constant_collapse(self):
        aig = AIG()
        a = aig.add_pi()
        aig.add_po(aig.and_(a, 0))  # and with constant 0
        out = balance(aig)
        assert check_equivalence(aig, out)


class TestObjectives:
    def test_area_rewrite_does_not_grow(self):
        aig = ripple_carry_adder(6)
        out = rewrite(aig, objective="area")
        assert out.num_ands() <= aig.num_ands()

    def test_delay_rewrite_reduces_adder_depth(self):
        aig = ripple_carry_adder(6)
        out = rewrite(aig, objective="delay")
        assert depth(out) < depth(aig)
        assert check_equivalence(aig, out)


class TestFlowShape:
    def test_speed_up_reduces_ripple_depth(self):
        aig = ripple_carry_adder(8)
        assert depth(speed_up(aig)) < depth(aig)

    def test_dc_at_least_as_good_as_parts(self):
        aig = ripple_carry_adder(8)
        d_dc = depth(dc_map_effort_high(aig))
        assert d_dc <= depth(abc_resyn2rs(aig))
        assert d_dc <= depth(sis_best(aig))

    def test_table1_tool_ordering_on_adder(self):
        # The paper's Table 1 ordering on ripple adders:
        # ABC (area flow) leaves depth ~unchanged; SIS improves; DC best.
        aig = ripple_carry_adder(8)
        d_abc = depth(abc_resyn2rs(aig))
        d_sis = depth(sis_best(aig))
        d_dc = depth(dc_map_effort_high(aig))
        assert d_dc <= d_sis <= d_abc
