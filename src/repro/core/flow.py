"""The complete lookahead synthesis flow used in the paper's evaluation.

The paper implements the technique within ABC and stresses that it
"complements existing logic optimization algorithms": lookahead
decomposition runs on top of conventional optimization.  This module wires
the two together — the result is never worse than the best conventional
flow, and improves on it wherever timing-driven decomposition finds
sensitizable critical structure.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..aig import AIG
from .lookahead import LookaheadOptimizer


def _make_quality(arrival_times: Optional[Dict[str, int]]):
    """Quality metric: worst PO completion time under the flow's delay
    model, then size.  With no prescribed arrivals this is exactly the
    legacy (depth, num_ands) ordering."""
    from ..timing import AigTimingEngine, resolve_arrivals

    # One delay model per flow: models are stateless, so resolving inside
    # the closure would only rebuild the same object per candidate
    # evaluation.
    model = resolve_arrivals(arrival_times)
    checked = False

    def _quality(aig: AIG):
        nonlocal checked
        q = (AigTimingEngine(aig, model).depth(), aig.num_ands())
        if __debug__ and not checked:
            checked = True
            fresh = AigTimingEngine(aig, resolve_arrivals(arrival_times))
            assert q[0] == fresh.depth(), (
                "hoisted delay model changed the quality ordering"
            )
        return q

    return _quality


def lookahead_flow(
    aig: AIG,
    optimizer: Optional[LookaheadOptimizer] = None,
    max_iterations: int = 4,
    arrival_times: Optional[Dict[str, int]] = None,
    verify: bool = False,
    spcf_tier: str = "auto",
    spcf_prefilter: bool = True,
    area_recovery: bool = True,
    area_effort: str = "medium",
    sat_portfolio: str = "off",
    store=None,
) -> AIG:
    """Conventional high-effort optimization alternated with decomposition.

    Each iteration takes the better of the conventional flow (which cleans
    up and rebalances the mux/window structures the decomposition
    introduced) and another batch of lookahead rounds; iteration stops at
    a fixpoint.  The result is never worse than the conventional flow
    alone, and the decomposition gets a first shot at the raw circuit,
    where long sensitizable chains are still visible.

    ``arrival_times`` (PI name -> integer arrival) puts both the optimizer
    and the quality gate in the non-uniform arrival regime; when an
    explicit ``optimizer`` is passed its own ``arrival_times`` win.

    ``spcf_tier`` / ``spcf_prefilter`` configure the tiered SPCF kernels
    of the default optimizer, ``area_recovery`` / ``area_effort`` its
    post-round area-recovery pipeline, ``sat_portfolio`` the solver
    portfolio racing its SAT-bound care and redundancy queries (see
    :class:`LookaheadOptimizer` and :mod:`repro.sat.portfolio`), and
    ``store`` the persistent result store (a database path or
    :class:`repro.store.StoreConfig`) that lets every memo layer survive
    across invocations; all six are ignored when an explicit
    ``optimizer`` is passed.

    ``verify=True`` equivalence-checks every accepted candidate against
    the circuit it replaces (and therefore, transitively, against the
    input), raising ``AssertionError`` on any miscompile — the
    belt-and-braces guard for production runs where a wrong circuit is
    much worse than a slow one.
    """
    from .. import perf
    from ..cec import assert_equivalent
    from ..opt import dc_map_effort_high

    opt = optimizer or LookaheadOptimizer(
        max_rounds=16, max_outputs_per_round=8, arrival_times=arrival_times,
        spcf_tier=spcf_tier, spcf_prefilter=spcf_prefilter,
        area_recovery=area_recovery, area_effort=area_effort,
        sat_portfolio=sat_portfolio, store=store,
    )
    _quality = _make_quality(opt.arrival_times)
    current = aig.extract()
    # The conventional candidate is recomputed only when `current` actually
    # changed under it.  When the conventional flow itself wins an
    # iteration, its output doubles as the next iteration's conventional
    # candidate: dc_map_effort_high keeps its input among its internal
    # candidates, so rerunning it on its own output cannot do better than
    # what the quality-gate below would accept anyway.
    conventional = None
    try:
        for _ in range(max_iterations):
            perf.incr("flow.iterations")
            if conventional is None:
                with perf.timer("phase.conventional"):
                    conventional = dc_map_effort_high(current)
            else:
                perf.incr("flow.conventional.reused")
            candidates = [conventional, opt.optimize(current)]
            candidate = min(candidates, key=_quality)
            if _quality(candidate) >= _quality(current):
                break
            if verify:
                with perf.timer("phase.verify"):
                    assert_equivalent(current, candidate, "flow iteration")
            conventional = candidate if candidate is conventional else None
            current = candidate
    finally:
        if optimizer is None:
            opt.close()  # the flow owns optimizers it created
    return current
