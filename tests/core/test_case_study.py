"""Section 4 case study as tests: the four 2-bit-adder decompositions.

The paper derives four optimal decompositions of the 2-bit ripple-carry
carry-out — carry lookahead (disjoint, two levels of decomposition), carry
select, carry bypass, and a new overlapping decomposition.  Each must be
equivalent to the ripple form, and each matches a reconstruction-template
shape from the implication-rule engine.
"""

import pytest

from repro.aig import AIG, levels, lit_not, lit_var
from repro.cec import lits_equivalent
from repro.core import LookaheadOptimizer, build_ite, reconstruct
from repro.adders import optimal_cla_levels, ripple_carry_adder
from repro.netlist import ArrivalAwareBuilder


@pytest.fixture()
def adder2():
    aig = AIG()
    a1, a2 = aig.add_pi("a1"), aig.add_pi("a2")
    b1, b2 = aig.add_pi("b1"), aig.add_pi("b2")
    cin = aig.add_pi("cin")
    g1, p1 = aig.and_(a1, b1), aig.or_(a1, b1)
    g2, p2 = aig.and_(a2, b2), aig.or_(a2, b2)
    x1, x2 = aig.xor_(a1, b1), aig.xor_(a2, b2)
    ripple = aig.or_(g2, aig.and_(p2, aig.or_(g1, aig.and_(p1, cin))))
    return aig, dict(
        a1=a1, a2=a2, b1=b1, b2=b2, cin=cin,
        g1=g1, p1=p1, g2=g2, p2=p2, x1=x1, x2=x2, ripple=ripple,
    )


class TestFourDecompositions:
    def test_carry_lookahead_disjoint(self, adder2):
        aig, s = adder2
        inner = aig.or_(
            aig.and_(s["x1"], s["cin"]),
            aig.and_(lit_not(s["x1"]), s["a1"]),
        )
        cla = aig.or_(
            aig.and_(s["x2"], inner), aig.and_(lit_not(s["x2"]), s["a2"])
        )
        assert lits_equivalent(aig, cla, s["ripple"])

    def test_carry_select(self, adder2):
        aig, s = adder2
        y1 = aig.or_(s["g2"], aig.and_(s["p2"], s["p1"]))
        y0 = aig.or_(s["g2"], aig.and_(s["p2"], s["g1"]))
        select = aig.mux_(s["cin"], y1, y0)
        assert lits_equivalent(aig, select, s["ripple"])

    def test_carry_bypass(self, adder2):
        aig, s = adder2
        sigma = aig.and_(aig.and_(s["p2"], s["p1"]), s["cin"])
        y0 = aig.or_(s["g2"], aig.and_(s["p2"], s["g1"]))
        bypass = aig.or_(sigma, y0)  # ITE(sigma, 1, y0) simplified
        assert lits_equivalent(aig, bypass, s["ripple"])

    def test_new_decomposition(self, adder2):
        aig, s = adder2
        sigma = aig.or_(
            s["cin"], aig.or_(s["g2"], aig.and_(s["p2"], s["g1"]))
        )
        y1 = aig.or_(s["g2"], aig.and_(s["p2"], s["p1"]))
        new_form = aig.and_(sigma, y1)  # ITE(sigma, y1, 0) simplified
        assert lits_equivalent(aig, new_form, s["ripple"])


class TestReconstructionRealizesTheForms:
    def test_bypass_shape_from_rule_engine(self, adder2):
        # ITE(sigma, 1, y0) must collapse to sigma | y0 via the rules.
        aig, s = adder2
        builder = ArrivalAwareBuilder(aig)
        sigma = aig.and_(aig.and_(s["p2"], s["p1"]), s["cin"])
        y0 = aig.or_(s["g2"], aig.and_(s["p2"], s["g1"]))
        rec = reconstruct(builder, sigma, lit_not(0), y0)
        assert lits_equivalent(aig, rec, s["ripple"])
        assert builder.level(rec) <= builder.level(
            build_ite(builder, sigma, lit_not(0), y0)
        )

    def test_new_decomposition_shape_from_rule_engine(self, adder2):
        # ITE(sigma, y1, 0) must collapse to sigma & y1.
        aig, s = adder2
        builder = ArrivalAwareBuilder(aig)
        sigma = aig.or_(
            s["cin"], aig.or_(s["g2"], aig.and_(s["p2"], s["g1"]))
        )
        y1 = aig.or_(s["g2"], aig.and_(s["p2"], s["p1"]))
        rec = reconstruct(builder, sigma, y1, 0)
        assert lits_equivalent(aig, rec, s["ripple"])


class TestOptimizerRediscovery:
    def test_two_bit_adder_hits_paper_optimum(self):
        # Table 1, n=2: the full adder (sum MSB critical) reaches 5 levels.
        aig = ripple_carry_adder(2)
        out = LookaheadOptimizer(max_rounds=10).optimize(aig)
        assert levels(out)[lit_var(out.pos[-1])] <= optimal_cla_levels(2)
