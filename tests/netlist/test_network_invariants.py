"""Hypothesis invariants for network cloning, cones, and evaluation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import Network, compute_levels, network_to_aig, renode
from repro.tt import TruthTable

from ..aig.test_aig import random_aig


def _random_net(seed):
    aig = random_aig(seed, n_pis=5, n_nodes=25, n_pos=3)
    return renode(aig, k=4)


class TestClone:
    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=15)
    def test_clone_is_independent(self, seed):
        net = _random_net(seed)
        dup = net.clone()
        before = net.po_tts()
        # Mutate the clone: flip one internal node's function.
        internal = dup.topo_order()
        if internal:
            nid = internal[0]
            dup.set_function(nid, ~dup.nodes[nid].tt)
        assert net.po_tts() == before

    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=15)
    def test_clone_equals_original(self, seed):
        net = _random_net(seed)
        assert net.clone().po_tts() == net.po_tts()


class TestConeExtraction:
    @given(st.integers(0, 40), st.integers(0, 2))
    @settings(deadline=None, max_examples=15)
    def test_cone_po_function_preserved(self, seed, po):
        net = _random_net(seed)
        po %= len(net.pos)
        cone = net.extract_po_cone(po)
        assert cone.po_tts()[0] == net.po_tts()[po]

    @given(st.integers(0, 40), st.integers(0, 2))
    @settings(deadline=None, max_examples=15)
    def test_cone_levels_match(self, seed, po):
        net = _random_net(seed)
        po %= len(net.pos)
        cone = net.extract_po_cone(po)
        full_levels = compute_levels(net)
        cone_levels = compute_levels(cone)
        root_full, _ = net.pos[po]
        root_cone, _ = cone.pos[0]
        assert cone_levels[root_cone] == full_levels[root_full]

    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=10)
    def test_cone_no_larger_than_parent(self, seed):
        net = _random_net(seed)
        for po in range(len(net.pos)):
            cone = net.extract_po_cone(po)
            assert cone.num_internal() <= net.num_internal()


class TestEvaluationConsistency:
    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=10)
    def test_evaluate_matches_global_tts(self, seed):
        net = _random_net(seed)
        tts = net.po_tts()
        n = len(net.pis)
        for m in range(min(1 << n, 32)):
            bits = [bool((m >> i) & 1) for i in range(n)]
            out = net.evaluate(bits)
            assert out == [t.value(m) for t in tts]

    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=10)
    def test_network_to_aig_roundtrip_levels_sane(self, seed):
        net = _random_net(seed)
        aig = network_to_aig(net)
        from repro.aig import depth

        # The synthesized AIG depth should be within the level model's
        # estimate times a small constant (trees can't explode).
        from repro.netlist import network_depth

        assert depth(aig) <= 3 * max(network_depth(net), 1) + 2
