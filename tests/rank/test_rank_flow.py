"""Ranking wired through the optimizer, the flow, and serve job options.

The contract under test is DESIGN 3.23: ``rank='off'`` is the unranked
flow bit-for-bit, ``rank='log'`` observes without perturbing and logs a
byte-deterministic dataset, and ``rank='prune'`` with a recall-1.0 model
fitted on the circuit's own log reproduces the unranked result exactly
while skipping doomed candidates before any SPCF work.
"""

from __future__ import annotations

import io

import pytest

from repro import perf
from repro.adders import ripple_carry_adder
from repro.aig import write_aag
from repro.core import (
    LookaheadOptimizer,
    job_config_key,
    lookahead_flow,
    normalize_job_config,
)
from repro.rank import (
    FEATURE_NAMES,
    RankLogger,
    encode_row,
    fit_model,
    passthrough_model,
)


def _dump(aig):
    buf = io.StringIO()
    write_aag(aig, buf)
    return buf.getvalue()


def _run(aig, **kwargs):
    """One bounded sim-mode optimize (the windowed cone path)."""
    opts = dict(
        seed=1, max_rounds=2, mode="sim", sim_width=256,
        walk_modes=("target", "full"), workers=1,
    )
    opts.update(kwargs)
    with LookaheadOptimizer(**opts) as opt:
        return opt.optimize(aig)


@pytest.fixture(scope="module")
def rca8():
    return ripple_carry_adder(8)


@pytest.fixture(scope="module")
def off_result(rca8):
    return _dump(_run(rca8))


class TestOffIdentity:
    def test_rank_off_bit_identical_to_default(self, rca8, off_result):
        assert _dump(_run(rca8, rank="off")) == off_result

    def test_log_bit_identical_to_off(self, rca8, off_result):
        logger = RankLogger()
        out = _run(rca8, rank="log", rank_data=logger)
        assert _dump(out) == off_result
        assert len(logger.rows) > 0


class TestLogDeterminism:
    def test_same_seed_same_rows_bytewise(self, rca8):
        l1, l2 = RankLogger(), RankLogger()
        _run(rca8, rank="log", rank_data=l1)
        _run(rca8, rank="log", rank_data=l2)
        assert [encode_row(r) for r in l1.rows] \
            == [encode_row(r) for r in l2.rows]

    def test_serial_equals_parallel_rows(self, rca8):
        serial, parallel = RankLogger(), RankLogger()
        _run(rca8, rank="log", rank_data=serial, workers=1)
        _run(rca8, rank="log", rank_data=parallel, workers=2)
        assert [encode_row(r) for r in serial.rows] \
            == [encode_row(r) for r in parallel.rows]

    def test_row_shape(self, rca8):
        logger = RankLogger()
        _run(rca8, rank="log", rank_data=logger)
        for row in logger.rows:
            assert len(row["features"]) == len(FEATURE_NAMES)
            assert row["accept"] in (0, 1)
            assert row["walk"] in ("target", "full")
            assert len(row["fp"]) == 16 and len(row["circuit"]) == 16


class TestPrune:
    def test_fitted_recall_one_prune_bit_identical(self, rca8, off_result):
        logger = RankLogger()
        _run(rca8, rank="log", rank_data=logger)
        model = fit_model(logger.rows, target_recall=1.0)
        perf.reset()
        out = _run(rca8, rank="prune", rank_model=model)
        assert _dump(out) == off_result
        assert perf.counter("rank.scored") > 0

    def test_all_prune_model_degenerates_to_no_work(self, rca8):
        # Wholly pruned windows are trusted (no fallback re-run), so a
        # model that prunes everything must hand back the untouched
        # input — and never silently re-spend the work it skipped.
        harsh = passthrough_model()
        harsh.threshold = 2.0  # above any probability: prunes everything
        perf.reset()
        out = _run(rca8, rank="prune", rank_model=harsh)
        assert _dump(out) == _dump(rca8.extract())
        assert perf.counter("rank.pruned") > 0
        assert perf.counter("rank.fallback.windows") == 0
        assert perf.counter("replacements.accepted") == 0

    def test_partially_pruned_window_falls_back(self, rca8, off_result,
                                                monkeypatch):
        # When the gate lets some candidates through and they all lose,
        # its negative predictions are suspect: the pruned remainder is
        # re-run ungated and rescued accepts are counted as detected
        # false prunes.
        harsh = passthrough_model()
        harsh.threshold = 2.0
        opts = dict(
            seed=1, max_rounds=2, mode="sim", sim_width=256,
            walk_modes=("target", "full"), workers=1,
            rank="prune", rank_model=harsh,
        )
        with LookaheadOptimizer(**opts) as opt:
            real = opt._cone_round

            def partial(aig, net_thunk, window, aig_levels, mode,
                        walk_mode, extractor=None, gate=True):
                if not gate or len(window) < 2:
                    return real(aig, net_thunk, window, aig_levels, mode,
                                walk_mode, extractor, gate=gate)
                # Pretend the gate evaluated the first candidate (which
                # then failed) and pruned the rest of the window.
                pruned = list(window[1:])
                for _po, fp, _spcf_key, cfg_key in pruned:
                    perf.incr("rank.pruned")
                    opt._call_rejected.add(cfg_key)
                    opt._note_reject(fp)
                return [], {}, pruned, {}, 1

            monkeypatch.setattr(opt, "_cone_round", partial)
            perf.reset()
            out = opt.optimize(rca8)
        from repro.cec import check_equivalence

        assert check_equivalence(rca8, out)
        assert perf.counter("rank.fallback.windows") > 0
        assert perf.counter("rank.false_prune_detected") > 0

    def test_prune_counters_and_histogram(self, rca8):
        logger = RankLogger()
        _run(rca8, rank="log", rank_data=logger)
        model = fit_model(logger.rows, target_recall=1.0)
        perf.reset()
        _run(rca8, rank="prune", rank_model=model)
        assert perf.counter("rank.scored") >= perf.counter("rank.pruned")
        hist = perf.histogram("rank.score")
        assert hist is not None and hist["count"] > 0


class TestConstructorValidation:
    def test_unknown_rank_mode(self):
        with pytest.raises(ValueError, match="unknown rank mode"):
            LookaheadOptimizer(rank="bogus")

    def test_prune_requires_model(self):
        with pytest.raises(ValueError, match="requires a rank_model"):
            LookaheadOptimizer(rank="prune")

    def test_rank_data_needs_log(self):
        with pytest.raises(ValueError, match="only meaningful"):
            LookaheadOptimizer(rank="off", rank_data="data.jsonl")


class TestFlowWiring:
    def test_flow_accepts_rank_log(self, tmp_path):
        from repro.cec import check_equivalence

        aig = ripple_carry_adder(4)
        data = tmp_path / "flow.jsonl"
        out = lookahead_flow(
            aig, max_iterations=1, rank="log", rank_data=str(data)
        )
        assert check_equivalence(aig, out)
        assert data.exists() and data.read_text().strip()


class TestJobOptions:
    def test_log_not_servable(self):
        with pytest.raises(ValueError, match="unservable rank mode"):
            normalize_job_config({"rank": "log"})

    def test_prune_requires_embedded_payload(self, tmp_path):
        with pytest.raises(ValueError, match="embed the model payload"):
            normalize_job_config({"rank": "prune"})
        with pytest.raises(ValueError, match="embed the model payload"):
            normalize_job_config(
                {"rank": "prune", "rank_model": str(tmp_path / "m.json")}
            )

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError):
            normalize_job_config(
                {"rank": "prune", "rank_model": {"format": "bogus"}}
            )

    def test_model_without_prune_rejected(self):
        payload = passthrough_model().payload()
        with pytest.raises(ValueError, match="only meaningful"):
            normalize_job_config({"rank": "off", "rank_model": payload})

    def test_job_key_tracks_model_fingerprint(self):
        m1 = passthrough_model()
        m2 = passthrough_model(meta={"variant": 2})
        base = job_config_key(normalize_job_config(None))
        k1 = job_config_key(normalize_job_config(
            {"rank": "prune", "rank_model": m1.payload()}
        ))
        k2 = job_config_key(normalize_job_config(
            {"rank": "prune", "rank_model": m2.payload()}
        ))
        assert base != k1 and k1 != k2
        again = job_config_key(normalize_job_config(
            {"rank": "prune", "rank_model": m1.payload()}
        ))
        assert k1 == again


class TestCliWiring:
    def test_optimize_log_then_fit_then_prune(self, tmp_path):
        from repro.aig import read_aag
        from repro.cli import main

        aig = ripple_carry_adder(6)
        circuit = tmp_path / "rca6.aag"
        with open(circuit, "w") as fh:
            write_aag(aig, fh)
        data = tmp_path / "data.jsonl"
        model = tmp_path / "model.json"
        off_out = tmp_path / "off.aag"
        prune_out = tmp_path / "prune.aag"
        base = [
            "optimize", str(circuit), "--flow", "lookahead-only",
            "--workers", "1", "--spcf-tier", "signature",
        ]
        assert main(base + ["-o", str(off_out)]) == 0
        assert main(base + [
            "--rank", "log", "--rank-data", str(data),
        ]) == 0
        assert main([
            "rank", "fit", "--data", str(data), "-o", str(model),
        ]) == 0
        assert main(base + [
            "--rank", "prune", "--rank-model", str(model),
            "-o", str(prune_out),
        ]) == 0
        with open(off_out) as fh:
            off_aig = read_aag(fh)
        with open(prune_out) as fh:
            prune_aig = read_aag(fh)
        assert _dump(off_aig) == _dump(prune_aig)

    def test_prune_without_model_errors(self, tmp_path, capsys):
        from repro.cli import main

        circuit = tmp_path / "rca4.aag"
        with open(circuit, "w") as fh:
            write_aag(ripple_carry_adder(4), fh)
        assert main([
            "optimize", str(circuit), "--rank", "prune",
        ]) == 2
        assert "--rank-model" in capsys.readouterr().err
