"""Secondary simplification: reducing the original cone under care !Σ1.

Cubes of a node's on/off minimum SOPs that are *unreachable* when Σ1 = 0
become don't-cares and the node function is re-minimized (the paper,
Sec. 3.1).  Unreachability is proved, never guessed: the exact model counts
minterms exactly; the signature model pre-filters with simulation and
confirms with a SAT query spanning the (Σ1-bearing) primary network and the
current secondary network, so correctness never rests on the estimator.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .. import perf
from ..netlist import Network, compute_levels, min_sops, node_level
from ..netlist.encode import encode_network
from ..sat import Solver
from ..sat.portfolio import (
    GLOBAL_UNSAT_CACHE,
    PortfolioRunner,
    PortfolioSpec,
    resolve_portfolio,
)
from ..sop import Cube
from ..store import runtime as store_runtime
from ..tt import TruthTable
from .model import ExactModel, SignatureModel
from .simplify import complete_function

MINTERM_GRANULARITY_LIMIT = 8
"""Node supports up to this size get minterm-granular don't-care checks."""

WITNESS_POOL_LIMIT = 1024
"""Max reachability witnesses harvested from SAT models per checker."""


class ExactCareChecker:
    """Unreachability by exact counting over global truth tables."""

    def __init__(self, model: ExactModel, care_fn):
        self.model = model
        self.care_fn = care_fn

    def refresh(self) -> None:
        self.model.recompute()

    def cube_unreachable(self, nid: int, cube: Cube) -> bool:
        cond = self.model.cube_condition(nid, cube)
        return self.model.count(self.model.conj([self.care_fn, cond])) == 0


class SatCareChecker:
    """Unreachability by simulation pre-filter + SAT proof.

    The SAT instance encodes the primary network (which contains the Σ1
    node) and the *current* secondary network over shared PIs; a cube is
    unreachable iff ``!Σ1 AND (fan-ins of j in cube)`` is UNSAT.

    Every satisfiable query yields a *witness*: the model's PI assignment
    reaches the queried cube outside the window.  Witnesses stay valid for
    the checker's whole lifetime — they satisfy !Σ1 against the primary
    network, which is never mutated during secondary simplification — so
    they are pooled and replayed through the *current* secondary network
    before later queries go to SAT.  A witness landing inside a cube
    proves reachability exactly where the solver would have answered
    SAT (or timed out, which is also treated as reachable), so the
    verdicts are identical to the SAT-only path; on circuits whose window
    covers the random patterns (``care_sig == 0``, where the simulation
    pre-filter never fires) this removes almost every satisfiable SAT
    call.
    """

    def __init__(
        self,
        sig_model: SignatureModel,
        care_sig: int,
        primary_net: Network,
        sigma_nid: int,
        secondary_net: Network,
        sat_portfolio: PortfolioSpec = None,
    ):
        self.sig_model = sig_model
        self.care_sig = care_sig
        self.primary_net = primary_net
        self.sigma_nid = sigma_nid
        self.secondary_net = secondary_net
        self.portfolio = resolve_portfolio(sat_portfolio)
        self._solver: Optional[Solver] = None
        self._runner: Optional[PortfolioRunner] = None
        self._sec_vars: Dict[int, int] = {}
        self._pi_vars: List[int] = []
        self._sigma_var = 0
        self.max_conflicts = 200
        self._witness_pis: List[List[bool]] = []
        self._wit_model: Optional[SignatureModel] = None
        self._sigma_fp: Optional[int] = None
        self._sec_fps: Optional[Dict[int, int]] = None
        self._enc_batches: List[tuple] = []
        # Witnesses persisted by earlier invocations (same Σ1 fingerprint
        # over the same PI space) seed the pool — in portfolio modes only.
        # ``off`` promises bit-identical warm and cold runs, and a seeded
        # witness would skip a SAT call and hence perturb the persistent
        # solver's learned-clause stream for later budgeted queries; the
        # portfolio modes already carry the fixed-store-state determinism
        # caveat (DESIGN 3.19/3.20).  Harvests are persisted in every
        # mode (writes cannot change this run's verdicts).
        if self.portfolio.mode != "off" and store_runtime.is_persistent():
            stored = self._witness_ns().get(self._witness_key())
            if stored:
                npis = len(self.primary_net.pis)
                for word in stored[:WITNESS_POOL_LIMIT]:
                    self._witness_pis.append(
                        [bool((word >> i) & 1) for i in range(npis)]
                    )
                perf.incr("secondary.witness.seeded", len(self._witness_pis))

    def refresh(self) -> None:
        """Invalidate the encoding after a secondary-network mutation."""
        self.sig_model.recompute()
        self._solver = None
        self._runner = None
        self._sec_fps = None
        # Witness PI assignments survive (the primary net is immutable
        # here), but their node values must be re-derived from the
        # mutated secondary network.
        self._wit_model = None

    def _ensure_encoding(self) -> None:
        if self._solver is not None:
            return
        solver = Solver()
        prim_vars = encode_network(solver, self.primary_net)
        pi_vars = [prim_vars[pi] for pi in self.primary_net.pis]
        self._sec_vars = encode_network(
            solver, self.secondary_net, pi_vars=pi_vars
        )
        self._pi_vars = pi_vars
        self._sigma_var = prim_vars[self.sigma_nid]
        self._solver = solver

    def _ensure_runner(self) -> None:
        if self._runner is not None:
            return

        def build(config) -> Solver:
            solver = Solver(config)
            # Restrict the primary encoding to Σ1's cone: the query only
            # constrains Σ1, and a SAT answer is a *total* assignment of
            # every encoded variable, so nodes outside the cone are pure
            # propagation cost.  The secondary network starts *empty*
            # (PIs only) and grows lazily, one queried cube cone at a
            # time (see :meth:`_require_sec_cone`) — the median query
            # constrains a few dozen of its hundreds of nodes.  Every
            # racer replays the identical clause stream (primary cone,
            # then the recorded cone batches in order), so the variable
            # maps from the first build hold for all of them.
            prim_vars = encode_network(
                solver, self.primary_net, roots=[self.sigma_nid]
            )
            pi_vars = [prim_vars[pi] for pi in self.primary_net.pis]
            sec_vars = dict(zip(self.secondary_net.pis, pi_vars))
            for batch in self._enc_batches:
                encode_network(
                    solver,
                    self.secondary_net,
                    pi_vars=pi_vars,
                    roots=batch,
                    var_of=sec_vars,
                )
            self._sec_vars = sec_vars
            self._pi_vars = pi_vars
            self._sigma_var = prim_vars[self.sigma_nid]
            return solver

        self._enc_batches: List[tuple] = []
        self._runner = PortfolioRunner(self.portfolio, build)
        self._runner.solver(0)  # materialize the maps for query building

    def _require_sec_cone(self, roots: List[int]) -> None:
        """Lazily encode the fan-in cones of ``roots`` into every racer.

        A query's verdict depends only on Σ1's cone and the constrained
        fan-ins' cones; an UNSAT answer over the encoded subset implies
        UNSAT of the full encoding (more clauses only constrain further),
        and a SAT model's PI assignment is a genuine witness because every
        constrained variable is encoded down to the PIs.  Keeping the
        rest of the secondary network out of the CNF keeps the solver's
        total assignments — the dominant propagation cost — proportional
        to what the queries actually touched.
        """
        if all(r in self._sec_vars for r in roots):
            return
        batch = tuple(roots)
        self._enc_batches.append(batch)
        base = dict(self._sec_vars)
        for index, solver in self._runner.built():
            solver.reset()  # clauses may only be added at level 0
            encode_network(
                solver,
                self.secondary_net,
                pi_vars=self._pi_vars,
                roots=batch,
                # Identical clause streams give identical numbering, so
                # only the first racer needs to grow the shared map.
                var_of=self._sec_vars if index == 0 else dict(base),
            )

    def _query_key(self, nid: int, cube: Cube):
        """UnsatCache key: everything the query's verdict depends on.

        The verdict of ``!Σ1 AND (fan-ins of nid in cube)`` is a function
        of Σ1's global function and the constrained fan-ins' global
        functions over the shared positional PI space — captured by
        structural fingerprints, so hits transfer across rounds, epochs,
        and networks with isomorphic cones.
        """
        if self._sigma_fp is None:
            self._sigma_fp = self.primary_net.node_fingerprints()[
                self.sigma_nid
            ]
        if self._sec_fps is None:
            self._sec_fps = self.secondary_net.node_fingerprints()
        fanins = self.secondary_net.nodes[nid].fanins
        lits = tuple(
            sorted(
                (self._sec_fps[fanins[var]], pol)
                for var, pol in cube.literals()
            )
        )
        return (self._sigma_fp, lits)

    # -- witness pool ------------------------------------------------------

    def _witness_key(self):
        """Store key for this checker's witnesses: Σ1 identity × PI width."""
        if self._sigma_fp is None:
            self._sigma_fp = self.primary_net.node_fingerprints()[
                self.sigma_nid
            ]
        return (self._sigma_fp, len(self.primary_net.pis))

    def _witness_ns(self):
        return store_runtime.get_store().namespace("witness")

    def _persist_witness(self, assignment: List[bool]) -> None:
        """Merge one harvested witness into the persistent pool.

        Write-only from this run's perspective in ``off`` mode: persisted
        witnesses never influence the current run's verdicts there, so
        the warm==cold guarantee is untouched by the write path.
        """
        ns = self._witness_ns()
        key = self._witness_key()
        word = 0
        for i, v in enumerate(assignment):
            if v:
                word |= 1 << i
        stored = ns.get(key) or []
        if word in stored or len(stored) >= WITNESS_POOL_LIMIT:
            return
        ns.put(key, stored + [word])

    def _witness_model(self) -> Optional[SignatureModel]:
        """Witness node values over the current secondary network."""
        if not self._witness_pis:
            return None
        if (
            self._wit_model is None
            or self._wit_model.width != len(self._witness_pis)
        ):
            width = len(self._witness_pis)
            pi_words = []
            for i in range(len(self.secondary_net.pis)):
                word = 0
                for w, assignment in enumerate(self._witness_pis):
                    if assignment[i]:
                        word |= 1 << w
                pi_words.append(word)
            self._wit_model = SignatureModel(
                self.secondary_net, pi_words, width
            )
        return self._wit_model

    def _harvest_witness(self, solver: Solver) -> None:
        """Pool a SAT model's PI assignment as a witness.

        ``solver`` is whichever solver produced the model — the single
        encoding in ``off`` mode, or the winning racer — so witnesses
        found by any configuration feed every later fast-path check.
        """
        if len(self._witness_pis) >= WITNESS_POOL_LIMIT:
            return
        assignment = [bool(solver.model_value(sv)) for sv in self._pi_vars]
        self._witness_pis.append(assignment)
        if store_runtime.is_persistent():
            self._persist_witness(assignment)
        if self._wit_model is not None:
            self._extend_witness_model(assignment)

    def _extend_witness_model(self, assignment: List[bool]) -> None:
        """Append one witness column to the packed model in place.

        Cheaper than a full rebuild per harvest: one scalar evaluation
        pass through the secondary network, OR-ing the new bit into every
        node's packed word.  Constant nodes need the pass too — their
        packed words were built against the old (narrower) mask.
        """
        wm = self._wit_model
        bit = 1 << wm.width
        wm.width += 1
        wm.mask = (wm.mask << 1) | 1
        vals: Dict[int, bool] = {}
        for i, (pi, v) in enumerate(
            zip(self.secondary_net.pis, assignment)
        ):
            vals[pi] = v
            if v:
                wm.pi_words[i] |= bit
                wm.fns[pi] |= bit
        for nid in self.secondary_net.topo_order():
            node = self.secondary_net.nodes[nid]
            m = 0
            for j, f in enumerate(node.fanins):
                if vals[f]:
                    m |= 1 << j
            v = bool(node.tt.value(m))
            vals[nid] = v
            if v:
                wm.fns[nid] |= bit

    def cube_unreachable(self, nid: int, cube: Cube) -> bool:
        # Fast path: any care-set simulation pattern inside the cube proves
        # reachability without SAT.
        cond = self.sig_model.cube_condition(nid, cube)
        if self.care_sig & cond:
            return False
        # Second fast path: a pooled witness inside the cube is a known
        # !Σ1 assignment, i.e. a reachability proof without the solver.
        wit = self._witness_model()
        if wit is not None and wit.cube_condition(nid, cube):
            perf.incr("secondary.witness.hit")
            return False
        if self.portfolio.mode != "off":
            return self._cube_unreachable_portfolio(nid, cube)
        self._ensure_encoding()
        node = self.secondary_net.nodes[nid]
        assumptions = [-self._sigma_var]
        for var, pol in cube.literals():
            sv = self._sec_vars[node.fanins[var]]
            assumptions.append(sv if pol else -sv)
        # Budgeted query: unknown is treated as reachable (no drop), which
        # is always safe.
        perf.incr("secondary.sat.calls")
        start = time.perf_counter()
        result = self._solver.solve(
            assumptions, max_conflicts=self.max_conflicts
        )
        perf.observe("sat.query.secondary", time.perf_counter() - start)
        if result is True:
            self._harvest_witness(self._solver)
        return result is False

    def _cube_unreachable_portfolio(self, nid: int, cube: Cube) -> bool:
        """Portfolio-mode query: UNSAT cache, then sprint/race.

        ``keep_prefix=1`` keeps the propagated ``!Σ1`` decision level
        alive between queries — on propagation-bound workloads re-deriving
        that prefix dominates the per-query cost.
        """
        key = self._query_key(nid, cube)
        if GLOBAL_UNSAT_CACHE.hit(key):
            return True
        self._ensure_runner()
        node = self.secondary_net.nodes[nid]
        roots = [node.fanins[var] for var, _ in cube.literals()]
        self._require_sec_cone(roots)
        assumptions = [-self._sigma_var]
        for var, pol in cube.literals():
            sv = self._sec_vars[node.fanins[var]]
            assumptions.append(sv if pol else -sv)
        perf.incr("secondary.sat.calls")
        start = time.perf_counter()
        result = self._runner.solve(
            assumptions,
            baseline_conflicts=self.max_conflicts,
            keep_prefix=1,
        )
        perf.observe("sat.query.secondary", time.perf_counter() - start)
        if result is True:
            self._harvest_witness(self._runner.winner)
        elif result is False:
            GLOBAL_UNSAT_CACHE.add(key)
        return result is False


def secondary_simplify(
    net: Network, po_index: int, checker, max_nodes: Optional[int] = None
) -> int:
    """Drop care-unreachable cubes of every node in the output's cone.

    Mutates ``net``; returns the number of nodes whose function changed.
    Nodes are processed in topological order and the checker is refreshed
    after every mutation, so each proof is against the current network.
    """
    root, _neg = net.pos[po_index]
    cone = net.fanin_cone([root])
    levels = compute_levels(net)
    changed = 0
    for nid in net.topo_order():
        if nid not in cone:
            continue
        if max_nodes is not None and changed >= max_nodes:
            break
        node = net.nodes[nid]
        tt = node.tt
        if tt.is_const0 or tt.is_const1 or not node.fanins:
            continue
        dc = TruthTable.const(False, tt.nvars)
        if tt.nvars <= MINTERM_GRANULARITY_LIMIT:
            # Minterm-granular don't-cares: an input vector of the node that
            # no care minterm can produce is free, even when the prime cube
            # containing it is partially reachable.
            for m in range(1 << tt.nvars):
                cube = Cube.from_minterm(m, tt.nvars)
                if checker.cube_unreachable(nid, cube):
                    dc |= cube.to_tt()
        else:
            on_cover, off_cover = min_sops(tt)
            for cube in list(on_cover) + list(off_cover):
                if checker.cube_unreachable(nid, cube):
                    dc |= cube.to_tt()
        if dc.is_const0:
            continue
        fanin_levels = [levels[f] for f in node.fanins]
        on_req = tt & ~dc
        new_tt = complete_function(on_req, dc, fanin_levels)
        if new_tt == tt:
            continue
        net.set_function(nid, new_tt)
        changed += 1
        checker.refresh()
        levels = compute_levels(net)
    return changed
