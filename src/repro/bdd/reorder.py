"""BDD variable reordering (greedy sifting by rebuild).

The manager in :mod:`repro.bdd.bdd` keys nodes by variable index, so
reordering is implemented by *rebuilding* the function in a fresh manager
under a permuted order — exact and simple, at O(rebuild) per trial.  The
sifting heuristic moves one variable at a time to its locally best
position, which is the classic Rudell scheme evaluated by reconstruction
instead of in-place level swaps.  Intended for the moderate-width
functions this project builds BDDs for (SPCFs, window functions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .bdd import BDD, FALSE, TRUE, ref_node, ref_not


def rebuild_with_order(
    src: BDD, ref: int, order: Sequence[int], dest: Optional[BDD] = None
) -> Tuple[BDD, int]:
    """Rebuild ``ref`` in a (fresh) manager with variables renamed by order.

    ``order[i]`` gives the new position of source variable ``i`` — the
    function is the same up to variable renaming, so node counts are
    comparable across orders.
    """
    if dest is None:
        dest = BDD()
    position: Dict[int, int] = {var: order[var] for var in range(len(order))}
    cache: Dict[int, int] = {TRUE: TRUE, FALSE: FALSE}

    def rec(r: int) -> int:
        if r in cache:
            return cache[r]
        if ref_not(r) in cache:
            out = ref_not(cache[ref_not(r)])
            cache[r] = out
            return out
        var = src.level_of(r)
        hi, lo = src.cofactors(r, var)
        new_var = position[var]
        out = dest.ite(dest.var(new_var), rec(hi), rec(lo))
        cache[r] = out
        return out

    return dest, rec(ref)


def order_cost(src: BDD, ref: int, order: Sequence[int]) -> int:
    """Node count of ``ref`` under the permuted order."""
    dest, new_ref = rebuild_with_order(src, ref, order)
    return dest.node_count(new_ref)


def sift(
    src: BDD, ref: int, max_rounds: int = 2
) -> Tuple[BDD, int, List[int]]:
    """Greedy sifting: returns (new manager, new ref, chosen order).

    ``order[i]`` is the new position of original variable ``i``; the
    rebuilt function equals the original up to that renaming.
    """
    support = src.support(ref)
    if len(support) <= 2:
        dest, new_ref = rebuild_with_order(
            src, ref, list(range(max(support, default=0) + 1))
        )
        return dest, new_ref, list(range(max(support, default=0) + 1))
    nvars = max(support) + 1
    # Current placement: position list (index = variable).
    order = list(range(nvars))
    best_cost = order_cost(src, ref, order)
    for _ in range(max_rounds):
        improved = False
        for var in support:
            current_pos = order[var]
            best_pos = current_pos
            for pos in range(nvars):
                if pos == current_pos:
                    continue
                trial = _move(order, var, pos)
                cost = order_cost(src, ref, trial)
                if cost < best_cost:
                    best_cost = cost
                    best_pos = pos
            if best_pos != order[var]:
                order = _move(order, var, best_pos)
                improved = True
        if not improved:
            break
    dest, new_ref = rebuild_with_order(src, ref, order)
    return dest, new_ref, order


def _move(order: List[int], var: int, new_pos: int) -> List[int]:
    """Positions list with ``var`` moved to ``new_pos`` (others shifted)."""
    by_pos = sorted(range(len(order)), key=lambda v: order[v])
    by_pos.remove(var)
    by_pos.insert(new_pos, var)
    out = [0] * len(order)
    for pos, v in enumerate(by_pos):
        out[v] = pos
    return out
