"""Tests for technology mapping, STA, and power estimation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import ripple_carry_adder
from repro.aig import AIG, evaluate
from repro.mapping import (
    Cell,
    default_library,
    dynamic_power_uw,
    map_aig,
    mapped_delay,
    signal_loads,
    switching_activities,
)
from repro.mapping.mapper import _MatchIndex
from repro.tt import TruthTable

from ..aig.test_aig import random_aig


class TestLibrary:
    def test_cells_well_formed(self):
        for cell in default_library():
            assert cell.num_inputs >= 1
            assert cell.area > 0
            assert cell.intrinsic_delay > 0
            assert cell.delay(5.0) > cell.delay(0.0)

    def test_contains_mapping_essentials(self):
        names = {c.name for c in default_library()}
        assert {"INV", "AND2", "NAND2"} <= names


class TestMatching:
    def test_permuted_match_pin_assignment(self):
        cells = default_library()
        index = _MatchIndex(cells)
        aoi21 = next(c for c in cells if c.name == "AOI21")
        # Same function with pins permuted: !(c | (b and a)).
        permuted = TruthTable.from_function(
            lambda a, b, c: not ((b and c) or a), 3
        )
        hits = [m for m in index.matches(permuted) if m[0].name == "AOI21"]
        assert hits
        cell, leaf_of_pin = hits[0]
        # Verify the pin assignment by re-evaluating.
        for m in range(8):
            leaves = [bool((m >> i) & 1) for i in range(3)]
            pin_values = [leaves[leaf_of_pin[j]] for j in range(3)]
            assert cell.tt.evaluate(pin_values) == permuted.evaluate(leaves)

    def test_no_match_for_alien_function(self):
        index = _MatchIndex(default_library())
        xor3 = TruthTable.from_function(lambda a, b, c: (a + b + c) % 2 == 1, 3)
        assert all(m[0].tt.nvars == 3 for m in index.matches(xor3))
        # XOR3 is not in the library in either phase.
        assert not index.matches(xor3)


class TestMapAig:
    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=12)
    def test_functional_correctness(self, seed):
        aig = random_aig(seed, n_pis=5, n_nodes=30, n_pos=3)
        net = map_aig(aig)
        for m in range(32):
            bits = [bool((m >> i) & 1) for i in range(5)]
            assert net.evaluate(bits) == evaluate(aig, bits)

    def test_adder_mapping_correct(self):
        import random

        n = 4
        aig = ripple_carry_adder(n)
        net = map_aig(aig)
        rng = random.Random(1)
        for _ in range(60):
            a, b, c = rng.randrange(16), rng.randrange(16), rng.randrange(2)
            bits = (
                [bool((a >> i) & 1) for i in range(n)]
                + [bool((b >> i) & 1) for i in range(n)]
                + [bool(c)]
            )
            out = net.evaluate(bits)
            got = sum(1 << i for i in range(n) if out[i])
            got += (1 << n) if out[n] else 0
            assert got == a + b + c

    def test_shallower_aig_maps_faster(self):
        from repro.opt import dc_map_effort_high

        aig = ripple_carry_adder(8)
        fast = dc_map_effort_high(aig)
        assert mapped_delay(map_aig(fast)) < mapped_delay(map_aig(aig))

    def test_constant_po(self):
        aig = AIG()
        aig.add_pi()
        aig.add_po(1)
        net = map_aig(aig)
        assert net.evaluate([True]) == [True]
        assert net.evaluate([False]) == [True]

    def test_area_positive_and_delay_monotone(self):
        aig = random_aig(3)
        net = map_aig(aig)
        assert net.area > 0
        assert net.delay() > 0
        assert mapped_delay(net) > 0


class TestPower:
    def test_activities_bounded(self):
        aig = random_aig(2)
        net = map_aig(aig)
        acts = switching_activities(net)
        assert all(0.0 <= a <= 0.5 for a in acts.values())

    def test_power_positive_and_scales_with_gates(self):
        small = map_aig(ripple_carry_adder(2))
        big = map_aig(ripple_carry_adder(8))
        p_small = dynamic_power_uw(small)
        p_big = dynamic_power_uw(big)
        assert 0 < p_small < p_big

    def test_loads_include_po_cap(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(aig.and_(a, b))
        net = map_aig(aig)
        loads = signal_loads(net)
        assert loads[net.po_signals[0]] > 0
