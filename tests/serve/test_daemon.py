"""End-to-end daemon coverage: warm replay, batching, failure semantics.

All tests run the daemon in-process (real sockets on an ephemeral
loopback port, real runner threads) — the subprocess lifecycle
(signals, exit codes) is covered in ``test_cli.py``.
"""

from __future__ import annotations

import io
import threading

import pytest

from repro import perf
from repro.adders import ripple_carry_adder
from repro.aig import read_aag, write_aag
from repro.cec import check_equivalence
from repro.serve import ReproDaemon, ServeClient, ServeError
from repro.store import runtime as store_runtime


@pytest.fixture(autouse=True)
def _isolated_runtime():
    """Daemons configure the process runtime store; isolate each test."""
    store_runtime.reset()
    perf.reset()
    yield
    store_runtime.reset()


@pytest.fixture
def daemon(tmp_path):
    d = ReproDaemon(
        store=str(tmp_path / "store.db"),
        workers=1,
        job_timeout=120.0,
        endpoint_file=str(tmp_path / "daemon.serve.json"),
    )
    d.start()
    yield d
    d.stop()


def _client(daemon: ReproDaemon) -> ServeClient:
    return ServeClient(daemon.host, daemon.port)


def _rca_text(width: int = 4) -> str:
    # rca4 routes cones through the SPCF/cone store path (larger adders
    # fall to the BDD tier, which never touches the store).
    buf = io.StringIO()
    write_aag(ripple_carry_adder(width), buf)
    return buf.getvalue()


class TestLifecycle:
    def test_ping_and_status(self, daemon):
        client = _client(daemon)
        assert client.ping()
        status = client.status()
        assert status["port"] == daemon.port
        assert status["persistent"] is True
        assert status["queue_depth"] == 0
        assert status["jobs"]["submitted"] == 0
        assert not status["draining"]

    def test_endpoint_discovery(self, daemon):
        client = ServeClient.resolve(endpoint_file=daemon.endpoint_file)
        assert client.ping()

    def test_stop_is_idempotent(self, daemon):
        daemon.stop()
        daemon.stop()
        assert not _client(daemon).ping()

    def test_shutdown_op_drains_and_exits(self, daemon):
        client = _client(daemon)
        client.shutdown()
        assert daemon._stop_event.wait(timeout=30)
        daemon.stop()
        with pytest.raises(ServeError):
            client.status()


class TestSubmit:
    def test_same_circuit_twice_is_store_warm_and_bit_identical(
        self, daemon, tmp_path
    ):
        client = _client(daemon)
        text = _rca_text()
        first = client.submit(text, timeout=120)
        second = client.submit(text, timeout=120)
        # Identical QoR, identical circuit: the store only replays what
        # the cold run would have computed.
        assert second["depth"] == first["depth"]
        assert second["ands"] == first["ands"]
        assert second["circuit"] == first["circuit"]
        # The second job answers mostly from the store: a better hit
        # rate and strictly less recomputation (fewer misses).  Absolute
        # hit counts are not comparable — the cold job generates
        # intra-job hits of its own across rounds.
        assert second["store"]["hit_rate"] > first["store"]["hit_rate"]
        assert second["store"]["misses"] < first["store"]["misses"]
        assert second["store"]["hits"] > 0
        status = client.status()
        assert status["jobs"]["submitted"] == 2
        assert status["jobs"]["completed"] == 2
        assert status["jobs"]["failed"] == 0
        # The result is a real optimization of the input.
        before = read_aag(io.StringIO(text))
        after = read_aag(io.StringIO(second["circuit"]))
        assert check_equivalence(before, after)

    def test_submit_without_circuit_return(self, daemon):
        client = _client(daemon)
        result = client.submit(_rca_text(), timeout=120, return_circuit=False)
        assert "circuit" not in result
        assert result["ands"] > 0

    def test_verify_option(self, daemon):
        client = _client(daemon)
        result = client.submit(
            _rca_text(), options={"verify": True}, timeout=120
        )
        assert result["depth"] <= read_aag(io.StringIO(_rca_text())).num_ands()

    def test_concurrent_clients_share_one_store(self, daemon):
        """Two submitters racing on one daemon/store both get answers."""
        client = _client(daemon)
        text = _rca_text()
        results, errors = [], []

        def submitter():
            try:
                results.append(client.submit(text, timeout=120))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=submitter) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors, errors
        assert len(results) == 2
        assert results[0]["circuit"] == results[1]["circuit"]
        status = _client(daemon).status()
        assert status["jobs"]["completed"] == 2
        assert status["in_flight"] == 0
        assert status["queue_depth"] == 0


class TestRejection:
    def test_unknown_flow_is_bad_request(self, daemon):
        with pytest.raises(ServeError) as exc:
            _client(daemon).submit(
                _rca_text(), options={"flow": "bogus"}, timeout=10
            )
        assert exc.value.code == "bad-request"

    def test_unknown_option_is_bad_request(self, daemon):
        with pytest.raises(ServeError) as exc:
            _client(daemon).submit(
                _rca_text(), options={"flwo": "lookahead"}, timeout=10
            )
        assert exc.value.code == "bad-request"

    def test_malformed_circuit_is_bad_request(self, daemon):
        with pytest.raises(ServeError) as exc:
            _client(daemon).submit("this is not an AIG", timeout=10)
        assert exc.value.code == "bad-request"

    def test_unknown_arrival_name_is_bad_request(self, daemon):
        with pytest.raises(ServeError) as exc:
            _client(daemon).submit(
                _rca_text(),
                options={"arrivals": {"no_such_pi": 3}},
                timeout=10,
            )
        assert exc.value.code == "bad-request"

    def test_unknown_op_is_bad_request(self, daemon):
        with pytest.raises(ServeError) as exc:
            _client(daemon).request({"op": "frobnicate"}, timeout=10)
        assert exc.value.code == "bad-request"


class TestTimeout:
    def test_watchdog_answers_and_counts(self, daemon):
        client = _client(daemon)
        with pytest.raises(ServeError) as exc:
            # Far below any real optimization time: the watchdog fires.
            client.submit(_rca_text(), timeout=0.01)
        assert exc.value.code == "timeout"
        status = client.status()
        assert status["jobs"]["timeout"] == 1
        assert status["jobs"]["completed"] == 0
        # The daemon survives and serves the next job normally
        # (the poisoned optimizer was replaced).
        result = client.submit(_rca_text(), timeout=120)
        assert result["ands"] > 0
