"""Cross-round cone cache keyed by structural fingerprints.

Every per-output computation in a lookahead round — the SPCF, the global
node truth tables feeding it, and the reduce/simplify/reconstruct verdict —
is a pure function of the output's fan-in cone plus a handful of optimizer
parameters.  Rounds and `lookahead_flow` iterations revisit mostly-unchanged
circuits, so identical cones recur constantly.  :class:`ConeCache` memoizes
three things across rounds (and across ``optimize()`` calls on the same
optimizer):

* **SPCF payloads** per ``(cone fingerprint, mode, kind, sim params)`` —
  the chosen Δ's truth table or signature, serialized to plain ints so the
  entry is process-independent;
* **node truth tables** per cone fingerprint (tt mode), shared by the
  Δ-relaxation loop and later rounds;
* **rejected-cone fingerprints**: cones whose decomposition produced no
  accepted replacement under a given configuration are skipped outright in
  later rounds.

Invalidation is automatic: any structural change to a cone changes its
fingerprint (see ``aig.cone_fingerprint``), so stale entries are simply
never looked up again; a bounded FIFO eviction keeps memory flat.  Hit and
miss counts are reported through :mod:`repro.perf` under ``cache.*``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import perf
from ..aig import AIG, cone_fingerprint, node_tts
from ..tt import TruthTable

SpcfPayload = Tuple
"""Serialized SPCF: ``('tt', bits, nvars)`` or ``('sim', signature)``."""


class ConeCache:
    """Bounded memo of per-cone lookahead results across rounds."""

    def __init__(self, max_entries: int = 4096):
        self.max_entries = max_entries
        self._spcf: Dict[Tuple, SpcfPayload] = {}
        self._tts: Dict[int, List[TruthTable]] = {}
        # Ordered set (insertion-ordered dict keys) so eviction can drop
        # the oldest rejection instead of forgetting all of them at once.
        self._rejected: Dict[Tuple, None] = {}

    # -- SPCF payloads -----------------------------------------------------

    def get_spcf(self, key: Tuple) -> Optional[SpcfPayload]:
        payload = self._spcf.get(key)
        perf.incr("cache.spcf.hit" if payload is not None else "cache.spcf.miss")
        return payload

    def put_spcf(self, key: Tuple, payload: SpcfPayload) -> None:
        self._evict(self._spcf)
        self._spcf[key] = payload

    # -- node truth tables -------------------------------------------------

    def get_node_tts(self, fp: int) -> Optional[List[TruthTable]]:
        tts = self._tts.get(fp)
        perf.incr("cache.tts.hit" if tts is not None else "cache.tts.miss")
        return tts

    def put_node_tts(self, fp: int, tts: List[TruthTable]) -> None:
        self._evict(self._tts)
        self._tts[fp] = tts

    # -- rejected cones ----------------------------------------------------

    def is_rejected(self, key: Tuple) -> bool:
        hit = key in self._rejected
        if hit:
            perf.incr("cache.rejected.hit")
        return hit

    def mark_rejected(self, key: Tuple) -> None:
        self._evict(self._rejected)
        self._rejected[key] = None

    # -- maintenance -------------------------------------------------------

    def _evict(self, table: Dict) -> None:
        """Drop the oldest entry when full (dicts preserve insert order)."""
        while len(table) >= self.max_entries:
            table.pop(next(iter(table)))
            perf.incr("cache.evictions")

    def clear(self) -> None:
        self._spcf.clear()
        self._tts.clear()
        self._rejected.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "spcf_entries": len(self._spcf),
            "tts_entries": len(self._tts),
            "rejected_entries": len(self._rejected),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ConeCache(spcf={s['spcf_entries']}, tts={s['tts_entries']}, "
            f"rejected={s['rejected_entries']})"
        )


# -- worker-side node-tts memo -----------------------------------------------

_LOCAL_TTS: Dict[int, List[TruthTable]] = {}
_LOCAL_TTS_LIMIT = 256


def node_tts_cached(aig: AIG, fp: Optional[int] = None) -> List[TruthTable]:
    """Process-local memoized ``node_tts`` keyed by cone fingerprint.

    Used inside worker processes (which cannot see the parent's
    :class:`ConeCache`) so the Δ-relaxation loop and repeated tasks on the
    same cone tabulate the cone once per process.
    """
    if fp is None:
        fp = cone_fingerprint(aig, aig.pos)
    tts = _LOCAL_TTS.get(fp)
    if tts is None:
        perf.incr("cache.tts.miss")
        tts = node_tts(aig)
        if len(_LOCAL_TTS) >= _LOCAL_TTS_LIMIT:
            _LOCAL_TTS.pop(next(iter(_LOCAL_TTS)))
        _LOCAL_TTS[fp] = tts
    else:
        perf.incr("cache.tts.hit")
    return tts


# -- worker-side SPCF DP-memo pool --------------------------------------------
#
# A (node, required-length) DP entry depends only on the cone structure,
# the node truth tables, and the arrival profile — not on the queried Δ —
# so the same table serves the whole Δ-relaxation loop, every output
# sharing the cone, and later rounds/flow iterations that revisit an
# unchanged cone.  Keyed alongside the ConeCache fingerprints; the memo
# dicts are mutated in place by the DP, so a pool hit resumes exactly
# where the previous query stopped tabulating.

_LOCAL_DP: Dict[Tuple, Dict] = {}
_LOCAL_DP_LIMIT = 64


def dp_memo_cached(
    fp: int, relaxed: bool, num_pis: int, model_key: Tuple = ("unit",)
) -> Dict:
    """Process-local shared SPCF DP memo for one (cone, kind, model).

    ``num_pis`` guards against fingerprint-equal cones embedded in PI
    spaces of different width (truth tables would not be comparable);
    ``model_key`` separates arrival regimes, whose arrival profiles give
    different DP tables for the same structure.
    """
    key = (fp, relaxed, num_pis, model_key)
    memo = _LOCAL_DP.get(key)
    if memo is None:
        perf.incr("cache.dp.miss")
        memo = {}
        if len(_LOCAL_DP) >= _LOCAL_DP_LIMIT:
            _LOCAL_DP.pop(next(iter(_LOCAL_DP)))
        _LOCAL_DP[key] = memo
    else:
        perf.incr("cache.dp.hit")
    return memo
