"""Fuzz driver, artifact round-trips, and the `repro fuzz` CLI."""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.cli import main
from repro.verify import (
    INVARIANTS,
    FuzzFailure,
    dump_aig,
    fuzz,
    load_artifact,
    make_case,
    random_aig,
    replay_artifact,
    run_invariant,
    write_artifact,
)


class TestFuzzDriver:
    def test_clean_run_on_cheap_checks(self):
        report = fuzz(
            seed=0, budget_s=30.0, max_cases=3,
            checks=["aiger_roundtrip", "blif_roundtrip"],
        )
        assert report.ok
        assert report.cases == 3
        assert report.checks == 6
        assert "clean" in report.summary()

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="unknown invariant"):
            fuzz(seed=0, max_cases=1, checks=["no_such_check"])

    def test_failure_is_shrunk_and_archived(self, tmp_path, monkeypatch):
        # Plant an invariant that rejects any circuit with >2 AND gates:
        # the driver must shrink the repro to the threshold and write a
        # replayable artifact.
        def planted(case):
            if case.aig.num_ands() > 2:
                return f"too many ands: {case.aig.num_ands()}"
            return None

        monkeypatch.setitem(INVARIANTS, "planted_size", planted)
        report = fuzz(
            seed=0, budget_s=30.0, max_cases=10,
            checks=["planted_size"], artifact_dir=str(tmp_path),
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.invariant == "planted_size"
        assert failure.circuit.num_ands() == 3  # minimal failing size
        assert failure.artifact_path
        case, invariant = load_artifact(failure.artifact_path)
        assert invariant == "planted_size"
        assert run_invariant(invariant, case) is not None

    def test_keep_going_collects_multiple(self, monkeypatch):
        monkeypatch.setitem(
            INVARIANTS, "always_fails", lambda case: "planted"
        )
        report = fuzz(
            seed=0, max_cases=3, checks=["always_fails"],
            shrink=False, keep_going=True,
        )
        assert len(report.failures) == 3


class TestArtifacts:
    def test_write_load_roundtrip(self, tmp_path):
        case = make_case(9, 2)
        failure = FuzzFailure(
            invariant="aiger_roundtrip", detail="synthetic", seed=9,
            case_index=2, config=case.config,
            arrival_times=case.arrival_times, circuit=case.aig,
        )
        path = write_artifact(failure, str(tmp_path))
        assert path.endswith(".json")
        with open(path) as fh:
            meta = json.load(fh)
        assert meta["invariant"] == "aiger_roundtrip"
        loaded, invariant = load_artifact(path)
        assert invariant == "aiger_roundtrip"
        assert dump_aig(loaded.aig) == dump_aig(case.aig)
        assert loaded.config == case.config
        assert loaded.arrival_times == case.arrival_times


class TestFuzzCli:
    def test_list_checks(self, capsys):
        assert main(["fuzz", "--list-checks"]) == 0
        out = capsys.readouterr().out
        for name in INVARIANTS:
            assert name in out

    def test_clean_run_exits_zero(self, capsys):
        rc = main([
            "fuzz", "--seed", "0", "--max-cases", "2",
            "--check", "aiger_roundtrip",
        ])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_failing_run_exits_nonzero_with_artifact(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setitem(
            INVARIANTS, "always_fails", lambda case: "planted failure"
        )
        rc = main([
            "fuzz", "--seed", "0", "--max-cases", "1",
            "--check", "always_fails", "--no-shrink",
            "--artifact-dir", str(tmp_path),
        ])
        assert rc == 1
        captured = capsys.readouterr()
        assert "FAILURE" in captured.out
        assert "regression artifact:" in captured.err
        assert os.listdir(str(tmp_path))  # .aag + .json were written

    def test_unknown_check_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown invariant"):
            main([
                "fuzz", "--max-cases", "1", "--check", "nope",
                "--artifact-dir", str(tmp_path),
            ])
