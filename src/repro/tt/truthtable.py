"""Bit-parallel truth tables over a fixed variable count.

A :class:`TruthTable` stores the function table of a Boolean function of
``nvars`` inputs as a Python big-int: bit ``m`` holds ``f(m)`` where the
binary expansion of the minterm index ``m`` assigns variable ``i`` the bit
``(m >> i) & 1``.  Variable 0 is therefore the fastest-toggling column.

Truth tables are the workhorse representation for *local* node functions in
the technology-independent network and for cut functions in the AIG; they
are exact, hashable, and cheap up to ~20 variables.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, Tuple

MAX_VARS = 24
"""Hard cap on variable count; 2**24-bit ints are still fast enough."""

#: Pre-computed elementary truth-table masks for variable ``i`` in a table of
#: ``2**(i+1)`` bits; widened on demand by :func:`_var_bits`.
_VAR_CACHE: dict = {}


def _mask(nvars: int) -> int:
    """All-ones mask for a table of ``nvars`` variables."""
    return (1 << (1 << nvars)) - 1


def _var_bits(i: int, nvars: int) -> int:
    """Table bits of the projection function ``x_i`` over ``nvars`` variables.

    Built by mask doubling: starting from the minimal ``2**(i+1)``-bit
    block (e.g. ``0b1100`` for i=1), each widening step replicates the
    table into the upper half (``bits |= bits << 2**n``), so the
    construction is O(nvars) big-int ops instead of one per period.  The
    doubling resumes from the widest cached ``(i, m)`` prefix, so widening
    an already-cached variable costs only the missing steps.
    """
    key = (i, nvars)
    cached = _VAR_CACHE.get(key)
    if cached is not None:
        return cached
    base_n = i + 1
    half = 1 << i
    bits = ((1 << half) - 1) << half  # e.g. 0b1100 for i=1
    for m in range(nvars - 1, i, -1):
        prefix = _VAR_CACHE.get((i, m))
        if prefix is not None:
            base_n, bits = m, prefix
            break
    for n in range(base_n, nvars):
        bits |= bits << (1 << n)
    _VAR_CACHE[key] = bits
    return bits


class TruthTable:
    """Immutable truth table of a Boolean function of ``nvars`` inputs."""

    __slots__ = ("bits", "nvars")

    def __init__(self, bits: int, nvars: int):
        if not 0 <= nvars <= MAX_VARS:
            raise ValueError(f"nvars must be in [0, {MAX_VARS}], got {nvars}")
        self.nvars = nvars
        self.bits = bits & _mask(nvars)

    # -- constructors ------------------------------------------------------

    @classmethod
    def const(cls, value: bool, nvars: int) -> "TruthTable":
        """Constant-0 or constant-1 function."""
        return cls(_mask(nvars) if value else 0, nvars)

    @classmethod
    def var(cls, i: int, nvars: int) -> "TruthTable":
        """Projection function ``x_i``."""
        if not 0 <= i < nvars:
            raise ValueError(f"variable {i} out of range for {nvars} vars")
        return cls(_var_bits(i, nvars), nvars)

    @classmethod
    def from_function(cls, fn: Callable[..., bool], nvars: int) -> "TruthTable":
        """Tabulate ``fn`` over all minterms; ``fn`` receives nvars bools."""
        bits = 0
        for m in range(1 << nvars):
            args = [bool((m >> i) & 1) for i in range(nvars)]
            if fn(*args):
                bits |= 1 << m
        return cls(bits, nvars)

    @classmethod
    def from_minterms(cls, minterms: Sequence[int], nvars: int) -> "TruthTable":
        """Function that is 1 exactly on the given minterm indices."""
        bits = 0
        for m in minterms:
            if not 0 <= m < (1 << nvars):
                raise ValueError(f"minterm {m} out of range")
            bits |= 1 << m
        return cls(bits, nvars)

    # -- Boolean algebra ---------------------------------------------------

    def _check(self, other: "TruthTable") -> None:
        if self.nvars != other.nvars:
            raise ValueError(
                f"variable-count mismatch: {self.nvars} vs {other.nvars}"
            )

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.bits & other.bits, self.nvars)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.bits | other.bits, self.nvars)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.bits ^ other.bits, self.nvars)

    def __invert__(self) -> "TruthTable":
        return TruthTable(~self.bits, self.nvars)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TruthTable)
            and self.nvars == other.nvars
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((self.bits, self.nvars))

    def __repr__(self) -> str:
        width = 1 << self.nvars
        return f"TruthTable({self.bits:0{max(1, width // 4)}x}, nvars={self.nvars})"

    # -- queries -----------------------------------------------------------

    @property
    def is_const0(self) -> bool:
        return self.bits == 0

    @property
    def is_const1(self) -> bool:
        return self.bits == _mask(self.nvars)

    def value(self, minterm: int) -> bool:
        """Evaluate the function on a minterm index."""
        return bool((self.bits >> minterm) & 1)

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate on a variable assignment (list of nvars bools)."""
        m = 0
        for i, bit in enumerate(assignment):
            if bit:
                m |= 1 << i
        return self.value(m)

    def count_ones(self) -> int:
        """Number of minterms in the on-set."""
        return bin(self.bits).count("1")

    def minterms(self) -> Iterator[int]:
        """Iterate over on-set minterm indices in increasing order."""
        bits = self.bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def implies(self, other: "TruthTable") -> bool:
        """True iff ``self <= other`` pointwise."""
        self._check(other)
        return self.bits & ~other.bits == 0

    # -- cofactors and quantification ---------------------------------------

    def cofactor(self, i: int, value: bool) -> "TruthTable":
        """Shannon cofactor with respect to ``x_i = value`` (same nvars)."""
        v = _var_bits(i, self.nvars)
        shift = 1 << i
        if value:
            pos = self.bits & v
            return TruthTable(pos | (pos >> shift), self.nvars)
        neg = self.bits & ~v
        return TruthTable(neg | (neg << shift), self.nvars)

    def exists(self, i: int) -> "TruthTable":
        """Existential quantification of ``x_i``."""
        return self.cofactor(i, False) | self.cofactor(i, True)

    def forall(self, i: int) -> "TruthTable":
        """Universal quantification of ``x_i``."""
        return self.cofactor(i, False) & self.cofactor(i, True)

    def depends_on(self, i: int) -> bool:
        """True iff the function actually depends on ``x_i``."""
        return self.cofactor(i, False).bits != self.cofactor(i, True).bits

    def support(self) -> List[int]:
        """Indices of variables the function depends on."""
        return [i for i in range(self.nvars) if self.depends_on(i)]

    # -- structural transforms ----------------------------------------------

    def permute(self, perm: Sequence[int]) -> "TruthTable":
        """Rename variables: new variable ``perm[i]`` takes old ``x_i``'s role.

        ``perm`` must be a permutation of ``range(nvars)``.  The returned
        table ``g`` satisfies ``g(y) = f(x)`` with ``y[perm[i]] = x[i]``.
        """
        if sorted(perm) != list(range(self.nvars)):
            raise ValueError("perm must be a permutation of range(nvars)")
        if list(perm) == list(range(self.nvars)):
            return self
        bits = 0
        for m in self.minterms():
            new_m = 0
            for i in range(self.nvars):
                if (m >> i) & 1:
                    new_m |= 1 << perm[i]
            bits |= 1 << new_m
        return TruthTable(bits, self.nvars)

    def flip(self, i: int) -> "TruthTable":
        """Negate input ``x_i`` (swap its two cofactors)."""
        v = _var_bits(i, self.nvars)
        shift = 1 << i
        pos = self.bits & v
        neg = self.bits & ~v
        return TruthTable((pos >> shift) | (neg << shift), self.nvars)

    def extend(self, nvars: int) -> "TruthTable":
        """Re-express over a larger variable set (new variables are dummies)."""
        if nvars < self.nvars:
            raise ValueError("extend target smaller than current nvars")
        bits = self.bits
        for n in range(self.nvars, nvars):
            bits |= bits << (1 << n)
        return TruthTable(bits, nvars)

    def shrink(self) -> Tuple["TruthTable", List[int]]:
        """Project onto the true support.

        Returns ``(g, support)`` where ``g`` is over ``len(support)``
        variables and ``g(x[support])  == f(x)``.
        """
        sup = self.support()
        if len(sup) == self.nvars:
            return self, sup
        g_bits = 0
        for m in range(1 << len(sup)):
            full = 0
            for j, i in enumerate(sup):
                if (m >> j) & 1:
                    full |= 1 << i
            if self.value(full):
                g_bits |= 1 << m
        return TruthTable(g_bits, len(sup)), sup

    def compose(self, tables: Sequence["TruthTable"]) -> "TruthTable":
        """Substitute ``tables[i]`` for ``x_i``; all inputs share an nvars."""
        if len(tables) != self.nvars:
            raise ValueError("need one table per variable")
        if self.nvars == 0:
            target = 0
        else:
            target = tables[0].nvars
            for t in tables:
                if t.nvars != target:
                    raise ValueError("composed tables must share nvars")
        result = TruthTable.const(False, target)
        # Shannon expansion over self's minterms: OR of minterm conditions.
        for m in self.minterms():
            term = TruthTable.const(True, target)
            for i in range(self.nvars):
                lit = tables[i] if (m >> i) & 1 else ~tables[i]
                term &= lit
                if term.is_const0:
                    break
            result |= term
        return result


def cube_tt(mask: int, value: int, nvars: int) -> TruthTable:
    """Truth table of a cube: AND of literals.

    ``mask`` selects the variables present in the cube; ``value`` gives the
    required polarity bit for each selected variable.
    """
    t = TruthTable.const(True, nvars)
    for i in range(nvars):
        if (mask >> i) & 1:
            v = TruthTable.var(i, nvars)
            t &= v if (value >> i) & 1 else ~v
    return t
