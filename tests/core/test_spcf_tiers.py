"""Property tests for the tiered SPCF kernels (repro.core.spcf/signatures).

Three contracts, each over seeded random AIGs:

* the exact SPCF is contained in the over-approximate SPCF (the relaxed
  side-input condition only ever adds minterms);
* the exhaustive floating-mode prefilter is sound against the exact DP —
  a pruned ``(node, t)`` entry really is the constant-0 function, so the
  filtered DP is bit-identical to the unfiltered one;
* the signature tier is deterministic for a fixed seed.
"""

import random

import pytest

from repro.aig import levels
from repro.core.cache import dp_memo_cached
from repro.core.spcf import (
    SpcfKernel,
    SpcfTierConfig,
    make_var_lit,
    resolve_spcf_tier,
    spcf_exact_tt,
    spcf_overapprox_tt,
    spcf_signature,
    _sensitization_dp,
)
from repro.core.signatures import SpcfPrefilter
from repro.tt import TruthTable
from repro.verify.random_circuits import random_aig

SEEDS = range(12)


def _cases(seed, num_pis):
    rng = random.Random(seed)
    return random_aig(rng, num_pis=num_pis, num_gates=rng.randint(8, 40))


@pytest.mark.parametrize("seed", SEEDS)
def test_exact_subset_of_overapprox(seed):
    aig = _cases(seed, num_pis=random.Random(seed ^ 99).randint(3, 8))
    lvl = levels(aig)
    for po_index, po_lit in enumerate(aig.pos):
        po_depth = lvl[po_lit >> 1]
        for delta in range(1, po_depth + 1):
            exact = spcf_exact_tt(aig, po_index, delta)
            over = spcf_overapprox_tt(aig, po_index, delta)
            assert (exact & ~over).is_const0, (
                f"seed {seed} po {po_index} delta {delta}: exact SPCF "
                "not contained in over-approximation"
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_prefilter_sound_against_exact_dp(seed):
    aig = _cases(seed, num_pis=random.Random(seed ^ 7).randint(3, 10))
    lvl = levels(aig)
    prefilter = SpcfPrefilter.for_cone(aig)
    assert prefilter.exhaustive  # <= 10 PIs: the bound is a proof
    # Every pruned (node, t) entry must be const0 under the exact DP.
    for var in aig.and_vars():
        for t in range(1, lvl[var] + 1):
            if prefilter.prunes(var, t):
                entry = _sensitization_dp(
                    aig, make_var_lit(var), t, relaxed=False
                )
                assert entry.is_const0, (
                    f"seed {seed}: prefilter pruned ({var}, {t}) but the "
                    "exact DP entry is non-empty (false non-critical)"
                )
    # And therefore the filtered DP is bit-identical to the unfiltered.
    for po_index in range(aig.num_pos):
        po_depth = lvl[aig.pos[po_index] >> 1]
        for delta in range(1, po_depth + 1):
            plain = spcf_exact_tt(aig, po_index, delta)
            filtered = spcf_exact_tt(
                aig, po_index, delta, prefilter=prefilter
            )
            assert plain == filtered


def test_prefilter_fires_on_false_path():
    """A statically unsensitizable long path is pruned without the DP.

    ``v = (e AND chain) AND NOT e`` is always controlled early: with
    ``e=1`` the literal ``NOT e`` controls at time 0, with ``e=0`` the
    gate ``e AND chain`` controls at time 1 — so ``v``'s floating-mode
    arrival bound is 2 while its structural level is 4, and the DP
    entries ``(v, 3)`` and ``(v, 4)`` are pruned outright.
    """
    from repro.aig import AIG, lit_not

    aig = AIG()
    b = aig.add_pi("b")
    c = aig.add_pi("c")
    d = aig.add_pi("d")
    e = aig.add_pi("e")
    g1 = aig.and_(c, d)
    g2 = aig.and_(g1, b)
    deep = aig.and_(e, g2)
    v = aig.and_(deep, lit_not(e))
    aig.add_po(v, "y")
    prefilter = SpcfPrefilter.for_cone(aig)
    lvl = levels(aig)
    pruned = [
        (var, t)
        for var in aig.and_vars()
        for t in range(1, lvl[var] + 1)
        if prefilter.prunes(var, t)
    ]
    assert (v >> 1, lvl[v >> 1]) in pruned, (
        "expected the arrival bound to prune the false path"
    )
    for var, t in pruned:
        entry = _sensitization_dp(aig, make_var_lit(var), t, relaxed=False)
        assert entry.is_const0


@pytest.mark.parametrize("seed", SEEDS)
def test_signature_deterministic(seed):
    aig = _cases(seed, num_pis=random.Random(seed ^ 3).randint(3, 8))
    cfg = SpcfTierConfig(force="signature", sim_width=256, seed=seed)
    lvl = levels(aig)
    for po_index in range(aig.num_pos):
        po_depth = lvl[aig.pos[po_index] >> 1]
        for delta in range(1, po_depth + 1):
            runs = set()
            for _ in range(2):
                kernel = SpcfKernel(aig, config=cfg)
                runs.add(kernel.spcf(po_index, delta).signature)
            assert len(runs) == 1, (
                f"seed {seed}: spcf_signature not deterministic"
            )


def test_tier_resolution_degrades_by_support():
    cfg = SpcfTierConfig(exact_limit=4, overapprox_limit=6)
    assert resolve_spcf_tier(3, "exact", cfg) == "exact"
    assert resolve_spcf_tier(4, "overapprox", cfg) == "overapprox"
    assert resolve_spcf_tier(5, "exact", cfg) == "overapprox"
    assert resolve_spcf_tier(6, "exact", cfg) == "overapprox"
    assert resolve_spcf_tier(7, "exact", cfg) == "signature"
    forced = SpcfTierConfig(exact_limit=4, force="signature")
    assert resolve_spcf_tier(2, "exact", forced) == "signature"
    with pytest.raises(ValueError):
        SpcfTierConfig(force="bogus")


def test_kernel_exact_tier_matches_direct_dp():
    """The kernel's shared memo across Δ queries is a pure memoization."""
    rng = random.Random(5)
    aig = random_aig(rng, num_pis=6, num_gates=24)
    lvl = levels(aig)
    kernel = SpcfKernel(aig, kind="exact")
    for po_index in range(aig.num_pos):
        po_depth = lvl[aig.pos[po_index] >> 1]
        for delta in range(po_depth, 0, -1):  # relaxation order
            via_kernel = kernel.spcf(po_index, delta).tt
            direct = spcf_exact_tt(aig, po_index, delta)
            assert via_kernel == direct


def test_dp_memo_pool_shares_and_separates():
    memo_a = dp_memo_cached(1234, False, 5)
    memo_a[(1, 1)] = TruthTable.const(False, 5)
    assert dp_memo_cached(1234, False, 5) is memo_a
    assert dp_memo_cached(1234, True, 5) is not memo_a
    assert dp_memo_cached(1234, False, 6) is not memo_a
    assert dp_memo_cached(1234, False, 5, ("unit",)) is memo_a
    assert dp_memo_cached(1234, False, 5, ("arrival", (1,))) is not memo_a
