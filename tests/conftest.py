"""Shared pytest configuration for the whole test tree."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden QoR records (tests/bench/golden_qor.json) "
        "with the current flow results instead of asserting them",
    )


@pytest.fixture
def update_golden(request):
    """True when the run should refresh golden records, not check them."""
    return request.config.getoption("--update-golden")
