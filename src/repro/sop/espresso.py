"""Heuristic two-level minimization (espresso-style EXPAND/IRREDUNDANT/REDUCE).

Operates on truth tables for the on/dc sets, which keeps every containment
check exact; intended for node-local functions of modest support (<= ~14
variables), which is the regime of the technology-independent network.
"""

from __future__ import annotations

from typing import List, Optional

from ..tt import TruthTable
from .cube import Cube
from .isop import isop
from .qm import EXACT_VAR_LIMIT, minimize_exact
from .sop import Cover


def _supercube(tt: TruthTable) -> Cube:
    """Smallest cube containing the on-set of ``tt`` (tt must be non-zero)."""
    mask = value = 0
    for i in range(tt.nvars):
        var = TruthTable.var(i, tt.nvars)
        if tt.implies(var):
            mask |= 1 << i
            value |= 1 << i
        elif tt.implies(~var):
            mask |= 1 << i
    return Cube(mask, value, tt.nvars)


def _expand(cover: Cover, off: TruthTable) -> Cover:
    """Enlarge each cube maximally against the off-set, then prune."""
    expanded: List[Cube] = []
    for cube in cover:
        current = cube
        # Try dropping literals; order literals by how blocked they are so
        # the freest directions are taken first.
        literals = sorted(
            (var for var, _pol in cube.literals()),
            key=lambda var: (current.without(var).to_tt() & off).count_ones(),
        )
        for var in literals:
            candidate = current.without(var)
            if (candidate.to_tt() & off).is_const0:
                current = candidate
        expanded.append(current)
    return Cover(expanded, cover.nvars).single_cube_containment()


def _irredundant(cover: Cover, on: TruthTable) -> Cover:
    """Drop cubes whose removal keeps the on-set covered."""
    cubes = list(cover.cubes)
    tts = [c.to_tt() for c in cubes]
    # Try removing the biggest cubes... actually remove cheap-to-lose cubes
    # first: ones whose minterms are mostly covered elsewhere.
    order = sorted(range(len(cubes)), key=lambda i: -cubes[i].num_literals())
    alive = [True] * len(cubes)
    for i in order:
        rest = TruthTable.const(False, cover.nvars)
        for j, t in enumerate(tts):
            if alive[j] and j != i:
                rest |= t
        if on.implies(rest):
            alive[i] = False
    return Cover([c for c, a in zip(cubes, alive) if a], cover.nvars)


def _reduce(cover: Cover, on: TruthTable) -> Cover:
    """Shrink each cube to the supercube of its essential on-set part.

    Processed sequentially against the *current* cover (already-reduced
    cubes plus the not-yet-processed originals), so the cover keeps
    covering the on-set at every step — shrinking against a frozen
    snapshot could drop minterms shared by two cubes from both.
    """
    cubes = list(cover.cubes)
    tts = [c.to_tt() for c in cubes]
    reduced: List[Cube] = []
    reduced_tts: List[TruthTable] = []
    for i, cube in enumerate(cubes):
        rest = TruthTable.const(False, cover.nvars)
        for t in reduced_tts:
            rest |= t
        for t in tts[i + 1 :]:
            rest |= t
        required = tts[i] & on & ~rest
        if required.is_const0:
            continue  # fully redundant
        shrunk = _supercube(required)
        reduced.append(shrunk)
        reduced_tts.append(shrunk.to_tt())
    return Cover(reduced, cover.nvars)


def espresso(
    on: TruthTable,
    dc: Optional[TruthTable] = None,
    max_iters: int = 5,
) -> Cover:
    """Heuristically minimized cover of ``on`` with don't-cares ``dc``."""
    nvars = on.nvars
    if dc is None:
        dc = TruthTable.const(False, nvars)
    if on.is_const0:
        return Cover.empty(nvars)
    if (~on & ~dc).is_const0:
        return Cover.tautology(nvars)
    off = ~(on | dc)
    cover = isop(on, on | dc)
    best = cover
    best_cost = (len(best), best.num_literals())
    for _ in range(max_iters):
        cover = _expand(cover, off)
        cover = _irredundant(cover, on)
        cost = (len(cover), cover.num_literals())
        if cost < best_cost:
            best, best_cost = cover, cost
        else:
            break
        cover = _reduce(cover, on)
    return best


def min_sop(on: TruthTable, dc: Optional[TruthTable] = None) -> Cover:
    """Minimum SOP cover: exact for small supports, heuristic beyond.

    This is the "minimum sum-of-products" the paper's node-level model and
    `Simplify` operate on.
    """
    support_size = len(on.support()) if dc is None else len((on | dc).support())
    if support_size <= EXACT_VAR_LIMIT and on.nvars <= EXACT_VAR_LIMIT + 3:
        return minimize_exact(on, dc)
    return espresso(on, dc)
