"""The differential fuzz driver: generate, drive, check, shrink, record.

A fuzz run is reproducible from its seed: case ``i`` derives its own
``random.Random(f"{seed}:{i}")``, generates a circuit + arrival map +
optimizer config, and evaluates the :mod:`~repro.verify.invariants`
registry against it (expensive lanes — parallel workers, the full flow —
run on a stride so the budget goes to coverage, not process spawns).

On the first failure the driver ddmin-shrinks the circuit against that
single invariant, writes a regression artifact pair —
``fuzz_<invariant>_s<seed>_c<case>.aag`` plus a ``.json`` sidecar with
the config and failure detail — and stops.  ``tests/regressions`` replays
every checked-in artifact on each test run, so a bug found once can never
quietly return.

Progress and outcomes land in :mod:`repro.perf` under ``verify.*``.
"""

from __future__ import annotations

import io
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import perf
from ..aig import AIG, read_aag, write_aag
from .invariants import Case, EXPENSIVE, INVARIANTS, run_invariant
from .random_circuits import random_aig, random_arrival_map, random_config
from .shrink import shrink_aig


@dataclass
class FuzzFailure:
    """One reproduced invariant violation, shrunk and recorded."""

    invariant: str
    detail: str
    seed: int
    case_index: int
    config: Dict
    arrival_times: Optional[Dict[str, int]]
    circuit: AIG
    artifact_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Outcome of a fuzz run."""

    seed: int
    cases: int = 0
    checks: int = 0
    elapsed: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "clean" if self.ok else f"{len(self.failures)} FAILURE(S)"
        lines = [
            f"fuzz seed={self.seed}: {self.cases} cases, "
            f"{self.checks} checks in {self.elapsed:.1f}s — {status}"
        ]
        for f in self.failures:
            lines.append(
                f"  {f.invariant} @ case {f.case_index}: {f.detail}"
            )
            if f.artifact_path:
                lines.append(f"    artifact: {f.artifact_path}")
        return "\n".join(lines)


def make_case(seed: int, index: int) -> Case:
    """The deterministic fuzz case ``(seed, index)``."""
    rng = random.Random(f"{seed}:{index}")
    aig = random_aig(rng)
    return Case(
        aig=aig,
        config=random_config(rng),
        arrival_times=random_arrival_map(rng, aig),
    )


def write_artifact(failure: FuzzFailure, out_dir: str) -> str:
    """Write the shrunk circuit + metadata; returns the ``.json`` path."""
    os.makedirs(out_dir, exist_ok=True)
    stem = (
        f"fuzz_{failure.invariant}_s{failure.seed}_c{failure.case_index}"
    )
    aag_path = os.path.join(out_dir, stem + ".aag")
    with open(aag_path, "w") as fh:
        write_aag(failure.circuit, fh)
    meta = {
        "invariant": failure.invariant,
        "circuit": stem + ".aag",
        "config": {
            k: list(v) if isinstance(v, tuple) else v
            for k, v in failure.config.items()
        },
        "arrival_times": failure.arrival_times,
        "seed": failure.seed,
        "case_index": failure.case_index,
        "detail": failure.detail,
    }
    json_path = os.path.join(out_dir, stem + ".json")
    with open(json_path, "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return json_path


def load_artifact(json_path: str) -> Tuple[Case, str]:
    """Rebuild the :class:`Case` recorded in an artifact sidecar."""
    with open(json_path) as fh:
        meta = json.load(fh)
    base = os.path.dirname(json_path)
    with open(os.path.join(base, meta["circuit"])) as fh:
        aig = read_aag(fh)
    config = dict(meta.get("config") or {})
    if "walk_modes" in config:
        config["walk_modes"] = tuple(config["walk_modes"])
    return Case(
        aig=aig,
        config=config,
        arrival_times=meta.get("arrival_times"),
    ), meta["invariant"]


def replay_artifact(json_path: str) -> Optional[str]:
    """Re-run an artifact's invariant; None when the bug stays fixed."""
    case, invariant = load_artifact(json_path)
    return run_invariant(invariant, case)


def fuzz(
    seed: int = 0,
    budget_s: float = 60.0,
    max_cases: Optional[int] = None,
    checks: Optional[Sequence[str]] = None,
    artifact_dir: Optional[str] = None,
    shrink: bool = True,
    keep_going: bool = False,
) -> FuzzReport:
    """Run the differential fuzzer for ``budget_s`` seconds.

    ``checks`` restricts the invariant set (default: all registered).
    By default the run stops at (and shrinks) the first failure; with
    ``keep_going`` it records every failing case and shrinks each.
    """
    names = list(checks) if checks else list(INVARIANTS)
    unknown = [n for n in names if n not in INVARIANTS]
    if unknown:
        raise ValueError(
            f"unknown invariant(s) {unknown}; known: {sorted(INVARIANTS)}"
        )
    report = FuzzReport(seed=seed)
    deadline = time.monotonic() + budget_s
    start = time.monotonic()
    index = 0
    while time.monotonic() < deadline:
        if max_cases is not None and index >= max_cases:
            break
        case = make_case(seed, index)
        perf.incr("verify.fuzz.cases")
        report.cases += 1
        for name in names:
            stride = EXPENSIVE.get(name)
            if stride and index % stride != 0:
                continue
            perf.incr(f"verify.fuzz.check.{name}")
            report.checks += 1
            with perf.timer(f"verify.check.{name}"):
                detail = run_invariant(name, case)
            if detail is None:
                continue
            perf.incr("verify.fuzz.failures")
            failure = FuzzFailure(
                invariant=name,
                detail=detail,
                seed=seed,
                case_index=index,
                config=case.config,
                arrival_times=case.arrival_times,
                circuit=case.aig,
            )
            if shrink:
                with perf.timer("verify.shrink"):
                    failure.circuit = shrink_aig(
                        case.aig,
                        lambda c: run_invariant(
                            name,
                            Case(c, case.config, case.arrival_times),
                        )
                        is not None,
                    )
            if artifact_dir:
                failure.artifact_path = write_artifact(
                    failure, artifact_dir
                )
            report.failures.append(failure)
            if not keep_going:
                report.elapsed = time.monotonic() - start
                return report
        index += 1
    report.elapsed = time.monotonic() - start
    return report


def dump_aig(aig: AIG) -> str:
    """ASCII-AIGER text of a circuit (convenience for reports/tests)."""
    buf = io.StringIO()
    write_aag(aig, buf)
    return buf.getvalue()
