"""Algebraic factoring of SOP covers (kernels, division, good_factor).

The factored form drives multi-level synthesis of network nodes back into
AIGs: ``repro.netlist.to_aig`` walks the expression tree produced by
:func:`factor` and builds arrival-aware AND/OR trees.

Internally cubes are frozensets of literals ``(var, polarity)`` — the
algebraic (as opposed to Boolean) view, as in SIS.
"""

from __future__ import annotations

from collections import Counter
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from .cube import Cube
from .sop import Cover

Literal = Tuple[int, bool]
ACube = FrozenSet[Literal]


class Expr:
    """Factored-form expression tree.

    ``kind`` is one of ``'lit'``, ``'and'``, ``'or'``, ``'const0'``,
    ``'const1'``.  Literal nodes carry ``(var, polarity)``; operator nodes
    carry children.
    """

    __slots__ = ("kind", "lit", "children")

    def __init__(self, kind: str, lit: Optional[Literal] = None,
                 children: Optional[List["Expr"]] = None):
        self.kind = kind
        self.lit = lit
        self.children = children or []

    @classmethod
    def literal(cls, var: int, pol: bool) -> "Expr":
        return cls("lit", lit=(var, pol))

    @classmethod
    def and_(cls, children: List["Expr"]) -> "Expr":
        if not children:
            return cls("const1")
        if len(children) == 1:
            return children[0]
        return cls("and", children=children)

    @classmethod
    def or_(cls, children: List["Expr"]) -> "Expr":
        if not children:
            return cls("const0")
        if len(children) == 1:
            return children[0]
        return cls("or", children=children)

    def num_literals(self) -> int:
        if self.kind == "lit":
            return 1
        return sum(c.num_literals() for c in self.children)

    def __repr__(self) -> str:
        if self.kind == "lit":
            var, pol = self.lit
            return f"x{var}" if pol else f"!x{var}"
        if self.kind in ("const0", "const1"):
            return self.kind[-1]
        sep = " & " if self.kind == "and" else " | "
        return "(" + sep.join(map(repr, self.children)) + ")"


def _to_acubes(cover: Cover) -> List[ACube]:
    return [frozenset(c.literals()) for c in cover.cubes]


def _from_acubes(acubes: Sequence[ACube], nvars: int) -> Cover:
    return Cover([Cube.from_literals(list(ac), nvars) for ac in acubes], nvars)


def divide(f: Sequence[ACube], d: Sequence[ACube]) -> Tuple[List[ACube], List[ACube]]:
    """Algebraic (weak) division: ``f = d * q + r``.

    Returns ``(q, r)``.  ``q`` is empty when ``d`` does not divide ``f``.
    """
    if not d:
        return [], list(f)
    quotient: Optional[Set[ACube]] = None
    for dc in d:
        partial = {fc - dc for fc in f if dc <= fc}
        quotient = partial if quotient is None else quotient & partial
        if not quotient:
            return [], list(f)
    q = sorted(quotient, key=sorted)  # deterministic order
    product = {qc | dc for qc in q for dc in d}
    r = [fc for fc in f if fc not in product]
    return q, r


def common_cube(f: Sequence[ACube]) -> ACube:
    """Largest cube dividing every cube of ``f``."""
    if not f:
        return frozenset()
    acc: FrozenSet[Literal] = f[0]
    for fc in f[1:]:
        acc = acc & fc
    return acc


def is_cube_free(f: Sequence[ACube]) -> bool:
    return not common_cube(f)


def kernels(f: Sequence[ACube], min_level: int = 0) -> List[Tuple[ACube, List[ACube]]]:
    """All (co-kernel, kernel) pairs of ``f`` (standard recursive extraction).

    The trivial kernel (``f`` itself, when cube-free) is included with the
    empty co-kernel.
    """
    literal_counts = Counter(lit for fc in f for lit in fc)
    literals = sorted(
        (lit for lit, n in literal_counts.items() if n >= 2),
        key=lambda lit: (lit[0], lit[1]),
    )
    results: List[Tuple[ACube, List[ACube]]] = []
    seen: Set[FrozenSet[ACube]] = set()

    def rec(g: List[ACube], cokernel: ACube, start: int) -> None:
        key = frozenset(g)
        if key not in seen:
            seen.add(key)
            results.append((cokernel, g))
        for idx in range(start, len(literals)):
            lit = literals[idx]
            with_lit = [gc for gc in g if lit in gc]
            if len(with_lit) < 2:
                continue
            sub = [gc - {lit} for gc in with_lit]
            cc = common_cube(sub)
            new_g = sorted(({s - cc for s in sub}), key=sorted)
            # Skip if the common cube contains an earlier literal — that
            # kernel is found from the earlier branch (canonical pruning).
            if any(literals.index(c) < idx for c in cc if c in literals):
                continue
            rec(list(new_g), cokernel | {lit} | cc, idx + 1)

    g0 = list(f)
    cc0 = common_cube(g0)
    rec([fc - cc0 for fc in g0], frozenset(cc0), 0)
    # Kernels must be cube-free covers with >= 2 cubes, plus the trivial one.
    out = []
    for cok, ker in results:
        if len(ker) >= 2 or (not cok and ker):
            out.append((cok, ker))
    return out


def best_kernel(f: Sequence[ACube]) -> Optional[List[ACube]]:
    """Kernel maximizing a simple literal-savings value, or None."""
    candidates = kernels(f)
    best = None
    best_value = 0
    for _cok, ker in candidates:
        if frozenset(map(frozenset, ker)) == frozenset(map(frozenset, f)):
            continue
        if len(ker) < 2:
            continue
        q, _r = divide(f, ker)
        if not q:
            continue
        ker_lits = sum(len(c) for c in ker)
        value = (len(q) - 1) * ker_lits
        if value > best_value:
            best_value = value
            best = ker
    return best


def _most_common_literal(f: Sequence[ACube]) -> Optional[Literal]:
    counts = Counter(lit for fc in f for lit in fc)
    if not counts:
        return None
    # Only useful if it appears at least twice.
    lit, n = counts.most_common(1)[0]
    return lit if n >= 2 else None


def _factor_acubes(f: List[ACube]) -> Expr:
    if not f:
        return Expr("const0")
    if any(len(fc) == 0 for fc in f):
        return Expr("const1")
    if len(f) == 1:
        return Expr.and_([Expr.literal(v, p) for v, p in sorted(f[0])])
    cc = common_cube(f)
    if cc:
        rest = _factor_acubes([fc - cc for fc in f])
        lits = [Expr.literal(v, p) for v, p in sorted(cc)]
        return Expr.and_(lits + [rest])
    divisor = best_kernel(f)
    if divisor is None:
        lit = _most_common_literal(f)
        if lit is None:
            # All cubes are single distinct literals: plain OR.
            return Expr.or_([_factor_acubes([fc]) for fc in f])
        divisor = [frozenset({lit})]
    q, r = divide(f, divisor)
    if not q:
        return Expr.or_([_factor_acubes([fc]) for fc in f])
    q_expr = _factor_acubes(q)
    d_expr = _factor_acubes(list(divisor))
    dq = Expr.and_([d_expr, q_expr])
    if not r:
        return dq
    return Expr.or_([dq, _factor_acubes(r)])


def factor(cover: Cover) -> Expr:
    """Good-factor the cover into a factored-form expression tree."""
    return _factor_acubes(_to_acubes(cover))


def expr_to_cover(expr: Expr, nvars: int) -> Cover:
    """Flatten a factored form back to an SOP cover (for testing)."""
    def rec(e: Expr) -> List[ACube]:
        if e.kind == "const0":
            return []
        if e.kind == "const1":
            return [frozenset()]
        if e.kind == "lit":
            return [frozenset({e.lit})]
        if e.kind == "or":
            out: List[ACube] = []
            for ch in e.children:
                out.extend(rec(ch))
            return out
        # AND: cartesian product of children's cube lists.
        acc: List[ACube] = [frozenset()]
        for ch in e.children:
            child_cubes = rec(ch)
            nxt = []
            for a in acc:
                for b in child_cubes:
                    merged = dict(a)
                    ok = True
                    for var, pol in b:
                        if var in merged and merged[var] != pol:
                            ok = False
                            break
                        merged[var] = pol
                    if ok:
                        nxt.append(frozenset(merged.items()))
            acc = nxt
        return acc

    return _from_acubes(rec(expr), nvars).single_cube_containment()
