"""Node simplification guided by the SPCF (Fig. 1 of the paper).

``simplify_node`` rewrites the local function ``b_j`` of one network node
into a cheaper ``b~_j`` and returns the *window*: the local condition on the
node's fan-ins under which ``b~_j`` agrees with ``b_j``.  Three cases,
exactly as in the paper's pseudo-code:

* every off-set cube has zero weight (the node is 1 on all speed-path
  minterms): start from constant 0 and re-admit on-set cubes in decreasing
  weight order while the node level stays below its original value; the
  window is ``b~_j`` itself;
* every on-set cube has zero weight: the dual, window ``!b~_j``;
* both sides carry weight: start from all don't-cares and commit cubes (of
  either set) in decreasing weight order under the same level constraint;
  the window is the agreement set ``XNOR(b~_j, b_j)`` of the chosen
  completion.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..netlist import Network, cover_level, min_sops, node_level
from ..sop import min_sop
from ..tt import TruthTable


class SimplifyOutcome:
    """Result of simplifying one node."""

    __slots__ = ("changed", "window", "new_level")

    def __init__(
        self,
        changed: bool,
        window: Optional[TruthTable] = None,
        new_level: Optional[int] = None,
    ):
        self.changed = changed
        self.window = window
        self.new_level = new_level

    def __repr__(self) -> str:
        return f"SimplifyOutcome(changed={self.changed})"


def incomplete_level(
    on: TruthTable, dc: TruthTable, fanin_levels: Sequence[int]
) -> int:
    """Level of an incompletely specified function (best completion phase)."""
    off = ~(on | dc)
    if on.is_const0 or off.is_const0:
        return 0
    on_cover = min_sop(on, dc)
    off_cover = min_sop(off, dc)
    return min(
        cover_level(on_cover, fanin_levels),
        cover_level(off_cover, fanin_levels),
    )


def complete_function(
    on: TruthTable, dc: TruthTable, fanin_levels: Sequence[int]
) -> TruthTable:
    """Pick the completion of (on, dc) with the smaller node level."""
    off = ~(on | dc)
    if on.is_const0:
        return TruthTable.const(False, on.nvars)
    if off.is_const0:
        return TruthTable.const(True, on.nvars)
    on_cover = min_sop(on, dc)
    off_cover = min_sop(off, dc)
    cand_on = on_cover.to_tt()
    cand_off = ~off_cover.to_tt()
    if node_level(cand_off, fanin_levels) < node_level(cand_on, fanin_levels):
        return cand_off
    return cand_on


def shrink_window(
    window: TruthTable,
    fanin_levels: Sequence[int],
    late_threshold: int,
    limit: Optional[int] = None,
) -> TruthTable:
    """Make a window shallow by universally quantifying late fan-ins.

    Any under-approximation of the agreement set is a valid window, so the
    window's dependence on a late input ``v`` may be dropped by requiring
    agreement for *both* values of ``v`` (universal quantification).  Two
    criteria are applied:

    * every support variable arriving at or after ``late_threshold`` is
      eliminated — the window must not ride on the signals whose lateness
      the simplification just removed (this is exactly the step that turns
      the full-adder agreement set into the carry-lookahead window
      ``a XOR b``);
    * while the window's own level exceeds ``limit`` (the depth budget Σ1
      is allowed in the reconstruction), the latest remaining support
      variable is eliminated.

    Together these realize the paper's guarantee that "the additional
    logic does not cancel the reduction in logic levels".  Returns
    constant 0 when no usable shallow window exists.
    """
    w = window
    for i in sorted(
        range(len(fanin_levels)), key=lambda i: -fanin_levels[i]
    ):
        if w.is_const0:
            return w
        if fanin_levels[i] >= late_threshold and w.depends_on(i):
            w = w.forall(i)
    while not w.is_const0 and limit is not None:
        if node_level(w, fanin_levels) <= limit:
            break
        support = w.support()
        if not support:
            break
        latest = max(support, key=lambda i: fanin_levels[i])
        w = w.forall(latest)
    return w


def simplify_node(
    net: Network,
    nid: int,
    fanin_levels: Sequence[int],
    model,
    spcf_fn,
    window_limit: Optional[int] = None,
) -> SimplifyOutcome:
    """Fig. 1 ``Simplify(j)``: reduce node ``nid`` guided by cube weights.

    Mutates the node function on success and returns the local window.
    ``model`` supplies global fan-in functions, ``spcf_fn`` the SPCF in the
    model's domain.
    """
    node = net.nodes[nid]
    b = node.tt
    if b is None or b.is_const0 or b.is_const1 or not node.fanins:
        return SimplifyOutcome(False)
    original_level = node_level(b, fanin_levels)
    if original_level == 0:
        return SimplifyOutcome(False)
    on_cover, off_cover = min_sops(b)
    w_on = [model.cube_weight(spcf_fn, nid, c) for c in on_cover]
    w_off = [model.cube_weight(spcf_fn, nid, c) for c in off_cover]

    if all(w == 0.0 for w in w_off):
        reduced = _one_sided(
            b, on_cover, w_on, fanin_levels, original_level, keep_value=True
        )
        window = reduced
    elif all(w == 0.0 for w in w_on):
        reduced = _one_sided(
            b, off_cover, w_off, fanin_levels, original_level, keep_value=False
        )
        window = ~reduced
    else:
        reduced, window = _two_sided(
            b, on_cover, w_on, off_cover, w_off, fanin_levels, original_level
        )

    if reduced == b or window.is_const0:
        return SimplifyOutcome(False)
    new_level = node_level(reduced, fanin_levels)
    if new_level >= original_level:
        return SimplifyOutcome(False)
    window = shrink_window(
        window, fanin_levels, max(new_level, 1), window_limit
    )
    if window.is_const0:
        return SimplifyOutcome(False)
    net.set_function(nid, reduced)
    return SimplifyOutcome(True, window, new_level)


def _one_sided(
    b: TruthTable,
    cover,
    weights: List[float],
    fanin_levels: Sequence[int],
    original_level: int,
    keep_value: bool,
) -> TruthTable:
    """Cases A/B: rebuild from a constant, re-admitting weighted cubes.

    ``keep_value=True`` grows the on-set from constant 0 (case A);
    ``keep_value=False`` carves the off-set out of constant 1 (case B).
    """
    current = TruthTable.const(not keep_value, b.nvars)
    order = sorted(
        range(len(cover.cubes)), key=lambda i: -weights[i]
    )
    for i in order:
        cube_tt = cover.cubes[i].to_tt()
        candidate = (current | cube_tt) if keep_value else (current & ~cube_tt)
        if node_level(candidate, fanin_levels) < original_level:
            current = candidate
    return current


def _two_sided(
    b: TruthTable,
    on_cover,
    w_on: List[float],
    off_cover,
    w_off: List[float],
    fanin_levels: Sequence[int],
    original_level: int,
) -> Tuple[TruthTable, TruthTable]:
    """Case C: start from all don't-cares, commit cubes of either set."""
    nvars = b.nvars
    committed_on = TruthTable.const(False, nvars)
    committed_off = TruthTable.const(False, nvars)
    tagged = [(w_on[i], True, c) for i, c in enumerate(on_cover.cubes)]
    tagged += [(w_off[i], False, c) for i, c in enumerate(off_cover.cubes)]
    tagged.sort(key=lambda t: -t[0])
    for weight, is_on, cube in tagged:
        if weight == 0.0:
            continue
        cube_tt = cube.to_tt()
        trial_on = committed_on | (cube_tt & ~committed_off) if is_on else committed_on
        trial_off = committed_off if is_on else committed_off | (cube_tt & ~committed_on)
        dc = ~(trial_on | trial_off)
        if incomplete_level(trial_on, dc, fanin_levels) < original_level:
            committed_on, committed_off = trial_on, trial_off
    dc = ~(committed_on | committed_off)
    reduced = complete_function(committed_on, dc, fanin_levels)
    window = ~(reduced ^ b)
    return reduced, window
