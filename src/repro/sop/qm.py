"""Exact two-level minimization (Quine-McCluskey + unate covering).

Used for the paper's "minimum SOP" of node-local functions when the support
is small enough for exactness; larger functions fall back to the heuristic
minimizer in :mod:`repro.sop.espresso`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..tt import TruthTable
from .cube import Cube
from .sop import Cover

EXACT_VAR_LIMIT = 9
"""Above this support size exact minimization is not attempted."""

_COVER_BRANCH_LIMIT = 4000
"""Branch-and-bound node budget before falling back to the greedy cover."""


def prime_implicants(on: TruthTable, dc: Optional[TruthTable] = None) -> List[Cube]:
    """All prime implicants of ``on`` with don't-cares ``dc``.

    Classic iterative merging: start from minterm cubes of ``on | dc`` and
    repeatedly combine distance-1 pairs; unmerged cubes are prime.
    """
    nvars = on.nvars
    care_on = on
    full = on | dc if dc is not None else on
    # Group cubes as (mask, value) pairs; merge pairs differing in exactly
    # one cared variable.
    current: Set[Tuple[int, int]] = {
        ((1 << nvars) - 1, m) for m in full.minterms()
    }
    primes: Set[Tuple[int, int]] = set()
    while current:
        merged: Set[Tuple[int, int]] = set()
        used: Set[Tuple[int, int]] = set()
        by_mask: Dict[int, List[int]] = {}
        for mask, value in current:
            by_mask.setdefault(mask, []).append(value)
        for mask, values in by_mask.items():
            vset = set(values)
            for value in values:
                for i in range(nvars):
                    bit = 1 << i
                    if not mask & bit:
                        continue
                    other = value ^ bit
                    if other in vset:
                        used.add((mask, value))
                        used.add((mask, other))
                        merged.add((mask & ~bit, value & ~bit & (mask & ~bit)))
        primes.update(current - used)
        current = merged
    cubes = [Cube(mask, value, nvars) for mask, value in primes]
    # Keep only primes that intersect the true on-set (pure-DC primes are
    # useless for covering).
    return [c for c in cubes if not (c.to_tt() & care_on).is_const0]


class _CoverSearch:
    """Branch-and-bound minimum unate covering with a node budget."""

    def __init__(self, rows: List[int], row_costs: List[int]):
        # rows[i]: bitmask of elements covered by candidate i.
        self.rows = rows
        self.row_costs = row_costs
        self.nodes = 0
        self.best: Optional[List[int]] = None
        self.best_cost = float("inf")

    def solve(self, universe: int) -> Optional[List[int]]:
        self._search(universe, [], 0)
        return self.best

    def _search(self, remaining: int, chosen: List[int], cost: int) -> None:
        if self.nodes > _COVER_BRANCH_LIMIT:
            return
        self.nodes += 1
        if cost >= self.best_cost:
            return
        if remaining == 0:
            self.best = list(chosen)
            self.best_cost = cost
            return
        # Branch on the least-covered element for a tight search tree.
        target = self._hardest_element(remaining)
        candidates = [
            i for i, row in enumerate(self.rows) if row & (1 << target)
        ]
        candidates.sort(key=lambda i: (self.row_costs[i], -bin(self.rows[i] & remaining).count("1")))
        for i in candidates:
            chosen.append(i)
            self._search(remaining & ~self.rows[i], chosen, cost + self.row_costs[i])
            chosen.pop()

    def _hardest_element(self, remaining: int) -> int:
        best_elem = -1
        best_count = None
        bits = remaining
        while bits:
            low = bits & -bits
            elem = low.bit_length() - 1
            bits ^= low
            count = sum(1 for row in self.rows if row & (1 << elem))
            if best_count is None or count < best_count:
                best_count = count
                best_elem = elem
        return best_elem


def _greedy_cover(rows: List[int], row_costs: List[int], universe: int) -> List[int]:
    chosen: List[int] = []
    remaining = universe
    while remaining:
        best_i = max(
            range(len(rows)),
            key=lambda i: (
                bin(rows[i] & remaining).count("1") / max(row_costs[i], 1),
                -row_costs[i],
            ),
        )
        if rows[best_i] & remaining == 0:
            raise AssertionError("uncoverable element in greedy cover")
        chosen.append(best_i)
        remaining &= ~rows[best_i]
    return chosen


def minimize_exact(on: TruthTable, dc: Optional[TruthTable] = None) -> Cover:
    """Minimum-cube (literal-count tie-break) SOP cover of ``on`` given ``dc``.

    Exact when the prime/minterm counts stay within the branch budget,
    otherwise greedily near-optimal; in both cases the result is a valid
    irredundant cover.
    """
    nvars = on.nvars
    if on.is_const0:
        return Cover.empty(nvars)
    if dc is not None and (on | dc).is_const1 and (~on & ~dc).is_const0:
        pass  # fall through; tautology handled by covering naturally
    primes = prime_implicants(on, dc)
    minterm_list = list(on.minterms())
    index_of = {m: i for i, m in enumerate(minterm_list)}
    universe = (1 << len(minterm_list)) - 1
    rows = []
    costs = []
    for p in primes:
        row = 0
        for m in minterm_list:
            if p.contains_minterm(m):
                row |= 1 << index_of[m]
        rows.append(row)
        # Cost dominated by cube count, with literals as tie-break.
        costs.append(1000 + p.num_literals())
    search = _CoverSearch(rows, costs)
    chosen = search.solve(universe)
    if chosen is None:
        chosen = _greedy_cover(rows, costs, universe)
    cover = Cover([primes[i] for i in chosen], nvars)
    return cover.single_cube_containment()
