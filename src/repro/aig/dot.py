"""Graphviz DOT export of AIGs (debugging/visualization aid).

Complemented edges are drawn dashed, critical-path nodes highlighted, so
`dot -Tsvg` renders the structures the optimizer produces.
"""

from __future__ import annotations

from typing import Optional, Set, TextIO

from .aig import AIG, lit_neg, lit_var
from .levels import critical_vars, levels


def write_dot(
    aig: AIG,
    fh: TextIO,
    highlight_critical: bool = True,
    max_nodes: Optional[int] = 2000,
) -> None:
    """Write the AIG as a DOT digraph (PIs at the bottom, POs on top)."""
    if max_nodes is not None and aig.num_vars > max_nodes:
        raise ValueError(
            f"AIG too large to render ({aig.num_vars} > {max_nodes} nodes)"
        )
    crit: Set[int] = critical_vars(aig) if highlight_critical else set()
    lvl = levels(aig)
    fh.write("digraph aig {\n  rankdir=BT;\n")
    fh.write('  node [shape=circle, fontsize=10];\n')
    for i, (var, name) in enumerate(zip(aig.pis, aig.pi_names)):
        style = ', style=filled, fillcolor="#ffd28a"' if var in crit else ""
        fh.write(
            f'  n{var} [label="{name}", shape=box{style}];\n'
        )
    for var in aig.and_vars():
        style = ', style=filled, fillcolor="#ff9d9d"' if var in crit else ""
        fh.write(f'  n{var} [label="&\\nL{lvl[var]}"{style}];\n')
        for fi in aig.fanins(var):
            dash = ", style=dashed" if lit_neg(fi) else ""
            fh.write(f"  n{lit_var(fi)} -> n{var} [dir=none{dash}];\n")
    for i, (po, name) in enumerate(zip(aig.pos, aig.po_names)):
        fh.write(
            f'  o{i} [label="{name}", shape=invtriangle, '
            'style=filled, fillcolor="#a8d0ff"];\n'
        )
        dash = ", style=dashed" if lit_neg(po) else ""
        fh.write(f"  n{lit_var(po)} -> o{i} [dir=none{dash}];\n")
    fh.write("}\n")
