"""NPN-database rewriting backed by exact synthesis.

The classic ABC ``rewrite`` uses a precomputed library of optimal
structures per 4-input NPN class.  Here the database is filled lazily: the
first time a class is seen, a budgeted exact-synthesis query produces its
minimal chain (or None, falling back to heuristic factoring); afterwards
every cut of that class is rewritten from the cached chain.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..aig import (
    AIG,
    CONST0,
    cut_tt,
    enumerate_cuts,
    lit_neg,
    lit_not,
    lit_notif,
    lit_var,
)
from ..netlist import ArrivalAwareBuilder, synthesize_node
from ..tt import TruthTable, npn_canonical
from .exact_synthesis import ExactSynthesisResult, chain_to_aig_lit, exact_aig

_DB: Dict[int, Optional[ExactSynthesisResult]] = {}
"""Lazily filled map: canonical NPN bits -> minimal chain (or None)."""


def _lookup(tt: TruthTable, max_gates: int, max_conflicts: int):
    """(chain for the NPN representative, transform) or (None, transform)."""
    bits, transform = npn_canonical(tt)
    key = (bits, tt.nvars)
    if key not in _DB:
        canon = transform.apply(tt)
        _DB[key] = exact_aig(
            canon, max_gates=max_gates, max_conflicts=max_conflicts
        )
    return _DB[key], transform


def _build_from_db(
    builder: ArrivalAwareBuilder,
    tt: TruthTable,
    leaf_lits,
    max_gates: int,
    max_conflicts: int,
) -> Optional[int]:
    """Instantiate ``tt`` over leaves via the NPN database, or None."""
    chain, transform = _lookup(tt, max_gates, max_conflicts)
    if chain is None:
        return None
    # chain implements canon = out_neg ^ tt(x[perm[i]] ^ input_neg[i]); to
    # get tt back, feed pin perm[i] with leaf i xored by input_neg[i] and
    # complement the output by transform.output_neg.
    pins = [0] * tt.nvars
    for i in range(tt.nvars):
        lit = leaf_lits[i]
        if (transform.input_neg >> i) & 1:
            lit = lit_not(lit)
        pins[transform.perm[i]] = lit
    out = chain_to_aig_lit(chain, builder, pins)
    if transform.output_neg:
        out = lit_not(out)
    return out


def rewrite_exact(
    aig: AIG,
    k: int = 4,
    max_cuts: int = 6,
    max_gates: int = 5,
    max_conflicts: int = 2000,
    objective: str = "area",
) -> AIG:
    """Cut rewriting with exact-synthesis replacements where available."""
    cuts = enumerate_cuts(aig, k, max_cuts)
    dest = AIG()
    builder = ArrivalAwareBuilder(dest)
    mapping: Dict[int, int] = {0: CONST0}
    for var, name in zip(aig.pis, aig.pi_names):
        mapping[var] = dest.add_pi(name)

    def mapped(lit: int) -> int:
        return lit_notif(mapping[lit_var(lit)], lit_neg(lit))

    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        default = builder.and_(mapped(f0), mapped(f1))
        best = default

        def key_of(lit: int, added: int):
            level = builder.level(lit)
            return (level, added) if objective == "delay" else (added, level)

        best_key = key_of(default, 0)
        for cut in cuts[var]:
            if not cut or cut == (var,) or len(cut) < 3:
                continue
            tt = cut_tt(aig, var, list(cut))
            tt_small, support = tt.shrink()
            leaf_lits = [mapped(cut[i] * 2) for i in support]
            if not leaf_lits:
                continue
            before = dest.num_vars
            candidate = _build_from_db(
                builder, tt_small, leaf_lits, max_gates, max_conflicts
            )
            if candidate is None:
                candidate = synthesize_node(builder, tt_small, leaf_lits)
            added = dest.num_vars - before
            key = key_of(candidate, added)
            if key < best_key:
                best_key = key
                best = candidate
        mapping[var] = best

    for po, name in zip(aig.pos, aig.po_names):
        dest.add_po(mapped(po), name)
    return dest.extract()


def database_size() -> int:
    """Number of NPN classes cached so far (diagnostics)."""
    return len(_DB)
