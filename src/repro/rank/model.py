"""Dependency-free logistic ranking model with a calibrated prune threshold.

The model is deliberately tiny: standardized features, a logistic
regression fitted by deterministic full-batch gradient descent (no RNG,
no numpy — pure-float arithmetic is bit-reproducible across runs on the
same platform), and a threshold calibrated on the training accepts.  At
``target_recall=1.0`` the threshold sits strictly below the lowest
accept score, which is what makes ``--rank prune`` provably lossless on
the trajectory it was trained on (DESIGN 3.23): a candidate the log run
accepted can never score under the threshold, so pruning only removes
work the baseline run would have rejected anyway.

Artifacts are versioned canonical-JSON payloads; ``fingerprint()`` is a
stable sha256 over that canonical form and doubles as the model identity
in serve job keys and store records.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, List, Optional, Sequence

from .dataset import FEATURE_NAMES

RANK_MODEL_FORMAT = "repro-rank-model"
RANK_MODEL_VERSION = 1

MIN_FIT_ROWS = 4
"""Below this many rows the fitter emits a pass-through model.

Deliberately small: the sanctioned deployment fits a per-circuit model
on the circuit's own ``--rank log`` trajectory, and a deep circuit with
one critical output per round logs only a handful of rows.  The
recall-1.0 threshold calibration — not the row count — is what keeps a
tiny fit sound (it can only prune candidates the training run itself
discarded)."""

_THRESHOLD_MARGIN = 1e-9
"""Calibrated thresholds sit this far below the pivot accept score, so
re-scoring the same candidate (bitwise-identical features) can never
fall on the wrong side of its own training outcome."""


def _sigmoid(z: float) -> float:
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-min(z, 60.0)))
    e = math.exp(max(z, -60.0))
    return e / (1.0 + e)


class RankModel:
    """A scored accept-probability model plus its prune threshold."""

    def __init__(
        self,
        weights: Sequence[float],
        bias: float,
        mean: Sequence[float],
        scale: Sequence[float],
        threshold: float,
        features: Sequence[str] = FEATURE_NAMES,
        kind: str = "logistic",
        meta: Optional[Dict] = None,
    ):
        self.weights = [float(w) for w in weights]
        self.bias = float(bias)
        self.mean = [float(m) for m in mean]
        self.scale = [float(s) for s in scale]
        self.threshold = float(threshold)
        self.features = tuple(features)
        self.kind = kind
        self.meta = dict(meta or {})
        if not (
            len(self.weights) == len(self.mean) == len(self.scale)
            == len(self.features)
        ):
            raise ValueError("rank model dimensions disagree")

    def score(self, feats: Sequence[float]) -> float:
        """Accept probability of one feature vector (layout FEATURE_NAMES)."""
        z = self.bias
        for w, x, m, s in zip(self.weights, feats, self.mean, self.scale):
            z += w * (x - m) / s
        return _sigmoid(z)

    # -- serialization -------------------------------------------------------

    def payload(self) -> Dict:
        return {
            "format": RANK_MODEL_FORMAT,
            "version": RANK_MODEL_VERSION,
            "kind": self.kind,
            "features": list(self.features),
            "mean": self.mean,
            "scale": self.scale,
            "weights": self.weights,
            "bias": self.bias,
            "threshold": self.threshold,
            "meta": self.meta,
        }

    def canonical_json(self) -> str:
        return json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        )

    def fingerprint(self) -> str:
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @classmethod
    def from_payload(cls, payload: Dict) -> "RankModel":
        if payload.get("format") != RANK_MODEL_FORMAT:
            raise ValueError(
                f"not a rank model payload: format "
                f"{payload.get('format')!r}"
            )
        if payload.get("version") != RANK_MODEL_VERSION:
            raise ValueError(
                f"unsupported rank model version {payload.get('version')!r}"
            )
        return cls(
            weights=payload["weights"],
            bias=payload["bias"],
            mean=payload["mean"],
            scale=payload["scale"],
            threshold=payload["threshold"],
            features=payload["features"],
            kind=payload.get("kind", "logistic"),
            meta=payload.get("meta"),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "RankModel":
        with open(path) as fh:
            return cls.from_payload(json.load(fh))


def resolve_model(spec) -> RankModel:
    """A RankModel from a model, a payload dict, or a file path."""
    if isinstance(spec, RankModel):
        return spec
    if isinstance(spec, dict):
        return RankModel.from_payload(spec)
    if isinstance(spec, str):
        return RankModel.load(spec)
    raise ValueError(
        f"cannot resolve a rank model from {type(spec).__name__}"
    )


def passthrough_model(meta: Optional[Dict] = None) -> RankModel:
    """A model that scores every candidate 0.5 and prunes nothing."""
    n = len(FEATURE_NAMES)
    info = {"degenerate": True}
    info.update(meta or {})
    return RankModel(
        weights=[0.0] * n,
        bias=0.0,
        mean=[0.0] * n,
        scale=[1.0] * n,
        threshold=0.0,
        meta=info,
    )


def fit_model(
    rows: Sequence[Dict],
    target_recall: float = 1.0,
    epochs: int = 300,
    lr: float = 0.5,
    l2: float = 1e-4,
    meta: Optional[Dict] = None,
) -> RankModel:
    """Fit the logistic ranker on dataset rows (see ``repro.rank.dataset``).

    Deterministic: full-batch gradient descent from a zero start, class-
    balanced sample weights, no randomness anywhere.  Degenerate datasets
    (too few rows, or a single outcome class) yield a pass-through model
    whose threshold prunes nothing — a safe artifact by construction.
    """
    if not 0.0 < target_recall <= 1.0:
        raise ValueError(f"target_recall must be in (0, 1], got {target_recall}")
    X = [[float(v) for v in row["features"]] for row in rows]
    y = [int(row["accept"]) for row in rows]
    n = len(X)
    n_pos = sum(y)
    base_meta = {
        "rows": n,
        "accepts": n_pos,
        "target_recall": target_recall,
        "epochs": epochs,
        "lr": lr,
        "l2": l2,
    }
    base_meta.update(meta or {})
    if n < MIN_FIT_ROWS or n_pos == 0 or n_pos == n:
        return passthrough_model(base_meta)
    dim = len(FEATURE_NAMES)
    if any(len(x) != dim for x in X):
        raise ValueError("feature vector width does not match FEATURE_NAMES")

    mean = [sum(x[j] for x in X) / n for j in range(dim)]
    var = [
        sum((x[j] - mean[j]) ** 2 for x in X) / n for j in range(dim)
    ]
    scale = [math.sqrt(v) if v > 1e-12 else 1.0 for v in var]
    Z = [[(x[j] - mean[j]) / scale[j] for j in range(dim)] for x in X]

    # Balanced sample weights keep a reject-heavy log from collapsing to
    # the majority class.
    w_pos = n / (2.0 * n_pos)
    w_neg = n / (2.0 * (n - n_pos))
    sw = [w_pos if yi else w_neg for yi in y]
    sw_total = sum(sw)

    weights = [0.0] * dim
    bias = 0.0
    for _ in range(epochs):
        grad_w = [0.0] * dim
        grad_b = 0.0
        for zi, yi, wi in zip(Z, y, sw):
            p = _sigmoid(bias + sum(w * v for w, v in zip(weights, zi)))
            err = wi * (p - yi)
            grad_b += err
            for j in range(dim):
                grad_w[j] += err * zi[j]
        bias -= lr * grad_b / sw_total
        for j in range(dim):
            weights[j] -= lr * (grad_w[j] / sw_total + l2 * weights[j])

    model = RankModel(
        weights=weights,
        bias=bias,
        mean=mean,
        scale=scale,
        threshold=0.0,
        meta=base_meta,
    )
    accept_scores = sorted(
        model.score(x) for x, yi in zip(X, y) if yi
    )
    # Allow the lowest (1 - recall) fraction of training accepts below
    # the threshold; recall 1.0 pivots on the minimum accept score.
    pivot = min(
        int((1.0 - target_recall) * len(accept_scores)),
        len(accept_scores) - 1,
    )
    model.threshold = max(0.0, accept_scores[pivot] - _THRESHOLD_MARGIN)
    return model
