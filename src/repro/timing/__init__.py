"""Unified timing engine: delay models, arrivals, required times, slack.

The single home for every timing question in the system.  ``repro.aig.
levels`` and ``repro.netlist.levels`` are thin facades over the engines in
this package; the lookahead optimizer, the arrival-aware synthesizer, SAT
sweeping, and the mapped-netlist STA all share the same analysis.
"""

from .delay import (
    DelayModel,
    LoadAwareDelay,
    PrescribedArrival,
    UnitDelay,
    load_arrival_file,
    parse_arrival_spec,
    resolve_arrivals,
)
from .engine import (
    INF,
    AigTimingEngine,
    MappedTimingEngine,
    NetworkTimingEngine,
    TimingEngine,
)

__all__ = [
    "DelayModel",
    "LoadAwareDelay",
    "PrescribedArrival",
    "UnitDelay",
    "load_arrival_file",
    "parse_arrival_spec",
    "resolve_arrivals",
    "INF",
    "AigTimingEngine",
    "MappedTimingEngine",
    "NetworkTimingEngine",
    "TimingEngine",
]
