"""Full-flow comparison on a 16-bit ALU control block (C880 stand-in).

Runs all four flows (SIS/ABC/DC stand-ins and the lookahead flow) on the
ALU benchmark, equivalence-checks every result, technology-maps each one,
and reports gates / levels / mapped delay / power — one row of Table 2.

Run:  python examples/alu_optimization.py        (takes a few minutes)
"""

import time

from repro.aig import depth
from repro.bench import BENCHMARKS
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer, lookahead_flow
from repro.mapping import dynamic_power_uw, map_aig, mapped_delay
from repro.opt import abc_resyn2rs, dc_map_effort_high, sis_best


def main() -> None:
    aig = BENCHMARKS["C880"]()
    print(
        f"C880 stand-in (16-bit ALU + control): {aig.num_pis} PIs, "
        f"{aig.num_pos} POs, {aig.num_ands()} ANDs, {depth(aig)} levels\n"
    )
    flows = {
        "SIS": sis_best,
        "ABC": abc_resyn2rs,
        "DC": dc_map_effort_high,
        "Lookahead": lambda a: lookahead_flow(
            a, LookaheadOptimizer(max_rounds=8, max_outputs_per_round=8)
        ),
    }
    print(
        f"{'flow':10s}{'gates':>8}{'levels':>8}{'delay ps':>10}"
        f"{'power uW':>10}{'time s':>8}"
    )
    for name, flow in flows.items():
        start = time.time()
        optimized = flow(aig)
        elapsed = time.time() - start
        if not check_equivalence(aig, optimized):
            raise SystemExit(f"{name} produced a non-equivalent circuit!")
        netlist = map_aig(optimized)
        print(
            f"{name:10s}{optimized.num_ands():>8}{depth(optimized):>8}"
            f"{mapped_delay(netlist):>10.0f}"
            f"{dynamic_power_uw(netlist):>10.1f}{elapsed:>8.1f}"
        )


if __name__ == "__main__":
    main()
