"""Tests for arrival/required/critical analysis on AIGs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import (
    AIG,
    a_critical_path,
    critical_pis,
    critical_pos,
    critical_vars,
    depth,
    levels,
    lit_var,
    required_times,
    slack_histogram,
)

from .test_aig import random_aig


class TestRequiredTimes:
    @given(st.integers(0, 30))
    @settings(deadline=None, max_examples=15)
    def test_slack_nonnegative(self, seed):
        aig = random_aig(seed)
        lvl = levels(aig)
        req = required_times(aig)
        for var in aig.and_vars():
            if req[var] != float("inf"):
                assert req[var] >= lvl[var]

    @given(st.integers(0, 30))
    @settings(deadline=None, max_examples=15)
    def test_critical_vars_form_paths(self, seed):
        # Every critical AND node has at least one critical fan-in chain
        # reaching a critical PI.
        aig = random_aig(seed)
        crit = critical_vars(aig)
        lvl = levels(aig)
        for var in crit:
            if aig.is_and(var):
                f0, f1 = aig.fanins(var)
                fanin_lvls = [lvl[lit_var(f0)], lvl[lit_var(f1)]]
                assert lvl[var] == 1 + max(fanin_lvls)
                # The max-level fan-in must itself be critical.
                deep = (
                    lit_var(f0)
                    if fanin_lvls[0] >= fanin_lvls[1]
                    else lit_var(f1)
                )
                assert deep in crit

    def test_dangling_nodes_have_inf_required(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        aig.and_(a, b)  # dangling
        aig.add_po(aig.or_(a, b))
        req = required_times(aig)
        dangling = [
            v
            for v in aig.and_vars()
            if req[v] == float("inf")
        ]
        assert len(dangling) == 1


class TestCriticalPath:
    @given(st.integers(0, 30))
    @settings(deadline=None, max_examples=15)
    def test_path_is_maximal_and_monotone(self, seed):
        aig = random_aig(seed)
        path = a_critical_path(aig)
        if not path:
            return
        lvl = levels(aig)
        assert lvl[path[-1]] == depth(aig)
        assert lvl[path[0]] == 0
        for u, v in zip(path, path[1:]):
            assert lvl[v] == lvl[u] + 1

    @given(st.integers(0, 30))
    @settings(deadline=None, max_examples=10)
    def test_critical_pis_subset(self, seed):
        aig = random_aig(seed)
        for pi in critical_pis(aig):
            assert aig.is_pi(pi)
            assert pi in critical_vars(aig)

    def test_critical_pos_levels(self):
        aig = AIG()
        a, b, c = (aig.add_pi() for _ in range(3))
        shallow = aig.and_(a, b)
        deep = aig.and_(shallow, c)
        aig.add_po(shallow)
        aig.add_po(deep)
        assert critical_pos(aig) == [1]


class TestSlackHistogram:
    @given(st.integers(0, 20))
    @settings(deadline=None, max_examples=10)
    def test_counts_cover_live_ands(self, seed):
        aig = random_aig(seed)
        hist = slack_histogram(aig)
        req = required_times(aig)
        live = sum(
            1 for v in aig.and_vars() if req[v] != float("inf")
        )
        assert sum(hist.values()) == live
        assert all(s >= 0 for s in hist)
