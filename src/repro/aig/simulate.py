"""Bit-parallel simulation and exhaustive truth-table evaluation of AIGs.

Patterns are packed into Python big-ints, one bit per pattern, so a single
pass simulates thousands of patterns; the same kernel evaluates exhaustive
truth tables when the PI count is small.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..tt import TruthTable
from .aig import AIG, lit_neg, lit_var

TT_PI_LIMIT = 18
"""Exhaustive truth tables are only attempted up to this many PIs."""


def simulate(aig: AIG, pi_values: Sequence[int], width: int) -> List[int]:
    """Simulate ``width`` packed patterns; returns a value word per variable.

    ``pi_values[i]`` is the packed input word for the i-th PI.
    """
    if len(pi_values) != aig.num_pis:
        raise ValueError("one value word per PI required")
    mask = (1 << width) - 1
    values = [0] * aig.num_vars
    for var, word in zip(aig.pis, pi_values):
        values[var] = word & mask
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        a = values[lit_var(f0)]
        if lit_neg(f0):
            a ^= mask
        b = values[lit_var(f1)]
        if lit_neg(f1):
            b ^= mask
        values[var] = a & b
    return values


def lit_word(values: Sequence[int], lit: int, width: int) -> int:
    """Packed value word of a literal given per-variable words."""
    word = values[lit_var(lit)]
    if lit_neg(lit):
        word ^= (1 << width) - 1
    return word


def random_patterns(num_pis: int, width: int, seed: int = 0) -> List[int]:
    """Deterministic random packed input words."""
    rng = random.Random(seed)
    return [rng.getrandbits(width) for _ in range(num_pis)]


def simulate_random(aig: AIG, width: int = 2048, seed: int = 0) -> List[int]:
    """Random simulation convenience wrapper."""
    return simulate(aig, random_patterns(aig.num_pis, width, seed), width)


def node_tts(aig: AIG) -> List[TruthTable]:
    """Exhaustive truth table of every variable over the PIs.

    Only valid for ``num_pis <= TT_PI_LIMIT``.
    """
    n = aig.num_pis
    if n > TT_PI_LIMIT:
        raise ValueError(f"too many PIs ({n}) for exhaustive truth tables")
    width = 1 << n
    pi_words = [TruthTable.var(i, n).bits for i in range(n)]
    values = simulate(aig, pi_words, width)
    return [TruthTable(word, n) for word in values]


def po_tts(aig: AIG) -> List[TruthTable]:
    """Exhaustive truth tables of the primary outputs."""
    n = aig.num_pis
    tts = node_tts(aig)
    out = []
    for po in aig.pos:
        t = tts[lit_var(po)]
        out.append(~t if lit_neg(po) else t)
    return out


def evaluate(aig: AIG, assignment: Sequence[bool]) -> List[bool]:
    """Evaluate the POs on a single input assignment."""
    words = [int(b) for b in assignment]
    values = simulate(aig, words, 1)
    return [bool(lit_word(values, po, 1)) for po in aig.pos]


def counter_example_from_words(
    pi_values: Sequence[int], bit: int
) -> List[bool]:
    """Extract the assignment at pattern index ``bit`` from packed words."""
    return [bool((word >> bit) & 1) for word in pi_values]
