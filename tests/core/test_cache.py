"""Behavior of the cross-round cone cache."""

from __future__ import annotations

from repro import perf
from repro.adders import ripple_carry_adder
from repro.aig import cone_fingerprint, depth
from repro.cec import check_equivalence
from repro.core import ConeCache, LookaheadOptimizer


class TestConeCacheUnit:
    def test_spcf_roundtrip_and_counters(self):
        cache = ConeCache()
        key = (123, "tt", "exact", 1024, 0)
        before_miss = perf.counter("cache.spcf.miss")
        assert cache.get_spcf(key) is None
        assert perf.counter("cache.spcf.miss") == before_miss + 1
        cache.put_spcf(key, ("tt", 0b1010, 2))
        before_hit = perf.counter("cache.spcf.hit")
        assert cache.get_spcf(key) == ("tt", 0b1010, 2)
        assert perf.counter("cache.spcf.hit") == before_hit + 1

    def test_rejected_fingerprints(self):
        cache = ConeCache()
        key = (7, "sim", "exact", 512, 0, "target", 6, True)
        assert not cache.is_rejected(key)
        cache.mark_rejected(key)
        before = perf.counter("cache.rejected.hit")
        assert cache.is_rejected(key)
        assert perf.counter("cache.rejected.hit") == before + 1

    def test_bounded_eviction(self):
        cache = ConeCache(max_entries=4)
        for fp in range(10):
            cache.put_spcf((fp,), ("tt", fp, 1))
        assert cache.stats()["spcf_entries"] <= 4
        # Oldest entries were evicted, newest survive.
        assert cache.get_spcf((9,)) is not None
        assert cache.get_spcf((0,)) is None

    def test_rejected_fifo_eviction(self):
        # Regression: a full rejected set must FIFO-evict one entry at a
        # time, not discard every negative-cache entry wholesale.
        cache = ConeCache(max_entries=4)
        for fp in range(4):
            cache.mark_rejected((fp,))
        cache.mark_rejected((99,))
        assert cache.stats()["rejected_entries"] == 4
        # Only the oldest rejection was forgotten; the rest survive.
        assert not cache.is_rejected((0,))
        assert cache.is_rejected((1,))
        assert cache.is_rejected((2,))
        assert cache.is_rejected((3,))
        assert cache.is_rejected((99,))

    def test_overwrite_full_cache_evicts_nothing(self):
        # Regression: the pre-store _evict ran before the key-exists
        # check, so re-putting an existing key into a full table silently
        # dropped an unrelated entry.  Overwrites must never evict.
        cache = ConeCache(max_entries=4)
        for fp in range(4):
            cache.put_spcf((fp,), ("tt", fp, 1))
        cache.put_spcf((2,), ("tt", 99, 1))  # refresh a key while full
        assert cache.stats()["spcf_entries"] == 4
        for fp in range(4):
            assert cache.get_spcf((fp,)) is not None
        assert cache.get_spcf((2,)) == ("tt", 99, 1)
        # Same contract for the rejected negative-cache.
        for fp in range(4):
            cache.mark_rejected((fp,))
        cache.mark_rejected((1,))  # re-mark while full
        assert cache.stats()["rejected_entries"] == 4
        for fp in range(4):
            assert cache.is_rejected((fp,))

    def test_lru_refresh_on_hit(self):
        # The store upgraded the spcf table from FIFO to LRU: a hit
        # protects the entry from the next eviction.
        cache = ConeCache(max_entries=2)
        cache.put_spcf((1,), ("tt", 1, 1))
        cache.put_spcf((2,), ("tt", 2, 1))
        cache.get_spcf((1,))
        cache.put_spcf((3,), ("tt", 3, 1))
        assert cache.get_spcf((1,)) is not None
        assert cache.get_spcf((2,)) is None

    def test_clear(self):
        cache = ConeCache()
        cache.put_spcf((1,), ("sim", 3))
        cache.put_node_tts(2, [])
        cache.mark_rejected((3,))
        cache.clear()
        assert cache.stats() == {
            "spcf_entries": 0,
            "tts_entries": 0,
            "rejected_entries": 0,
        }


class TestCacheAcrossOptimizeCalls:
    def test_second_optimize_reports_cache_hits(self):
        aig = ripple_carry_adder(4)
        opt = LookaheadOptimizer(max_rounds=4)
        first = opt.optimize(aig)
        before_hits = perf.counter("cache.spcf.hit")
        before_rejects = perf.counter("cache.rejected.hit")
        second = opt.optimize(aig)
        # Unchanged cones are recognized: fruitful ones hit the SPCF
        # cache, fruitless ones are skipped through the rejected set.
        assert perf.counter("cache.spcf.hit") > before_hits
        assert perf.counter("cache.rejected.hit") > before_rejects
        assert depth(second) == depth(first)
        assert check_equivalence(aig, second)

    def test_mutated_cone_misses_the_cache(self):
        # A structural change to a cone changes its fingerprint, so the
        # stale entry is never looked up again.
        aig = ripple_carry_adder(3)
        opt = LookaheadOptimizer(max_rounds=2, walk_modes=("target",))
        opt.optimize(aig)

        mutated = ripple_carry_adder(3)
        po = mutated.pos[-1]
        a, b = mutated.pis[0], mutated.pis[1]
        twist = mutated.and_(2 * a, 2 * b)
        mutated.pos[-1] = mutated.xor_(po, twist)
        assert cone_fingerprint(aig, [aig.pos[-1]]) != cone_fingerprint(
            mutated, [mutated.pos[-1]]
        )

        before_miss = perf.counter("cache.spcf.miss")
        out = opt.optimize(mutated)
        assert perf.counter("cache.spcf.miss") > before_miss
        assert check_equivalence(mutated, out)

    def test_shared_cache_between_optimizers(self):
        aig = ripple_carry_adder(4)
        cache = ConeCache()
        kw = dict(max_rounds=2, walk_modes=("target",), cache=cache)
        LookaheadOptimizer(**kw).optimize(aig)
        assert cache.stats()["spcf_entries"] > 0
        before_hits = perf.counter("cache.spcf.hit")
        LookaheadOptimizer(**kw).optimize(aig)
        assert perf.counter("cache.spcf.hit") > before_hits
