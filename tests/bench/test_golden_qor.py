"""Golden QoR regression suite for the ``lookahead-w1`` flow.

Each circuit's ``(depth, ands, ands_post)`` under the bench_speed serial
optimizer configuration is recorded in ``golden_qor.json``.  A depth
above the golden value is a hard QoR regression and fails; area is
allowed to drift up to 5% before the suite flags it.  ``ands_post`` — the
AND count after a full-effort :func:`repro.core.recover_area` pass on the
optimized output — is a hard bound like depth: redundancy the engine can
remove deterministically must stay removed.  Legitimate QoR changes are
blessed with ``pytest tests/bench/test_golden_qor.py --update-golden``
(see ``tests/regressions/README.md``).

The flow configuration must stay in lockstep with
``benchmarks/bench_speed.py::_optimizer`` — the goldens double as a check
that the bench numbers in ``BENCH_speed.json`` stay reproducible.
"""

import json
import os

import pytest

from repro.adders import ripple_carry_adder
from repro.aig import depth
from repro.bench import BENCHMARKS
from repro.core import LookaheadOptimizer, recover_area

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_qor.json")

AREA_DRIFT = 0.05
"""Relative AND-count growth tolerated before the suite flags it."""

CIRCUITS = {
    "rca2": lambda: ripple_carry_adder(2),
    "rca4": lambda: ripple_carry_adder(4),
    "rca8": lambda: ripple_carry_adder(8),
    "rca16": lambda: ripple_carry_adder(16),
    "adder8": lambda: ripple_carry_adder(8),
    "adder16": lambda: ripple_carry_adder(16),
    "adder32": lambda: ripple_carry_adder(32),
    "C432": BENCHMARKS["C432"],
    "rot": BENCHMARKS["rot"],
}

# rca8/rca16 are structurally the adder8/adder16 circuits; one optimized
# result per distinct circuit keeps the suite's wall-clock flat.
_cache = {}


def _lookahead_w1(name):
    """(depth, ands, ands_post) under the serial bench_speed flow, memoized."""
    aig = CIRCUITS[name]()
    key = (aig.num_pis, aig.num_pos, aig.num_ands(), depth(aig))
    if key not in _cache:
        with LookaheadOptimizer(
            max_rounds=2,
            max_outputs_per_round=8,
            sim_width=512,
            workers=1,
        ) as opt:
            out = opt.optimize(aig)
        post = recover_area(out, effort="high")
        _cache[key] = (depth(out), out.num_ands(), post.num_ands())
    return _cache[key]


def _load_golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_golden_qor(name, update_golden):
    got_depth, got_ands, got_post = _lookahead_w1(name)
    if update_golden:
        golden = _load_golden() if os.path.exists(GOLDEN_PATH) else {}
        golden[name] = {
            "depth": got_depth, "ands": got_ands, "ands_post": got_post,
        }
        with open(GOLDEN_PATH, "w") as fh:
            json.dump(golden, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return
    golden = _load_golden()
    assert name in golden, (
        f"{name} has no golden record; run with --update-golden"
    )
    want = golden[name]
    assert got_depth <= want["depth"], (
        f"{name}: depth regressed {want['depth']} -> {got_depth}"
    )
    limit = int(want["ands"] * (1 + AREA_DRIFT))
    assert got_ands <= limit, (
        f"{name}: area drifted >{AREA_DRIFT:.0%} "
        f"({want['ands']} -> {got_ands}, limit {limit}); if intended, "
        "bless with --update-golden"
    )
    assert got_post <= want["ands_post"], (
        f"{name}: post-recovery area regressed "
        f"{want['ands_post']} -> {got_post}; if intended, bless with "
        "--update-golden"
    )
