"""Area recovery via standard redundancy elimination.

After reconstruction the paper runs "standard redundancy elimination
algorithms"; we implement SAT sweeping — merging simulation-equivalent
node classes after SAT proofs, including constant detection — followed by
structural cleanup (``AIG.extract``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..aig import (
    AIG,
    CONST0,
    lit_neg,
    lit_notif,
    lit_var,
    random_patterns,
    simulate,
)
from ..sat.cnf import AigCnf


def sat_sweep(
    aig: AIG,
    sim_width: int = 1024,
    seed: int = 0,
    max_pairs: int = 5000,
    max_conflicts: int = 300,
    size_limit: int = 6000,
    delay_model=None,
) -> AIG:
    """Merge functionally equivalent internal nodes (SAT-proved).

    Simulation partitions nodes into candidate classes (up to complement);
    each candidate merge is proved by an incremental SAT query (bounded by
    ``max_conflicts``; unknown means no merge) before being applied.
    Circuits beyond ``size_limit`` AND nodes are only cleaned structurally.
    Returns a rebuilt, cleaned AIG.  ``delay_model`` makes the
    never-worsen-arrival merge guard respect non-uniform PI arrivals.
    """
    if aig.num_ands() > size_limit:
        return aig.extract()
    mask = (1 << sim_width) - 1
    patterns = random_patterns(aig.num_pis, sim_width, seed)
    values = simulate(aig, patterns, sim_width)
    # Candidate classes keyed by polarity-canonical signature.
    classes: Dict[int, List[int]] = {}
    for var in range(aig.num_vars):
        if var != 0 and not aig.is_and(var):
            continue  # keep PIs out of merging
        sig = values[var] & mask
        key = min(sig, sig ^ mask)
        classes.setdefault(key, []).append(var)

    enc: Optional[AigCnf] = None
    var_map: Dict[int, int] = {}

    def prove_equal(v1: int, v2: int, complemented: bool) -> bool:
        nonlocal enc, var_map
        if enc is None:
            enc = AigCnf()
            var_map = enc.encode(aig)
        s1 = var_map[v1]
        s2 = var_map[v2]
        if complemented:
            s2 = -s2
        enc.solver.reset()
        x = enc.add_xor(s1, s2)
        result = enc.solver.solve([x], max_conflicts=max_conflicts)
        enc.solver.reset()
        return result is False

    # representative literal for each merged variable.
    replacement: Dict[int, int] = {}
    pairs_checked = 0
    for key, members in classes.items():
        if len(members) < 2:
            continue
        rep = members[0]
        rep_sig = values[rep] & mask
        for var in members[1:]:
            if pairs_checked >= max_pairs:
                break
            pairs_checked += 1
            complemented = (values[var] & mask) != rep_sig
            if prove_equal(rep, var, complemented):
                replacement[var] = lit_notif(rep * 2, complemented)

    if not replacement:
        return aig.extract()

    # Rebuild with replacements applied (reps have smaller ids, hence are
    # rebuilt before their members in topological order).  A merge is only
    # taken when the representative arrives no later than the node it
    # replaces, so area recovery never undoes a depth/arrival gain.  The
    # timing engine extends its arrival array incrementally as the rebuild
    # appends nodes.
    from ..timing import AigTimingEngine

    dest = AIG()
    engine = AigTimingEngine(dest, delay_model)
    mapping: Dict[int, int] = {0: CONST0}
    for var, name in zip(aig.pis, aig.pi_names):
        mapping[var] = dest.add_pi(name)

    def mapped(lit: int) -> int:
        return lit_notif(mapping[lit_var(lit)], lit_neg(lit))

    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        own = dest.and_(mapped(f0), mapped(f1))
        target = replacement.get(var)
        if target is not None and engine.arrival(
            lit_var(mapped(target))
        ) <= engine.arrival(lit_var(own)):
            mapping[var] = mapped(target)
        else:
            mapping[var] = own
    for po, name in zip(aig.pos, aig.po_names):
        dest.add_po(mapped(po), name)
    return dest.extract()


def remove_redundant_edges(
    aig: AIG, max_checks: int = 2000, sim_width: int = 512, seed: int = 1
) -> AIG:
    """Stuck-at-untestability-based edge removal (classic redundancy removal).

    An AND fan-in whose stuck-at-1 fault is untestable can be replaced by
    constant 1 (dropping the edge).  Checks are SAT-based with a simulation
    pre-filter and bounded by ``max_checks``.
    """
    from ..cec import check_equivalence

    current = aig.extract()
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for var in list(current.and_vars()):
            if checks >= max_checks:
                break
            f0, f1 = current.fanins(var)
            for drop_idx in (0, 1):
                checks += 1
                candidate = _rebuild_without_edge(current, var, drop_idx)
                if candidate.num_ands() >= current.num_ands():
                    continue
                if check_equivalence(current, candidate, sim_width, seed):
                    current = candidate
                    improved = True
                    break
            if improved:
                break
    return current


def _rebuild_without_edge(aig: AIG, target_var: int, drop_idx: int) -> AIG:
    """Copy of the AIG with one AND fan-in replaced by constant 1."""
    dest = AIG()
    mapping: Dict[int, int] = {0: CONST0}
    for var, name in zip(aig.pis, aig.pi_names):
        mapping[var] = dest.add_pi(name)

    def mapped(lit: int) -> int:
        return lit_notif(mapping[lit_var(lit)], lit_neg(lit))

    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        if var == target_var:
            kept = f1 if drop_idx == 0 else f0
            mapping[var] = mapped(kept)
        else:
            mapping[var] = dest.and_(mapped(f0), mapped(f1))
    for po, name in zip(aig.pos, aig.po_names):
        dest.add_po(mapped(po), name)
    return dest.extract()
