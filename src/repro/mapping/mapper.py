"""Delay-oriented technology mapping (cut-based boolean matching).

Classic two-phase dynamic programming: every AIG variable keeps its best
mapped implementation in both polarities; K-feasible cut functions are
matched against library cells under input permutation (P-canonical keys),
with explicit inverters bridging phases.  Cover extraction from the POs
instantiates the chosen gates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..aig import AIG, cut_tt, enumerate_cuts, lit_neg, lit_var
from ..tt import TruthTable, p_canonical
from .library import Cell, NOMINAL_LOAD_FF, default_library

INF = float("inf")

Signal = Tuple[int, bool]  # (aig variable, negated?)


class GateInstance:
    """One mapped gate: a cell driving a signal from input signals."""

    __slots__ = ("cell", "output", "inputs")

    def __init__(self, cell: Cell, output: Signal, inputs: List[Signal]):
        self.cell = cell
        self.output = output
        self.inputs = inputs

    def __repr__(self) -> str:
        return f"GateInstance({self.cell.name} -> {self.output})"


class MappedNetlist:
    """Result of technology mapping."""

    def __init__(
        self,
        aig: AIG,
        gates: List[GateInstance],
        po_signals: List[Signal],
        arrival: Dict[Signal, float],
    ):
        self.aig = aig
        self.gates = gates
        self.po_signals = po_signals
        self.arrival = arrival

    @property
    def area(self) -> float:
        return sum(g.cell.area for g in self.gates)

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def delay(self) -> float:
        """Mapped delay: worst PO arrival (DP estimate; see sta for loads)."""
        if not self.po_signals:
            return 0.0
        return max(self.arrival.get(sig, 0.0) for sig in self.po_signals)

    def timing(self, target: Optional[float] = None):
        """Load-aware timing engine over this netlist.

        The returned :class:`repro.timing.MappedTimingEngine` shares the
        arrival/required/slack query interface with the AIG and network
        engines, so reporting code is subject-agnostic.
        """
        from ..timing import MappedTimingEngine

        return MappedTimingEngine(self, target)

    def evaluate(self, assignment: Sequence[bool]) -> List[bool]:
        """Evaluate the gate-level netlist on one input assignment."""
        values: Dict[Signal, bool] = {(0, False): False, (0, True): True}
        for pi, v in zip(self.aig.pis, assignment):
            values[(pi, False)] = bool(v)
            values[(pi, True)] = not v
        for gate in self.gates:
            ins = [values[sig] for sig in gate.inputs]
            values[gate.output] = gate.cell.tt.evaluate(ins)
            values[(gate.output[0], not gate.output[1])] = not values[
                gate.output
            ]
        return [values[sig] for sig in self.po_signals]

    def __repr__(self) -> str:
        return (
            f"MappedNetlist(gates={self.num_gates}, area={self.area:.1f}, "
            f"delay={self.delay():.1f}ps)"
        )


class _MatchIndex:
    """P-canonical lookup from cut functions to (cell, pin-assignment)."""

    def __init__(self, cells: Sequence[Cell]):
        self.by_canon: Dict[Tuple[int, int], List[Tuple[Cell, Tuple[int, ...]]]] = {}
        for cell in cells:
            bits, perm = p_canonical(cell.tt)
            self.by_canon.setdefault((bits, cell.tt.nvars), []).append(
                (cell, perm)
            )

    def matches(
        self, tt: TruthTable
    ) -> List[Tuple[Cell, List[int]]]:
        """Cells implementing ``tt``; pin order as cut-leaf indices.

        Returns pairs ``(cell, leaf_of_pin)`` where ``leaf_of_pin[j]`` is
        the index (into the cut's leaf list) feeding cell pin ``j``.
        """
        bits, perm_cut = p_canonical(tt)
        out = []
        for cell, perm_cell in self.by_canon.get((bits, tt.nvars), []):
            # tt.permute(perm_cut) == cell.tt.permute(perm_cell): cut leaf i
            # plays canonical role perm_cut[i], cell pin j plays role
            # perm_cell[j]; pin j therefore takes the leaf with matching role.
            role_to_leaf = {role: i for i, role in enumerate(perm_cut)}
            leaf_of_pin = [role_to_leaf[perm_cell[j]] for j in range(tt.nvars)]
            out.append((cell, leaf_of_pin))
        return out


class _Choice:
    __slots__ = ("kind", "cell", "pin_signals")

    def __init__(self, kind, cell=None, pin_signals=None):
        self.kind = kind  # 'cell', 'pi', 'const'
        self.cell = cell
        self.pin_signals = pin_signals  # signals feeding the cell pins


def map_aig(
    aig: AIG,
    cells: Optional[Sequence[Cell]] = None,
    k: int = 4,
    max_cuts: int = 8,
    objective: str = "delay",
) -> MappedNetlist:
    """Map an AIG to the cell library.

    ``objective='delay'`` minimizes arrival time (the Table 2 metric);
    ``'area'`` minimizes an area-flow estimate instead, trading delay for
    smaller netlists.
    """
    if objective not in ("delay", "area"):
        raise ValueError(f"unknown mapping objective {objective!r}")
    if cells is None:
        cells = default_library()
    index = _MatchIndex(cells)
    inv = next(c for c in cells if c.name == "INV")
    inv_delay = inv.delay(NOMINAL_LOAD_FF)
    cuts = enumerate_cuts(aig, k, max_cuts)

    arrival: Dict[Signal, float] = {}
    area_flow: Dict[Signal, float] = {}
    choice: Dict[Signal, _Choice] = {}
    for sig in ((0, False), (0, True)):
        arrival[sig] = 0.0
        area_flow[sig] = 0.0
        choice[sig] = _Choice("const")
    for pi in aig.pis:
        arrival[(pi, False)] = 0.0
        area_flow[(pi, False)] = 0.0
        choice[(pi, False)] = _Choice("pi")
        arrival[(pi, True)] = inv_delay
        area_flow[(pi, True)] = inv.area
        choice[(pi, True)] = _Choice(
            "cell", cell=inv, pin_signals=[(pi, False)]
        )

    def cost_of(sig_arrival: float, sig_area: float):
        if objective == "delay":
            return (sig_arrival, sig_area)
        return (sig_area, sig_arrival)

    fanout_est = [0] * aig.num_vars
    for v in aig.and_vars():
        g0, g1 = aig.fanins(v)
        fanout_est[lit_var(g0)] += 1
        fanout_est[lit_var(g1)] += 1
    for po in aig.pos:
        fanout_est[lit_var(po)] += 1

    for var in aig.and_vars():
        # best[neg] = (cost key, arrival, area_flow, choice)
        best = {False: None, True: None}

        def consider(neg, arr, flow, ch):
            key = cost_of(arr, flow)
            if best[neg] is None or key < best[neg][0]:
                best[neg] = (key, arr, flow, ch)

        # Guaranteed fallback: the node is an AND of its two fan-in
        # literals, realized as AND2 (positive) / NAND2 (negative) with
        # the fan-in phases taken directly.
        f0, f1 = aig.fanins(var)
        fanin_sigs = [
            (lit_var(f0), lit_neg(f0)),
            (lit_var(f1), lit_neg(f1)),
        ]
        fanin_arr = max(arrival[sig] for sig in fanin_sigs)
        fanin_flow = sum(area_flow[sig] for sig in fanin_sigs)
        shares = max(fanout_est[var], 1)
        for neg, cell_name in ((False, "AND2"), (True, "NAND2")):
            cell = next(c for c in cells if c.name == cell_name)
            arr = fanin_arr + cell.delay(NOMINAL_LOAD_FF)
            flow = (cell.area + fanin_flow) / shares
            consider(
                neg, arr, flow,
                _Choice("cell", cell=cell, pin_signals=list(fanin_sigs)),
            )
        for cut in cuts[var]:
            if not cut or cut == (var,):
                continue
            tt = cut_tt(aig, var, list(cut))
            tt_small, support = tt.shrink()
            leaves = [cut[i] for i in support]
            if not leaves:
                continue
            leaf_arr = [arrival[(leaf, False)] for leaf in leaves]
            leaf_flow = sum(area_flow[(leaf, False)] for leaf in leaves)
            for neg, func in ((False, tt_small), (True, ~tt_small)):
                for cell, leaf_of_pin in index.matches(func):
                    arr = max(leaf_arr) + cell.delay(NOMINAL_LOAD_FF)
                    flow = (cell.area + leaf_flow) / shares
                    pin_signals = [
                        (leaves[leaf_of_pin[j]], False)
                        for j in range(cell.num_inputs)
                    ]
                    consider(
                        neg, arr, flow,
                        _Choice(
                            "cell", cell=cell, pin_signals=pin_signals
                        ),
                    )
        # Bridge phases with inverters.
        for neg in (False, True):
            if best[not neg] is None:
                continue
            _key, o_arr, o_flow, _ch = best[not neg]
            consider(
                neg, o_arr + inv_delay, o_flow + inv.area,
                _Choice("cell", cell=inv, pin_signals=[(var, not neg)]),
            )
        for neg in (False, True):
            assert best[neg] is not None
            _key, arr, flow, ch = best[neg]
            arrival[(var, neg)] = arr
            area_flow[(var, neg)] = flow
            choice[(var, neg)] = ch

    # Cover extraction from the POs.
    po_signals: List[Signal] = [
        (lit_var(po), lit_neg(po)) for po in aig.pos
    ]
    gates: List[GateInstance] = []
    emitted = set()

    def emit(sig: Signal) -> None:
        if sig in emitted:
            return
        emitted.add(sig)
        ch = choice[sig]
        if ch.kind in ("pi", "const"):
            return
        for ps in ch.pin_signals:
            emit(ps)
        gates.append(GateInstance(ch.cell, sig, list(ch.pin_signals)))

    for sig in po_signals:
        if sig[0] == 0:
            continue  # constant outputs need no gates
        emit(sig)

    return MappedNetlist(aig, gates, po_signals, arrival)
