"""The complete lookahead synthesis flow used in the paper's evaluation.

The paper implements the technique within ABC and stresses that it
"complements existing logic optimization algorithms": lookahead
decomposition runs on top of conventional optimization.  This module wires
the two together — the result is never worse than the best conventional
flow, and improves on it wherever timing-driven decomposition finds
sensitizable critical structure.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..aig import AIG
from .lookahead import (
    WALK_MODES,
    LookaheadOptimizer,
    make_runtime_optimizer,
    validate_walk_modes,
)


def _make_quality(arrival_times: Optional[Dict[str, int]]):
    """Quality metric: worst PO completion time under the flow's delay
    model, then size.  With no prescribed arrivals this is exactly the
    legacy (depth, num_ands) ordering."""
    from ..timing import AigTimingEngine, resolve_arrivals

    # One delay model per flow: models are stateless, so resolving inside
    # the closure would only rebuild the same object per candidate
    # evaluation.
    model = resolve_arrivals(arrival_times)
    checked = False

    def _quality(aig: AIG):
        nonlocal checked
        q = (AigTimingEngine(aig, model).depth(), aig.num_ands())
        if __debug__ and not checked:
            checked = True
            fresh = AigTimingEngine(aig, resolve_arrivals(arrival_times))
            assert q[0] == fresh.depth(), (
                "hoisted delay model changed the quality ordering"
            )
        return q

    return _quality


def lookahead_flow(
    aig: AIG,
    optimizer: Optional[LookaheadOptimizer] = None,
    max_iterations: int = 4,
    arrival_times: Optional[Dict[str, int]] = None,
    verify: bool = False,
    spcf_tier: str = "auto",
    spcf_prefilter: bool = True,
    area_recovery: bool = True,
    area_effort: str = "medium",
    sat_portfolio: str = "off",
    store=None,
    walk_modes=None,
    rank: str = "off",
    rank_model=None,
    rank_data=None,
) -> AIG:
    """Conventional high-effort optimization alternated with decomposition.

    Each iteration takes the better of the conventional flow (which cleans
    up and rebalances the mux/window structures the decomposition
    introduced) and another batch of lookahead rounds; iteration stops at
    a fixpoint.  The result is never worse than the conventional flow
    alone, and the decomposition gets a first shot at the raw circuit,
    where long sensitizable chains are still visible.

    ``arrival_times`` (PI name -> integer arrival) puts both the optimizer
    and the quality gate in the non-uniform arrival regime; when an
    explicit ``optimizer`` is passed its own ``arrival_times`` win.

    ``spcf_tier`` / ``spcf_prefilter`` configure the tiered SPCF kernels
    of the default optimizer, ``area_recovery`` / ``area_effort`` its
    post-round area-recovery pipeline, ``sat_portfolio`` the solver
    portfolio racing its SAT-bound care and redundancy queries (see
    :class:`LookaheadOptimizer` and :mod:`repro.sat.portfolio`), and
    ``store`` the persistent result store (a database path or
    :class:`repro.store.StoreConfig`) that lets every memo layer survive
    across invocations, ``walk_modes`` its critical-walk strategies
    (``None`` keeps the optimizer default), and ``rank`` /
    ``rank_model`` / ``rank_data`` its learned candidate ranker (see
    :mod:`repro.rank` and DESIGN 3.23); all ten are ignored when an
    explicit ``optimizer`` is passed.

    ``verify=True`` equivalence-checks every accepted candidate against
    the circuit it replaces (and therefore, transitively, against the
    input), raising ``AssertionError`` on any miscompile — the
    belt-and-braces guard for production runs where a wrong circuit is
    much worse than a slow one.
    """
    from .. import perf
    from ..cec import assert_equivalent
    from ..opt import dc_map_effort_high

    optimizer_kwargs = {}
    if walk_modes is not None:
        optimizer_kwargs["walk_modes"] = validate_walk_modes(walk_modes)
    opt = optimizer or LookaheadOptimizer(
        max_rounds=16, max_outputs_per_round=8, arrival_times=arrival_times,
        spcf_tier=spcf_tier, spcf_prefilter=spcf_prefilter,
        area_recovery=area_recovery, area_effort=area_effort,
        sat_portfolio=sat_portfolio, store=store,
        rank=rank, rank_model=rank_model, rank_data=rank_data,
        **optimizer_kwargs,
    )
    _quality = _make_quality(opt.arrival_times)
    current = aig.extract()
    current_q = _quality(current)
    # The conventional candidate is recomputed only when `current` actually
    # changed under it.  When the conventional flow itself wins an
    # iteration, its output doubles as the next iteration's conventional
    # candidate: dc_map_effort_high keeps its input among its internal
    # candidates, so rerunning it on its own output cannot do better than
    # what the quality-gate below would accept anyway.
    conventional = None
    try:
        for _ in range(max_iterations):
            perf.incr("flow.iterations")
            if conventional is None:
                with perf.timer("phase.conventional"):
                    conventional = dc_map_effort_high(current)
            else:
                perf.incr("flow.conventional.reused")
            candidates = [conventional, opt.optimize(current)]
            # One quality evaluation per fresh candidate: the incumbent's
            # is cached across iterations, never recomputed per round.
            qualities = [_quality(c) for c in candidates]
            best = min(range(len(candidates)), key=qualities.__getitem__)
            candidate, candidate_q = candidates[best], qualities[best]
            if candidate_q >= current_q:
                break
            if verify:
                with perf.timer("phase.verify"):
                    assert_equivalent(current, candidate, "flow iteration")
            conventional = candidate if candidate is conventional else None
            current, current_q = candidate, candidate_q
    finally:
        if optimizer is None:
            opt.close()  # the flow owns optimizers it created
    return current


# -- job-shaped entry points (the `repro serve` surface) ----------------------
#
# A daemon absorbing a stream of optimize jobs needs the flow in a
# different shape than the CLI: a job arrives as (circuit, options dict),
# its options must be validated *before* it is queued (a bad job should
# be rejected at submit, not crash a runner mid-drain), and jobs with
# identical options should share one warm optimizer (persistent worker
# pool, hot in-memory store tier).  These helpers are that shape; the
# CLI path above them is unchanged.

JOB_FLOWS = ("lookahead", "lookahead-only")
"""Flows a job may request.  Conventional baselines (sis/abc/dc) are
deliberately absent: they ignore arrivals and never touch the store, so
serving them would only burn daemon CPU with no replay win."""

_JOB_OPTION_DEFAULTS: Dict[str, Any] = {
    "flow": "lookahead",
    "arrivals": None,
    "spcf_tier": "auto",
    "spcf_prefilter": True,
    "area_recovery": True,
    "area_effort": "medium",
    "sat_portfolio": "off",
    "verify": False,
    # Effort knobs (None = the flow's own defaults).  These exist so a
    # size-scaled benchmark row — e.g. Table 2's bounded-effort Lookahead
    # column — can be served by a daemon bit-identically to a local run:
    # the client computes the effort tier from the circuit it holds and
    # ships the knobs explicitly instead of relying on daemon-side state.
    "max_rounds": None,
    "max_outputs_per_round": None,
    "sim_width": None,
    "walk_modes": None,
    "max_iterations": None,
    # Learned candidate ranking (DESIGN 3.23).  Only 'off' and 'prune'
    # are servable — dataset logging is a local concern — and a prune
    # job must embed its model payload, so the daemon's answer depends
    # only on the job, never on daemon-side files.
    "rank": "off",
    "rank_model": None,
}


def normalize_job_config(options: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Validate a job's options dict and fill defaults.

    Returns a plain, JSON-compatible config dict; raises ``ValueError``
    on anything malformed so the daemon can reject the job at submit
    time.  Unknown keys are errors too — a typo'd option silently doing
    nothing is how a client ends up benchmarking the wrong flow.
    """
    from ..sat.portfolio import MODES as PORTFOLIO_MODES
    from .area_recovery import AREA_EFFORTS

    merged = dict(_JOB_OPTION_DEFAULTS)
    unknown = sorted(set(options or ()) - set(merged))
    if unknown:
        raise ValueError(f"unknown job options: {', '.join(unknown)}")
    merged.update(options or {})
    if merged["flow"] not in JOB_FLOWS:
        raise ValueError(
            f"unknown job flow {merged['flow']!r}; expected one of {JOB_FLOWS}"
        )
    if merged["spcf_tier"] not in ("auto", "exact", "overapprox", "signature"):
        raise ValueError(f"unknown SPCF tier {merged['spcf_tier']!r}")
    if merged["area_effort"] not in AREA_EFFORTS:
        raise ValueError(f"unknown area effort {merged['area_effort']!r}")
    if merged["sat_portfolio"] not in PORTFOLIO_MODES:
        raise ValueError(
            f"unknown SAT portfolio mode {merged['sat_portfolio']!r}"
        )
    for key in (
        "max_rounds", "max_outputs_per_round", "sim_width", "max_iterations",
    ):
        value = merged[key]
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise ValueError(f"{key} must be a positive integer, got {value!r}")
    walk_modes = merged["walk_modes"]
    if walk_modes is not None:
        # Same validator (and error text) as the optimizer constructor
        # and the CLI, so every entry point rejects bad values alike.
        merged["walk_modes"] = list(validate_walk_modes(walk_modes))
    rank = merged["rank"]
    if rank not in ("off", "prune"):
        raise ValueError(
            f"unservable rank mode {rank!r}; jobs may use 'off' or 'prune'"
        )
    rank_model = merged["rank_model"]
    if rank == "prune":
        from ..rank import RankModel

        if not isinstance(rank_model, dict):
            raise ValueError(
                "rank='prune' jobs must embed the model payload "
                "as rank_model"
            )
        try:
            RankModel.from_payload(rank_model)
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed rank_model payload: {exc}")
    elif rank_model is not None:
        raise ValueError("rank_model is only meaningful with rank='prune'")
    arrivals = merged["arrivals"]
    if arrivals is not None:
        if not isinstance(arrivals, dict) or not arrivals:
            raise ValueError("arrivals must be a non-empty {name: int} map")
        clean: Dict[str, int] = {}
        for name, t in arrivals.items():
            if not isinstance(name, str):
                raise ValueError(f"arrival name {name!r} is not a string")
            if isinstance(t, bool) or not isinstance(t, int):
                raise ValueError(
                    f"arrival time for {name!r} must be an integer, got {t!r}"
                )
            clean[name] = t
        merged["arrivals"] = clean
    for key in ("spcf_prefilter", "area_recovery", "verify"):
        merged[key] = bool(merged[key])
    return merged


def job_config_key(config: Dict[str, Any]) -> Tuple:
    """Hashable identity of a job config (batching / optimizer reuse).

    Two jobs with equal keys are interchangeable to an optimizer: the
    daemon batches them onto one warm instance.  ``verify`` is excluded —
    it gates a post-flow equivalence check, not the optimization itself.
    """
    arrivals = config.get("arrivals")
    walk_modes = config.get("walk_modes")
    rank_model = config.get("rank_model")
    if rank_model:
        from ..rank import RankModel

        # The payload's stable fingerprint, not the dict itself: model
        # identity is what makes two prune jobs interchangeable.
        model_id = RankModel.from_payload(rank_model).fingerprint()
    else:
        model_id = None
    return (
        config["flow"],
        tuple(sorted(arrivals.items())) if arrivals else None,
        config["spcf_tier"],
        config["spcf_prefilter"],
        config["area_recovery"],
        config["area_effort"],
        config["sat_portfolio"],
        config.get("max_rounds"),
        config.get("max_outputs_per_round"),
        config.get("sim_width"),
        tuple(walk_modes) if walk_modes else None,
        config.get("max_iterations"),
        config.get("rank", "off"),
        model_id,
    )


def make_job_optimizer(
    config: Dict[str, Any], workers: Optional[int] = None
) -> LookaheadOptimizer:
    """A reusable optimizer for every job sharing ``job_config_key``.

    Mirrors the per-flow defaults of the CLI ``FLOWS`` table (so a served
    answer is bit-identical to a local ``repro optimize`` run with the
    same store) and wires the cone cache to the *already configured*
    process runtime store — never reconfiguring it, because the daemon
    shares one store across every handler and runner thread.
    """
    common = dict(
        arrival_times=config["arrivals"],
        spcf_tier=config["spcf_tier"],
        spcf_prefilter=config["spcf_prefilter"],
        area_recovery=config["area_recovery"],
        area_effort=config["area_effort"],
        sat_portfolio=config["sat_portfolio"],
        workers=workers,
    )
    for knob in ("max_rounds", "max_outputs_per_round", "sim_width"):
        if config.get(knob) is not None:
            common[knob] = config[knob]
    if config.get("walk_modes"):
        common["walk_modes"] = tuple(config["walk_modes"])
    if config.get("rank", "off") != "off":
        common["rank"] = config["rank"]
        common["rank_model"] = config["rank_model"]
    if config["flow"] == "lookahead-only":
        common.setdefault("max_rounds", 12)
        return make_runtime_optimizer(**common)
    common.setdefault("max_rounds", 16)
    common.setdefault("max_outputs_per_round", 8)
    return make_runtime_optimizer(**common)


def execute_optimize_job(
    aig: AIG,
    config: Dict[str, Any],
    optimizer: Optional[LookaheadOptimizer] = None,
    workers: Optional[int] = None,
) -> AIG:
    """Run one optimize job (a normalized config) against a circuit.

    ``optimizer`` is the daemon's warm per-config instance; when ``None``
    an ephemeral one is created and closed (the one-shot path used by
    tests and programmatic callers).
    """
    owned = optimizer is None
    if owned:
        optimizer = make_job_optimizer(config, workers=workers)
    try:
        if config["flow"] == "lookahead-only":
            return optimizer.optimize(aig)
        return lookahead_flow(
            aig,
            optimizer=optimizer,
            max_iterations=config.get("max_iterations") or 4,
        )
    finally:
        if owned:
            optimizer.close()
