"""The incremental redundancy-removal engine and the effort pipeline."""

import pytest

from repro import perf
from repro.adders import ripple_carry_adder
from repro.aig import AIG, depth
from repro.cec import check_equivalence
from repro.core import (
    AREA_EFFORTS,
    LookaheadOptimizer,
    recover_area,
    remove_redundant_edges,
)
from repro.verify.random_circuits import random_aig


def _redundant_chain_aig():
    """A chain where one accepted drop exposes the next.

    ``top = ((a & b) & (a | b)) & (a | c)``: the ``(a | b)`` edge is
    redundant (``a & b`` implies it), and once the inner AND collapses to
    ``a & b``, the ``(a | c)`` edge becomes redundant in turn — but only
    through the *resolved* fan-in, which is what the fanout-driven
    worklist re-enqueues.
    """
    aig = AIG()
    a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
    inner = aig.and_(aig.and_(a, b), aig.or_(a, b))
    top = aig.and_(inner, aig.or_(a, c))
    aig.add_po(top)
    return aig


class TestRedundancyEngine:
    def test_removes_redundant_conjunct(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(aig.and_(aig.and_(a, b), aig.or_(a, b)))
        out = remove_redundant_edges(aig)
        assert check_equivalence(aig, out)
        assert out.num_ands() == 1

    def test_worklist_cascades_through_accepted_drops(self):
        aig = _redundant_chain_aig()
        out = remove_redundant_edges(aig)
        assert check_equivalence(aig, out)
        # Both redundant edges fall; only `a & b` survives.
        assert out.num_ands() == 1

    def test_constant_and_duplicate_folds(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        ab = aig.and_(a, b)
        aig.add_po(aig.and_(ab, ab))        # duplicate fan-in
        aig.add_po(aig.and_(ab, 1))         # constant-1 fan-in
        contradiction = aig.and_(aig.and_(a, b), aig.and_(a, 2 ^ b))
        aig.add_po(contradiction)           # b & !b below: constant 0
        out = remove_redundant_edges(aig)
        assert check_equivalence(aig, out)

    def test_prefilter_counters_under_profile(self):
        perf.reset()
        aig = ripple_carry_adder(4)
        out = remove_redundant_edges(aig)
        assert check_equivalence(aig, out)
        snap = perf.snapshot()["counters"]
        # The adder has no redundant edges: simulation should discharge
        # (nearly) everything without consulting the solver.
        assert snap.get("area.prefilter.hit", 0) > 0
        report = perf.report()
        assert "area prefilter hit rate" in report

    def test_zero_sim_width_forces_sat_and_harvests_witnesses(self):
        # With no simulation patterns every candidate reaches the solver;
        # SAT answers must come back as witnesses (testable edges) and the
        # result must still be correct.
        perf.reset()
        aig = ripple_carry_adder(4)
        out = remove_redundant_edges(aig, sim_width=0, max_checks=10000)
        assert check_equivalence(aig, out)
        snap = perf.snapshot()["counters"]
        assert snap.get("area.redundancy.queries", 0) > 0
        assert snap.get("area.redundancy.witnesses", 0) > 0

    def test_never_worse_on_random_circuits(self):
        for seed in range(8):
            aig = random_aig(__import__("random").Random(seed))
            out = remove_redundant_edges(aig)
            assert check_equivalence(aig, out), f"seed {seed}"
            assert depth(out) <= depth(aig), f"seed {seed}"
            assert out.num_ands() <= aig.extract().num_ands(), f"seed {seed}"


class TestRecoverArea:
    def test_effort_levels_all_equivalent(self):
        aig = _redundant_chain_aig()
        sizes = {}
        for effort in AREA_EFFORTS:
            out = recover_area(aig, effort=effort)
            assert check_equivalence(aig, out), effort
            assert depth(out) <= depth(aig), effort
            sizes[effort] = out.num_ands()
        # More effort never gives a bigger circuit.
        assert sizes["medium"] <= sizes["low"]
        assert sizes["high"] <= sizes["medium"]

    def test_medium_catches_what_sweeping_alone_cannot(self):
        # `c & (t | c)` is equivalent to the PI `c` — the sweep only ever
        # merges AND nodes onto AND (or constant) representatives, so the
        # sweep-only effort keeps it; the redundancy pass collapses the
        # node onto its PI fan-in via `c -> (t | c)`.
        aig = AIG()
        c, t = aig.add_pi(), aig.add_pi()
        aig.add_po(aig.and_(c, aig.or_(t, c)))
        low = recover_area(aig, effort="low")
        medium = recover_area(aig, effort="medium")
        assert check_equivalence(aig, medium)
        assert low.num_ands() == 2
        assert medium.num_ands() == 0

    def test_unknown_effort_rejected(self):
        with pytest.raises(ValueError, match="area effort"):
            recover_area(AIG(), effort="extreme")
        with pytest.raises(ValueError, match="area effort"):
            LookaheadOptimizer(area_effort="extreme")

    def test_optimizer_threads_effort_through(self):
        aig = ripple_carry_adder(3)
        for effort in AREA_EFFORTS:
            with LookaheadOptimizer(
                max_rounds=1, area_effort=effort, workers=1
            ) as opt:
                out = opt.optimize(aig)
            assert check_equivalence(aig, out), effort
            assert depth(out) <= depth(aig), effort

    def test_no_area_recovery_stays_available(self):
        aig = ripple_carry_adder(3)
        with LookaheadOptimizer(
            max_rounds=1, area_recovery=False, workers=1
        ) as opt:
            out = opt.optimize(aig)
        assert check_equivalence(aig, out)
