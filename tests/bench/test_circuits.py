"""Tests for the benchmark circuit suite."""

import pytest

from repro.aig import AIG, depth, evaluate, simulate_random
from repro.bench import BENCHMARKS, blocks, control_fabric

PAPER_SHAPES = {
    "rot": (135, 107),
    "dalu": (75, 16),
    "i10": (257, 224),
    "C432": (36, 7),
    "C880": (60, 26),
    "C1908": (33, 25),
    "C3540": (50, 22),
    "sparc_exu_ecl_flat": (572, 120),
    "lsu_stb_ctl_flat": (182, 60),
    "sparc_ifu_dcl_flat": (136, 40),
    "sparc_ifu_dec_flat": (131, 50),
    "lsu_excpctl_flat": (251, 70),
    "sparc_tlu_intctl_flat": (82, 30),
    "sparc_ifu_fcl_flat": (465, 100),
    "tlu_hyperv_flat": (449, 90),
}


def test_suite_has_fifteen_circuits():
    assert len(BENCHMARKS) == 15


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_pi_po_counts(name):
    aig = BENCHMARKS[name]()
    assert (aig.num_pis, aig.num_pos) == PAPER_SHAPES[name]


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_nontrivial_and_deterministic(name):
    a = BENCHMARKS[name]()
    b = BENCHMARKS[name]()
    assert a.num_ands() > 50
    assert depth(a) > 5
    assert a.num_ands() == b.num_ands()
    # Same functional signature under the same patterns.
    assert simulate_random(a, 64, 1) == simulate_random(b, 64, 1)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_outputs_not_constant_heavy(name):
    """Most outputs must actually toggle under random stimulus."""
    from repro.aig import lit_word

    aig = BENCHMARKS[name]()
    width = 256
    from repro.aig import random_patterns, simulate

    values = simulate(aig, random_patterns(aig.num_pis, width, 7), width)
    mask = (1 << width) - 1
    toggling = sum(
        1
        for po in aig.pos
        if lit_word(values, po, width) not in (0, mask)
    )
    assert toggling >= aig.num_pos * 0.6


class TestBlocks:
    def test_priority_grant_onehot(self):
        aig = AIG()
        reqs = [aig.add_pi() for _ in range(5)]
        grants = blocks.priority_grant(aig, reqs)
        for g in grants:
            aig.add_po(g)
        for m in range(32):
            bits = [bool((m >> i) & 1) for i in range(5)]
            out = evaluate(aig, bits)
            if m == 0:
                assert not any(out)
            else:
                first = next(i for i in range(5) if bits[i])
                assert out == [i == first for i in range(5)]

    def test_ripple_compare(self):
        aig = AIG()
        a = [aig.add_pi() for _ in range(3)]
        b = [aig.add_pi() for _ in range(3)]
        eq, lt = blocks.ripple_compare(aig, a, b)
        aig.add_po(eq)
        aig.add_po(lt)
        for av in range(8):
            for bv in range(8):
                bits = [bool((av >> i) & 1) for i in range(3)] + [
                    bool((bv >> i) & 1) for i in range(3)
                ]
                out = evaluate(aig, bits)
                assert out == [av == bv, av < bv]

    def test_rotate_left(self):
        aig = AIG()
        data = [aig.add_pi() for _ in range(8)]
        amt = [aig.add_pi() for _ in range(3)]
        rotated = blocks.rotate_left(aig, data, amt)
        for r in rotated:
            aig.add_po(r)
        for value in (0b00000001, 0b10110010):
            for shift in range(8):
                bits = [bool((value >> i) & 1) for i in range(8)] + [
                    bool((shift >> i) & 1) for i in range(3)
                ]
                out = evaluate(aig, bits)
                got = sum(1 << i for i in range(8) if out[i])
                expected = ((value << shift) | (value >> (8 - shift))) & 0xFF
                assert got == expected

    def test_secded_corrects_single_bit_error(self):
        aig = AIG()
        data = [aig.add_pi() for _ in range(8)]
        checks = [aig.add_pi() for _ in range(5)]
        corrected, syndrome, single, double = blocks.secded_correct(
            aig, data, checks
        )
        for c in corrected:
            aig.add_po(c)
        aig.add_po(single)
        aig.add_po(double)
        # Compute the correct check bits for a word, flip one data bit,
        # and verify correction.
        enc = AIG()
        enc_data = [enc.add_pi() for _ in range(8)]
        enc_checks = blocks.hamming_checks(enc, enc_data)
        overall = blocks.parity_tree(enc, list(enc_data) + enc_checks)
        for c in enc_checks:
            enc.add_po(c)
        enc.add_po(overall)
        word = 0b10110100
        word_bits = [bool((word >> i) & 1) for i in range(8)]
        check_bits = evaluate(enc, word_bits)
        for flip in range(8):
            bad = list(word_bits)
            bad[flip] = not bad[flip]
            out = evaluate(aig, bad + check_bits)
            assert out[:8] == word_bits, f"bit {flip} not corrected"
            assert out[8] and not out[9]

    def test_mux_tree(self):
        aig = AIG()
        sel = [aig.add_pi() for _ in range(2)]
        ins = [aig.add_pi() for _ in range(4)]
        aig.add_po(blocks.mux_tree(aig, sel, ins))
        for s in range(4):
            for v in range(16):
                bits = [bool((s >> i) & 1) for i in range(2)] + [
                    bool((v >> i) & 1) for i in range(4)
                ]
                assert evaluate(aig, bits) == [bool((v >> s) & 1)]

    def test_control_fabric_counts(self):
        aig = control_fabric("t", 40, 10, seed=3)
        assert aig.num_pis == 40 and aig.num_pos == 10
