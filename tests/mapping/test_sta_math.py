"""Focused tests for the STA and power arithmetic."""

import pytest

from repro.aig import AIG
from repro.mapping import (
    analyze,
    default_library,
    dynamic_power_uw,
    map_aig,
    signal_loads,
)
from repro.mapping.library import FREQUENCY_HZ, VDD
from repro.mapping.sta import PO_CAP_FF, WIRE_CAP_FF


def single_gate_netlist():
    aig = AIG()
    a, b = aig.add_pi(), aig.add_pi()
    aig.add_po(aig.and_(a, b))
    return map_aig(aig)


class TestLoads:
    def test_po_load_formula(self):
        net = single_gate_netlist()
        loads = signal_loads(net)
        out_sig = net.po_signals[0]
        assert loads[out_sig] == pytest.approx(WIRE_CAP_FF + PO_CAP_FF)

    def test_fanout_adds_pin_caps(self):
        aig = AIG()
        a, b, c = (aig.add_pi() for _ in range(3))
        shared = aig.and_(a, b)
        aig.add_po(aig.and_(shared, c))
        aig.add_po(aig.and_(shared, a))
        net = map_aig(aig)
        loads = signal_loads(net)
        shared_sig = (shared >> 1, False)
        if shared_sig in loads:
            consumers = [
                g for g in net.gates if shared_sig in g.inputs
            ]
            expected = WIRE_CAP_FF + sum(
                g.cell.input_cap
                for g in consumers
                for s in g.inputs
                if s == shared_sig
            )
            assert loads[shared_sig] == pytest.approx(expected)


class TestArrival:
    def test_single_gate_arrival_is_cell_delay(self):
        net = single_gate_netlist()
        worst, arrival = analyze(net)
        gate = net.gates[-1]
        load = signal_loads(net)[gate.output]
        assert worst == pytest.approx(gate.cell.delay(load))

    def test_load_increases_delay(self):
        cell = default_library()[0]
        assert cell.delay(10.0) > cell.delay(1.0)

    def test_arrival_is_max_over_inputs_plus_delay(self):
        aig = AIG()
        xs = [aig.add_pi() for _ in range(4)]
        deep = aig.and_(aig.and_(xs[0], xs[1]), xs[2])
        out = aig.and_(deep, xs[3])
        aig.add_po(out)
        net = map_aig(aig)
        worst, arrival = analyze(net)
        for gate in net.gates:
            expected = max(
                (arrival.get(s, 0.0) for s in gate.inputs), default=0.0
            ) + gate.cell.delay(signal_loads(net)[gate.output])
            assert arrival[gate.output] == pytest.approx(expected)


class TestPowerMath:
    def test_single_gate_power_formula(self):
        net = single_gate_netlist()
        # AND of two independent uniform inputs: p(one) = 1/4,
        # activity = 2 * 1/4 * 3/4 = 3/8 (simulation estimates this).
        power = dynamic_power_uw(net, sim_width=4096, seed=3)
        loads = signal_loads(net)
        total_c = sum(
            loads[g.output] for g in net.gates
        ) * 1e-15
        # Upper bound with activity 0.5 everywhere:
        upper = 0.5 * total_c * VDD * VDD * FREQUENCY_HZ * 1e6
        assert 0 < power <= upper * 1.01

    def test_constant_output_zero_dynamic_power(self):
        aig = AIG()
        a = aig.add_pi()
        aig.add_po(aig.and_(a, a ^ 1))  # constant 0
        net = map_aig(aig)
        assert dynamic_power_uw(net) == pytest.approx(0.0)
