"""CNF encodings of AIGs (Tseitin transform) and SAT convenience wrappers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..aig import AIG, lit_neg, lit_var
from .solver import Solver


class AigCnf:
    """Incremental Tseitin encoding of one or more AIGs into one solver.

    Each encoded AIG variable maps to a solver variable; the constant node
    maps to a dedicated always-false variable shared by all encodings.
    """

    def __init__(self, solver: Optional[Solver] = None):
        self.solver = solver if solver is not None else Solver()
        self._false_var = self.solver.new_var()
        self.solver.add_clause([-self._false_var])
        self.maps: List[Dict[int, int]] = []

    def encode(
        self,
        aig: AIG,
        pi_vars: Optional[Sequence[int]] = None,
        roots: Optional[Iterable[int]] = None,
    ) -> Dict[int, int]:
        """Encode ``aig`` (or just the cones of ``roots``) into the solver.

        ``pi_vars`` supplies solver variables for the PIs (shared PIs across
        AIGs make miters); fresh variables are created when omitted.
        Returns the AIG-var -> solver-var map.
        """
        var_map: Dict[int, int] = {0: self._false_var}
        if pi_vars is None:
            pi_vars = [self.solver.new_var() for _ in range(aig.num_pis)]
        if len(pi_vars) != aig.num_pis:
            raise ValueError("one solver variable per PI required")
        for aig_var, sv in zip(aig.pis, pi_vars):
            var_map[aig_var] = sv
        if roots is None:
            needed = None
        else:
            needed = set()
            stack = [lit_var(r) for r in roots]
            while stack:
                v = stack.pop()
                if v in needed or not aig.is_and(v):
                    continue
                needed.add(v)
                f0, f1 = aig.fanins(v)
                stack.append(lit_var(f0))
                stack.append(lit_var(f1))
        for var in aig.and_vars():
            if needed is not None and var not in needed:
                continue
            f0, f1 = aig.fanins(var)
            a = self._sat_lit(var_map, f0)
            b = self._sat_lit(var_map, f1)
            out = self.solver.new_var()
            var_map[var] = out
            # out <-> a & b
            self.solver.add_clause([-out, a])
            self.solver.add_clause([-out, b])
            self.solver.add_clause([out, -a, -b])
        self.maps.append(var_map)
        return var_map

    @staticmethod
    def _sat_lit(var_map: Dict[int, int], aig_lit: int) -> int:
        sv = var_map[lit_var(aig_lit)]
        return -sv if lit_neg(aig_lit) else sv

    def lit(self, var_map: Dict[int, int], aig_lit: int) -> int:
        """Solver literal for an AIG literal under a given encoding map."""
        return self._sat_lit(var_map, aig_lit)

    def add_xor(self, a: int, b: int) -> int:
        """Fresh solver variable constrained to ``a XOR b``."""
        out = self.solver.new_var()
        self.solver.add_clause([-out, a, b])
        self.solver.add_clause([-out, -a, -b])
        self.solver.add_clause([out, -a, b])
        self.solver.add_clause([out, a, -b])
        return out

    def add_or(self, lits: Sequence[int]) -> int:
        """Fresh solver variable constrained to ``OR(lits)``."""
        out = self.solver.new_var()
        self.solver.add_clause([-out] + list(lits))
        for l in lits:
            self.solver.add_clause([out, -l])
        return out


def is_satisfiable(
    aig: AIG, target_lit: int, assumptions_lits: Sequence[int] = ()
) -> Tuple[bool, Optional[List[bool]]]:
    """Is there an input making ``target_lit`` (and all assumption lits) true?

    Returns ``(sat, pi_assignment)``.
    """
    enc = AigCnf()
    roots = [target_lit] + list(assumptions_lits)
    var_map = enc.encode(aig, roots=roots)
    assumptions = [enc.lit(var_map, l) for l in roots]
    sat = enc.solver.solve(assumptions)
    if not sat:
        return False, None
    model = [
        enc.solver.model_value(var_map[pi]) or False for pi in aig.pis
    ]
    return True, model


def implies(aig: AIG, a_lit: int, b_lit: int) -> bool:
    """Check ``a -> b`` as circuit functions (UNSAT of ``a & !b``)."""
    from ..aig import lit_not

    sat, _ = is_satisfiable(aig, a_lit, [lit_not(b_lit)])
    return not sat
