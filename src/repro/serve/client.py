"""Client side of the optimize daemon: the `repro submit` machinery.

:class:`ServeClient` is a tiny synchronous connection-per-request
client — the protocol is one JSON line each way, so holding sockets
open buys nothing and a fresh connect keeps every request independent
of daemon restarts.

Resolution order for *where the daemon is* mirrors how it advertises
itself: an explicit ``HOST:PORT`` wins; otherwise the endpoint file
next to the store database (``<store>.serve.json``, falling back to
the default store location) names the live daemon.
"""

from __future__ import annotations

import io
import socket
from typing import Any, Dict, Optional, Union

from ..aig import AIG, write_aag
from .protocol import (
    ServeError,
    endpoint_path,
    parse_hostport,
    read_endpoint,
    recv_message,
    send_message,
)

CONNECT_TIMEOUT_S = 10.0


def _circuit_text(circuit: Union[AIG, str]) -> str:
    if isinstance(circuit, str):
        return circuit
    buf = io.StringIO()
    write_aag(circuit, buf)
    return buf.getvalue()


class ServeClient:
    """Talk to a running ``repro serve`` daemon."""

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = None
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def resolve(
        cls,
        endpoint: Optional[str] = None,
        store: Optional[str] = None,
        endpoint_file: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> "ServeClient":
        """Locate the daemon (explicit endpoint > endpoint file)."""
        if endpoint:
            host, port = parse_hostport(endpoint)
        else:
            record = read_endpoint(endpoint_file or endpoint_path(store))
            host, port = record["host"], int(record["port"])
        return cls(host, port, timeout=timeout)

    def request(
        self, message: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """One round-trip; raises :class:`ServeError` on failure."""
        if timeout is None:
            timeout = self.timeout
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=CONNECT_TIMEOUT_S
            ) as sock:
                send_message(sock, message)
                # Switch to the op timeout once connected: a submit waits
                # for the whole optimization, not a connect round-trip.
                sock.settimeout(timeout)
                with sock.makefile("rb") as fh:
                    response = recv_message(fh)
        except socket.timeout:
            raise ServeError(
                f"daemon did not answer within {timeout}s", "client-timeout"
            ) from None
        except OSError as exc:
            raise ServeError(
                f"cannot reach daemon at {self.host}:{self.port}: {exc}",
                code="no-daemon",
            ) from None
        if response is None:
            raise ServeError("daemon closed the connection", "no-daemon")
        if not response.get("ok"):
            raise ServeError(
                response.get("error", "unknown daemon error"),
                code=response.get("code", "error"),
            )
        return response

    # -- ops ---------------------------------------------------------------

    def ping(self) -> bool:
        try:
            self.request({"op": "ping"}, timeout=CONNECT_TIMEOUT_S)
            return True
        except ServeError:
            return False

    def status(self) -> Dict[str, Any]:
        return self.request(
            {"op": "status"}, timeout=CONNECT_TIMEOUT_S
        )["status"]

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"}, timeout=CONNECT_TIMEOUT_S)

    def submit(
        self,
        circuit: Union[AIG, str],
        options: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        fmt: str = "aag",
        return_circuit: bool = True,
    ) -> Dict[str, Any]:
        """Optimize one circuit; returns the job's ``result`` dict.

        ``circuit`` is an :class:`AIG` or raw AIGER/BLIF text; ``options``
        are the job options (flow, arrivals, tiers — see
        :func:`repro.core.flow.normalize_job_config`).  Blocks until the
        daemon answers; ``timeout`` is the per-job budget enforced by the
        daemon's watchdog (its default when ``None``).
        """
        message: Dict[str, Any] = {
            "op": "submit",
            "circuit": _circuit_text(circuit),
            "format": fmt,
            "options": options or {},
            "return_circuit": return_circuit,
        }
        if timeout is not None:
            message["timeout"] = timeout
        # The client-side wait must outlive the daemon-side watchdog so
        # timeouts are reported by the daemon (with counters), not by a
        # socket error racing it.
        wait = None if timeout is None else timeout + 60.0
        return self.request(message, timeout=wait)["result"]
