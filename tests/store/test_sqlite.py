"""The persistent SQLite backend: durability, self-invalidation, safety.

The contract under any kind of file damage is *cold start, never a crash,
never a wrong payload* — a lost cache costs a warm-up, a wrong payload
costs a miscompile.
"""

from __future__ import annotations

import os
import sqlite3
import subprocess
import sys

from repro import perf
from repro.store import (
    MISSING,
    PAYLOAD_VERSION,
    SqliteStore,
    dumps,
    encode_key,
)

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def _store(tmp_path, name="results.db"):
    return SqliteStore(str(tmp_path / name))


class TestRoundtrip:
    def test_get_put_and_reopen(self, tmp_path):
        store = _store(tmp_path)
        key = (123, "tt", "exact", ("unit",))
        assert store.get("spcf", key) is MISSING
        store.put("spcf", key, ("tt", (1 << 90) + 3, 7))
        assert store.get("spcf", key) == ("tt", (1 << 90) + 3, 7)
        store.close()
        # A fresh store over the same file sees the entry (persistence).
        reopened = _store(tmp_path)
        assert reopened.get("spcf", key) == ("tt", (1 << 90) + 3, 7)
        reopened.close()

    def test_overwrite_updates_in_place(self, tmp_path):
        store = _store(tmp_path)
        store.put("ns", (1,), "old")
        store.put("ns", (1,), "new")
        assert store.get("ns", (1,)) == "new"
        assert store.entries("ns") == 1
        store.close()

    def test_stats_and_file_size(self, tmp_path):
        store = _store(tmp_path)
        store.put("a", (1,), 1)
        store.put("a", (2,), 2)
        store.put("b", (1,), 3)
        assert store.stats() == {
            "a": {"entries": 2},
            "b": {"entries": 1},
        }
        assert store.file_size() > 0
        store.close()

    def test_creates_parent_directories(self, tmp_path):
        store = SqliteStore(str(tmp_path / "deep" / "nested" / "r.db"))
        store.put("ns", (1,), "x")
        assert store.get("ns", (1,)) == "x"
        store.close()


class TestInvalidation:
    def test_by_fingerprint_is_namespaced(self, tmp_path):
        store = _store(tmp_path)
        store.put("ns", (100, "a"), 1)
        store.put("ns", (100, "b"), 2)
        store.put("ns", (200, "a"), 3)
        store.put("other", (100, "a"), 4)
        assert store.invalidate("ns", fingerprint=100) == 2
        assert store.get("ns", (100, "a")) is MISSING
        assert store.get("ns", (200, "a")) == 3
        assert store.get("other", (100, "a")) == 4
        store.close()

    def test_clear_namespace_and_all(self, tmp_path):
        store = _store(tmp_path)
        store.put("a", (1,), 1)
        store.put("b", (1,), 2)
        assert store.invalidate("a") == 1
        assert store.invalidate() == 1
        assert store.stats() == {}
        store.close()


class TestSelfInvalidation:
    def test_schema_version_mismatch_wipes_entries(self, tmp_path):
        path = str(tmp_path / "results.db")
        store = SqliteStore(path)
        store.put("ns", (1,), "stale")
        store.close()
        # Pretend the file was written by a foreign format revision.
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '0.0' WHERE key = 'version'")
        conn.commit()
        conn.close()
        before = perf.counter("store.schema_invalidations")
        reopened = SqliteStore(path)
        assert perf.counter("store.schema_invalidations") == before + 1
        assert reopened.get("ns", (1,)) is MISSING
        # The new version is recorded, so the wipe happens once.
        reopened.put("ns", (1,), "fresh")
        reopened.close()
        again = SqliteStore(path)
        assert again.get("ns", (1,)) == "fresh"
        again.close()

    def test_corrupt_row_reads_as_miss(self, tmp_path):
        path = str(tmp_path / "results.db")
        store = SqliteStore(path)
        store.put("ns", (1,), "good")
        store.close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE entries SET value = ? WHERE key = ?",
            (b"not a payload", encode_key((1,))),
        )
        conn.execute(
            "INSERT INTO entries VALUES ('ns', ?, '2', ?)",
            (encode_key((2,)), b'[%d,"wrong version"]' % (PAYLOAD_VERSION + 9)),
        )
        conn.commit()
        conn.close()
        before = perf.counter("store.decode_errors")
        reopened = SqliteStore(path)
        assert reopened.get("ns", (1,)) is MISSING
        assert reopened.get("ns", (2,)) is MISSING
        assert perf.counter("store.decode_errors") == before + 2
        reopened.close()


class TestCorruptFiles:
    """A damaged database file rebuilds cold — no crash, no wrong data."""

    def _assert_rebuilds_cold(self, path):
        before = perf.counter("store.rebuilds")
        store = SqliteStore(path)
        assert store.get("ns", (1,)) is MISSING
        store.put("ns", (1,), "fresh")
        assert store.get("ns", (1,)) == "fresh"
        assert perf.counter("store.rebuilds") > before
        store.close()

    def test_garbage_file(self, tmp_path):
        path = str(tmp_path / "results.db")
        with open(path, "wb") as f:
            f.write(b"this is definitely not a sqlite database" * 64)
        self._assert_rebuilds_cold(path)

    def test_truncated_database(self, tmp_path):
        path = str(tmp_path / "results.db")
        seed = SqliteStore(path)
        for i in range(64):
            seed.put("ns", (i,), ("payload", i))
        seed.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(max(100, size // 3))
        # Truncation may surface at open or at first query; either way the
        # store must end up serving MISSING-then-fresh, never junk.
        store = SqliteStore(path)
        got = store.get("ns", (1,))
        assert got is MISSING or got == ("payload", 1)
        store.put("ns", (999,), "fresh")
        assert store.get("ns", (999,)) == "fresh"
        store.close()

    def test_header_scribble(self, tmp_path):
        path = str(tmp_path / "results.db")
        seed = SqliteStore(path)
        seed.put("ns", (1,), "x")
        seed.close()
        with open(path, "r+b") as f:
            f.write(b"\xff" * 32)  # destroy the SQLite magic header
        self._assert_rebuilds_cold(path)


class TestConcurrency:
    def test_two_processes_write_one_database(self, tmp_path):
        """Concurrent writers from separate processes both land their rows.

        WAL plus the busy timeout serializes the writes; neither process
        may crash and the union of both key ranges must be readable.
        """
        path = str(tmp_path / "results.db")
        SqliteStore(path).close()  # settle schema creation up front
        script = (
            "import sys\n"
            "from repro.store import SqliteStore\n"
            "path, base = sys.argv[1], int(sys.argv[2])\n"
            "store = SqliteStore(path)\n"
            "for i in range(base, base + 50):\n"
            "    store.put('shared', (i,), ('from', base, i))\n"
            "store.close()\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, path, str(base)],
                env=env,
                stderr=subprocess.PIPE,
            )
            for base in (0, 1000)
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
        store = SqliteStore(path)
        assert store.entries("shared") == 100
        for base in (0, 1000):
            for i in (base, base + 49):
                assert store.get("shared", (i,)) == ("from", base, i)
        store.close()

    def test_reader_sees_writer_commits(self, tmp_path):
        path = str(tmp_path / "results.db")
        writer = SqliteStore(path)
        reader = SqliteStore(path)
        writer.put("ns", (1,), "v1")
        assert reader.get("ns", (1,)) == "v1"  # autocommit, WAL readers
        writer.put("ns", (1,), "v2")
        assert reader.get("ns", (1,)) == "v2"
        writer.close()
        reader.close()


class TestThreadSafety:
    def test_multithreaded_hammer(self, tmp_path):
        """Daemon-shaped load: one store shared by many threads.

        ``check_same_thread=False`` alone is not thread safety — the
        per-store lock must serialize the execute/fetch (and
        error/rebuild) sequences.  Eight threads is above the default
        daemon thread count (listener + handlers + runners).
        """
        import threading

        store = _store(tmp_path)
        nthreads, per_thread = 8, 60
        barrier = threading.Barrier(nthreads)
        errors = []

        def worker(tid):
            try:
                barrier.wait()
                for i in range(per_thread):
                    key = (tid, i)
                    store.put("hammer", key, ["payload", tid, i])
                    assert store.get("hammer", key) == ["payload", tid, i]
                    if i % 7 == 0:
                        store.get("hammer", (tid, i, "absent"))
                    if i % 13 == 0:
                        store.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(nthreads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert store.entries("hammer") == nthreads * per_thread
        for tid in range(nthreads):
            for i in (0, per_thread - 1):
                assert store.get("hammer", (tid, i)) == ["payload", tid, i]
        store.close()

    def test_invalidate_races_writers(self, tmp_path):
        """invalidate() interleaved with puts never crashes or corrupts."""
        import threading

        store = _store(tmp_path)
        stop = threading.Event()
        errors = []

        def writer():
            try:
                i = 0
                while not stop.is_set():
                    store.put("race", (i,), i)
                    i += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def invalidator():
            try:
                for _ in range(25):
                    store.invalidate("race")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        w = threading.Thread(target=writer)
        w.start()
        inv = threading.Thread(target=invalidator)
        inv.start()
        inv.join(timeout=120)
        stop.set()
        w.join(timeout=120)
        assert not errors, errors
        store.stats()  # still a usable database
        store.close()


class TestDegradedMode:
    def _wedge(self, store, monkeypatch):
        """Make every reopen attempt fail, as an unwritable disk would."""

        def broken_open():
            raise sqlite3.OperationalError("disk gone")

        monkeypatch.setattr(store, "_open", broken_open)
        store._conn.close()  # next use hits the error path
        store._conn = None

    def test_repeated_rebuild_failures_degrade_not_crash(
        self, tmp_path, monkeypatch
    ):
        from repro.store.sqlite import MAX_REBUILD_ATTEMPTS

        store = _store(tmp_path)
        store.put("ns", (1,), "v")
        self._wedge(store, monkeypatch)
        base = perf.counter("store.degraded")
        # Every op mid-run survives; after the attempt cap the store
        # stops trying (degraded) instead of raising out of the memo
        # layers.
        for _ in range(MAX_REBUILD_ATTEMPTS + 2):
            assert store.get("ns", (1,)) is MISSING
        assert store.degraded
        assert perf.counter("store.degraded") == base + 1

    def test_degraded_store_drops_traffic_silently(
        self, tmp_path, monkeypatch
    ):
        from repro.store.sqlite import MAX_REBUILD_ATTEMPTS

        store = _store(tmp_path)
        self._wedge(store, monkeypatch)
        for _ in range(MAX_REBUILD_ATTEMPTS):
            store.put("ns", (1,), "v")
        assert store.degraded
        drops = perf.counter("store.degraded.drops")
        store.put("ns", (2,), "w")          # dropped
        assert store.get("ns", (2,)) is MISSING
        assert store.invalidate("ns") == 0
        assert store.stats() == {}
        assert perf.counter("store.degraded.drops") > drops
        store.close()  # still clean

    def test_construction_over_unusable_path_raises(self, tmp_path):
        # The parent "directory" is a file: makedirs cannot succeed.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        try:
            SqliteStore(str(blocker / "sub" / "results.db"))
        except OSError:
            pass
        else:
            raise AssertionError("construction must surface a bad path")
