"""Tests for P- and NPN-canonical forms."""

from hypothesis import given
from hypothesis import strategies as st

from repro.tt import TruthTable, npn_canonical, p_canonical


def tt_strategy(max_vars=4):
    return st.integers(1, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable, st.integers(0, (1 << (1 << n)) - 1), st.just(n)
        )
    )


@given(tt_strategy())
def test_p_canonical_transform_matches(t):
    bits, perm = p_canonical(t)
    assert t.permute(perm).bits == bits


@given(tt_strategy(3), st.permutations([0, 1, 2]))
def test_p_canonical_invariant_under_permutation(t, perm):
    if t.nvars != 3:
        return
    permuted = t.permute(list(perm))
    assert p_canonical(t)[0] == p_canonical(permuted)[0]


@given(tt_strategy(3))
def test_npn_transform_matches(t):
    bits, tf = npn_canonical(t)
    assert tf.apply(t).bits == bits


@given(tt_strategy(3), st.integers(0, 7), st.booleans())
def test_npn_invariant_under_input_flips_and_output(t, flips, out_neg):
    variant = t
    for i in range(t.nvars):
        if (flips >> i) & 1:
            variant = variant.flip(i)
    if out_neg:
        variant = ~variant
    assert npn_canonical(t)[0] == npn_canonical(variant)[0]


def test_known_npn_classes_count():
    # All 2-variable functions fall into exactly 4 NPN classes.
    classes = {
        npn_canonical(TruthTable(bits, 2))[0] for bits in range(16)
    }
    assert len(classes) == 4
