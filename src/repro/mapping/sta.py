"""Static timing analysis of mapped netlists with real loads.

The mapping DP assumes a nominal load; this pass recomputes arrivals with
the actual capacitive load each gate drives (fanout pin caps plus a wire
constant), giving the "Delay" figure reported in Table 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .library import NOMINAL_LOAD_FF
from .mapper import GateInstance, MappedNetlist, Signal

WIRE_CAP_FF = 0.6
"""Fixed wire capacitance added per driven net."""

PO_CAP_FF = 2.0
"""Capacitive load of a primary output pin."""


def signal_loads(netlist: MappedNetlist) -> Dict[Signal, float]:
    """Capacitive load (fF) on every driven signal."""
    loads: Dict[Signal, float] = {}
    for gate in netlist.gates:
        loads.setdefault(gate.output, WIRE_CAP_FF)
        for pin_idx, sig in enumerate(gate.inputs):
            loads[sig] = loads.get(sig, WIRE_CAP_FF) + gate.cell.input_cap
    for sig in netlist.po_signals:
        loads[sig] = loads.get(sig, WIRE_CAP_FF) + PO_CAP_FF
    return loads


def analyze(netlist: MappedNetlist) -> Tuple[float, Dict[Signal, float]]:
    """Load-aware arrival times; returns (worst PO arrival, arrivals)."""
    loads = signal_loads(netlist)
    arrival: Dict[Signal, float] = {}
    # Gates were emitted in topological order by the cover extraction.
    for gate in netlist.gates:
        inputs_arr = [arrival.get(sig, 0.0) for sig in gate.inputs]
        load = loads.get(gate.output, NOMINAL_LOAD_FF)
        arrival[gate.output] = (
            max(inputs_arr, default=0.0) + gate.cell.delay(load)
        )
    worst = max(
        (arrival.get(sig, 0.0) for sig in netlist.po_signals), default=0.0
    )
    return worst, arrival


def mapped_delay(netlist: MappedNetlist) -> float:
    """The Table 2 'Delay' metric (ps, load-aware)."""
    worst, _ = analyze(netlist)
    return worst


def required_times(
    netlist: MappedNetlist, target: Optional[float] = None
) -> Dict[Signal, float]:
    """Load-aware required time of every signal against ``target``.

    Delegates to :class:`repro.timing.MappedTimingEngine`, the shared
    required-time/slack interface over mapped netlists; ``target``
    defaults to the worst PO arrival (zero worst slack).
    """
    from ..timing import MappedTimingEngine

    return MappedTimingEngine(netlist, target).required_times()


def slacks(
    netlist: MappedNetlist, target: Optional[float] = None
) -> Dict[Signal, float]:
    """Per-signal slack (required minus arrival) under real loads."""
    from ..timing import MappedTimingEngine

    engine = MappedTimingEngine(netlist, target)
    req = engine.required_times()
    return {
        sig: r - engine.arrival(sig)
        for sig, r in req.items()
        if r != float("inf")
    }
