"""Canonical, versioned serialization for store keys and payloads.

Keys and values that reach a persistent backend must round-trip across
processes, Python versions, and repository revisions.  ``pickle`` is
rejected outright (version-fragile, and loading a database is then
arbitrary code execution on a file an attacker may control); instead the
codec here handles exactly the value domain the memo layers use — the
JSON scalars plus *tuples*, which the cache payloads rely on (an SPCF
payload is ``('tt', bits, nvars)`` and must come back as a tuple, not a
list).  Arbitrary-precision ints (truth-table bit masks) are native.

* :func:`encode_key` — injective canonical *text* form of a key.  Keys
  are only ever encoded (lookup is by equality), never decoded, so the
  format optimizes for determinism: two equal keys encode identically in
  every process, and distinct keys (including ``1`` vs ``"1"`` vs
  ``True``) never collide.
* :func:`dumps` / :func:`loads` — tagged-JSON payload codec with an
  explicit format version.  :func:`loads` raises :class:`StoreDecodeError`
  on any malformed or foreign-version payload; backends treat that as a
  cache miss, so stale formats self-invalidate instead of crashing.
"""

from __future__ import annotations

import json
from typing import Any

PAYLOAD_VERSION = 1
"""Bump when the payload encoding changes; old rows then read as misses."""


class StoreDecodeError(ValueError):
    """A stored payload could not be decoded (corrupt or foreign version)."""


# -- keys ---------------------------------------------------------------------


def encode_key(key: Any) -> str:
    """Deterministic injective text encoding of a store key.

    Supports ``None``, ``bool``, ``int``, ``float``, ``str``, and
    arbitrarily nested ``tuple``/``list`` of those.  Every type carries a
    distinct tag and strings are length-prefixed, so no two distinct keys
    share an encoding.
    """
    parts: list = []
    _encode_key(key, parts)
    return "".join(parts)


def _encode_key(key: Any, parts: list) -> None:
    if key is None:
        parts.append("N")
    elif key is True:
        parts.append("T")
    elif key is False:
        parts.append("F")
    elif isinstance(key, int):
        parts.append(f"i{key};")
    elif isinstance(key, float):
        parts.append(f"f{key!r};")
    elif isinstance(key, str):
        parts.append(f"s{len(key)}:")
        parts.append(key)
    elif isinstance(key, tuple):
        parts.append("(")
        for item in key:
            _encode_key(item, parts)
        parts.append(")")
    elif isinstance(key, list):
        parts.append("[")
        for item in key:
            _encode_key(item, parts)
        parts.append("]")
    else:
        raise TypeError(
            f"unsupported store key component: {type(key).__name__}"
        )


def key_fingerprint(key: Any) -> int:
    """The leading structural fingerprint of a key, if it has one.

    By convention every memo layer keys its entries with the relevant
    structural fingerprint first; backends index this value so
    *invalidation by fingerprint* is one indexed delete instead of a
    full-namespace scan.  Returns ``-1`` for keys without a leading int.
    """
    if isinstance(key, int) and not isinstance(key, bool):
        return key
    if isinstance(key, (tuple, list)) and key:
        head = key[0]
        if isinstance(head, int) and not isinstance(head, bool):
            return head
    return -1


# -- payloads -----------------------------------------------------------------

_TUPLE_TAG = "\x00t"  # illegal as a first element of any payload we emit


def _to_jsonable(obj: Any) -> Any:
    if isinstance(obj, tuple):
        return [_TUPLE_TAG] + [_to_jsonable(x) for x in obj]
    if isinstance(obj, list):
        # A plain list is encoded as-is; the tuple tag is reserved, so a
        # user list starting with the tag would be ambiguous — reject it.
        if obj and obj[0] == _TUPLE_TAG:
            raise TypeError("list payloads may not start with the tuple tag")
        return [_to_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                raise TypeError("dict payload keys must be strings")
            out[k] = _to_jsonable(v)
        return out
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"unsupported store payload type: {type(obj).__name__}")


def _from_jsonable(obj: Any) -> Any:
    if isinstance(obj, list):
        if obj and obj[0] == _TUPLE_TAG:
            return tuple(_from_jsonable(x) for x in obj[1:])
        return [_from_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _from_jsonable(v) for k, v in obj.items()}
    return obj


def dumps(value: Any) -> bytes:
    """Serialize a payload to a compact, versioned byte string."""
    body = json.dumps(
        [PAYLOAD_VERSION, _to_jsonable(value)],
        separators=(",", ":"),
        ensure_ascii=False,
    )
    return body.encode("utf-8")


def loads(data: bytes) -> Any:
    """Inverse of :func:`dumps`; raises :class:`StoreDecodeError` on junk."""
    try:
        wrapper = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StoreDecodeError(f"undecodable store payload: {exc}") from None
    if (
        not isinstance(wrapper, list)
        or len(wrapper) != 2
        or wrapper[0] != PAYLOAD_VERSION
    ):
        raise StoreDecodeError(
            f"unsupported store payload version: {wrapper!r:.60}"
        )
    return _from_jsonable(wrapper[1])
