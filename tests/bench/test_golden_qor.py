"""Golden QoR regression suite over every Table 2 circuit.

Each circuit's ``(depth, ands, ands_post)`` under its pinned optimizer
configuration is recorded in ``golden_qor.json``.  A depth above the
golden value is a hard QoR regression and fails; area is allowed to
drift up to 5% before the suite flags it.  ``ands_post`` — the AND
count after a deterministic :func:`repro.core.recover_area` pass on the
optimized output — is a hard bound like depth: redundancy the engine
can remove deterministically must stay removed.  Legitimate QoR changes
are blessed with ``pytest tests/bench/test_golden_qor.py
--update-golden`` (see ``tests/regressions/README.md``).

Two configurations are in play (``repro.bench.table2.golden_config``):

* the serial bench_speed ``lookahead-w1`` config for the small circuits
  and for ``rot`` (whose goldens double as a reproducibility check on
  ``BENCH_speed.json``; the config must stay in lockstep with
  ``benchmarks/bench_speed.py::_optimizer``), paired with full-effort
  area recovery;
* a quick one-round config for the big Table 2 fabrics, paired with
  medium-effort recovery, so covering all 15 paper circuits stays
  inside the tier-1 wall-clock budget while still failing on any
  depth regression.
"""

import json
import os

import pytest

from repro.adders import ripple_carry_adder
from repro.aig import depth
from repro.bench import BENCHMARKS
from repro.bench.table2 import golden_area_effort, golden_config
from repro.core import LookaheadOptimizer, recover_area

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_qor.json")

AREA_DRIFT = 0.05
"""Relative AND-count growth tolerated before the suite flags it."""

CIRCUITS = {
    "rca2": lambda: ripple_carry_adder(2),
    "rca4": lambda: ripple_carry_adder(4),
    "rca8": lambda: ripple_carry_adder(8),
    "rca16": lambda: ripple_carry_adder(16),
    "adder8": lambda: ripple_carry_adder(8),
    "adder16": lambda: ripple_carry_adder(16),
    "adder32": lambda: ripple_carry_adder(32),
}
# Every Table 2 circuit: a depth regression on any paper circuit is a
# tier-1 failure.
CIRCUITS.update(BENCHMARKS)

# rca8/rca16 are structurally the adder8/adder16 circuits; one optimized
# result per distinct (circuit, config) keeps the suite's wall-clock flat.
_cache = {}


def _golden_qor(name):
    """(depth, ands, ands_post) under the circuit's pinned config, memoized."""
    aig = CIRCUITS[name]()
    config = golden_config(name, aig.num_ands())
    key = (
        aig.num_pis, aig.num_pos, aig.num_ands(), depth(aig),
        tuple(sorted((k, tuple(v) if isinstance(v, (list, tuple)) else v)
                     for k, v in config.items())),
    )
    if key not in _cache:
        with LookaheadOptimizer(workers=1, **config) as opt:
            out = opt.optimize(aig)
        post = recover_area(out, effort=golden_area_effort(config))
        _cache[key] = (depth(out), out.num_ands(), post.num_ands())
    return _cache[key]


def _load_golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def test_golden_covers_all_table2_circuits():
    golden = _load_golden()
    missing = sorted(set(BENCHMARKS) - set(golden))
    assert not missing, (
        f"Table 2 circuits without golden records: {missing}; "
        "run with --update-golden"
    )


@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_golden_qor(name, update_golden):
    got_depth, got_ands, got_post = _golden_qor(name)
    if update_golden:
        golden = _load_golden() if os.path.exists(GOLDEN_PATH) else {}
        golden[name] = {
            "depth": got_depth, "ands": got_ands, "ands_post": got_post,
        }
        with open(GOLDEN_PATH, "w") as fh:
            json.dump(golden, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return
    golden = _load_golden()
    assert name in golden, (
        f"{name} has no golden record; run with --update-golden"
    )
    want = golden[name]
    assert got_depth <= want["depth"], (
        f"{name}: depth regressed {want['depth']} -> {got_depth}"
    )
    limit = int(want["ands"] * (1 + AREA_DRIFT))
    assert got_ands <= limit, (
        f"{name}: area drifted >{AREA_DRIFT:.0%} "
        f"({want['ands']} -> {got_ands}, limit {limit}); if intended, "
        "bless with --update-golden"
    )
    assert got_post <= want["ands_post"], (
        f"{name}: post-recovery area regressed "
        f"{want['ands_post']} -> {got_post}; if intended, bless with "
        "--update-golden"
    )
