"""The repro.perf telemetry registry."""

import time

import pytest

from repro.perf import PerfRegistry, get_workers


class TestPerfRegistry:
    def test_counters(self):
        reg = PerfRegistry()
        assert reg.counter("x") == 0
        reg.incr("x")
        reg.incr("x", 4)
        assert reg.counter("x") == 5

    def test_timer_scope_accumulates(self):
        reg = PerfRegistry()
        with reg.timer("t"):
            time.sleep(0.01)
        with reg.timer("t"):
            pass
        snap = reg.snapshot()
        assert snap["timers"]["t"]["calls"] == 2
        assert snap["timers"]["t"]["seconds"] >= 0.01

    def test_snapshot_merge(self):
        a, b = PerfRegistry(), PerfRegistry()
        a.incr("hits", 2)
        a.add_time("phase", 1.5)
        b.incr("hits", 3)
        b.merge(a.snapshot())
        assert b.counter("hits") == 5
        assert b.seconds("phase") == pytest.approx(1.5)

    def test_ratio(self):
        reg = PerfRegistry()
        assert reg.ratio("h", "m") == 0.0
        reg.incr("h", 3)
        reg.incr("m", 1)
        assert reg.ratio("h", "m") == pytest.approx(0.75)

    def test_reset(self):
        reg = PerfRegistry()
        reg.incr("x")
        reg.add_time("t", 1.0)
        reg.reset()
        assert reg.snapshot() == {
            "counters": {}, "timers": {}, "histograms": {}
        }

    def test_report_lists_everything(self):
        reg = PerfRegistry()
        reg.incr("cache.spcf.hit", 3)
        reg.incr("cache.spcf.miss", 1)
        reg.add_time("phase.reduce", 0.5)
        text = reg.report()
        assert "cache.spcf.hit" in text
        assert "phase.reduce" in text
        assert "spcf cache hit rate" in text
        assert "75.0%" in text


class TestGetWorkers:
    def test_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert get_workers(override=2) == 2

    def test_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert get_workers() == 7

    def test_default_at_least_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert get_workers() >= 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            get_workers()
