"""SIS-style ``speed_up``: critical-region collapse and re-decomposition.

The classic tree-height-reduction recipe: cluster the circuit into large
complex nodes (partial collapsing), then re-synthesize every node with
arrival-aware trees so the critical path is re-decomposed at minimum
height.  This is the paper's SIS comparison flow analogue.
"""

from __future__ import annotations

from ..aig import AIG, depth
from ..netlist import network_to_aig, renode


def speed_up(aig: AIG, k: int = 10, iterations: int = 3) -> AIG:
    """Iterated partial-collapse + balanced re-decomposition."""
    best = aig.extract()
    current = best
    for _ in range(iterations):
        net = renode(current, k=k, max_cuts=6)
        current = network_to_aig(net)
        if depth(current) < depth(best) or (
            depth(current) == depth(best)
            and current.num_ands() < best.num_ands()
        ):
            best = current
        else:
            break
    return best
