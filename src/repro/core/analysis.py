"""Decomposition analytics: inspect what a lookahead round discovered.

The optimizer's machinery is exposed step by step so users (and the
examples/ablations) can report the anatomy of a decomposition — SPCF
sizes per Δ, the windows chosen on each marked node, Σ1's depth, and the
final reconstruction balance.  Read-only: nothing here mutates the input
circuit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..aig import AIG, depth, levels, lit_var
from ..netlist import compute_levels, renode
from .lookahead import LookaheadOptimizer
from .model import ExactModel, SignatureModel
from .reduce import primary_reduce
from .spcf import Spcf


class OutputReport:
    """Per-output decomposition report."""

    __slots__ = (
        "po_index",
        "po_name",
        "po_level",
        "spcf_mode",
        "spcf_count",
        "marked_nodes",
        "window_supports",
        "cone_level_before",
        "cone_level_after",
        "sigma_level",
        "success",
    )

    def __init__(self, **kw):
        for key in self.__slots__:
            setattr(self, key, kw.get(key))

    def as_dict(self) -> Dict:
        return {key: getattr(self, key) for key in self.__slots__}


class RoundReport:
    """Summary of one decomposition round over all critical outputs."""

    def __init__(self, aig_depth: int, outputs: List[OutputReport]):
        self.aig_depth = aig_depth
        self.outputs = outputs

    @property
    def num_successful(self) -> int:
        return sum(1 for o in self.outputs if o.success)

    def __repr__(self) -> str:
        return (
            f"RoundReport(depth={self.aig_depth}, "
            f"outputs={len(self.outputs)}, "
            f"successful={self.num_successful})"
        )


def analyze_round(
    aig: AIG,
    optimizer: Optional[LookaheadOptimizer] = None,
    max_outputs: int = 8,
) -> RoundReport:
    """Dry-run the primary simplification of one round and report it."""
    opt = optimizer or LookaheadOptimizer()
    d = depth(aig)
    mode = opt._resolve_mode(aig)
    if mode == "bdd":
        mode = "sim"  # keep the dry run cheap and allocation-free
    aig_levels = levels(aig)
    critical = [
        i for i, po in enumerate(aig.pos) if aig_levels[lit_var(po)] == d
    ][:max_outputs]
    net = renode(aig, opt.k)

    pi_words: List[int] = []
    timed = None
    if mode == "sim":
        from ..aig import random_patterns
        from .spcf import timed_simulation, unpack_patterns

        pi_words = random_patterns(aig.num_pis, opt.sim_width, opt.seed)
        timed = timed_simulation(
            aig, unpack_patterns(pi_words, opt.sim_width)
        )

    reports: List[OutputReport] = []
    for po_index in critical:
        spcf = opt._compute_spcf(
            aig, po_index, aig_levels, mode, timed, pi_words
        )
        if spcf is None or spcf.is_empty():
            reports.append(
                OutputReport(
                    po_index=po_index,
                    po_name=aig.po_names[po_index],
                    po_level=aig_levels[lit_var(aig.pos[po_index])],
                    spcf_mode=mode,
                    spcf_count=0,
                    marked_nodes=0,
                    window_supports=[],
                    success=False,
                )
            )
            continue
        cone = net.extract_po_cone(po_index)
        if mode == "tt":
            model = ExactModel(cone)
        else:
            model = SignatureModel(cone, pi_words, opt.sim_width)
        root, _neg = cone.pos[0]
        before = compute_levels(cone)[root]
        result = primary_reduce(cone, 0, model, model.spcf_fn(spcf))
        lv = compute_levels(cone)
        reports.append(
            OutputReport(
                po_index=po_index,
                po_name=aig.po_names[po_index],
                po_level=aig_levels[lit_var(aig.pos[po_index])],
                spcf_mode=spcf.mode,
                spcf_count=spcf.count,
                marked_nodes=len(result.windows),
                window_supports=[
                    sorted(w.support()) for w in result.windows.values()
                ],
                cone_level_before=before,
                cone_level_after=lv[root],
                sigma_level=(
                    lv[result.sigma_nid]
                    if result.sigma_nid is not None
                    else None
                ),
                success=result.success,
            )
        )
    return RoundReport(d, reports)


def print_round_report(report: RoundReport) -> None:
    """Human-readable dump of a round report."""
    print(f"AIG depth {report.aig_depth}; "
          f"{report.num_successful}/{len(report.outputs)} outputs decomposed")
    for o in report.outputs:
        status = "ok" if o.success else "--"
        sigma = f"Σ@{o.sigma_level}" if o.sigma_level is not None else "Σ:-"
        print(
            f"  [{status}] {o.po_name:16s} level {o.po_level:3d} "
            f"spcf({o.spcf_mode})={o.spcf_count:<6d} "
            f"marked={o.marked_nodes:<3d} "
            f"cone {o.cone_level_before}->{o.cone_level_after} {sigma}"
        )
