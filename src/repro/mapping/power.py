"""Dynamic-power estimation of mapped netlists at 1 GHz.

Per-net switching activity is taken from bit-parallel random simulation of
the underlying AIG (toggle rate 2p(1-p) for signal probability p), and
dynamic power is the usual alpha*C*V^2*f sum over driven nets — the
Table 2 "Power" column.
"""

from __future__ import annotations

from typing import Dict

from ..aig import lit_var, simulate_random
from .library import FREQUENCY_HZ, VDD
from .mapper import MappedNetlist
from .sta import signal_loads


def switching_activities(
    netlist: MappedNetlist, sim_width: int = 2048, seed: int = 0
) -> Dict[int, float]:
    """Toggle probability per AIG variable (phase-independent)."""
    aig = netlist.aig
    values = simulate_random(aig, sim_width, seed)
    activities: Dict[int, float] = {}
    for var in range(aig.num_vars):
        ones = bin(values[var]).count("1")
        p = ones / sim_width
        activities[var] = 2.0 * p * (1.0 - p)
    return activities


def dynamic_power_uw(
    netlist: MappedNetlist, sim_width: int = 2048, seed: int = 0
) -> float:
    """Total dynamic power in microwatts at 1 GHz."""
    activities = switching_activities(netlist, sim_width, seed)
    loads = signal_loads(netlist)
    total_w = 0.0
    for gate in netlist.gates:
        var, _neg = gate.output
        alpha = activities.get(var, 0.5)
        cap_f = loads.get(gate.output, 0.0) * 1e-15
        total_w += alpha * cap_f * VDD * VDD * FREQUENCY_HZ
    return total_w * 1e6
