"""A CDCL SAT solver (MiniSat-style).

Features: two-literal watching, first-UIP conflict analysis with clause
learning, VSIDS decision heuristic with an indexed heap, phase saving, Luby
restarts, and incremental solving under assumptions.

The search strategy is parameterized by :class:`SolverConfig` so a
portfolio can race configurations with genuinely different trajectories
(seeded activity jitter, polarity modes, Luby vs. geometric restarts,
clause-DB limits).  The default configuration reproduces the historical
single-config behavior bit-for-bit.

External literals use the DIMACS convention: variable ``v`` (1-based) is the
positive literal ``v`` and the negative literal ``-v``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_UNDEF = -1


def _ilit(ext: int) -> int:
    """DIMACS literal -> internal literal (2*var + sign)."""
    var = abs(ext) - 1
    return var * 2 + (1 if ext < 0 else 0)


def _elit(ilit: int) -> int:
    """Internal literal -> DIMACS literal."""
    var = (ilit >> 1) + 1
    return -var if ilit & 1 else var


def luby(i: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 0-indexed."""
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) >> 1
        seq -= 1
        i %= size
    return 1 << seq


class SolverConfig:
    """Search-strategy parameters of one :class:`Solver` instance.

    Every field is a lever the portfolio layer uses to make racers explore
    different trajectories on the same formula:

    * ``seed`` — when set, a per-solver RNG jitters initial variable
      activities (diversifying VSIDS tie-breaking) and drives the
      ``random`` polarity mode.
    * ``polarity`` — decision polarity: ``saved`` (phase saving),
      ``false`` / ``true`` (fixed), or ``random`` (requires ``seed``).
    * ``phase_saving`` — when off, ``saved`` polarity degrades to the
      initial phase (``false``); decisions ignore remembered phases.
    * ``restart`` — ``luby`` (``restart_base * luby(n)``) or ``geometric``
      (``restart_base * restart_growth ** n``) conflict budgets.
    * ``learned_limit`` — clause-DB cap: once the learned-clause count
      exceeds it, the lower-activity half is dropped at the next restart
      (reason clauses and binaries are kept).
    * ``var_decay`` — VSIDS activity decay factor.

    The default configuration reproduces the solver's historical behavior
    bit-for-bit.
    """

    POLARITIES = ("saved", "false", "true", "random")
    RESTARTS = ("luby", "geometric")

    __slots__ = (
        "name",
        "seed",
        "polarity",
        "phase_saving",
        "restart",
        "restart_base",
        "restart_growth",
        "learned_limit",
        "var_decay",
    )

    def __init__(
        self,
        name: str = "default",
        seed: Optional[int] = None,
        polarity: str = "saved",
        phase_saving: bool = True,
        restart: str = "luby",
        restart_base: int = 64,
        restart_growth: float = 1.5,
        learned_limit: Optional[int] = None,
        var_decay: float = 0.95,
    ) -> None:
        if polarity not in self.POLARITIES:
            raise ValueError(f"polarity must be one of {self.POLARITIES}")
        if restart not in self.RESTARTS:
            raise ValueError(f"restart must be one of {self.RESTARTS}")
        if polarity == "random" and seed is None:
            raise ValueError("random polarity requires a seed")
        if restart_base < 1:
            raise ValueError("restart_base must be >= 1")
        if restart_growth <= 1.0:
            raise ValueError("restart_growth must be > 1")
        if learned_limit is not None and learned_limit < 16:
            raise ValueError("learned_limit must be >= 16")
        if not 0.0 < var_decay <= 1.0:
            raise ValueError("var_decay must be in (0, 1]")
        self.name = name
        self.seed = seed
        self.polarity = polarity
        self.phase_saving = phase_saving
        self.restart = restart
        self.restart_base = restart_base
        self.restart_growth = restart_growth
        self.learned_limit = learned_limit
        self.var_decay = var_decay

    def key(self) -> Tuple:
        """Hashable identity of the configuration (``name`` excluded)."""
        return (
            self.seed,
            self.polarity,
            self.phase_saving,
            self.restart,
            self.restart_base,
            self.restart_growth,
            self.learned_limit,
            self.var_decay,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SolverConfig):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"SolverConfig({self.name!r})"


DEFAULT_CONFIG = SolverConfig()
"""The historical single-config behavior (phase saving, Luby-64)."""


class _VarHeap:
    """Indexed max-heap on variable activity."""

    def __init__(self) -> None:
        self.heap: List[int] = []
        self.pos: Dict[int, int] = {}

    def __contains__(self, var: int) -> bool:
        return var in self.pos

    def push(self, var: int, activity: List[float]) -> None:
        if var in self.pos:
            return
        self.heap.append(var)
        self.pos[var] = len(self.heap) - 1
        self._up(len(self.heap) - 1, activity)

    def pop(self, activity: List[float]) -> int:
        top = self.heap[0]
        last = self.heap.pop()
        del self.pos[top]
        if self.heap:
            self.heap[0] = last
            self.pos[last] = 0
            self._down(0, activity)
        return top

    def update(self, var: int, activity: List[float]) -> None:
        if var in self.pos:
            self._up(self.pos[var], activity)

    def _up(self, i: int, act: List[float]) -> None:
        heap, pos = self.heap, self.pos
        var = heap[i]
        while i > 0:
            parent = (i - 1) >> 1
            if act[heap[parent]] >= act[var]:
                break
            heap[i] = heap[parent]
            pos[heap[i]] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _down(self, i: int, act: List[float]) -> None:
        heap, pos = self.heap, self.pos
        n = len(heap)
        var = heap[i]
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            best = left
            right = left + 1
            if right < n and act[heap[right]] > act[heap[left]]:
                best = right
            if act[heap[best]] <= act[var]:
                break
            heap[i] = heap[best]
            pos[heap[i]] = i
            i = best
        heap[i] = var
        pos[var] = i


class Solver:
    """Incremental CDCL SAT solver."""

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        self.config = config if config is not None else DEFAULT_CONFIG
        self.clauses: List[Optional[List[int]]] = []  # internal-literal clauses
        self.watches: List[List[int]] = []  # per internal literal
        self.assign: List[int] = []  # per var: _UNDEF / 0 (false) / 1 (true)
        self.level: List[int] = []
        self.reason: List[int] = []  # clause index or _UNDEF
        self.trail: List[int] = []  # assigned internal literals
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.activity: List[float] = []
        self.var_inc = 1.0
        self.phase: List[int] = []
        self.heap = _VarHeap()
        self.ok = True
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        # Assumption literals (DIMACS) of the currently retained decision
        # levels 1..len(_assumption_levels); maintained by solve() and
        # _backtrack() so keep_prefix can reuse the propagated prefix.
        self._assumption_levels: List[int] = []
        # Learned-clause bookkeeping (only populated under a learned_limit).
        self._learned: Dict[int, float] = {}  # clause index -> activity
        self.cla_inc = 1.0
        cfg = self.config
        self._rng = random.Random(cfg.seed) if cfg.seed is not None else None
        # Phase saving only affects decisions: with it off, 'saved'
        # polarity degrades to the initial phase ('false').
        if cfg.polarity == "saved" and not cfg.phase_saving:
            self._polarity = "false"
        else:
            self._polarity = cfg.polarity

    # -- variables and clauses ------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its 1-based DIMACS index."""
        self.assign.append(_UNDEF)
        self.level.append(0)
        self.reason.append(_UNDEF)
        if self._rng is None:
            self.activity.append(0.0)
        else:
            # Sub-unit jitter: diversifies VSIDS tie-breaking across racers
            # without outweighing a single real activity bump.
            self.activity.append(self._rng.random() * 1e-3)
        self.phase.append(0)
        self.watches.append([])
        self.watches.append([])
        var = len(self.assign) - 1
        self.heap.push(var, self.activity)
        return var + 1

    @property
    def num_vars(self) -> int:
        return len(self.assign)

    def _ensure_var(self, ext: int) -> None:
        while abs(ext) > self.num_vars:
            self.new_var()

    def add_clause(self, ext_lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT."""
        if not self.ok:
            return False
        if self.trail_lim:
            raise RuntimeError("clauses may only be added at decision level 0")
        lits: List[int] = []
        seen = set()
        for ext in ext_lits:
            if ext == 0:
                raise ValueError("literal 0 is invalid")
            self._ensure_var(ext)
            il = _ilit(ext)
            if il ^ 1 in seen:
                return True  # tautology
            if il in seen:
                continue
            value = self._value(il)
            if value == 1 and self.level[il >> 1] == 0:
                return True  # satisfied at root
            if value == 0 and self.level[il >> 1] == 0:
                continue  # falsified at root: drop literal
            seen.add(il)
            lits.append(il)
        if not lits:
            self.ok = False
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], _UNDEF):
                self.ok = False
                return False
            self.ok = self._propagate() == _UNDEF
            return self.ok
        idx = len(self.clauses)
        self.clauses.append(lits)
        self.watches[lits[0] ^ 1].append(idx)
        self.watches[lits[1] ^ 1].append(idx)
        return True

    # -- assignment helpers ----------------------------------------------------

    def _value(self, ilit: int) -> int:
        """0/1 value of an internal literal, or _UNDEF."""
        v = self.assign[ilit >> 1]
        if v == _UNDEF:
            return _UNDEF
        return v ^ (ilit & 1)

    def _enqueue(self, ilit: int, reason: int) -> bool:
        value = self._value(ilit)
        if value == 0:
            return False
        if value == 1:
            return True
        var = ilit >> 1
        self.assign[var] = 1 ^ (ilit & 1)
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.phase[var] = self.assign[var]
        self.trail.append(ilit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # -- propagation ----------------------------------------------------------

    def _propagate(self) -> int:
        """Unit propagation; returns conflicting clause index or _UNDEF."""
        while self.qhead < len(self.trail):
            ilit = self.trail[self.qhead]
            self.qhead += 1
            self.num_propagations += 1
            watch_list = self.watches[ilit]
            new_list: List[int] = []
            conflict = _UNDEF
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                i += 1
                clause = self.clauses[ci]
                # Normalize: watched literal being falsified is ilit^1.
                falsified = ilit ^ 1
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    new_list.append(ci)
                    continue
                # Search for a replacement watch.
                moved = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) != 0:
                        clause[1], clause[j] = clause[j], clause[1]
                        self.watches[clause[1] ^ 1].append(ci)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                new_list.append(ci)
                if not self._enqueue(first, ci):
                    conflict = ci
                    new_list.extend(watch_list[i:])
                    break
            self.watches[ilit] = new_list
            if conflict != _UNDEF:
                self.qhead = len(self.trail)
                return conflict
        return _UNDEF

    # -- conflict analysis ------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(self.num_vars):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
        self.heap.update(var, self.activity)

    def _analyze(self, conflict: int) -> (List[int], int):  # type: ignore[syntax]
        """First-UIP learning; returns (learned clause, backtrack level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * self.num_vars
        counter = 0
        ilit = _UNDEF
        index = len(self.trail) - 1
        clause_idx = conflict
        while True:
            if clause_idx in self._learned:
                self._learned[clause_idx] += self.cla_inc
            clause = self.clauses[clause_idx]
            start = 0 if ilit == _UNDEF else 1
            for q in clause[start:]:
                var = q >> 1
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= self._decision_level():
                        counter += 1
                    else:
                        learned.append(q)
            # Find the next trail literal to resolve on.
            while not seen[self.trail[index] >> 1]:
                index -= 1
            ilit = self.trail[index]
            index -= 1
            var = ilit >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            clause_idx = self.reason[var]
            # Put the resolved literal first so it is skipped above.
            clause = self.clauses[clause_idx]
            if clause[0] != ilit:
                pos = clause.index(ilit)
                clause[0], clause[pos] = clause[pos], clause[0]
        learned[0] = ilit ^ 1
        if len(learned) == 1:
            bt_level = 0
        else:
            # Second-highest decision level among learned literals.
            max_i = 1
            for i in range(2, len(learned)):
                if self.level[learned[i] >> 1] > self.level[learned[max_i] >> 1]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            bt_level = self.level[learned[1] >> 1]
        return learned, bt_level

    def _backtrack(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        limit = self.trail_lim[target_level]
        for ilit in reversed(self.trail[limit:]):
            var = ilit >> 1
            self.assign[var] = _UNDEF
            self.reason[var] = _UNDEF
            self.heap.push(var, self.activity)
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        del self._assumption_levels[target_level:]
        self.qhead = len(self.trail)

    def _learn(self, learned: List[int]) -> None:
        if len(learned) == 1:
            self._enqueue(learned[0], _UNDEF)
            return
        idx = len(self.clauses)
        self.clauses.append(learned)
        self.watches[learned[0] ^ 1].append(idx)
        self.watches[learned[1] ^ 1].append(idx)
        self._enqueue(learned[0], idx)
        if self.config.learned_limit is not None and len(learned) > 2:
            self._learned[idx] = self.cla_inc

    def _reduce_db(self) -> None:
        """Drop the lower-activity half of the learned clauses.

        Called at a restart point (propagation quiescent), so each live
        clause is watched exactly once on each of its first two literals
        and the watches can be removed eagerly — the propagation hot path
        never has to skip tombstones.  Reason clauses of trail literals
        are locked; binaries were never tracked.
        """
        locked = {self.reason[ilit >> 1] for ilit in self.trail}
        by_activity = sorted(self._learned.items(), key=lambda kv: kv[1])
        target = len(by_activity) // 2
        removed = 0
        for idx, _act in by_activity:
            if removed >= target:
                break
            if idx in locked:
                continue
            clause = self.clauses[idx]
            self.watches[clause[0] ^ 1].remove(idx)
            self.watches[clause[1] ^ 1].remove(idx)
            self.clauses[idx] = None
            del self._learned[idx]
            removed += 1

    # -- decisions ---------------------------------------------------------------

    def _decide(self) -> int:
        polarity = self._polarity
        while self.heap.heap:
            var = self.heap.pop(self.activity)
            if self.assign[var] == _UNDEF:
                if polarity == "saved":
                    neg = self.phase[var] == 0
                elif polarity == "false":
                    neg = True
                elif polarity == "true":
                    neg = False
                else:  # random
                    neg = self._rng.random() < 0.5
                return var * 2 + (1 if neg else 0)
        return _UNDEF

    # -- main solve loop -----------------------------------------------------------

    def _restart_limit(self, restart_num: int) -> int:
        cfg = self.config
        if cfg.restart == "luby":
            return cfg.restart_base * luby(restart_num)
        return int(cfg.restart_base * cfg.restart_growth ** restart_num)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        max_propagations: Optional[int] = None,
        keep_prefix: int = 0,
    ) -> Optional[bool]:
        """Solve under assumptions; True = SAT (model available).

        With ``max_conflicts`` or ``max_propagations`` set, returns None
        (unknown) once either budget is exhausted — callers treat unknown
        conservatively.  Budgets are per-call: a repeated call continues
        the search incrementally (learned clauses persist).

        ``keep_prefix`` opts into assumption-trail reuse: up to that many
        leading assumptions shared with the previous call keep their
        decision levels (and propagations) instead of being backtracked
        and replayed.  After a prefix-retaining call the solver may sit at
        a non-zero decision level, so interleaving ``add_clause`` requires
        an explicit :meth:`reset`.  With ``keep_prefix=0`` (the default)
        the behavior is identical to the historical solver.
        """
        if not self.ok:
            return False
        keep = 0
        if keep_prefix:
            limit = min(
                keep_prefix, len(assumptions), len(self._assumption_levels)
            )
            while keep < limit and self._assumption_levels[keep] == assumptions[keep]:
                keep += 1
        self._backtrack(keep)
        if self._propagate() != _UNDEF:
            if self._decision_level() == 0:
                self.ok = False
                return False
            # A retained assumption prefix (a subset of the current
            # assumptions) already contradicts the formula.
            self._backtrack(self._decision_level() - 1)
            return False
        for ext in assumptions:
            self._ensure_var(ext)
        restart_num = 0
        conflict_budget = self._restart_limit(restart_num)
        conflicts_here = 0
        total_conflicts = 0
        prop_limit = (
            None
            if max_propagations is None
            else self.num_propagations + max_propagations
        )
        learned_limit = self.config.learned_limit
        while True:
            if (max_conflicts is not None and total_conflicts > max_conflicts) or (
                prop_limit is not None and self.num_propagations >= prop_limit
            ):
                self._backtrack(
                    min(keep_prefix, len(self._assumption_levels))
                    if keep_prefix
                    else 0
                )
                return None
            conflict = self._propagate()
            if conflict != _UNDEF:
                self.num_conflicts += 1
                conflicts_here += 1
                total_conflicts += 1
                if self._decision_level() == 0:
                    self.ok = False
                    return False
                if self._decision_level() <= len(assumptions):
                    # Conflict forced by assumptions alone.
                    self._backtrack(
                        min(keep_prefix, self._decision_level() - 1)
                        if keep_prefix
                        else 0
                    )
                    return False
                learned, bt_level = self._analyze(conflict)
                self._backtrack(max(bt_level, 0))
                if self._decision_level() < len(assumptions):
                    # Learned unit (or backjump) jumped into the assumption
                    # prefix; replay assumptions from scratch.
                    self._learn(learned)
                    self._backtrack(0)
                    continue
                self._learn(learned)
                self.var_inc /= self.config.var_decay
                if learned_limit is not None:
                    self.cla_inc /= 0.999
                    if self.cla_inc > 1e20:
                        for idx in self._learned:
                            self._learned[idx] *= 1e-20
                        self.cla_inc *= 1e-20
                continue
            if conflicts_here >= conflict_budget:
                restart_num += 1
                conflict_budget = self._restart_limit(restart_num)
                conflicts_here = 0
                self._backtrack(
                    len(self._assumption_levels) if keep_prefix else 0
                )
                if (
                    learned_limit is not None
                    and len(self._learned) > learned_limit
                ):
                    self._reduce_db()
                continue
            if self._decision_level() < len(assumptions):
                ext = assumptions[self._decision_level()]
                ilit = _ilit(ext)
                value = self._value(ilit)
                if value == 0:
                    if keep_prefix:
                        self._backtrack(
                            min(keep_prefix, self._decision_level())
                        )
                    return False
                self.trail_lim.append(len(self.trail))
                self._assumption_levels.append(ext)
                if value == _UNDEF:
                    self._enqueue(ilit, _UNDEF)
                continue
            decision = self._decide()
            if decision == _UNDEF:
                return True
            self.num_decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(decision, _UNDEF)

    def reset(self) -> None:
        """Backtrack to the root level (allows adding clauses after solve)."""
        self._backtrack(0)

    # -- model access ------------------------------------------------------------

    def model_value(self, ext: int) -> Optional[bool]:
        """Value of a DIMACS literal in the current model (None if free)."""
        var = abs(ext) - 1
        if var >= self.num_vars or self.assign[var] == _UNDEF:
            return None
        val = bool(self.assign[var])
        return val if ext > 0 else not val

    def model(self) -> List[bool]:
        """Full model as a list indexed by variable-1 (free vars -> False)."""
        return [self.assign[v] == 1 for v in range(self.num_vars)]
