"""Delta-debugging (ddmin) shrinker for failing circuits.

Given an AIG on which some predicate fails, produce a (locally) minimal
AIG that still fails it.  Reduction happens along two axes:

* **outputs** — keep only a subset of the POs (most failures are
  single-output);
* **AND nodes** — rebuild the circuit with a subset of its AND nodes,
  substituting each removed node by one of its fan-ins or a constant.
  Substitution (rather than deletion) keeps every remaining reference
  well-defined, so any subset yields a valid circuit, which is what lets
  classic ddmin drive the search.

The predicate must be self-contained — a property of the circuit itself
(e.g. "optimize() on this circuit breaks equivalence *with it*"), not a
comparison against the original, because the shrunk circuit computes a
different function than the one we started from.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set

from .. import perf
from ..aig import AIG, CONST0, lit_neg, lit_notif, lit_var

Predicate = Callable[[AIG], bool]
"""Returns True when the bug still reproduces on the given circuit."""


def restrict_pos(aig: AIG, keep: Sequence[int]) -> AIG:
    """A copy of the AIG with only the PO indices in ``keep`` (in order)."""
    dest = AIG()
    mapping: Dict[int, int] = {0: CONST0}
    for var, name in zip(aig.pis, aig.pi_names):
        mapping[var] = dest.add_pi(name)
    lits = aig.copy_cone(dest, mapping, [aig.pos[i] for i in keep])
    for i, lit in zip(keep, lits):
        dest.add_po(lit, aig.po_names[i])
    return dest


def rebuild_without(aig: AIG, drop: Set[int]) -> AIG:
    """Rebuild with every AND var in ``drop`` replaced by its first fan-in.

    The append-only AIG is already topologically ordered, so one forward
    sweep suffices; structural hashing re-canonicalizes the survivors.
    """
    dest = AIG()
    mapping: Dict[int, int] = {0: CONST0}
    for var, name in zip(aig.pis, aig.pi_names):
        mapping[var] = dest.add_pi(name)
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        a = lit_notif(mapping[lit_var(f0)], lit_neg(f0))
        if var in drop:
            mapping[var] = a
        else:
            b = lit_notif(mapping[lit_var(f1)], lit_neg(f1))
            mapping[var] = dest.and_(a, b)
    for po, name in zip(aig.pos, aig.po_names):
        dest.add_po(lit_notif(mapping[lit_var(po)], lit_neg(po)), name)
    return dest.extract()


def _ddmin(items: List[int], fails: Callable[[List[int]], bool]) -> List[int]:
    """Zeller's ddmin: a minimal sublist of ``items`` on which ``fails``."""
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        subsets = [
            items[i:i + chunk] for i in range(0, len(items), chunk)
        ]
        reduced = False
        for i, subset in enumerate(subsets):
            complement = [
                x for j, s in enumerate(subsets) if j != i for x in s
            ]
            if fails(complement):
                items = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), n * 2)
    if len(items) == 1 and fails([]):
        items = []
    return items


def shrink_aig(
    aig: AIG,
    failing: Predicate,
    max_passes: int = 4,
) -> AIG:
    """ddmin the circuit while ``failing`` keeps reproducing.

    Alternates PO restriction, AND-node ddmin, and a greedy final polish
    (per-node substitution by either fan-in or constant 0) until a pass
    makes no progress.  Every candidate evaluation bumps
    ``verify.shrink.probes`` in :mod:`repro.perf`.
    """

    def probe(candidate: AIG) -> bool:
        perf.incr("verify.shrink.probes")
        try:
            return failing(candidate)
        except Exception:
            # The predicate wraps invariant checks that may themselves
            # crash on degenerate circuits; a crash still reproduces.
            return True

    if not probe(aig):
        raise ValueError("shrink_aig called with a non-failing circuit")

    current = aig.extract()
    for _ in range(max_passes):
        before = (current.num_ands(), current.num_pos)

        # Pass 1: outputs.
        if current.num_pos > 1:
            keep = _ddmin(
                list(range(current.num_pos)),
                lambda ks: bool(ks) and probe(restrict_pos(current, ks)),
            )
            if keep and len(keep) < current.num_pos:
                current = restrict_pos(current, keep)

        # Pass 2: ddmin over the AND nodes (drop = all minus kept).
        ands = list(current.and_vars())
        all_ands = set(ands)
        kept = _ddmin(
            ands,
            lambda ks: probe(rebuild_without(current, all_ands - set(ks))),
        )
        if len(kept) < len(ands):
            current = rebuild_without(current, all_ands - set(kept))

        # Pass 3: greedy per-node substitutions ddmin cannot express.
        # Restart the scan after every success — variable ids are only
        # meaningful within the circuit they came from.
        shrunk_one = True
        while shrunk_one:
            shrunk_one = False
            for var in list(current.and_vars()):
                for candidate in (
                    rebuild_without(current, {var}),
                    _substitute(current, var, use_fanin1=True),
                    _substitute(current, var, constant=True),
                ):
                    if candidate.num_ands() < current.num_ands() and probe(
                        candidate
                    ):
                        current = candidate
                        shrunk_one = True
                        break
                if shrunk_one:
                    break

        if (current.num_ands(), current.num_pos) == before:
            break
    perf.incr("verify.shrink.completed")
    return current


def _substitute(
    aig: AIG, target: int, use_fanin1: bool = False, constant: bool = False
) -> AIG:
    """Copy with ``target`` replaced by its second fan-in or constant 0."""
    dest = AIG()
    mapping: Dict[int, int] = {0: CONST0}
    for var, name in zip(aig.pis, aig.pi_names):
        mapping[var] = dest.add_pi(name)
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        if var == target:
            if constant:
                mapping[var] = CONST0
            else:
                src = f1 if use_fanin1 else f0
                mapping[var] = lit_notif(
                    mapping[lit_var(src)], lit_neg(src)
                )
        else:
            a = lit_notif(mapping[lit_var(f0)], lit_neg(f0))
            b = lit_notif(mapping[lit_var(f1)], lit_neg(f1))
            mapping[var] = dest.and_(a, b)
    for po, name in zip(aig.pos, aig.po_names):
        dest.add_po(lit_notif(mapping[lit_var(po)], lit_neg(po)), name)
    return dest.extract()
