"""Tests for BDD reordering."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD, aig_to_bdd
from repro.bdd.reorder import order_cost, rebuild_with_order, sift
from repro.aig import AIG
from repro.tt import TruthTable

from .test_bdd import bdd_to_tt, tt_to_bdd


def tt_strategy(max_vars=5):
    return st.integers(2, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable, st.integers(0, (1 << (1 << n)) - 1), st.just(n)
        )
    )


@given(tt_strategy(), st.integers(0, 1000))
@settings(deadline=None, max_examples=25)
def test_rebuild_is_renaming(t, seed):
    rng = random.Random(seed)
    order = list(range(t.nvars))
    rng.shuffle(order)
    bdd = BDD()
    ref = tt_to_bdd(bdd, t)
    dest, new_ref = rebuild_with_order(bdd, ref, order)
    got = bdd_to_tt(dest, new_ref, t.nvars)
    assert got == t.permute(order)


@given(tt_strategy())
@settings(deadline=None, max_examples=20)
def test_sift_preserves_function_up_to_order(t):
    small, support = t.shrink()
    if small.nvars < 2:
        return
    bdd = BDD()
    ref = tt_to_bdd(bdd, small)
    dest, new_ref, order = sift(bdd, ref)
    got = bdd_to_tt(dest, new_ref, small.nvars)
    assert got == small.permute(list(order))


@given(tt_strategy())
@settings(deadline=None, max_examples=20)
def test_sift_never_worse(t):
    bdd = BDD()
    ref = tt_to_bdd(bdd, t)
    identity = list(range(t.nvars))
    before = order_cost(bdd, ref, identity)
    dest, new_ref, _ = sift(bdd, ref)
    assert dest.node_count(new_ref) <= before


def test_sift_fixes_pathological_order():
    # f = x0&x3 | x1&x4 | x2&x5 is exponential in the interleaved-bad
    # order and linear when pairs are adjacent.
    aig = AIG()
    xs = [aig.add_pi() for _ in range(6)]
    f = aig.or_many(
        [aig.and_(xs[0], xs[3]), aig.and_(xs[1], xs[4]), aig.and_(xs[2], xs[5])]
    )
    bdd = BDD()
    ref = aig_to_bdd(bdd, aig, [f])[0]
    before = bdd.node_count(ref)
    dest, new_ref, _order = sift(bdd, ref)
    after = dest.node_count(new_ref)
    assert after < before
    assert after <= 10  # near-linear form (greedy sifting)
