"""Ablation C: number of decomposition rounds (depth of the Eqn. 2 window
sequence Σ1..Σl).

Each optimizer round applies one more level of the timing-driven
decomposition; this bench shows depth converging over rounds, the
multi-level lookahead structure the carry-lookahead analogy predicts.

Run:  pytest benchmarks/bench_ablation_rounds.py --benchmark-only -s
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.adders import ripple_carry_adder
from repro.aig import depth
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer

ROUNDS = [1, 2, 4, 8, 16]

_results: Dict[int, int] = {}


@pytest.mark.parametrize("rounds", ROUNDS)
def test_rounds(benchmark, rounds):
    aig = ripple_carry_adder(16)

    def run():
        return LookaheadOptimizer(max_rounds=rounds).optimize(aig)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert check_equivalence(aig, out)
    _results[rounds] = depth(out)


def test_print_rounds_ablation(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n\nAblation C: 16-bit adder depth vs decomposition rounds")
    print(f"{'rounds':>8}{'depth':>8}")
    for rounds in ROUNDS:
        print(f"{rounds:>8}{_results.get(rounds, '-'):>8}")
    # Monotone non-increasing in allowed rounds.
    values = [_results[r] for r in ROUNDS if r in _results]
    assert values == sorted(values, reverse=True) or all(
        values[i] >= values[i + 1] for i in range(len(values) - 1)
    )
