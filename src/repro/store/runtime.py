"""Process-wide store runtime: one store per process, fork-aware.

The memo layers (cone cache, worker pools, UNSAT verdicts, witnesses,
redundancy proofs) are reached from deep inside the optimizer and from
pool workers; threading a store handle through every call chain would
contaminate a dozen signatures.  Instead the process owns at most one
*runtime store*, configured at the flow/CLI boundary and consulted
lazily by the layers.

Fork-awareness mirrors :class:`~repro.store.sqlite.SqliteStore`: a
worker spawned by ``fork()`` inherits this module's state but must not
reuse the parent's backend objects blindly, so the active *spec* (not
the store) is what travels in worker task tuples and :func:`adopt`
rebuilds from it in the child on first use.

With no store configured (the default), :func:`get_store` hands out a
process-local :class:`MemoryStore` whose namespace bounds replicate the
pre-store cache limits exactly — behaviour, eviction order, and QoR are
bit-identical to the historical hand-rolled dicts.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from .base import ResultStore, StoreConfig, StoreSpec, resolve_store
from .memory import MemoryStore

#: Per-namespace bounds for in-memory tiers, replicating the historical
#: hand-rolled limits (see the pre-store ConeCache / UnsatCache / witness
#: pool constants).  Namespaces not listed use the default bound.
MEMORY_LIMITS: Dict[str, int] = {
    "spcf": 4096,
    "tts": 4096,
    "rejected": 8192,
    "worker_tts": 256,
    "dp": 64,
    "unsat": 1 << 16,
    "witness": 1024,
    "redundant": 1 << 14,
    # Whole cone-task results (encoded networks — large entries, so a
    # modest in-memory bound; the disk tier holds the full history).
    "cone": 256,
    # Fitted rank-model artifacts, keyed by fingerprint (DESIGN 3.23).
    "rank_model": 16,
}

DEFAULT_MEMORY_ENTRIES = 4096

_state: Dict[str, Any] = {"store": None, "spec": None, "pid": None}


def default_store_path() -> str:
    """Where ``--store`` (no argument) and ``repro cache`` point.

    ``REPRO_STORE`` overrides; otherwise the conventional user cache dir.
    """
    env = os.environ.get("REPRO_STORE")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "results.db")


def make_config(path: Optional[str]) -> StoreConfig:
    """A :class:`StoreConfig` with the standard namespace bounds."""
    return StoreConfig(
        path=path,
        memory_entries=DEFAULT_MEMORY_ENTRIES,
        limits=MEMORY_LIMITS,
    )


def _fresh_default() -> ResultStore:
    return MemoryStore(
        default_limit=DEFAULT_MEMORY_ENTRIES, limits=MEMORY_LIMITS
    )


def get_store() -> ResultStore:
    """The process's runtime store, built lazily and rebuilt after fork."""
    pid = os.getpid()
    if _state["pid"] != pid:
        # First use in this process (or first use after a fork): build
        # from the inherited spec.  The parent's backend objects are
        # dropped unclosed — closing them here would act on the parent's
        # file descriptors.
        _state["store"] = None
        _state["pid"] = pid
    if _state["store"] is None:
        spec = _state["spec"]
        _state["store"] = (
            resolve_store(spec) if spec is not None else _fresh_default()
        )
    return _state["store"]


def configure(spec: StoreSpec) -> ResultStore:
    """Install the process's runtime store from a spec and return it.

    ``None`` reverts to the default in-memory store.  A previous store
    built by this process is closed once the new one is in place.

    The new spec is resolved *before* anything is torn down: if
    ``resolve_store`` raises (e.g. an unwritable database path), the
    exception propagates with the previous store still installed and
    fully functional — configuring a bad store must never leave the
    runtime half-updated (new spec recorded, no store behind it).
    """
    if isinstance(spec, str):
        # A bare path gets the standard namespace bounds.
        spec = make_config(spec)
    new_store = resolve_store(spec) if spec is not None else None
    pid = os.getpid()
    old_store = _state["store"] if _state["pid"] == pid else None
    _state["spec"] = spec if not isinstance(spec, ResultStore) else None
    _state["store"] = new_store
    _state["pid"] = pid
    if old_store is not None and old_store is not new_store:
        old_store.close()
    return get_store()


def adopt(spec: StoreSpec) -> None:
    """Adopt a spec shipped in a worker task tuple (idempotent).

    Unlike :func:`configure` this is a no-op when the spec is already
    active, so per-task calls in a long-lived pool worker reuse one
    backend connection instead of reopening SQLite per cone.
    """
    current = _state["spec"]
    same = False
    if spec is None and current is None:
        same = True
    elif isinstance(spec, str) and isinstance(current, str):
        same = spec == current
    elif isinstance(spec, StoreConfig) and isinstance(current, StoreConfig):
        same = (
            spec.path == current.path
            and spec.memory_entries == current.memory_entries
            and spec.limits == current.limits
        )
    if same and _state["pid"] == os.getpid():
        return
    configure(spec)


def current_spec() -> StoreSpec:
    """The spec to ship to workers (always picklable: never a store)."""
    return _state["spec"]


def is_persistent() -> bool:
    """Whether the runtime store has a disk tier.

    Layers whose persistence changes solver-visible behaviour only in
    benign ways (witness pools, redundancy verdicts) gate their store
    reads on this, so the default no-store configuration is bit-for-bit
    the historical behaviour.
    """
    return bool(get_store().persistent)


def reset() -> None:
    """Tear down runtime state (test isolation helper)."""
    if _state["store"] is not None and _state["pid"] == os.getpid():
        _state["store"].close()
    _state["store"] = None
    _state["spec"] = None
    _state["pid"] = None
