"""Sharded Table 2 benchmark orchestrator.

The full 15-circuit table is about an hour of CPU; running it as one
serial pytest session means any interruption loses everything and no
second machine can help.  This module splits the table into independent
per-circuit × per-flow *jobs* behind a four-step lifecycle, surfaced by
the ``repro bench`` CLI:

``plan``
    Expand the job list into a *manifest*: every circuit's structural
    stats, the Lookahead column's recorded effort options, the flow
    list, and a fingerprint over all of it.  The manifest is the
    contract every later step validates against.
``run --shard K/N``
    Execute shard K of N (jobs ``K-1::N`` of the manifest order) and
    write one atomic result JSON per job.  Jobs whose artifact already
    exists *with the manifest's fingerprint* are skipped — kill a shard
    at any point and rerunning the same command resumes exactly where
    it died; artifacts stamped by a different manifest are stale and
    are recomputed.  Lookahead jobs can be dispatched round-robin to
    one or more running ``repro serve`` daemons (baselines always run
    locally — the daemon refuses flows that never touch the store).
``merge``
    Fold the per-job artifacts into one canonical ``BENCH_table2.json``
    — rows per circuit plus the paper's headline-averages block —
    written deterministically, so a sharded run merges byte-for-byte
    identical to an unsharded one.
``report``
    Render the merged JSON as the Table 2 section of EXPERIMENTS.md
    (markdown table + averages), either to stdout or spliced between
    the ``TABLE2`` markers in the file itself.

Every job artifact and the merged output carry the manifest
fingerprint; nothing from an older plan can leak into a newer table.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..aig import AIG, depth
from .circuits import BENCHMARKS
from .table2 import BASELINES, FLOW_ORDER, effort_options, run_flow_row

MANIFEST_VERSION = 1

Registry = Dict[str, Callable[[], AIG]]


class OrchestratorError(RuntimeError):
    """A manifest/artifact inconsistency the caller must resolve."""


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _fingerprint(body: Dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(body).encode()).hexdigest()


def _circuit_stats(aig: AIG) -> Dict[str, int]:
    return {
        "pis": aig.num_pis,
        "pos": aig.num_pos,
        "ands": aig.num_ands(),
        "depth": depth(aig),
    }


def plan_manifest(
    circuits: Optional[Sequence[str]] = None,
    flows: Optional[Sequence[str]] = None,
    registry: Optional[Registry] = None,
) -> Dict[str, Any]:
    """Expand the job list and fingerprint it.

    ``circuits``/``flows`` default to the full Table 2 set;
    ``registry`` (name -> generator) defaults to
    :data:`repro.bench.BENCHMARKS` and exists so tests can plan over
    tiny synthetic sets.
    """
    registry = registry if registry is not None else BENCHMARKS
    names = list(circuits) if circuits else list(registry)
    unknown = sorted(set(names) - set(registry))
    if unknown:
        raise OrchestratorError(
            f"unknown circuits: {', '.join(unknown)}; "
            f"available: {', '.join(registry)}"
        )
    flow_names = list(flows) if flows else list(FLOW_ORDER)
    bad_flows = sorted(set(flow_names) - set(FLOW_ORDER))
    if bad_flows:
        raise OrchestratorError(
            f"unknown flows: {', '.join(bad_flows)}; "
            f"available: {', '.join(FLOW_ORDER)}"
        )
    circuit_block: Dict[str, Any] = {}
    for name in names:
        stats = _circuit_stats(registry[name]())
        circuit_block[name] = {
            **stats,
            "lookahead_options": effort_options(stats["ands"]),
        }
    jobs = [
        {"id": f"{name}--{flow}", "circuit": name, "flow": flow}
        for name in names
        for flow in flow_names
    ]
    body = {
        "version": MANIFEST_VERSION,
        "flows": flow_names,
        "circuits": circuit_block,
        "jobs": jobs,
    }
    return {**body, "fingerprint": _fingerprint(body)}


def write_manifest(manifest: Dict[str, Any], path: str) -> None:
    _atomic_write_json(manifest, path)


def load_manifest(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        manifest = json.load(fh)
    body = {k: v for k, v in manifest.items() if k != "fingerprint"}
    if manifest.get("version") != MANIFEST_VERSION:
        raise OrchestratorError(
            f"manifest {path} has version {manifest.get('version')!r}; "
            f"this build reads version {MANIFEST_VERSION}"
        )
    if manifest.get("fingerprint") != _fingerprint(body):
        raise OrchestratorError(
            f"manifest {path} fingerprint does not match its contents "
            "(file edited or truncated?); re-run `repro bench plan`"
        )
    return manifest


def parse_shard(spec: str) -> Tuple[int, int]:
    """``"K/N"`` -> (K, N), 1-based, validated."""
    try:
        k_text, n_text = spec.split("/", 1)
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise OrchestratorError(
            f"shard spec {spec!r} is not of the form K/N"
        ) from None
    if n < 1 or not 1 <= k <= n:
        raise OrchestratorError(
            f"shard {spec!r} out of range (need 1 <= K <= N)"
        )
    return k, n


def shard_jobs(
    jobs: Sequence[Dict[str, Any]], index: int, count: int
) -> List[Dict[str, Any]]:
    """Shard ``index`` of ``count`` (1-based), round-robin by position.

    Round-robin (rather than contiguous blocks) spreads each circuit's
    four flows — whose costs differ wildly — across shards, so shard
    wall-clocks stay balanced.
    """
    return list(jobs[index - 1 :: count])


def job_artifact_path(jobs_dir: str, job_id: str) -> str:
    return os.path.join(jobs_dir, f"{job_id}.json")


def _atomic_write_json(payload: Dict[str, Any], path: str) -> None:
    """Write-then-rename so a killed shard never leaves a torn artifact."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def load_artifact(path: str) -> Optional[Dict[str, Any]]:
    """The artifact at ``path``, or None if absent/unreadable.

    An unreadable file is indistinguishable from a shard killed before
    the atomic rename — treating it as missing makes resume redo it.
    """
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, ValueError):
        return None


def validate_registry(
    manifest: Dict[str, Any], registry: Optional[Registry] = None
) -> None:
    """Fail fast when the circuits on disk drifted from the manifest.

    A manifest records each circuit's structural stats at plan time; if
    a generator changed since, running would silently mix results from
    two different circuits into one table.
    """
    registry = registry if registry is not None else BENCHMARKS
    for name, recorded in manifest["circuits"].items():
        if name not in registry:
            raise OrchestratorError(
                f"manifest circuit {name!r} is not in the registry"
            )
        stats = _circuit_stats(registry[name]())
        want = {k: recorded[k] for k in stats}
        if stats != want:
            raise OrchestratorError(
                f"circuit {name!r} drifted since plan: manifest {want}, "
                f"generator now {stats}; re-run `repro bench plan`"
            )


def run_shard(
    manifest: Dict[str, Any],
    jobs_dir: str,
    shard: Tuple[int, int] = (1, 1),
    registry: Optional[Registry] = None,
    clients: Optional[Sequence[Any]] = None,
    max_jobs: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, int]:
    """Execute one shard of the manifest, artifact-per-job, resumable.

    ``clients`` are :class:`repro.serve.ServeClient` instances; when
    given, Lookahead jobs are spread over them round-robin (by job
    position, so the assignment is deterministic) and baselines run
    locally.  ``max_jobs`` bounds the number of jobs *executed* (not
    skipped) — the fault-injection handle resume tests are built on.

    Returns ``{"run": .., "skipped": .., "stale": ..}``.
    """
    registry = registry if registry is not None else BENCHMARKS
    validate_registry(manifest, registry)
    os.makedirs(jobs_dir, exist_ok=True)
    fingerprint = manifest["fingerprint"]
    jobs = shard_jobs(manifest["jobs"], *shard)
    say = log or (lambda message: None)
    summary = {"run": 0, "skipped": 0, "stale": 0}
    for position, job in enumerate(jobs):
        path = job_artifact_path(jobs_dir, job["id"])
        existing = load_artifact(path)
        if existing is not None:
            if existing.get("fingerprint") == fingerprint:
                summary["skipped"] += 1
                say(f"skip {job['id']} (done)")
                continue
            summary["stale"] += 1
            say(f"redo {job['id']} (stale fingerprint)")
        circuit = manifest["circuits"][job["circuit"]]
        client = None
        if clients and job["flow"] == "Lookahead":
            client = clients[position % len(clients)]
        say(f"run  {job['id']}" + (" (serve)" if client else ""))
        started = time.time()
        row = run_flow_row(
            job["circuit"],
            job["flow"],
            aig=registry[job["circuit"]](),
            client=client,
            lookahead_options=circuit["lookahead_options"],
        )
        artifact = {
            "fingerprint": fingerprint,
            "job": job,
            "row": row,
            "elapsed_s": round(time.time() - started, 3),
            "executor": "serve" if client else "local",
        }
        _atomic_write_json(artifact, path)
        summary["run"] += 1
        if max_jobs is not None and summary["run"] >= max_jobs:
            break
    return summary


def compute_averages(
    rows: Dict[str, Dict[str, Dict[str, Any]]],
    circuit_order: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """The paper's headline block: mean reduction of Lookahead vs each
    baseline (levels, mapped delay) and the mean power ratio.

    Iterates in manifest circuit order so float accumulation is
    deterministic across merges.
    """
    averages: Dict[str, Dict[str, float]] = {}
    for baseline in BASELINES:
        level_red: List[float] = []
        delay_red: List[float] = []
        power_ratio: List[float] = []
        for name in circuit_order:
            flows = rows.get(name, {})
            base, look = flows.get(baseline), flows.get("Lookahead")
            if not base or not look:
                continue
            if base["levels"]:
                level_red.append(1 - look["levels"] / base["levels"])
            if base["delay_ps"]:
                delay_red.append(1 - look["delay_ps"] / base["delay_ps"])
            if base["power_uw"]:
                power_ratio.append(look["power_uw"] / base["power_uw"])
        if not level_red:
            continue
        averages[baseline] = {
            "levels_reduction": sum(level_red) / len(level_red),
            "delay_reduction": sum(delay_red) / len(delay_red),
            "power_ratio": sum(power_ratio) / len(power_ratio),
            "circuits": len(level_red),
        }
    return averages


def merge_results(
    manifest: Dict[str, Any],
    jobs_dir: str,
    allow_partial: bool = False,
) -> Dict[str, Any]:
    """Fold per-job artifacts into the canonical merged table.

    Missing or stale (wrong-fingerprint) artifacts abort the merge with
    the offending job ids unless ``allow_partial`` — a partial table is
    only ever an explicit choice.
    """
    fingerprint = manifest["fingerprint"]
    rows: Dict[str, Dict[str, Dict[str, Any]]] = {}
    missing: List[str] = []
    stale: List[str] = []
    for job in manifest["jobs"]:
        artifact = load_artifact(job_artifact_path(jobs_dir, job["id"]))
        if artifact is None:
            missing.append(job["id"])
            continue
        if artifact.get("fingerprint") != fingerprint:
            stale.append(job["id"])
            continue
        rows.setdefault(job["circuit"], {})[job["flow"]] = artifact["row"]
    if (missing or stale) and not allow_partial:
        problems = []
        if missing:
            problems.append(f"missing: {', '.join(missing)}")
        if stale:
            problems.append(f"stale fingerprint: {', '.join(stale)}")
        raise OrchestratorError(
            "cannot merge an incomplete run (" + "; ".join(problems) + "); "
            "finish the shards or pass --allow-partial"
        )
    circuit_order = list(manifest["circuits"])
    return {
        "version": MANIFEST_VERSION,
        "fingerprint": fingerprint,
        "flows": manifest["flows"],
        "circuit_order": circuit_order,
        "rows": rows,
        "averages": compute_averages(rows, circuit_order),
    }


def write_merged(merged: Dict[str, Any], path: str) -> None:
    """Deterministic serialization: a sharded run's merge is
    byte-for-byte the unsharded run's."""
    _atomic_write_json(merged, path)


def load_merged(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


# -- report -------------------------------------------------------------------

TABLE2_BEGIN = "<!-- TABLE2:BEGIN (generated by `repro bench report`) -->"
TABLE2_END = "<!-- TABLE2:END -->"


def _fmt_cell(row: Optional[Dict[str, Any]]) -> str:
    if row is None:
        return "—"
    return (
        f"{row['gates']}/{row['levels']}/"
        f"{row['delay_ps']:.0f}/{row['power_uw']:.0f}"
    )


def render_report(merged: Dict[str, Any]) -> str:
    """The merged table as the Table 2 markdown section."""
    flows = merged["flows"]
    lines = [
        "Per flow: gates / levels / delay (ps) / power (µW @1 GHz).",
        "",
        "| circuit | " + " | ".join(flows) + " |",
        "|---" * (len(flows) + 1) + "|",
    ]
    for name in merged["circuit_order"]:
        cells = [
            _fmt_cell(merged["rows"].get(name, {}).get(flow))
            for flow in flows
        ]
        lines.append(f"| {name} | " + " | ".join(cells) + " |")
    averages = merged["averages"]
    if averages:
        lines += [
            "",
            "Average reduction of Lookahead vs baselines "
            "(paper: levels −40 % / −56 % / −22 %, "
            "delay −21 % / −56 % / −10 %, power vs DC +10 %):",
            "",
        ]
        def pct(reduction: float) -> str:
            sign = "−" if reduction >= 0 else "+"
            return f"{sign}{abs(100 * reduction):.1f} %"

        for baseline in BASELINES:
            avg = averages.get(baseline)
            if avg is None:
                continue
            lines.append(
                f"* vs {baseline}: levels "
                f"{pct(avg['levels_reduction'])}, delay "
                f"{pct(avg['delay_reduction'])}, power "
                f"×{avg['power_ratio']:.2f} "
                f"({avg['circuits']} circuits)"
            )
    return "\n".join(lines) + "\n"


def update_experiments(path: str, merged: Dict[str, Any]) -> None:
    """Splice the rendered table between the TABLE2 markers in
    EXPERIMENTS.md (which must already contain them)."""
    with open(path) as fh:
        text = fh.read()
    begin = text.find(TABLE2_BEGIN)
    end = text.find(TABLE2_END)
    if begin < 0 or end < 0 or end < begin:
        raise OrchestratorError(
            f"{path} is missing the {TABLE2_BEGIN!r}/{TABLE2_END!r} markers"
        )
    head = text[: begin + len(TABLE2_BEGIN)]
    tail = text[end:]
    with open(path, "w") as fh:
        fh.write(head + "\n" + render_report(merged) + tail)
