"""The paper's contribution: lookahead logic circuit synthesis."""

from .spcf import (
    Spcf,
    spcf_exact_bdd,
    pack_signature,
    spcf_exact_tt,
    spcf_overapprox_tt,
    spcf_signature,
    timed_simulation,
    unpack_patterns,
)
from .cache import ConeCache, node_tts_cached
from .model import BddBlowup, BddModel, ExactModel, SignatureModel
from .simplify import SimplifyOutcome, simplify_node
from .reduce import PrimaryResult, build_sigma, primary_reduce
from .secondary import ExactCareChecker, SatCareChecker, secondary_simplify
from .reconstruct import TEMPLATES, applicable_rules, build_ite, reconstruct
from .area_recovery import (
    AREA_EFFORTS,
    RedundancyEngine,
    recover_area,
    remove_redundant_edges,
    sat_sweep,
)
from .sdc import sdc_minimize
from .analysis import OutputReport, RoundReport, analyze_round, print_round_report
from .flow import (
    JOB_FLOWS,
    execute_optimize_job,
    job_config_key,
    lookahead_flow,
    make_job_optimizer,
    normalize_job_config,
)
from .lookahead import (
    RANK_MODES,
    TT_MODE_PI_LIMIT,
    WALK_MODES,
    LookaheadOptimizer,
    make_runtime_optimizer,
    optimize_lookahead,
    validate_walk_modes,
)

__all__ = [
    "Spcf",
    "spcf_exact_bdd",
    "pack_signature",
    "spcf_exact_tt",
    "spcf_overapprox_tt",
    "spcf_signature",
    "timed_simulation",
    "unpack_patterns",
    "ConeCache",
    "node_tts_cached",
    "BddBlowup",
    "BddModel",
    "ExactModel",
    "SignatureModel",
    "SimplifyOutcome",
    "simplify_node",
    "PrimaryResult",
    "build_sigma",
    "primary_reduce",
    "ExactCareChecker",
    "SatCareChecker",
    "secondary_simplify",
    "TEMPLATES",
    "applicable_rules",
    "build_ite",
    "reconstruct",
    "AREA_EFFORTS",
    "RedundancyEngine",
    "recover_area",
    "remove_redundant_edges",
    "sat_sweep",
    "RANK_MODES",
    "TT_MODE_PI_LIMIT",
    "WALK_MODES",
    "JOB_FLOWS",
    "LookaheadOptimizer",
    "validate_walk_modes",
    "execute_optimize_job",
    "job_config_key",
    "lookahead_flow",
    "make_job_optimizer",
    "make_runtime_optimizer",
    "normalize_job_config",
    "sdc_minimize",
    "OutputReport",
    "RoundReport",
    "analyze_round",
    "print_round_report",
    "optimize_lookahead",
]
