"""Tests for solver configurations and the SAT portfolio layer."""

import random

import pytest

from repro.sat import (
    PortfolioConfig,
    PortfolioRunner,
    Solver,
    SolverConfig,
    UnsatCache,
    resolve_portfolio,
)
from repro.sat.portfolio import DEFAULT_CONFIGS


def _random_cnf(rng, n_vars, n_clauses, width=3):
    return [
        [
            rng.choice([1, -1]) * rng.randint(1, n_vars)
            for _ in range(width)
        ]
        for _ in range(n_clauses)
    ]


def _brute_force_sat(clauses, n_vars):
    for bits in range(1 << n_vars):
        assignment = [(bits >> i) & 1 for i in range(n_vars)]
        if all(
            any(
                assignment[abs(l) - 1] == (l > 0)
                for l in clause
            )
            for clause in clauses
        ):
            return True
    return False


def _pigeonhole(solver, holes=5, pigeons=6):
    def var(p, h):
        return p * holes + h + 1

    for p in range(pigeons):
        solver.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause([-var(p1, h), -var(p2, h)])


class TestSolverConfig:
    def test_defaults_compare_equal(self):
        assert SolverConfig() == SolverConfig(name="renamed")
        assert hash(SolverConfig()) == hash(SolverConfig(name="renamed"))

    def test_key_excludes_name_only(self):
        assert SolverConfig(seed=1) != SolverConfig(seed=2)
        assert SolverConfig(restart="geometric") != SolverConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            SolverConfig(polarity="sideways")
        with pytest.raises(ValueError):
            SolverConfig(polarity="random")  # requires a seed
        with pytest.raises(ValueError):
            SolverConfig(restart="fixed")
        with pytest.raises(ValueError):
            SolverConfig(restart_base=0)
        with pytest.raises(ValueError):
            SolverConfig(restart_growth=1.0)
        with pytest.raises(ValueError):
            SolverConfig(learned_limit=4)
        with pytest.raises(ValueError):
            SolverConfig(var_decay=0.0)

    def test_all_configs_agree_on_random_cnfs(self):
        """Every stock configuration is a complete, correct solver."""
        rng = random.Random(7)
        for trial in range(60):
            n = rng.randint(3, 8)
            clauses = _random_cnf(rng, n, rng.randint(4, 24))
            expected = _brute_force_sat(clauses, n)
            for config in DEFAULT_CONFIGS:
                s = Solver(config)
                live = True
                for clause in clauses:
                    live = s.add_clause(clause) and live
                got = s.solve() if live else False
                assert got is expected, (config.name, trial, clauses)

    def test_clause_db_reduction_preserves_verdicts(self):
        """An aggressive learned-clause limit never changes answers."""
        rng = random.Random(11)
        config = SolverConfig(learned_limit=16)
        for trial in range(20):
            n = rng.randint(6, 10)
            clauses = _random_cnf(rng, n, 4 * n)
            ref, tst = Solver(), Solver(config)
            live = True
            for clause in clauses:
                live = ref.add_clause(list(clause)) and live
                tst.add_clause(list(clause))
            expected = ref.solve() if live else False
            got = tst.solve() if live else False
            assert got is expected, (trial, clauses)


class TestBudgets:
    def test_propagation_budget_returns_unknown(self):
        s = Solver()
        _pigeonhole(s)
        assert s.solve(max_propagations=10) is None
        # The solver stays usable: an unbudgeted call settles the query.
        assert s.solve() is False

    def test_propagation_budget_ignores_easy_instances(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-1])
        assert s.solve(max_propagations=100000) is True

    def test_conflict_budget_interleaves_with_prefix_reuse(self):
        """Budgeted UNKNOWN exits leave the retained prefix consistent."""
        s = Solver()
        _pigeonhole(s, holes=4, pigeons=5)
        assumptions = [1]
        while s.solve(assumptions, max_conflicts=3, keep_prefix=1) is None:
            pass
        fresh = Solver()
        _pigeonhole(fresh, holes=4, pigeons=5)
        assert fresh.solve(assumptions) is False


class TestPrefixReuse:
    def test_keep_prefix_matches_fresh_solves(self):
        """Shared-prefix reuse is invisible in verdicts and models."""
        rng = random.Random(3)
        for trial in range(40):
            n = rng.randint(4, 9)
            clauses = _random_cnf(rng, n, rng.randint(4, 30))
            reuse = Solver()
            live = True
            for clause in clauses:
                live = reuse.add_clause(list(clause)) and live
            if not live:
                continue
            prefix = rng.choice([1, -1])
            for _ in range(6):
                rest = [
                    rng.choice([1, -1]) * rng.randint(2, n)
                    for _ in range(rng.randint(0, 2))
                ]
                assumptions = [prefix] + rest
                fresh = Solver()
                for clause in clauses:
                    fresh.add_clause(list(clause))
                expected = fresh.solve(assumptions)
                got = reuse.solve(assumptions, keep_prefix=1)
                assert got is expected, (trial, assumptions)
                if expected:
                    model = [reuse.model_value(v + 1) for v in range(n)]
                    assert all(
                        any(
                            model[abs(l) - 1] == (l > 0)
                            for l in clause
                        )
                        for clause in clauses
                    )


class TestPortfolioConfig:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            PortfolioConfig(mode="warp")
        with pytest.raises(ValueError):
            PortfolioConfig(configs=())
        with pytest.raises(ValueError):
            PortfolioConfig(configs=(SolverConfig(), SolverConfig()))
        with pytest.raises(ValueError):
            PortfolioConfig(sprint_conflicts=0)
        with pytest.raises(ValueError):
            PortfolioConfig(race_start=100, race_limit=50)

    def test_resolve(self):
        assert resolve_portfolio().mode == "off"
        assert resolve_portfolio("race").mode == "race"
        cfg = PortfolioConfig(mode="sprint")
        assert resolve_portfolio(cfg) is cfg
        with pytest.raises(TypeError):
            resolve_portfolio(42)

    def test_key_distinguishes_schedules(self):
        assert (
            PortfolioConfig(mode="race").key()
            != PortfolioConfig(mode="sprint").key()
        )
        assert (
            PortfolioConfig(sprint_conflicts=8).key()
            != PortfolioConfig(sprint_conflicts=64).key()
        )


class TestUnsatCache:
    def test_hit_after_add(self):
        cache = UnsatCache()
        assert not cache.hit(("a",))
        cache.add(("a",))
        assert cache.hit(("a",))

    def test_fifo_eviction(self):
        cache = UnsatCache(limit=2)
        cache.add((1,))
        cache.add((2,))
        cache.add((3,))  # evicts (1,)
        assert len(cache) == 2
        assert not cache.hit((1,))
        assert cache.hit((2,)) and cache.hit((3,))

    def test_clear(self):
        cache = UnsatCache()
        cache.add((1,))
        cache.clear()
        assert len(cache) == 0


def _runner(mode, clauses, configs=DEFAULT_CONFIGS, **kwargs):
    builds = []

    def build(config):
        solver = Solver(config)
        for clause in clauses:
            solver.add_clause(list(clause))
        builds.append(config.name)
        return solver

    config = PortfolioConfig(mode=mode, configs=configs, **kwargs)
    return PortfolioRunner(config, build), builds


class TestPortfolioRunner:
    def test_off_mode_rejected(self):
        with pytest.raises(ValueError):
            PortfolioRunner(PortfolioConfig(mode="off"), lambda c: Solver())

    def test_sprint_win_builds_only_the_baseline(self):
        runner, builds = _runner("race", [[1, 2], [-1]])
        assert runner.solve([]) is True
        assert builds == ["base"]  # racers are lazy
        assert runner.winner is not None
        assert runner.model_value(2) is True
        assert runner.built() == [(0, runner.solver(0))]

    def test_sprint_mode_escalates_on_same_solver(self):
        holes, pigeons = 4, 5

        def var(p, h):
            return p * holes + h + 1

        clauses = [
            [var(p, h) for h in range(holes)] for p in range(pigeons)
        ]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        runner, builds = _runner("sprint", clauses, sprint_conflicts=1)
        assert runner.solve([], baseline_conflicts=100000) is False
        assert builds == ["base"]  # sprint never builds extra racers

    def test_race_mode_builds_more_racers_on_hard_queries(self):
        holes, pigeons = 5, 6

        def var(p, h):
            return p * holes + h + 1

        clauses = [
            [var(p, h) for h in range(holes)] for p in range(pigeons)
        ]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        runner, builds = _runner(
            "race", clauses, sprint_conflicts=1, race_start=2, race_limit=4096
        )
        assert runner.solve([]) is False
        assert builds[0] == "base"
        assert len(builds) > 1  # escalation touched other configurations

    def test_race_all_capped_returns_unknown(self):
        holes, pigeons = 6, 7

        def var(p, h):
            return p * holes + h + 1

        clauses = [
            [var(p, h) for h in range(holes)] for p in range(pigeons)
        ]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        runner, _ = _runner(
            "race", clauses, sprint_conflicts=1, race_start=1, race_limit=2
        )
        assert runner.solve([]) is None
        assert runner.winner is None

    def test_runner_is_deterministic(self):
        rng = random.Random(5)
        clauses = _random_cnf(rng, 9, 38)
        results = []
        for _ in range(2):
            runner, _ = _runner("race", clauses, sprint_conflicts=2)
            verdict = runner.solve([])
            model = None
            if verdict:
                model = [runner.model_value(v + 1) for v in range(9)]
            results.append((verdict, model))
        assert results[0] == results[1]

    def test_verdicts_match_single_solver(self):
        rng = random.Random(13)
        for trial in range(30):
            n = rng.randint(4, 9)
            clauses = _random_cnf(rng, n, rng.randint(6, 30))
            ref = Solver()
            live = True
            for clause in clauses:
                live = ref.add_clause(list(clause)) and live
            if not live:
                continue
            expected = ref.solve()
            for mode in ("sprint", "race"):
                runner, _ = _runner(mode, clauses, sprint_conflicts=2)
                assert runner.solve([]) is expected, (mode, trial)
