"""Additional properties of secondary simplification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExactCareChecker, ExactModel, secondary_simplify
from repro.netlist import compute_levels, renode
from repro.tt import TruthTable

from ..aig.test_aig import random_aig


def _cone(seed):
    aig = random_aig(seed, n_pis=5, n_nodes=25, n_pos=1)
    return renode(aig, k=4).extract_po_cone(0)


class TestCareSetExtremes:
    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=10)
    def test_full_care_set_changes_nothing_wrong(self, seed):
        # care == const1: only genuinely unreachable vectors (structural
        # SDCs) may be dropped, so the PO function must stay identical.
        net = _cone(seed)
        before = net.po_tts()[0]
        model = ExactModel(net)
        care = TruthTable.const(True, len(net.pis))
        secondary_simplify(net, 0, ExactCareChecker(model, care))
        assert net.po_tts()[0] == before

    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=10)
    def test_empty_care_set_allows_anything(self, seed):
        # care == const0: every vector is a don't care; whatever the result
        # is, the invariant "y_neg == y on the care set" holds vacuously —
        # check it runs and the network stays well-formed.
        net = _cone(seed)
        model = ExactModel(net)
        care = TruthTable.const(False, len(net.pis))
        secondary_simplify(net, 0, ExactCareChecker(model, care))
        net.po_tts()  # evaluable, no dangling references

    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=10)
    def test_partial_care_preserves_on_care(self, seed):
        net = _cone(seed)
        before = net.po_tts()[0]
        model = ExactModel(net)
        care = TruthTable.var(0, len(net.pis))
        secondary_simplify(net, 0, ExactCareChecker(model, care))
        after = net.po_tts()[0]
        assert (care & (after ^ before)).is_const0

    def test_max_nodes_cap(self):
        net = _cone(3)
        model = ExactModel(net)
        care = TruthTable.const(False, len(net.pis))
        changed = secondary_simplify(
            net, 0, ExactCareChecker(model, care), max_nodes=1
        )
        assert changed <= 1
