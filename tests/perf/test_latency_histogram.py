"""Tests for the sat.query.* latency histograms in repro.perf."""

import json

import pytest

from repro.perf import PerfRegistry, delta


class TestObserve:
    def test_count_total_max(self):
        reg = PerfRegistry()
        for s in (0.001, 0.002, 0.004):
            reg.observe("sat.query.secondary", s)
        hist = reg.histogram("sat.query.secondary")
        assert hist["count"] == 3
        assert hist["total"] == pytest.approx(0.007)
        assert hist["max"] == pytest.approx(0.004)

    def test_unobserved_is_none(self):
        assert PerfRegistry().histogram("nope") is None

    def test_log2_microsecond_buckets(self):
        reg = PerfRegistry()
        reg.observe("q", 0.5e-6)   # <1 µs -> bucket 0
        reg.observe("q", 3e-6)     # 3 µs  -> bucket 2 (< 4 µs)
        reg.observe("q", 1000e-6)  # 1 ms  -> bucket 10 (< 1024 µs)
        buckets = reg.histogram("q")["buckets"]
        assert buckets == {0: 1, 2: 1, 10: 1}


class TestPercentile:
    def test_bucket_upper_bounds(self):
        reg = PerfRegistry()
        for _ in range(90):
            reg.observe("q", 3e-6)
        for _ in range(10):
            reg.observe("q", 900e-6)
        # p50 falls in the 3 µs samples' bucket: upper bound 4 µs.
        assert reg.percentile("q", 0.50) == pytest.approx(4e-6)
        # p95 lands in the 900 µs bucket: upper bound 1024 µs.
        assert reg.percentile("q", 0.95) == pytest.approx(1024e-6)

    def test_empty_is_zero(self):
        assert PerfRegistry().percentile("q", 0.5) == 0.0


class TestAggregation:
    def test_snapshot_merge_roundtrips_through_json(self):
        """Worker snapshots survive JSON (bucket keys become strings)."""
        worker = PerfRegistry()
        worker.observe("q", 5e-6)
        worker.observe("q", 7e-6)
        shipped = json.loads(json.dumps(worker.snapshot()))
        parent = PerfRegistry()
        parent.observe("q", 100e-6)
        parent.merge(shipped)
        hist = parent.histogram("q")
        assert hist["count"] == 3
        assert hist["buckets"] == {3: 2, 7: 1}
        assert hist["max"] == pytest.approx(100e-6)

    def test_delta_isolates_one_tasks_contribution(self):
        reg = PerfRegistry()
        reg.observe("q", 2e-6)
        before = reg.snapshot()
        reg.observe("q", 2e-6)
        reg.observe("q", 40e-6)
        d = delta(before, reg.snapshot())
        assert d["histograms"]["q"]["count"] == 2
        assert d["histograms"]["q"]["buckets"] == {2: 1, 6: 1}

    def test_delta_skips_untouched_histograms(self):
        reg = PerfRegistry()
        reg.observe("q", 2e-6)
        snap = reg.snapshot()
        assert "q" not in delta(snap, reg.snapshot())["histograms"]

    def test_reset_clears_histograms(self):
        reg = PerfRegistry()
        reg.observe("q", 1e-6)
        reg.reset()
        assert reg.histogram("q") is None


class TestReport:
    def test_report_includes_percentile_lines(self):
        reg = PerfRegistry()
        for _ in range(20):
            reg.observe("sat.query.secondary", 3e-6)
        text = reg.report()
        assert "perf histograms:" in text
        assert "sat.query.secondary" in text
        assert "p50<=" in text and "p95<=" in text
