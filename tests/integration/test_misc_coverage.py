"""Coverage for remaining corners: custom cells, CNF helpers, rebuild."""

import io

from repro.aig import AIG, depth, po_tts
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer
from repro.mapping import Cell, default_library, map_aig
from repro.mapping.verilog import write_verilog
from repro.sat import AigCnf
from repro.tt import TruthTable


class TestCustomCells:
    def test_mapping_with_extended_library(self):
        # Add an AND3 cell; the mapper should be able to use it and the
        # Verilog writer must fall back to the SOP template for it.
        and3 = Cell(
            "AND3",
            TruthTable.from_function(lambda a, b, c: a and b and c, 3),
            3.2, 24.0, 3.4, 1.1,
        )
        cells = default_library() + [and3]
        aig = AIG()
        xs = [aig.add_pi(f"x{i}") for i in range(3)]
        aig.add_po(aig.and_many(xs), "y")
        net = map_aig(aig, cells=cells)
        names = {g.cell.name for g in net.gates}
        assert "AND3" in names
        buf = io.StringIO()
        write_verilog(net, buf)
        text = buf.getvalue()
        assert "AND3" in text

    def test_sop_fallback_expression_correct(self):
        import re

        weird = Cell(
            "WEIRD",  # a & !b | !a & b & c: no hand template
            TruthTable.from_function(
                lambda a, b, c: (a and not b) or ((not a) and b and c), 3
            ),
            4.0, 25.0, 4.0, 1.2,
        )
        cells = default_library() + [weird]
        aig = AIG()
        a, b, c = (aig.add_pi(n) for n in "abc")
        target = aig.or_(
            aig.and_(a, b ^ 1), aig.and_many([a ^ 1, b, c])
        )
        aig.add_po(target, "y")
        net = map_aig(aig, cells=cells)
        buf = io.StringIO()
        write_verilog(net, buf)
        # Evaluate the Verilog against the AIG.
        from ..mapping.test_verilog_cli import _evaluate_verilog
        from repro.aig import evaluate

        for m in range(8):
            bits = [bool((m >> i) & 1) for i in range(3)]
            env = dict(zip(aig.pi_names, bits))
            values = _evaluate_verilog(buf.getvalue(), env)
            assert values["y"] == evaluate(aig, bits)[0]


class TestCnfHelpers:
    def test_add_or(self):
        enc = AigCnf()
        v1 = enc.solver.new_var()
        v2 = enc.solver.new_var()
        out = enc.add_or([v1, v2])
        # out true forces at least one input under assumption.
        assert enc.solver.solve([out])
        assert enc.solver.model_value(v1) or enc.solver.model_value(v2)
        assert enc.solver.solve([-out, -v1, -v2])
        assert not enc.solver.solve([-out, v1])

    def test_partial_encoding_roots(self):
        aig = AIG()
        a, b, c = (aig.add_pi() for _ in range(3))
        used = aig.and_(a, b)
        unused = aig.and_(b, c)
        enc = AigCnf()
        var_map = enc.encode(aig, roots=[used])
        assert (used >> 1) in var_map
        assert (unused >> 1) not in var_map


class TestRebuildFallback:
    def test_unprocessed_outputs_identical(self):
        # A circuit where only one output is critical: the others must be
        # copied verbatim (structural identity up to strashing).
        aig = AIG()
        xs = [aig.add_pi() for _ in range(6)]
        shallow = aig.and_(xs[0], xs[1])
        chain = xs[0]
        for x in xs[1:]:
            chain = aig.or_(aig.and_(chain, x), aig.and_(xs[2], x))
        aig.add_po(shallow, "shallow")
        aig.add_po(chain, "deep")
        out = LookaheadOptimizer(max_rounds=1).optimize(aig)
        assert check_equivalence(aig, out)
        # The shallow PO keeps its 1-level cone.
        from repro.aig import levels, lit_var

        assert levels(out)[lit_var(out.pos[0])] <= 1
