"""Speed regression bench: wall-clock trajectory of the lookahead optimizer.

Times the per-output lookahead rounds on the Table-1 adders and two
Table-2 circuits, once serial (workers=1), once parallel (workers from
``REPRO_WORKERS`` or 4), once serial with SAT portfolio racing
(``--sat-portfolio race``), once serial against a disk-warm persistent
result store (``--store``; the database is seeded by one cold
store-backed run first), and once serial behind a rank-prune gate
fitted at recall 1.0 on the circuit's own ``--rank log`` trajectory.
The parallel, warm-store, and rank flows must produce the bit-identical
AIG — the store only replays memoized results, and a recall-1.0 model
only skips rounds its training run discarded — while the race flow
needs only identical depth/ANDs (racing may settle budget-limited SAT
queries the single config left UNKNOWN, so bit-identity is deliberately
not required — see DESIGN 3.19).  Writes
schema-stable JSON rows ``{circuit, flow, seconds, depth, ands}`` to
``BENCH_speed.json`` so successive PRs can track the perf trajectory.

Run standalone:  python benchmarks/bench_speed.py [--quick] [-o OUT.json]
Run via pytest:  pytest benchmarks/bench_speed.py -m slow -s
"""

from __future__ import annotations

import argparse
import io
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Callable, Dict, List

# Standalone bootstrap: make `repro` importable from a source checkout.
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import perf
from repro.adders import ripple_carry_adder
from repro.aig import AIG, depth, write_aag
from repro.core import LookaheadOptimizer
from repro.rank import RankLogger, fit_model

DEFAULT_OUTPUT = "BENCH_speed.json"

ADDER_SIZES = (8, 16, 32)
TABLE2_CIRCUITS = ("rot", "C432")
QUICK_CIRCUITS = ("adder8", "C432")


def _circuits() -> Dict[str, Callable[[], AIG]]:
    from repro.bench import BENCHMARKS

    table: Dict[str, Callable[[], AIG]] = {
        f"adder{n}": (lambda n=n: ripple_carry_adder(n)) for n in ADDER_SIZES
    }
    for name in TABLE2_CIRCUITS:
        table[name] = BENCHMARKS[name]
    return table


def _optimizer(
    workers: int, sat_portfolio: str = "off", store=None, **rank_kwargs
) -> LookaheadOptimizer:
    """Bounded-effort optimizer so the bench measures the hot path, not
    the search budget; all flows use identical settings.  The default
    two walk strategies are kept — the second strategy's rounds revisit
    the same cones, which is where the SPCF cache earns its keep."""
    return LookaheadOptimizer(
        max_rounds=2,
        max_outputs_per_round=8,
        sim_width=512,
        workers=workers,
        sat_portfolio=sat_portfolio,
        store=store,
        **rank_kwargs,
    )


def _dump(aig: AIG) -> str:
    buf = io.StringIO()
    write_aag(aig, buf)
    return buf.getvalue()


def _parallel_workers() -> int:
    env = os.environ.get(perf.WORKERS_ENV, "").strip()
    if env:
        return max(1, int(env))
    return min(4, os.cpu_count() or 1)


def run_bench(quick: bool = False, verbose: bool = True) -> List[dict]:
    """Time each circuit under the serial and parallel flows -> JSON rows."""
    from repro.sat.portfolio import GLOBAL_UNSAT_CACHE
    from repro.store import runtime as store_runtime

    rows: List[dict] = []
    nworkers = _parallel_workers()
    flows = [("lookahead-w1", 1, "off")]
    if nworkers > 1:
        flows.append((f"lookahead-w{nworkers}", nworkers, "off"))
    flows.append(("lookahead-w1-race", 1, "race"))
    for name, gen in _circuits().items():
        if quick and name not in QUICK_CIRCUITS:
            continue
        aig = gen()
        outputs = {}
        qor = {}
        for flow_name, workers, sat_portfolio in flows:
            perf.reset()
            GLOBAL_UNSAT_CACHE.clear()  # every flow starts cold
            opt = _optimizer(workers, sat_portfolio)
            start = time.perf_counter()
            optimized = opt.optimize(aig)
            seconds = time.perf_counter() - start
            outputs[flow_name] = _dump(optimized)
            qor[flow_name] = (depth(optimized), optimized.num_ands())
            rows.append(
                {
                    "circuit": name,
                    "flow": flow_name,
                    "seconds": round(seconds, 4),
                    "depth": depth(optimized),
                    "ands": optimized.num_ands(),
                }
            )
            if verbose:
                hit_rate = perf.ratio("cache.spcf.hit", "cache.spcf.miss")
                print(
                    f"{name:10s} {flow_name:17s} {seconds:8.2f}s "
                    f"depth {depth(optimized):3d} "
                    f"ands {optimized.num_ands():5d} "
                    f"spcf-hits {hit_rate:5.1%}"
                )
        # Disk-warm persistent store: one cold store-backed run seeds a
        # fresh database, the process-level state is dropped, and the
        # timed run replays memoized results from disk only.
        store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
        store_path = os.path.join(store_dir, "results.db")
        try:
            GLOBAL_UNSAT_CACHE.clear()
            _optimizer(1, "off", store=store_path).optimize(aig)
            store_runtime.reset()
            perf.reset()
            GLOBAL_UNSAT_CACHE.clear()
            flow_name = "lookahead-w1-warmstore"
            opt = _optimizer(1, "off", store=store_path)
            start = time.perf_counter()
            optimized = opt.optimize(aig)
            seconds = time.perf_counter() - start
            outputs[flow_name] = _dump(optimized)
            qor[flow_name] = (depth(optimized), optimized.num_ands())
            rows.append(
                {
                    "circuit": name,
                    "flow": flow_name,
                    "seconds": round(seconds, 4),
                    "depth": depth(optimized),
                    "ands": optimized.num_ands(),
                }
            )
            if verbose:
                hit_rate = perf.ratio("store.hit", "store.miss")
                print(
                    f"{name:10s} {flow_name:17s} {seconds:8.2f}s "
                    f"depth {depth(optimized):3d} "
                    f"ands {optimized.num_ands():5d} "
                    f"store-hits {hit_rate:5.1%}"
                )
        finally:
            store_runtime.reset()
            shutil.rmtree(store_dir, ignore_errors=True)
        # Learned candidate ranking: an untimed --rank log run records
        # the feature/outcome dataset, the fitted model (recall 1.0 —
        # provably the same trajectory on its own training circuit) gates
        # a timed serial prune run, which must therefore reproduce the
        # serial reference bit-for-bit while skipping the SPCF work of
        # candidates the unranked flow evaluated only to reject.
        GLOBAL_UNSAT_CACHE.clear()
        logger = RankLogger()
        _optimizer(1, "off", rank="log", rank_data=logger).optimize(aig)
        model = fit_model(logger.rows, target_recall=1.0)
        perf.reset()
        GLOBAL_UNSAT_CACHE.clear()
        flow_name = "lookahead-w1-rank"
        opt = _optimizer(1, "off", rank="prune", rank_model=model)
        start = time.perf_counter()
        optimized = opt.optimize(aig)
        seconds = time.perf_counter() - start
        outputs[flow_name] = _dump(optimized)
        qor[flow_name] = (depth(optimized), optimized.num_ands())
        rows.append(
            {
                "circuit": name,
                "flow": flow_name,
                "seconds": round(seconds, 4),
                "depth": depth(optimized),
                "ands": optimized.num_ands(),
            }
        )
        if verbose:
            print(
                f"{name:10s} {flow_name:17s} {seconds:8.2f}s "
                f"depth {depth(optimized):3d} "
                f"ands {optimized.num_ands():5d} "
                f"pruned {perf.counter('rank.pruned'):4d}"
            )
        reference = outputs[flows[0][0]]
        for flow_name, dumped in outputs.items():
            if flow_name.endswith("-race"):
                # Racing may settle budget-limited queries differently;
                # the contract is identical QoR, not identical structure.
                if qor[flow_name] != qor[flows[0][0]]:
                    raise AssertionError(
                        f"{name}: {flow_name} QoR {qor[flow_name]} differs "
                        f"from serial {qor[flows[0][0]]}"
                    )
            elif dumped != reference:
                raise AssertionError(
                    f"{name}: {flow_name} output differs from serial result"
                )
    return rows


def write_rows(rows: List[dict], path: str) -> None:
    """Replace matching (circuit, flow) rows in ``path``; keep the rest.

    Same merge semantics as bench_area_recovery.py — both benches share
    one output file, so a full rewrite here would drop the area rows.
    """
    existing: List[dict] = []
    if os.path.exists(path):
        with open(path) as fh:
            existing = json.load(fh)
    fresh = {(r["circuit"], r["flow"]) for r in rows}
    merged = [
        r for r in existing if (r["circuit"], r["flow"]) not in fresh
    ] + rows
    with open(path, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"only the small circuits ({', '.join(QUICK_CIRCUITS)})",
    )
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    rows = run_bench(quick=args.quick)
    write_rows(rows, args.output)
    print(f"wrote {len(rows)} rows to {args.output}")
    return 0


# -- pytest entry point ------------------------------------------------------

try:
    import pytest
except ImportError:  # standalone execution without a test environment
    pytest = None

if pytest is not None:

    @pytest.mark.slow
    def test_bench_speed_writes_schema_stable_rows(tmp_path):
        rows = run_bench(quick=True, verbose=False)
        path = tmp_path / DEFAULT_OUTPUT
        write_rows(rows, str(path))
        loaded = json.loads(path.read_text())
        assert loaded and isinstance(loaded, list)
        for row in loaded:
            assert set(row) == {"circuit", "flow", "seconds", "depth", "ands"}
            assert row["seconds"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
