"""Tests for SAT-solver internals: heap, budgets, incrementality."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import Solver
from repro.sat.solver import _VarHeap


class TestVarHeap:
    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                    max_size=30))
    @settings(deadline=None)
    def test_pops_in_activity_order(self, activities):
        heap = _VarHeap()
        act = list(activities)
        for var in range(len(act)):
            heap.push(var, act)
        popped = [heap.pop(act) for _ in range(len(act))]
        values = [act[v] for v in popped]
        assert values == sorted(values, reverse=True)

    def test_push_is_idempotent(self):
        heap = _VarHeap()
        act = [1.0, 2.0]
        heap.push(0, act)
        heap.push(0, act)
        heap.push(1, act)
        assert heap.pop(act) == 1
        assert heap.pop(act) == 0
        assert not heap.heap

    def test_update_reorders(self):
        heap = _VarHeap()
        act = [1.0, 2.0, 3.0]
        for v in range(3):
            heap.push(v, act)
        act[0] = 10.0
        heap.update(0, act)
        assert heap.pop(act) == 0


class TestBudget:
    def test_budget_returns_none_on_hard_instance(self):
        # A pigeonhole instance that needs many conflicts.
        s = Solver()
        holes, pigeons = 5, 6
        def var(p, h):
            return p * holes + h + 1
        for p in range(pigeons):
            s.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-var(p1, h), -var(p2, h)])
        assert s.solve(max_conflicts=5) is None
        # And the solver remains usable afterwards with a real budget.
        assert s.solve() is False

    def test_budget_does_not_affect_easy_instances(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-1])
        assert s.solve(max_conflicts=1) is True
        assert s.model_value(2) is True


class TestIncremental:
    def test_add_clause_after_solve(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve() is True
        s.reset()
        s.add_clause([-1])
        s.add_clause([-2])
        assert s.solve() is False

    def test_stats_accumulate(self):
        rng = random.Random(0)
        s = Solver()
        n = 8
        for _ in range(40):
            s.add_clause(
                [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(3)]
            )
        s.solve()
        assert s.num_propagations > 0

    def test_clauses_only_at_root(self):
        s = Solver()
        s.add_clause([1, 2])
        s.trail_lim.append(0)  # simulate being mid-search
        try:
            s.add_clause([3])
        except RuntimeError:
            s.trail_lim.pop()
            return
        raise AssertionError("expected RuntimeError")
