"""Tests for combinational equivalence checking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, lit_not, po_tts
from repro.cec import (
    assert_equivalent,
    check_equivalence,
    lits_equivalent,
)

from ..aig.test_aig import random_aig


class TestCheckEquivalence:
    @given(st.integers(0, 30))
    @settings(deadline=None, max_examples=15)
    def test_extract_copy_is_equivalent(self, seed):
        aig = random_aig(seed)
        assert check_equivalence(aig, aig.extract())

    def test_detects_single_output_flip(self):
        aig = random_aig(5)
        broken = aig.extract()
        broken.pos[1] = lit_not(broken.pos[1])
        result = check_equivalence(aig, broken)
        assert not result
        assert result.po_index == 1
        # Counterexample must actually distinguish the circuits.
        from repro.aig import evaluate

        assert evaluate(aig, result.counterexample) != evaluate(
            broken, result.counterexample
        )

    def test_detects_subtle_mismatch(self):
        # a&b vs a&b except on one minterm requires SAT (simulation may
        # miss it only with tiny widths, but the result must be found).
        aig1 = AIG()
        a, b, c = (aig1.add_pi() for _ in range(3))
        aig1.add_po(aig1.and_(a, b))
        aig2 = AIG()
        a2, b2, c2 = (aig2.add_pi() for _ in range(3))
        # a&b | (a&!b&c&!c) == a&b, but a&b|(!a&!b&!c... build real diff:
        diff = aig2.or_(
            aig2.and_(a2, b2),
            aig2.and_many([lit_not(a2), lit_not(b2), c2]),
        )
        aig2.add_po(diff)
        result = check_equivalence(aig1, aig2, sim_width=4)
        assert not result

    def test_pi_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            check_equivalence(random_aig(0, n_pis=3), random_aig(0, n_pis=4))

    def test_assert_equivalent_raises_with_context(self):
        aig = random_aig(7)
        broken = aig.extract()
        broken.pos[0] = lit_not(broken.pos[0])
        with pytest.raises(AssertionError, match="myopt"):
            assert_equivalent(aig, broken, "myopt")


class TestLitsEquivalent:
    def test_same_function_different_structure(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        f = aig.and_(a, b)
        g = lit_not(aig.or_(lit_not(a), lit_not(b)))
        assert lits_equivalent(aig, f, g)

    def test_different_functions(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        assert not lits_equivalent(aig, aig.and_(a, b), aig.or_(a, b))

    def test_identical_literal(self):
        aig = AIG()
        a = aig.add_pi()
        assert lits_equivalent(aig, a, a)
