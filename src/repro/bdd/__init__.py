"""Reduced ordered BDDs with complement edges."""

from .bdd import BDD, FALSE, TRUE, ref_complemented, ref_node, ref_not
from .from_aig import aig_to_bdd
from .reorder import order_cost, rebuild_with_order, sift

__all__ = [
    "BDD",
    "FALSE",
    "TRUE",
    "ref_complemented",
    "ref_node",
    "ref_not",
    "aig_to_bdd",
    "order_cost",
    "rebuild_with_order",
    "sift",
]
