"""SAT-based exact synthesis of minimal AIGs for small functions.

Finds a Boolean chain of 2-input AND gates with complemented edges (i.e. a
minimal AIG) implementing a given truth table, by encoding "does a chain
with r gates exist?" as CNF and asking our own CDCL solver — the classic
Knuth/Éen formulation.  Practical for functions of up to 4 inputs with
small gate counts; larger queries degrade gracefully via conflict budgets.

The encoding: gate ``i`` selects an ordered pair of *literal* operands from
{inputs, earlier gates} x {plain, complemented} via two one-hot selector
groups; per-minterm value variables tie the chain to the target function,
whose output may be taken from the last gate in either polarity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sat import Solver
from ..tt import TruthTable

#: A synthesized chain: per gate, ((operand index, complemented), (operand
#: index, complemented)); operands 0..n-1 are inputs, n+i is gate i.
Chain = List[Tuple[Tuple[int, bool], Tuple[int, bool]]]


class ExactSynthesisResult:
    """A chain plus the output polarity that realizes the target."""

    __slots__ = ("chain", "output_neg", "num_inputs")

    def __init__(self, chain: Chain, output_neg: bool, num_inputs: int):
        self.chain = chain
        self.output_neg = output_neg
        self.num_inputs = num_inputs

    @property
    def num_gates(self) -> int:
        return len(self.chain)

    def evaluate(self, assignment: List[bool]) -> bool:
        if not self.chain:
            # Gate-free chains encode constants: False ^ output_neg.
            return self.output_neg
        values = list(assignment)
        for (a_idx, a_neg), (b_idx, b_neg) in self.chain:
            a = values[a_idx] ^ a_neg
            b = values[b_idx] ^ b_neg
            values.append(a and b)
        return values[-1] ^ self.output_neg

    def to_tt(self) -> TruthTable:
        return TruthTable.from_function(
            lambda *args: self.evaluate(list(args)), self.num_inputs
        )


def _try_size(
    target: TruthTable, r: int, max_conflicts: Optional[int]
) -> Optional[ExactSynthesisResult]:
    """SAT query: is there an r-gate chain for ``target``?"""
    n = target.nvars
    rows = 1 << n
    solver = Solver()

    def new_var() -> int:
        return solver.new_var()

    # Value variables: inputs are fixed per row; gates get variables.
    # val[(op, row)] -> solver literal (positive int or negation), where
    # op in 0..n-1 are inputs and n..n+r-1 are gates.
    gate_val: Dict[Tuple[int, int], int] = {}
    for i in range(r):
        for t in range(rows):
            gate_val[(i, t)] = new_var()

    true_var = new_var()
    solver.add_clause([true_var])

    def op_lit(op: int, neg: bool, row: int) -> int:
        """Solver literal for operand value on a row."""
        if op < n:
            bit = bool((row >> op) & 1)
            value = bit ^ neg
            return true_var if value else -true_var
        v = gate_val[(op - n, row)]
        return -v if neg else v

    # Selector variables per gate: one-hot over (operand, polarity) for
    # each of the two AND inputs; operand ranges over inputs and earlier
    # gates.  Symmetry-break by requiring a's operand index < b's when both
    # plain... (cheap ordering constraint: encode a <= b by operand id).
    sel_a: Dict[Tuple[int, int, bool], int] = {}
    sel_b: Dict[Tuple[int, int, bool], int] = {}
    for i in range(r):
        ops = list(range(n + i))
        a_group = []
        b_group = []
        for op in ops:
            for neg in (False, True):
                sel_a[(i, op, neg)] = new_var()
                sel_b[(i, op, neg)] = new_var()
                a_group.append(sel_a[(i, op, neg)])
                b_group.append(sel_b[(i, op, neg)])
        solver.add_clause(a_group)
        solver.add_clause(b_group)
        # At-most-one (pairwise; groups are small).
        for grp in (a_group, b_group):
            for x in range(len(grp)):
                for y in range(x + 1, len(grp)):
                    solver.add_clause([-grp[x], -grp[y]])

    # Semantics: sel_a[i,op,neg] -> (gate_i_row <= op value) etc.
    # g = a AND b:  g -> a, g -> b, (a AND b) -> g.
    for i in range(r):
        for op in range(n + i):
            for neg in (False, True):
                sa = sel_a[(i, op, neg)]
                sb = sel_b[(i, op, neg)]
                for t in range(rows):
                    g = gate_val[(i, t)]
                    v = op_lit(op, neg, t)
                    # g -> selected operand is 1.
                    solver.add_clause([-sa, -g, v])
                    solver.add_clause([-sb, -g, v])
        # (a AND b) -> g needs both selections: for every pair, clause
        # (-sa, -sb, -va, -vb, g).  Keep it linear by introducing per-row
        # "operand-a value" variables instead of pair expansion.
        for t in range(rows):
            av = new_var()
            bv = new_var()
            g = gate_val[(i, t)]
            for op in range(n + i):
                for neg in (False, True):
                    v = op_lit(op, neg, t)
                    solver.add_clause([-sel_a[(i, op, neg)], -v, av])
                    solver.add_clause([-sel_a[(i, op, neg)], v, -av])
                    solver.add_clause([-sel_b[(i, op, neg)], -v, bv])
                    solver.add_clause([-sel_b[(i, op, neg)], v, -bv])
            solver.add_clause([-av, -bv, g])
            solver.add_clause([-g, av])
            solver.add_clause([-g, bv])

    # Output: last gate in some polarity matches the target on every row.
    out_neg = new_var()
    if r == 0:
        return None
    last = r - 1
    for t in range(rows):
        g = gate_val[(last, t)]
        want = target.value(t)
        # out_neg false: g == want; out_neg true: g == !want.
        if want:
            solver.add_clause([out_neg, g])
            solver.add_clause([-out_neg, -g])
        else:
            solver.add_clause([out_neg, -g])
            solver.add_clause([-out_neg, g])

    result = solver.solve(max_conflicts=max_conflicts)
    if result is not True:
        return None
    chain: Chain = []
    for i in range(r):
        a_pick = b_pick = None
        for op in range(n + i):
            for neg in (False, True):
                if solver.model_value(sel_a[(i, op, neg)]):
                    a_pick = (op, neg)
                if solver.model_value(sel_b[(i, op, neg)]):
                    b_pick = (op, neg)
        assert a_pick is not None and b_pick is not None
        chain.append((a_pick, b_pick))
    return ExactSynthesisResult(
        chain, bool(solver.model_value(out_neg)), n
    )


def exact_aig(
    target: TruthTable,
    max_gates: int = 7,
    max_conflicts: Optional[int] = 20_000,
) -> Optional[ExactSynthesisResult]:
    """Smallest chain (by gate count) for ``target``, or None.

    Tries r = 0, 1, ... ``max_gates``; each SAT query carries a conflict
    budget, so a None return means "not found within budget", which for
    small r equals a real minimality proof.
    """
    n = target.nvars
    # Trivial cases: constants and single literals need no gates.
    if target.is_const0 or target.is_const1:
        return ExactSynthesisResult([], target.is_const1, n)
    for i in range(n):
        if target == TruthTable.var(i, n):
            return None  # caller should just wire the input
        if target == ~TruthTable.var(i, n):
            return None
    for r in range(1, max_gates + 1):
        result = _try_size(target, r, max_conflicts)
        if result is not None:
            if result.to_tt() != target:
                raise AssertionError("exact synthesis produced a bad chain")
            return result
    return None


def chain_to_aig_lit(result: ExactSynthesisResult, builder, input_lits) -> int:
    """Instantiate a synthesized chain into an AIG builder."""
    from ..aig import CONST0, lit_not

    if not result.chain:
        return lit_not(CONST0) if result.output_neg else CONST0
    values = list(input_lits)
    for (a_idx, a_neg), (b_idx, b_neg) in result.chain:
        a = lit_not(values[a_idx]) if a_neg else values[a_idx]
        b = lit_not(values[b_idx]) if b_neg else values[b_idx]
        values.append(builder.and_(a, b))
    return lit_not(values[-1]) if result.output_neg else values[-1]
