"""K-feasible cut enumeration with priority pruning, plus cut functions.

Cuts drive the ``renode`` clustering of an AIG into a technology-independent
network, the cut-rewriting baseline, and the technology mapper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..tt import TruthTable
from .aig import AIG, lit_neg, lit_var

Cut = Tuple[int, ...]  # sorted tuple of leaf variables


def _merge(c0: Cut, c1: Cut, k: int) -> Cut:
    """Union of two cuts, or () sentinel if it exceeds k leaves."""
    union = sorted(set(c0) | set(c1))
    if len(union) > k:
        return ()
    return tuple(union)


def _dominated(cut: Cut, others: List[Cut]) -> bool:
    cut_set = set(cut)
    return any(set(o) <= cut_set and o != cut for o in others)


def enumerate_cuts(
    aig: AIG, k: int = 4, max_cuts: int = 8
) -> List[List[Cut]]:
    """Per-variable list of K-feasible cuts (leaf-variable tuples).

    Every variable keeps its trivial cut ``(var,)`` plus up to ``max_cuts``
    non-trivial cuts, smallest first.  The constant variable has the empty
    cut.
    """
    cuts: List[List[Cut]] = [[] for _ in range(aig.num_vars)]
    cuts[0] = [()]
    for var in aig.pis:
        cuts[var] = [(var,)]
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        v0, v1 = lit_var(f0), lit_var(f1)
        merged: List[Cut] = []
        seen = set()
        for c0 in cuts[v0]:
            for c1 in cuts[v1]:
                u = _merge(c0, c1, k)
                if u == () and (c0 or c1):
                    continue
                if u in seen:
                    continue
                seen.add(u)
                merged.append(u)
        # Remove dominated cuts, sort small-first, truncate.
        merged = [c for c in merged if not _dominated(c, merged)]
        merged.sort(key=lambda c: (len(c), c))
        merged = merged[:max_cuts]
        trivial = (var,)
        cuts[var] = merged + [trivial]
    return cuts


def cut_tt(aig: AIG, root_lit_or_var: int, leaves: Sequence[int],
           is_lit: bool = False) -> TruthTable:
    """Truth table of ``root`` over the ordered ``leaves`` variables.

    ``root`` may be a variable (default) or a literal (``is_lit=True``).
    Every path from the root must be cut by ``leaves`` (or constants).
    """
    n = len(leaves)
    values: Dict[int, TruthTable] = {0: TruthTable.const(False, n)}
    for i, leaf in enumerate(leaves):
        values[leaf] = TruthTable.var(i, n)
    root_var = lit_var(root_lit_or_var) if is_lit else root_lit_or_var
    stack = [root_var]
    while stack:
        var = stack[-1]
        if var in values:
            stack.pop()
            continue
        if aig.is_pi(var):
            raise ValueError(f"PI {var} reached but not a cut leaf")
        f0, f1 = aig.fanins(var)
        pending = [
            v for v in (lit_var(f0), lit_var(f1)) if v not in values
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        a = values[lit_var(f0)]
        if lit_neg(f0):
            a = ~a
        b = values[lit_var(f1)]
        if lit_neg(f1):
            b = ~b
        values[var] = a & b
    result = values[root_var]
    if is_lit and lit_neg(root_lit_or_var):
        result = ~result
    return result


def cut_volume(aig: AIG, root: int, leaves: Sequence[int]) -> int:
    """Number of AND nodes strictly inside the cut cone."""
    leaf_set = set(leaves)
    seen = set()
    stack = [root]
    count = 0
    while stack:
        var = stack.pop()
        if var in seen or var in leaf_set or not aig.is_and(var):
            continue
        seen.add(var)
        count += 1
        f0, f1 = aig.fanins(var)
        stack.append(lit_var(f0))
        stack.append(lit_var(f1))
    return count
