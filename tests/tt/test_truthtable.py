"""Unit and property tests for truth tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tt import TruthTable, cube_tt


def tt_strategy(max_vars=6):
    return st.integers(1, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable, st.integers(0, (1 << (1 << n)) - 1), st.just(n)
        )
    )


class TestConstruction:
    def test_const(self):
        assert TruthTable.const(False, 3).is_const0
        assert TruthTable.const(True, 3).is_const1

    def test_var_columns(self):
        v1 = TruthTable.var(1, 3)
        for m in range(8):
            assert v1.value(m) == bool((m >> 1) & 1)

    def test_var_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.var(3, 3)

    def test_from_function(self):
        maj = TruthTable.from_function(lambda a, b, c: (a + b + c) >= 2, 3)
        assert maj.count_ones() == 4
        assert maj.evaluate([True, True, False])
        assert not maj.evaluate([True, False, False])

    def test_from_minterms(self):
        t = TruthTable.from_minterms([0, 3], 2)
        assert list(t.minterms()) == [0, 3]

    def test_var_bits_mask_doubling_matches_definition(self):
        # The doubling construction must agree with the minterm
        # definition (bit m of var i is (m >> i) & 1) at every width,
        # including when the cache resumes from a narrower prefix.
        from repro.tt.truthtable import _VAR_CACHE, _var_bits

        saved = dict(_VAR_CACHE)
        try:
            for order in (range(1, 11), range(10, 0, -1)):
                _VAR_CACHE.clear()
                for nvars in order:
                    for i in range(nvars):
                        bits = _var_bits(i, nvars)
                        for m in range(1 << nvars):
                            assert ((bits >> m) & 1) == ((m >> i) & 1)
        finally:
            _VAR_CACHE.clear()
            _VAR_CACHE.update(saved)

    def test_from_minterms_range_check(self):
        with pytest.raises(ValueError):
            TruthTable.from_minterms([4], 2)

    def test_zero_vars(self):
        t = TruthTable.const(True, 0)
        assert t.is_const1
        assert t.count_ones() == 1


class TestAlgebra:
    def test_demorgan(self):
        a = TruthTable.var(0, 3)
        b = TruthTable.var(1, 3)
        assert ~(a & b) == (~a | ~b)
        assert ~(a | b) == (~a & ~b)

    def test_xor_identities(self):
        a = TruthTable.var(0, 2)
        b = TruthTable.var(1, 2)
        assert (a ^ b) == ((a & ~b) | (~a & b))
        assert (a ^ a).is_const0

    def test_mismatched_vars_raise(self):
        with pytest.raises(ValueError):
            TruthTable.var(0, 2) & TruthTable.var(0, 3)

    @given(tt_strategy())
    def test_double_complement(self, t):
        assert ~~t == t

    @given(tt_strategy())
    def test_implies_reflexive(self, t):
        assert t.implies(t)

    @given(tt_strategy())
    def test_and_implies_or(self, t):
        other = TruthTable.var(0, t.nvars)
        assert (t & other).implies(t | other)


class TestCofactors:
    @given(tt_strategy(), st.integers(0, 5), st.booleans())
    def test_cofactor_removes_dependence(self, t, i, value):
        i %= t.nvars
        cof = t.cofactor(i, value)
        assert not cof.depends_on(i)

    @given(tt_strategy(), st.integers(0, 5))
    def test_shannon_expansion(self, t, i):
        i %= t.nvars
        v = TruthTable.var(i, t.nvars)
        rebuilt = (v & t.cofactor(i, True)) | (~v & t.cofactor(i, False))
        assert rebuilt == t

    @given(tt_strategy(), st.integers(0, 5))
    def test_quantifier_sandwich(self, t, i):
        i %= t.nvars
        assert t.forall(i).implies(t)
        assert t.implies(t.exists(i))

    def test_support(self):
        a = TruthTable.var(0, 4)
        c = TruthTable.var(2, 4)
        assert (a & c).support() == [0, 2]


class TestTransforms:
    @given(tt_strategy(max_vars=4), st.permutations(list(range(4))))
    def test_permute_roundtrip(self, t, perm):
        perm = list(perm)[: t.nvars]
        if sorted(perm) != list(range(t.nvars)):
            return
        inverse = [0] * t.nvars
        for i, p in enumerate(perm):
            inverse[p] = i
        assert t.permute(perm).permute(inverse) == t

    @given(tt_strategy(), st.integers(0, 5))
    def test_flip_involution(self, t, i):
        i %= t.nvars
        assert t.flip(i).flip(i) == t

    @given(tt_strategy())
    def test_extend_preserves_semantics(self, t):
        wide = t.extend(t.nvars + 2)
        for m in range(1 << t.nvars):
            assert wide.value(m) == t.value(m)
        assert not wide.depends_on(t.nvars)

    @given(tt_strategy())
    def test_shrink_projects_support(self, t):
        small, support = t.shrink()
        assert small.nvars == len(support)
        assert small.support() == list(range(len(support)))
        # Spot-check semantics on every minterm.
        for m in range(1 << t.nvars):
            small_m = 0
            for j, i in enumerate(support):
                if (m >> i) & 1:
                    small_m |= 1 << j
            assert small.value(small_m) == t.value(m)

    def test_compose_identity(self):
        t = TruthTable.from_function(lambda a, b, c: a and (b or not c), 3)
        identity = [TruthTable.var(i, 3) for i in range(3)]
        assert t.compose(identity) == t

    def test_compose_substitution(self):
        f = TruthTable.var(0, 2) & TruthTable.var(1, 2)
        g_and = TruthTable.var(0, 3) | TruthTable.var(1, 3)
        g_c = TruthTable.var(2, 3)
        composed = f.compose([g_and, g_c])
        expected = (TruthTable.var(0, 3) | TruthTable.var(1, 3)) & TruthTable.var(2, 3)
        assert composed == expected


class TestCubeTT:
    def test_cube_semantics(self):
        # Cube: x0 AND !x2 over 3 vars.
        t = cube_tt(0b101, 0b001, 3)
        for m in range(8):
            expected = bool(m & 1) and not bool(m & 4)
            assert t.value(m) == expected

    def test_full_cube_is_tautology(self):
        assert cube_tt(0, 0, 3).is_const1
