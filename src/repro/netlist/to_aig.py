"""Synthesizing a technology-independent network back into an AIG.

Each node's local function is factored algebraically (on-set and off-set
both tried, output inversion being free) and instantiated with
arrival-aware AND/OR trees: operands are merged earliest-first, realizing
the optimal-depth trees assumed by the paper's level model.
"""

from __future__ import annotations

import heapq
from typing import Dict, Sequence

from ..aig import AIG, CONST0, CONST1, lit_not, lit_var
from ..sop import Cover, factor
from ..sop.factor import Expr
from ..tt import TruthTable
from .levels import min_sops
from .network import Network


class ArrivalAwareBuilder:
    """AIG construction wrapper tracking arrivals for arrival-aware trees.

    Arrival bookkeeping is delegated to an incremental
    :class:`repro.timing.AigTimingEngine`, so a delay model with
    non-uniform PI arrivals makes every tree built here (and the
    reconstruction acceptance checks in the lookahead optimizer)
    arrival-aware.  The engine's lazy extension also covers nodes added to
    the AIG outside this builder.
    """

    def __init__(self, aig: AIG, model=None):
        from ..timing import AigTimingEngine

        self.aig = aig
        self.engine = AigTimingEngine(aig, model)

    def level(self, lit: int) -> int:
        return self.engine.arrival(lit_var(lit))

    def and_(self, a: int, b: int) -> int:
        return self.aig.and_(a, b)

    def or_(self, a: int, b: int) -> int:
        return lit_not(self.and_(lit_not(a), lit_not(b)))

    def balanced(self, lits: Sequence[int], op: str) -> int:
        """Arrival-aware tree: always merge the two earliest operands."""
        if not lits:
            return CONST1 if op == "and" else CONST0
        heap = [(self.level(l), i, l) for i, l in enumerate(lits)]
        heapq.heapify(heap)
        counter = len(lits)
        combine = self.and_ if op == "and" else self.or_
        while len(heap) > 1:
            _la, _ia, a = heapq.heappop(heap)
            _lb, _ib, b = heapq.heappop(heap)
            out = combine(a, b)
            heapq.heappush(heap, (self.level(out), counter, out))
            counter += 1
        return heap[0][2]

    def build_expr(self, expr: Expr, input_lits: Sequence[int]) -> int:
        """Instantiate a factored-form expression over input literals."""
        if expr.kind == "const0":
            return CONST0
        if expr.kind == "const1":
            return CONST1
        if expr.kind == "lit":
            var, pol = expr.lit
            lit = input_lits[var]
            return lit if pol else lit_not(lit)
        children = [self.build_expr(c, input_lits) for c in expr.children]
        return self.balanced(children, "and" if expr.kind == "and" else "or")

    def build_cover_flat(self, cover: Cover, input_lits: Sequence[int]) -> int:
        """Instantiate a cover as flat arrival-aware AND/OR trees.

        This realizes exactly the depth promised by the network level model
        (``cover_level``); the factored form below is usually smaller but
        can be deeper.
        """
        if cover.is_empty():
            return CONST0
        terms = []
        for cube in cover:
            lits = [
                input_lits[var] if pol else lit_not(input_lits[var])
                for var, pol in cube.literals()
            ]
            terms.append(self.balanced(lits, "and"))
        return self.balanced(terms, "or")

    def build_cover(self, cover: Cover, input_lits: Sequence[int]) -> int:
        """Instantiate a cover: best of factored form and flat SOP."""
        factored = self.build_expr(factor(cover), input_lits)
        flat = self.build_cover_flat(cover, input_lits)
        if self.level(flat) < self.level(factored):
            return flat
        return factored


def synthesize_node(
    builder: ArrivalAwareBuilder, tt: TruthTable, input_lits: Sequence[int]
) -> int:
    """Best-of-two-phases synthesis of a local function into the AIG."""
    if tt.is_const0:
        return CONST0
    if tt.is_const1:
        return CONST1
    on_cover, off_cover = min_sops(tt)
    lit_on = builder.build_cover(on_cover, input_lits)
    lit_off = lit_not(builder.build_cover(off_cover, input_lits))
    if builder.level(lit_off) < builder.level(lit_on):
        return lit_off
    return lit_on


def synthesize_into(
    builder: ArrivalAwareBuilder, net: Network, pi_lits: Sequence[int]
) -> Dict[int, int]:
    """Synthesize every network node into an existing AIG builder.

    ``pi_lits`` gives the AIG literal for each network PI (by PI order).
    Returns the node-id -> AIG-literal map.
    """
    lit_of: Dict[int, int] = {}
    for pi, lit in zip(net.pis, pi_lits):
        lit_of[pi] = lit
    for nid in net.topo_order():
        node = net.nodes[nid]
        input_lits = [lit_of[f] for f in node.fanins]
        lit_of[nid] = synthesize_node(builder, node.tt, input_lits)
    return lit_of


def network_to_aig(net: Network, model=None) -> AIG:
    """Convert the network to a cleaned, structurally hashed AIG.

    ``model`` (a :class:`repro.timing.DelayModel`) seeds PI arrivals so the
    synthesized trees hide late-arriving inputs.
    """
    aig = AIG()
    builder = ArrivalAwareBuilder(aig, model)
    pi_lits = [aig.add_pi(net.nodes[p].name) for p in net.pis]
    lit_of = synthesize_into(builder, net, pi_lits)
    for (nid, neg), name in zip(net.pos, net.po_names):
        lit = lit_of[nid]
        aig.add_po(lit_not(lit) if neg else lit, name)
    return aig.extract()
