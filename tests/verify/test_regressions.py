"""Replay every checked-in fuzz artifact: past bugs must stay fixed.

Each ``tests/regressions/*.json`` sidecar records the invariant, the
optimizer configuration, and a ddmin-shrunk circuit on which the flow once
miscompiled or diverged.  ``replay_artifact`` re-runs the exact failing
scenario; a non-None result means a fixed bug has come back.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.verify import replay_artifact

REGRESSION_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "regressions"
)
ARTIFACTS = sorted(glob.glob(os.path.join(REGRESSION_DIR, "*.json")))


def test_regression_corpus_is_nonempty():
    # The corpus documents the bugs the fuzzer has caught; losing it
    # (e.g. to an overzealous cleanup) would silently drop coverage.
    assert ARTIFACTS, f"no fuzz artifacts found under {REGRESSION_DIR}"


@pytest.mark.parametrize(
    "json_path", ARTIFACTS, ids=[os.path.basename(p) for p in ARTIFACTS]
)
def test_artifact_stays_fixed(json_path):
    detail = replay_artifact(json_path)
    assert detail is None, (
        f"regression resurfaced for {os.path.basename(json_path)}: {detail}"
    )
