"""Property tests for the simulation-domain SPCF machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import depth, levels, lit_var, random_patterns
from repro.core import (
    spcf_signature,
    timed_simulation,
    unpack_patterns,
)

from ..aig.test_aig import random_aig


class TestTimedSimulationProperties:
    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=15)
    def test_arrival_bounded_by_level(self, seed):
        # Floating-mode arrival can never exceed the topological level.
        aig = random_aig(seed, n_pis=5, n_nodes=30, n_pos=2)
        lvl = levels(aig)
        bits = unpack_patterns(random_patterns(5, 64, seed), 64)
        values, arrivals = timed_simulation(aig, bits)
        for var in aig.and_vars():
            assert int(arrivals[var].max()) <= lvl[var]

    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=15)
    def test_values_match_plain_simulation(self, seed):
        # Timed simulation's value component equals untimed simulation.
        from repro.aig import lit_word, simulate

        aig = random_aig(seed, n_pis=5, n_nodes=30, n_pos=2)
        width = 64
        words = random_patterns(5, width, seed)
        plain = simulate(aig, words, width)
        bits = unpack_patterns(words, width)
        values, _arr = timed_simulation(aig, bits)
        for var in aig.and_vars():
            for p in range(width):
                assert bool(values[var][p]) == bool((plain[var] >> p) & 1)

    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=15)
    def test_signature_monotone_in_delta(self, seed):
        aig = random_aig(seed, n_pis=5, n_nodes=30, n_pos=1)
        d = levels(aig)[lit_var(aig.pos[0])]
        if d == 0:
            return
        bits = unpack_patterns(random_patterns(5, 64, seed), 64)
        timed = timed_simulation(aig, bits)
        prev = None
        for delta in range(d, 0, -1):
            sig = spcf_signature(aig, 0, delta, None, timed=timed)
            if prev is not None:
                assert prev & ~sig == 0  # higher delta -> subset
            prev = sig

    def test_empty_pattern_matrix(self):
        aig = random_aig(0, n_pis=3, n_nodes=5, n_pos=1)
        bits = np.zeros((3, 0), dtype=bool)
        values, arrivals = timed_simulation(aig, bits)
        assert all(v.shape == (0,) for v in values)
