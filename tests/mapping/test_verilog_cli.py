"""Tests for Verilog emission and the command-line interface."""

import io
import re

import pytest

from repro.aig import evaluate
from repro.bench import BENCHMARKS
from repro.cli import main
from repro.mapping import map_aig
from repro.mapping.verilog import write_verilog

from ..aig.test_aig import random_aig


def _evaluate_verilog(text: str, input_values: dict) -> dict:
    """Tiny structural-Verilog evaluator for `assign`-only modules."""
    values = dict(input_values)
    values["1'b0"] = False
    values["1'b1"] = True
    assigns = re.findall(r"assign\s+(\S+)\s*=\s*(.+?);", text)
    for lhs, rhs in assigns:
        expr = rhs.split("//")[0].strip()
        # Verilog -> Python: ternary first, then bit operators.
        expr = re.sub(
            r"\(\s*(\w+)\s*\?\s*(\w+)\s*:\s*(\w+)\s*\)",
            r"(\2 if \1 else \3)",
            expr,
        )
        expr = expr.replace("~", " not ").replace("&", " and ")
        expr = expr.replace("|", " or ").replace("^", " != ")
        expr = expr.replace("1'b0", "False").replace("1'b1", "True")
        values[lhs] = bool(eval(expr, {"__builtins__": {}}, values))
    return values


class TestVerilog:
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_verilog_matches_netlist(self, seed):
        aig = random_aig(seed, n_pis=5, n_nodes=25, n_pos=3)
        netlist = map_aig(aig)
        buf = io.StringIO()
        write_verilog(netlist, buf)
        text = buf.getvalue()
        assert "module top" in text and "endmodule" in text
        for m in range(32):
            bits = [bool((m >> i) & 1) for i in range(5)]
            env = dict(zip(aig.pi_names, bits))
            values = _evaluate_verilog(text, env)
            expected = evaluate(aig, bits)
            got = [values[name] for name in aig.po_names]
            assert got == expected, f"minterm {m}"

    def test_every_gate_commented_with_cell(self):
        aig = random_aig(1)
        netlist = map_aig(aig)
        buf = io.StringIO()
        write_verilog(netlist, buf)
        assert buf.getvalue().count("//") >= netlist.num_gates


class TestCli:
    def test_stats_roundtrip(self, tmp_path, capsys):
        assert main(["bench", "--circuit", "C432",
                     "--output-dir", str(tmp_path)]) == 0
        assert main(["stats", str(tmp_path / "C432.aag")]) == 0
        out = capsys.readouterr().out
        assert "ands   : 223" in out

    def test_optimize_and_map(self, tmp_path, capsys):
        src = tmp_path / "c.aag"
        from repro.adders import ripple_carry_adder
        from repro.aig import write_aag

        with open(src, "w") as fh:
            write_aag(ripple_carry_adder(3), fh)
        dst = tmp_path / "opt.aag"
        assert main(["optimize", str(src), "--flow", "abc",
                     "-o", str(dst)]) == 0
        assert dst.exists()
        v = tmp_path / "out.v"
        assert main(["map", str(dst), "-o", str(v)]) == 0
        assert "module top" in v.read_text()

    def test_unknown_bench_circuit(self, capsys):
        assert main(["bench", "--circuit", "nope"]) == 1

    def test_blif_io(self, tmp_path, capsys):
        from repro.adders import ripple_carry_adder
        from repro.aig import write_blif

        src = tmp_path / "c.blif"
        with open(src, "w") as fh:
            write_blif(ripple_carry_adder(2), fh)
        dst = tmp_path / "o.blif"
        assert main(["optimize", str(src), "--flow", "abc",
                     "-o", str(dst)]) == 0
        assert dst.read_text().startswith(".model")
