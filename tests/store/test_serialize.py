"""The versioned key/payload codec of the result store."""

from __future__ import annotations

import json

import pytest

from repro.store import (
    PAYLOAD_VERSION,
    StoreDecodeError,
    dumps,
    encode_key,
    key_fingerprint,
    loads,
)


class TestKeys:
    def test_roundtrip_determinism(self):
        key = (123, "tt", "exact", 1024, 0, ("unit",), "auto")
        assert encode_key(key) == encode_key(
            (123, "tt", "exact", 1024, 0, ("unit",), "auto")
        )

    def test_injectivity(self):
        # Every pair of these structurally distinct keys must encode
        # differently — including the classic int/str/bool traps.
        keys = [
            1, "1", True, False, None, 1.0, (1,), [1], (1, 2), ((1,), 2),
            (1, (2,)), ("a", "b"), ("ab",), ("a", "b", ""), ("", "ab"),
            (), [], ("1",), (None,), (True,), 2 ** 70, -(2 ** 70),
        ]
        encodings = [encode_key(k) for k in keys]
        assert len(set(encodings)) == len(encodings)

    def test_rejects_unsupported(self):
        with pytest.raises(TypeError):
            encode_key({1: 2})

    def test_fingerprint_of_leading_int(self):
        assert key_fingerprint((123, "tt")) == 123
        assert key_fingerprint(456) == 456
        assert key_fingerprint(("tt", 123)) == -1
        assert key_fingerprint((True, 1)) == -1
        assert key_fingerprint(()) == -1


class TestPayloads:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            ("tt", (1 << 200) + 7, 9),          # huge truth-table mask
            ("sim", 0xDEADBEEF),
            [("tt", 5, 2), ("tt", 9, 2)],
            {"entries": [1, 2], "meta": ("a", 1)},
            [1, [2, (3, (4,))]],
            [],
            (),
        ],
    )
    def test_roundtrip(self, value):
        assert loads(dumps(value)) == value

    def test_tuples_stay_tuples(self):
        out = loads(dumps(("tt", 3, 2)))
        assert isinstance(out, tuple)
        inner = loads(dumps([("a", 1)]))
        assert isinstance(inner, list) and isinstance(inner[0], tuple)

    def test_garbage_raises(self):
        for junk in (b"", b"garbage", b"\x00\xff", b"{}", b"[1,2,3]"):
            with pytest.raises(StoreDecodeError):
                loads(junk)

    def test_foreign_version_raises(self):
        body = json.dumps([PAYLOAD_VERSION + 1, {"x": 1}]).encode()
        with pytest.raises(StoreDecodeError):
            loads(body)

    def test_rejects_unencodable(self):
        with pytest.raises(TypeError):
            dumps(object())
        with pytest.raises(TypeError):
            dumps({1: "non-str key"})
