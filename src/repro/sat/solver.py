"""A CDCL SAT solver (MiniSat-style).

Features: two-literal watching, first-UIP conflict analysis with clause
learning, VSIDS decision heuristic with an indexed heap, phase saving, Luby
restarts, and incremental solving under assumptions.

External literals use the DIMACS convention: variable ``v`` (1-based) is the
positive literal ``v`` and the negative literal ``-v``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

_UNDEF = -1


def _ilit(ext: int) -> int:
    """DIMACS literal -> internal literal (2*var + sign)."""
    var = abs(ext) - 1
    return var * 2 + (1 if ext < 0 else 0)


def _elit(ilit: int) -> int:
    """Internal literal -> DIMACS literal."""
    var = (ilit >> 1) + 1
    return -var if ilit & 1 else var


def luby(i: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 0-indexed."""
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) >> 1
        seq -= 1
        i %= size
    return 1 << seq


class _VarHeap:
    """Indexed max-heap on variable activity."""

    def __init__(self) -> None:
        self.heap: List[int] = []
        self.pos: Dict[int, int] = {}

    def __contains__(self, var: int) -> bool:
        return var in self.pos

    def push(self, var: int, activity: List[float]) -> None:
        if var in self.pos:
            return
        self.heap.append(var)
        self.pos[var] = len(self.heap) - 1
        self._up(len(self.heap) - 1, activity)

    def pop(self, activity: List[float]) -> int:
        top = self.heap[0]
        last = self.heap.pop()
        del self.pos[top]
        if self.heap:
            self.heap[0] = last
            self.pos[last] = 0
            self._down(0, activity)
        return top

    def update(self, var: int, activity: List[float]) -> None:
        if var in self.pos:
            self._up(self.pos[var], activity)

    def _up(self, i: int, act: List[float]) -> None:
        heap, pos = self.heap, self.pos
        var = heap[i]
        while i > 0:
            parent = (i - 1) >> 1
            if act[heap[parent]] >= act[var]:
                break
            heap[i] = heap[parent]
            pos[heap[i]] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _down(self, i: int, act: List[float]) -> None:
        heap, pos = self.heap, self.pos
        n = len(heap)
        var = heap[i]
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            best = left
            right = left + 1
            if right < n and act[heap[right]] > act[heap[left]]:
                best = right
            if act[heap[best]] <= act[var]:
                break
            heap[i] = heap[best]
            pos[heap[i]] = i
            i = best
        heap[i] = var
        pos[var] = i


class Solver:
    """Incremental CDCL SAT solver."""

    def __init__(self) -> None:
        self.clauses: List[List[int]] = []  # internal-literal clauses
        self.watches: List[List[int]] = []  # per internal literal
        self.assign: List[int] = []  # per var: _UNDEF / 0 (false) / 1 (true)
        self.level: List[int] = []
        self.reason: List[int] = []  # clause index or _UNDEF
        self.trail: List[int] = []  # assigned internal literals
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.activity: List[float] = []
        self.var_inc = 1.0
        self.phase: List[int] = []
        self.heap = _VarHeap()
        self.ok = True
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0

    # -- variables and clauses ------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its 1-based DIMACS index."""
        self.assign.append(_UNDEF)
        self.level.append(0)
        self.reason.append(_UNDEF)
        self.activity.append(0.0)
        self.phase.append(0)
        self.watches.append([])
        self.watches.append([])
        var = len(self.assign) - 1
        self.heap.push(var, self.activity)
        return var + 1

    @property
    def num_vars(self) -> int:
        return len(self.assign)

    def _ensure_var(self, ext: int) -> None:
        while abs(ext) > self.num_vars:
            self.new_var()

    def add_clause(self, ext_lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT."""
        if not self.ok:
            return False
        if self.trail_lim:
            raise RuntimeError("clauses may only be added at decision level 0")
        lits: List[int] = []
        seen = set()
        for ext in ext_lits:
            if ext == 0:
                raise ValueError("literal 0 is invalid")
            self._ensure_var(ext)
            il = _ilit(ext)
            if il ^ 1 in seen:
                return True  # tautology
            if il in seen:
                continue
            value = self._value(il)
            if value == 1 and self.level[il >> 1] == 0:
                return True  # satisfied at root
            if value == 0 and self.level[il >> 1] == 0:
                continue  # falsified at root: drop literal
            seen.add(il)
            lits.append(il)
        if not lits:
            self.ok = False
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], _UNDEF):
                self.ok = False
                return False
            self.ok = self._propagate() == _UNDEF
            return self.ok
        idx = len(self.clauses)
        self.clauses.append(lits)
        self.watches[lits[0] ^ 1].append(idx)
        self.watches[lits[1] ^ 1].append(idx)
        return True

    # -- assignment helpers ----------------------------------------------------

    def _value(self, ilit: int) -> int:
        """0/1 value of an internal literal, or _UNDEF."""
        v = self.assign[ilit >> 1]
        if v == _UNDEF:
            return _UNDEF
        return v ^ (ilit & 1)

    def _enqueue(self, ilit: int, reason: int) -> bool:
        value = self._value(ilit)
        if value == 0:
            return False
        if value == 1:
            return True
        var = ilit >> 1
        self.assign[var] = 1 ^ (ilit & 1)
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.phase[var] = self.assign[var]
        self.trail.append(ilit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # -- propagation ----------------------------------------------------------

    def _propagate(self) -> int:
        """Unit propagation; returns conflicting clause index or _UNDEF."""
        while self.qhead < len(self.trail):
            ilit = self.trail[self.qhead]
            self.qhead += 1
            self.num_propagations += 1
            watch_list = self.watches[ilit]
            new_list: List[int] = []
            conflict = _UNDEF
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                i += 1
                clause = self.clauses[ci]
                # Normalize: watched literal being falsified is ilit^1.
                falsified = ilit ^ 1
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    new_list.append(ci)
                    continue
                # Search for a replacement watch.
                moved = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) != 0:
                        clause[1], clause[j] = clause[j], clause[1]
                        self.watches[clause[1] ^ 1].append(ci)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                new_list.append(ci)
                if not self._enqueue(first, ci):
                    conflict = ci
                    new_list.extend(watch_list[i:])
                    break
            self.watches[ilit] = new_list
            if conflict != _UNDEF:
                self.qhead = len(self.trail)
                return conflict
        return _UNDEF

    # -- conflict analysis ------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(self.num_vars):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
        self.heap.update(var, self.activity)

    def _analyze(self, conflict: int) -> (List[int], int):  # type: ignore[syntax]
        """First-UIP learning; returns (learned clause, backtrack level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * self.num_vars
        counter = 0
        ilit = _UNDEF
        index = len(self.trail) - 1
        clause_idx = conflict
        while True:
            clause = self.clauses[clause_idx]
            start = 0 if ilit == _UNDEF else 1
            for q in clause[start:]:
                var = q >> 1
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= self._decision_level():
                        counter += 1
                    else:
                        learned.append(q)
            # Find the next trail literal to resolve on.
            while not seen[self.trail[index] >> 1]:
                index -= 1
            ilit = self.trail[index]
            index -= 1
            var = ilit >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            clause_idx = self.reason[var]
            # Put the resolved literal first so it is skipped above.
            clause = self.clauses[clause_idx]
            if clause[0] != ilit:
                pos = clause.index(ilit)
                clause[0], clause[pos] = clause[pos], clause[0]
        learned[0] = ilit ^ 1
        if len(learned) == 1:
            bt_level = 0
        else:
            # Second-highest decision level among learned literals.
            max_i = 1
            for i in range(2, len(learned)):
                if self.level[learned[i] >> 1] > self.level[learned[max_i] >> 1]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            bt_level = self.level[learned[1] >> 1]
        return learned, bt_level

    def _backtrack(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        limit = self.trail_lim[target_level]
        for ilit in reversed(self.trail[limit:]):
            var = ilit >> 1
            self.assign[var] = _UNDEF
            self.reason[var] = _UNDEF
            self.heap.push(var, self.activity)
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    def _learn(self, learned: List[int]) -> None:
        if len(learned) == 1:
            self._enqueue(learned[0], _UNDEF)
            return
        idx = len(self.clauses)
        self.clauses.append(learned)
        self.watches[learned[0] ^ 1].append(idx)
        self.watches[learned[1] ^ 1].append(idx)
        self._enqueue(learned[0], idx)

    # -- decisions ---------------------------------------------------------------

    def _decide(self) -> int:
        while self.heap.heap:
            var = self.heap.pop(self.activity)
            if self.assign[var] == _UNDEF:
                return var * 2 + (1 if self.phase[var] == 0 else 0)
        return _UNDEF

    # -- main solve loop -----------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> Optional[bool]:
        """Solve under assumptions; True = SAT (model available).

        With ``max_conflicts`` set, returns None (unknown) once the budget
        is exhausted — callers treat unknown conservatively.
        """
        if not self.ok:
            return False
        self._backtrack(0)
        if self._propagate() != _UNDEF:
            self.ok = False
            return False
        for ext in assumptions:
            self._ensure_var(ext)
        restart_num = 0
        conflict_budget = 64 * luby(restart_num)
        conflicts_here = 0
        total_conflicts = 0
        while True:
            if max_conflicts is not None and total_conflicts > max_conflicts:
                self._backtrack(0)
                return None
            conflict = self._propagate()
            if conflict != _UNDEF:
                self.num_conflicts += 1
                conflicts_here += 1
                total_conflicts += 1
                if self._decision_level() == 0:
                    self.ok = False
                    return False
                if self._decision_level() <= len(assumptions):
                    # Conflict forced by assumptions alone.
                    self._backtrack(0)
                    return False
                learned, bt_level = self._analyze(conflict)
                self._backtrack(max(bt_level, 0))
                if self._decision_level() < len(assumptions):
                    # Learned unit (or backjump) jumped into the assumption
                    # prefix; replay assumptions from scratch.
                    self._learn(learned)
                    self._backtrack(0)
                    continue
                self._learn(learned)
                self.var_inc /= 0.95
                continue
            if conflicts_here >= conflict_budget:
                restart_num += 1
                conflict_budget = 64 * luby(restart_num)
                conflicts_here = 0
                self._backtrack(0)
                continue
            if self._decision_level() < len(assumptions):
                ext = assumptions[self._decision_level()]
                ilit = _ilit(ext)
                value = self._value(ilit)
                if value == 0:
                    return False
                self.trail_lim.append(len(self.trail))
                if value == _UNDEF:
                    self._enqueue(ilit, _UNDEF)
                continue
            decision = self._decide()
            if decision == _UNDEF:
                return True
            self.num_decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(decision, _UNDEF)

    def reset(self) -> None:
        """Backtrack to the root level (allows adding clauses after solve)."""
        self._backtrack(0)

    # -- model access ------------------------------------------------------------

    def model_value(self, ext: int) -> Optional[bool]:
        """Value of a DIMACS literal in the current model (None if free)."""
        var = abs(ext) - 1
        if var >= self.num_vars or self.assign[var] == _UNDEF:
            return None
        val = bool(self.assign[var])
        return val if ext > 0 else not val

    def model(self) -> List[bool]:
        """Full model as a list indexed by variable-1 (free vars -> False)."""
        return [self.assign[v] == 1 for v in range(self.num_vars)]
