"""Cubes (product terms) over a fixed variable count.

A cube is a conjunction of literals, encoded positionally by two bit masks:

* ``mask`` — bit ``i`` set iff variable ``i`` appears in the cube;
* ``value`` — for variables in ``mask``, bit ``i`` gives the required
  polarity (1 = positive literal).  Bits outside ``mask`` are kept zero so
  cubes compare and hash canonically.

The full cube (``mask == 0``) is the tautology.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..tt import TruthTable, cube_tt


class Cube:
    """Immutable product term."""

    __slots__ = ("mask", "value", "nvars")

    def __init__(self, mask: int, value: int, nvars: int):
        self.mask = mask
        self.value = value & mask
        self.nvars = nvars
        if mask >> nvars:
            raise ValueError("cube mask exceeds variable count")

    # -- constructors ------------------------------------------------------

    @classmethod
    def full(cls, nvars: int) -> "Cube":
        """The tautology cube (no literals)."""
        return cls(0, 0, nvars)

    @classmethod
    def from_minterm(cls, minterm: int, nvars: int) -> "Cube":
        """The minterm cube fixing every variable."""
        return cls((1 << nvars) - 1, minterm, nvars)

    @classmethod
    def from_literals(cls, literals: List[Tuple[int, bool]], nvars: int) -> "Cube":
        """Build from ``(variable, polarity)`` pairs."""
        mask = value = 0
        for var, pol in literals:
            if (mask >> var) & 1 and bool((value >> var) & 1) != pol:
                raise ValueError(f"contradictory literals on variable {var}")
            mask |= 1 << var
            if pol:
                value |= 1 << var
        return cls(mask, value, nvars)

    @classmethod
    def parse(cls, text: str) -> "Cube":
        """Parse PLA-style cube text: '1' pos, '0' neg, '-' absent.

        The leftmost character is the highest-numbered variable, matching the
        usual PLA convention.
        """
        nvars = len(text)
        mask = value = 0
        for pos, ch in enumerate(text):
            var = nvars - 1 - pos
            if ch == "1":
                mask |= 1 << var
                value |= 1 << var
            elif ch == "0":
                mask |= 1 << var
            elif ch != "-":
                raise ValueError(f"bad cube character {ch!r}")
        return cls(mask, value, nvars)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Cube)
            and self.mask == other.mask
            and self.value == other.value
            and self.nvars == other.nvars
        )

    def __hash__(self) -> int:
        return hash((self.mask, self.value, self.nvars))

    def __repr__(self) -> str:
        return f"Cube({self.to_string()!r})"

    def to_string(self) -> str:
        """PLA-style text, leftmost char = highest variable."""
        chars = []
        for var in range(self.nvars - 1, -1, -1):
            if (self.mask >> var) & 1:
                chars.append("1" if (self.value >> var) & 1 else "0")
            else:
                chars.append("-")
        return "".join(chars)

    # -- queries -----------------------------------------------------------

    def num_literals(self) -> int:
        """Number of literals in the cube."""
        return bin(self.mask).count("1")

    def literals(self) -> Iterator[Tuple[int, bool]]:
        """Iterate ``(variable, polarity)`` pairs."""
        for var in range(self.nvars):
            if (self.mask >> var) & 1:
                yield var, bool((self.value >> var) & 1)

    def contains_minterm(self, minterm: int) -> bool:
        """True iff the minterm satisfies every literal."""
        return (minterm ^ self.value) & self.mask == 0

    def covers(self, other: "Cube") -> bool:
        """True iff every minterm of ``other`` is in ``self``."""
        if self.mask & ~other.mask:
            return False
        return (self.value ^ other.value) & self.mask == 0

    def intersect(self, other: "Cube") -> Optional["Cube"]:
        """Cube intersection, or None if empty."""
        common = self.mask & other.mask
        if (self.value ^ other.value) & common:
            return None
        return Cube(
            self.mask | other.mask, self.value | other.value, self.nvars
        )

    def distance(self, other: "Cube") -> int:
        """Number of variables on which the cubes conflict."""
        conflict = (self.value ^ other.value) & self.mask & other.mask
        return bin(conflict).count("1")

    # -- transforms ----------------------------------------------------------

    def without(self, var: int) -> "Cube":
        """Drop variable ``var``'s literal (expand the cube)."""
        bit = 1 << var
        return Cube(self.mask & ~bit, self.value & ~bit, self.nvars)

    def with_literal(self, var: int, pol: bool) -> "Cube":
        """Add (or overwrite) a literal."""
        bit = 1 << var
        value = (self.value | bit) if pol else (self.value & ~bit)
        return Cube(self.mask | bit, value, self.nvars)

    def cofactor(self, var: int, pol: bool) -> Optional["Cube"]:
        """Cofactor with respect to ``x_var = pol``; None if contradictory."""
        bit = 1 << var
        if self.mask & bit:
            if bool(self.value & bit) != pol:
                return None
            return self.without(var)
        return self

    def to_tt(self) -> TruthTable:
        """Truth table of the cube."""
        return cube_tt(self.mask, self.value, self.nvars)

    def size(self) -> int:
        """Number of minterms covered."""
        return 1 << (self.nvars - self.num_literals())
