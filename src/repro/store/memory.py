"""Bounded in-memory result store (per-namespace LRU).

Replaces the hand-rolled FIFO dicts the memo layers used to carry: one
:class:`MemoryStore` holds any number of namespaces, each an
insertion-ordered dict used as an LRU (a hit refreshes recency, so a
namespace that is over its bound drops the *least recently used* entry,
not merely the oldest insert).  Values are held by reference — callers
that rely on identity (the SPCF DP memo pool mutates its dicts in place)
get the exact object back on every hit.

Overwrites never evict: re-putting an existing key only refreshes its
value and recency.  The previous ad-hoc caches evicted *before* checking
for the key, so refreshing an entry in a full table silently dropped an
unrelated one — the regression tests in ``tests/store`` and
``tests/core/test_cache.py`` pin the fixed behaviour.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from .. import perf
from .base import MISSING, ResultStore
from .serialize import encode_key, key_fingerprint


class MemoryStore(ResultStore):
    """Thread-safe bounded LRU store; the default (non-persistent) backend."""

    persistent = False

    def __init__(
        self,
        default_limit: int = 4096,
        limits: Optional[Dict[str, int]] = None,
    ) -> None:
        if default_limit < 1:
            raise ValueError("default_limit must be >= 1")
        self.default_limit = default_limit
        self.limits = dict(limits) if limits else {}
        self._lock = threading.Lock()
        # ns -> encoded key -> (fingerprint, value); dicts preserve
        # insertion order, and move-to-end on hit makes them LRUs.
        self._tables: Dict[str, Dict[str, tuple]] = {}

    def limit(self, ns: str) -> int:
        return self.limits.get(ns, self.default_limit)

    def get(self, ns: str, key: Any) -> Any:
        ekey = encode_key(key)
        with self._lock:
            table = self._tables.get(ns)
            if table is None:
                return MISSING
            entry = table.get(ekey)
            if entry is None:
                return MISSING
            # Refresh recency: re-insert at the MRU end.
            del table[ekey]
            table[ekey] = entry
            return entry[1]

    def put(self, ns: str, key: Any, value: Any) -> None:
        ekey = encode_key(key)
        fp = key_fingerprint(key)
        with self._lock:
            table = self._tables.setdefault(ns, {})
            if ekey in table:
                # Overwrite: refresh value and recency, never evict.
                del table[ekey]
            else:
                limit = self.limit(ns)
                while len(table) >= limit:
                    table.pop(next(iter(table)))
                    perf.incr("store.evict")
                    perf.incr(f"store.{ns}.evict")
            table[ekey] = (fp, value)

    def invalidate(
        self, ns: Optional[str] = None, fingerprint: Optional[int] = None
    ) -> int:
        with self._lock:
            spaces = [ns] if ns is not None else list(self._tables)
            removed = 0
            for name in spaces:
                table = self._tables.get(name)
                if table is None:
                    continue
                if fingerprint is None:
                    removed += len(table)
                    table.clear()
                    continue
                stale = [
                    ekey
                    for ekey, (fp, _v) in table.items()
                    if fp == fingerprint
                ]
                for ekey in stale:
                    del table[ekey]
                removed += len(stale)
            return removed

    def stats(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {
                name: {"entries": len(table), "limit": self.limit(name)}
                for name, table in self._tables.items()
            }

    def __repr__(self) -> str:
        sizes = {name: len(t) for name, t in self._tables.items()}
        return f"MemoryStore({sizes})"
