"""Bit-parallel random-simulation signatures for the tiered SPCF kernels.

The SPCF dynamic program in :mod:`repro.core.spcf` tabulates a big-int
truth table per ``(node, budget)`` pair, which dominates wall-clock on wide
cones.  The paper (Sec. 3.1) licenses cheap approximations — the SPCF is
*only a guide metric* — so this module provides the evaluate-cheap layer:

* seeded pattern matrices (random or exhaustive) shared across the whole
  Δ-relaxation loop of one cone;
* bit-parallel value signatures packed into numpy ``uint64`` words, one
  vectorized AND/NOT per node instead of a big-int per minterm;
* floating-mode *arrival bounds*: the per-variable maximum timed-simulation
  arrival over the pattern set.  Under static sensitization a minterm that
  sensitizes a ``t``-long path terminating at ``var`` always drives the
  floating-mode arrival of ``var`` to at least ``t`` (each on-path gate has
  a non-controlling — or itself critical — side input, so the gate's
  arrival is never clipped below the on-path input's arrival plus one).
  With an **exhaustive** pattern matrix the bound is therefore *sound*: if
  ``max_arrival(var) < t`` the exact (and the over-approximate) SPCF entry
  ``(var, t)`` is the constant-0 function, and the DP can memoize it
  without materializing a truth table.

:class:`SpcfPrefilter` packages the bound for the DP.  Exhaustive pattern
sets keep it sound (the default for every cone small enough to be in a
truth-table tier); past :data:`EXHAUSTIVE_PI_LIMIT` it falls back to
:data:`DEFAULT_SIGNATURE_WIDTH` seeded random patterns and turns itself
into a guide-only estimate, which callers must only use where the paper
allows approximation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..aig import AIG, lit_neg, lit_var, random_patterns

DEFAULT_SIGNATURE_WIDTH = 256
"""Random-pattern count for signature prefilters on wide cones."""

EXHAUSTIVE_PI_LIMIT = 12
"""Cones at or under this many PIs get exhaustive (sound) pattern sets."""


# -- pattern matrices --------------------------------------------------------


def random_pi_bits(num_pis: int, width: int, seed: int = 0) -> np.ndarray:
    """Seeded random pattern matrix of shape ``(num_pis, width)``.

    Uses the same generator as :func:`repro.aig.random_patterns`, so a
    signature computed here is bit-compatible with the simulation-mode
    SPCF path for the same ``(width, seed)``.
    """
    return unpack_patterns(random_patterns(num_pis, width, seed), width)


def exhaustive_pi_bits(num_pis: int) -> np.ndarray:
    """All ``2**num_pis`` minterms as a ``(num_pis, 2**num_pis)`` matrix.

    Column ``m`` holds the bits of minterm ``m`` (variable ``i`` is bit
    ``i``), matching the minterm order of :class:`repro.tt.TruthTable`.
    """
    width = 1 << num_pis
    cols = np.arange(width, dtype=np.uint32)
    rows = [((cols >> i) & 1).astype(bool) for i in range(num_pis)]
    return (
        np.array(rows) if rows else np.zeros((0, width), dtype=bool)
    )


def unpack_patterns(words: Sequence[int], width: int) -> np.ndarray:
    """Packed pattern words -> bool matrix of shape ``(len(words), width)``."""
    rows = []
    nbytes = (width + 7) // 8
    for w in words:
        raw = np.frombuffer(
            int(w).to_bytes(nbytes, "little"), dtype=np.uint8
        )
        bits = np.unpackbits(raw, bitorder="little")[:width]
        rows.append(bits.astype(bool))
    return np.array(rows) if rows else np.zeros((0, width), dtype=bool)


def pack_signature(bits: np.ndarray) -> int:
    """Bool vector -> packed Python-int signature (bit ``p`` = pattern p)."""
    raw = np.packbits(bits.astype(np.uint8), bitorder="little").tobytes()
    return int.from_bytes(raw, "little")


def pack_rows(bits: np.ndarray) -> np.ndarray:
    """Bool matrix -> ``uint64`` word matrix, one row of words per row.

    Each row of ``bits`` (one signal's value vector) becomes a row of
    little-endian 64-bit words; trailing bits of the last word are zero.
    """
    if bits.ndim != 2:
        raise ValueError("expected a (signals, patterns) matrix")
    nrows, width = bits.shape
    nwords = (width + 63) // 64
    padded = np.zeros((nrows, nwords * 64), dtype=np.uint8)
    padded[:, :width] = bits.astype(np.uint8)
    packed = np.packbits(padded, axis=1, bitorder="little")
    return packed.view(np.uint64).reshape(nrows, nwords)


# -- bit-parallel simulation -------------------------------------------------


def value_signatures(aig: AIG, pi_bits: np.ndarray) -> np.ndarray:
    """Bit-parallel value words of every variable: ``(num_vars, nwords)``.

    One vectorized AND/NOT over ``uint64`` words per node — the cheap
    evaluation domain the tiered kernels prefilter with.
    """
    width = pi_bits.shape[1] if pi_bits.size else 0
    nwords = max(1, (width + 63) // 64)
    values = np.zeros((aig.num_vars, nwords), dtype=np.uint64)
    if width:
        packed = pack_rows(pi_bits)
        for i, pi in enumerate(aig.pis):
            values[pi] = packed[i]
    full = np.uint64(0xFFFFFFFFFFFFFFFF)
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        a = values[lit_var(f0)]
        if lit_neg(f0):
            a = a ^ full
        b = values[lit_var(f1)]
        if lit_neg(f1):
            b = b ^ full
        values[var] = a & b
    if width % 64:
        # Mask the padding bits so complemented words stay canonical.
        tail = np.uint64((1 << (width % 64)) - 1)
        values[:, -1] &= tail
    return values


def timed_value_simulation(
    aig: AIG,
    pi_bits: np.ndarray,
    pi_arrivals: Optional[Sequence[int]] = None,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Floating-mode timed simulation.

    ``pi_bits`` has shape (num_pis, P).  Returns per-variable boolean value
    vectors and integer arrival-time vectors: a controlled AND output
    arrives one level after its earliest controlling input; an uncontrolled
    output one level after its latest input.  ``pi_arrivals`` (by PI
    position) seeds non-uniform input arrival times; default all zero.
    """
    num_patterns = pi_bits.shape[1] if pi_bits.size else 0
    values: List[np.ndarray] = [
        np.zeros(num_patterns, dtype=bool) for _ in range(aig.num_vars)
    ]
    arrivals: List[np.ndarray] = [
        np.zeros(num_patterns, dtype=np.int32) for _ in range(aig.num_vars)
    ]
    for i, pi in enumerate(aig.pis):
        values[pi] = pi_bits[i]
        if pi_arrivals is not None and pi_arrivals[i]:
            arrivals[pi] = np.full(
                num_patterns, pi_arrivals[i], dtype=np.int32
            )
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        a = values[lit_var(f0)]
        if lit_neg(f0):
            a = ~a
        b = values[lit_var(f1)]
        if lit_neg(f1):
            b = ~b
        ta = arrivals[lit_var(f0)]
        tb = arrivals[lit_var(f1)]
        both_one = a & b
        both_zero = ~a & ~b
        arrival = np.where(
            both_one,
            np.maximum(ta, tb),
            np.where(both_zero, np.minimum(ta, tb), np.where(a, tb, ta)),
        ) + 1
        values[var] = both_one
        arrivals[var] = arrival.astype(np.int32)
    return values, arrivals


def arrival_bounds(
    aig: AIG,
    pi_bits: np.ndarray,
    pi_arrivals: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Per-variable max floating-mode arrival over the pattern set."""
    _values, arrivals = timed_value_simulation(aig, pi_bits, pi_arrivals)
    return np.array(
        [int(a.max()) if a.size else 0 for a in arrivals], dtype=np.int64
    )


# -- the DP prefilter --------------------------------------------------------


class SpcfPrefilter:
    """Timed-simulation pruning bound for the ``(node, budget)`` SPCF DP.

    ``prunes(var, t)`` is True when no simulated pattern drives ``var``'s
    floating-mode arrival to ``t`` or later.  With ``exhaustive=True`` the
    pattern matrix covered every minterm and the verdict is a proof: the
    DP entry is the constant-0 function.  Sampled prefilters are
    guide-metric-only and must not be used where exactness is promised.
    """

    __slots__ = ("bounds", "exhaustive", "width")

    def __init__(self, bounds: np.ndarray, exhaustive: bool, width: int):
        self.bounds = bounds
        self.exhaustive = exhaustive
        self.width = width

    @classmethod
    def for_cone(
        cls,
        aig: AIG,
        pi_arrivals: Optional[Sequence[int]] = None,
        seed: int = 0,
        width: int = DEFAULT_SIGNATURE_WIDTH,
        exhaustive_limit: int = EXHAUSTIVE_PI_LIMIT,
    ) -> "SpcfPrefilter":
        """Build the bound for one cone, exhaustive whenever affordable."""
        if aig.num_pis <= exhaustive_limit:
            pi_bits = exhaustive_pi_bits(aig.num_pis)
            exhaustive = True
        else:
            pi_bits = random_pi_bits(aig.num_pis, width, seed)
            exhaustive = False
        bounds = arrival_bounds(aig, pi_bits, pi_arrivals)
        return cls(bounds, exhaustive, pi_bits.shape[1])

    def prunes(self, var: int, t: int) -> bool:
        return int(self.bounds[var]) < t

    def __repr__(self) -> str:
        kind = "exhaustive" if self.exhaustive else f"sampled({self.width})"
        return f"SpcfPrefilter({kind}, vars={len(self.bounds)})"
