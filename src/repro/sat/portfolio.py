"""SAT portfolio racing: sprint passes, escalation, and config races.

Solver-bound queries in the lookahead flow (cube reachability in
secondary simplification, redundancy proofs in area recovery) have
heavy-tailed runtimes: most resolve in a handful of conflicts, a few eat
the whole budget.  The classic remedy is a portfolio — run several solver
configurations with genuinely different search trajectories and take the
first answer.  This module implements a deterministic variant:

* a cheap **sprint** pass first: the baseline configuration with a small
  conflict budget settles the easy majority of queries outright;
* **escalation** only for queries the sprint cannot settle — in ``sprint``
  mode the same solver simply continues up to the caller's full budget,
  in ``race`` mode every configuration gets round-robin slices with
  doubling conflict budgets until one answers or all hit the cap;
* **sharing**: SAT witnesses harvested from whichever racer wins flow
  into the caller's witness pool, and UNSAT verdicts are memoized in a
  process-global :class:`UnsatCache` keyed by structural fingerprints so
  repeat queries across rounds, Δ values, and outputs short-circuit.

Determinism: the schedule is a fixed rotation with fixed budgets — no
wall-clock, no threads — so a given mode is reproducible run-to-run.
``off`` short-circuits before any portfolio logic and is bit-identical
to the historical single-config flow.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

from .. import perf
from ..store import MemoryStore, Namespace
from ..store import runtime as store_runtime
from .solver import Solver, SolverConfig

MODES = ("off", "sprint", "race")
"""Portfolio modes, in increasing order of machinery per query."""

DEFAULT_CONFIGS: Tuple[SolverConfig, ...] = (
    SolverConfig(name="base"),
    SolverConfig(name="jitter", seed=11, polarity="random"),
    SolverConfig(
        name="geo-neg",
        restart="geometric",
        restart_base=100,
        polarity="false",
        phase_saving=False,
    ),
    SolverConfig(
        name="geo-db",
        seed=23,
        restart="geometric",
        restart_base=150,
        learned_limit=4096,
    ),
)
"""The stock racer set: the baseline plus three diversified strategies."""


class PortfolioConfig:
    """How solver-bound queries are scheduled across configurations."""

    __slots__ = ("mode", "configs", "sprint_conflicts", "race_start", "race_limit")

    def __init__(
        self,
        mode: str = "off",
        configs: Sequence[SolverConfig] = DEFAULT_CONFIGS,
        sprint_conflicts: int = 64,
        race_start: int = 128,
        race_limit: int = 4096,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        configs = tuple(configs)
        if not configs:
            raise ValueError("at least one solver configuration required")
        names = [c.name for c in configs]
        if len(set(names)) != len(names):
            raise ValueError(f"config names must be unique, got {names}")
        if sprint_conflicts < 1:
            raise ValueError("sprint_conflicts must be >= 1")
        if race_start < 1 or race_limit < race_start:
            raise ValueError("need 1 <= race_start <= race_limit")
        self.mode = mode
        self.configs = configs
        self.sprint_conflicts = sprint_conflicts
        self.race_start = race_start
        self.race_limit = race_limit

    def key(self) -> Tuple:
        """Hashable identity (for result caches keyed on configuration)."""
        return (
            self.mode,
            tuple(c.key() for c in self.configs),
            self.sprint_conflicts,
            self.race_start,
            self.race_limit,
        )

    def __repr__(self) -> str:
        return f"PortfolioConfig({self.mode!r}, {len(self.configs)} configs)"


PortfolioSpec = Union[None, str, PortfolioConfig]


def resolve_portfolio(spec: PortfolioSpec = None) -> PortfolioConfig:
    """Normalize a user-facing spec (None / mode string / config object)."""
    if spec is None:
        return PortfolioConfig()
    if isinstance(spec, PortfolioConfig):
        return spec
    if isinstance(spec, str):
        return PortfolioConfig(mode=spec)
    raise TypeError(f"expected portfolio mode or PortfolioConfig, got {spec!r}")


class UnsatCache:
    """Memo of proved-unreachable query cubes, backed by the result store.

    Keys are structural fingerprints of everything the verdict depends on
    (see ``SatCareChecker._query_key``), so a hit is sound across rounds,
    Δ values, outputs, and even separate optimizer runs — and, when the
    process has a persistent runtime store, across invocations: entries
    live in the store's ``unsat`` namespace, so UNSAT verdicts survive to
    warm the next run.  A hit may upgrade what a budget-limited solver
    call would have left UNKNOWN, so portfolio modes that consult the
    cache are deterministic for a fixed store state but not across
    arbitrary cache states; ``off`` never consults it (the determinism
    story is in DESIGN 3.19).

    A standalone instance (``UnsatCache(limit=...)``) owns a private
    bounded in-memory store; ``use_runtime=True`` — how
    :data:`GLOBAL_UNSAT_CACHE` is built — re-resolves the process runtime
    store on every access, so ``--store`` configuration and post-fork
    reopening are picked up transparently.
    """

    __slots__ = ("limit", "_private", "_use_runtime")

    def __init__(self, limit: int = 1 << 16, use_runtime: bool = False) -> None:
        self.limit = limit
        self._use_runtime = use_runtime
        self._private = (
            None
            if use_runtime
            else MemoryStore(default_limit=limit, limits={"unsat": limit})
        )

    def _ns(self) -> Namespace:
        store = (
            store_runtime.get_store() if self._use_runtime else self._private
        )
        return store.namespace("unsat")

    def hit(self, key: Tuple) -> bool:
        if self._ns().contains(key):
            perf.incr("sat.portfolio.unsat_cache.hit")
            return True
        perf.incr("sat.portfolio.unsat_cache.miss")
        return False

    def add(self, key: Tuple) -> None:
        self._ns().put(key, True)

    def clear(self) -> None:
        self._ns().clear()

    def __len__(self) -> int:
        return self._ns().entries()


GLOBAL_UNSAT_CACHE = UnsatCache(use_runtime=True)
"""Shared by every checker in the process; with ``--store`` the verdicts
live in the persistent store and survive across invocations."""


class PortfolioRunner:
    """Schedules one query stream across lazily built racer solvers.

    ``build`` encodes the caller's formula into a fresh :class:`Solver`
    for a given configuration.  Racers beyond the baseline are only built
    on first escalation, so workloads the sprint fully settles never pay
    for extra encodings.  All racers see identical clause streams, hence
    identical variable numbering — callers may reuse one variable map.
    """

    def __init__(
        self,
        config: PortfolioConfig,
        build: Callable[[SolverConfig], Solver],
    ) -> None:
        if config.mode == "off":
            raise ValueError("PortfolioRunner requires a racing mode")
        self.config = config
        self._build = build
        self._solvers: List[Optional[Solver]] = [None] * len(config.configs)
        self.winner: Optional[Solver] = None

    def solver(self, index: int = 0) -> Solver:
        """The racer for config ``index``, built on first use."""
        s = self._solvers[index]
        if s is None:
            s = self._build(self.config.configs[index])
            self._solvers[index] = s
        return s

    def built(self) -> List[Tuple[int, Solver]]:
        """The racers that exist right now, as (config index, solver).

        Callers that extend the shared formula incrementally (lazy cone
        encoding) must feed the new clauses to every *built* racer;
        racers built later replay the extended clause stream via
        ``build``, so the streams stay identical either way.
        """
        return [
            (i, s) for i, s in enumerate(self._solvers) if s is not None
        ]

    def model_value(self, ext: int) -> Optional[bool]:
        """Model literal value from the winning racer (None if no winner)."""
        return self.winner.model_value(ext) if self.winner is not None else None

    def solve(
        self,
        assumptions: Sequence[int],
        baseline_conflicts: Optional[int] = None,
        keep_prefix: int = 0,
    ) -> Optional[bool]:
        """Answer one query; True = SAT (model on :attr:`winner`).

        ``baseline_conflicts`` is the budget the caller would have given a
        single solver; the sprint spends at most ``sprint_conflicts`` of
        it and ``sprint`` mode escalates up to exactly the remainder, so
        an UNKNOWN means an unassisted baseline query would (modulo
        restart phasing) have been UNKNOWN too.  ``keep_prefix`` is
        forwarded to every racer (each retains its own assumption trail).
        """
        cfg = self.config
        perf.incr("sat.portfolio.queries")
        self.winner = None
        sprint_budget = cfg.sprint_conflicts
        if baseline_conflicts is not None:
            sprint_budget = min(sprint_budget, baseline_conflicts)
        primary = self.solver(0)
        before = primary.num_conflicts
        result = primary.solve(
            assumptions, max_conflicts=sprint_budget, keep_prefix=keep_prefix
        )
        spent = primary.num_conflicts - before
        if result is not None:
            self.winner = primary
            perf.incr("sat.portfolio.sprint_wins")
            perf.incr(f"sat.portfolio.win.{cfg.configs[0].name}")
            if baseline_conflicts is not None and baseline_conflicts > spent:
                perf.incr(
                    "sat.portfolio.conflicts_saved",
                    baseline_conflicts - spent,
                )
            return result
        perf.incr("sat.portfolio.escalations")
        if cfg.mode == "sprint":
            full = (
                baseline_conflicts
                if baseline_conflicts is not None
                else cfg.race_limit
            )
            remaining = full - spent
            if remaining <= 0:
                return None
            result = primary.solve(
                assumptions, max_conflicts=remaining, keep_prefix=keep_prefix
            )
            if result is not None:
                self.winner = primary
                perf.incr(f"sat.portfolio.win.{cfg.configs[0].name}")
            return result
        perf.incr("sat.portfolio.races")
        budget = cfg.race_start
        spent_per = [spent] + [0] * (len(cfg.configs) - 1)
        while True:
            progressed = False
            for i in range(len(cfg.configs)):
                if spent_per[i] >= cfg.race_limit:
                    continue
                progressed = True
                racer = self.solver(i)
                before = racer.num_conflicts
                result = racer.solve(
                    assumptions, max_conflicts=budget, keep_prefix=keep_prefix
                )
                spent_per[i] += racer.num_conflicts - before
                if result is not None:
                    self.winner = racer
                    perf.incr(f"sat.portfolio.win.{cfg.configs[i].name}")
                    return result
            if not progressed:
                return None
            budget *= 2
