"""Budget/limit behavior of area recovery."""

from repro.adders import ripple_carry_adder
from repro.aig import AIG, depth, po_tts
from repro.cec import check_equivalence
from repro.core import remove_redundant_edges, sat_sweep
from repro.core import area_recovery as area_recovery_mod
from repro.timing import AigTimingEngine, PrescribedArrival


def duplicated_logic_aig():
    aig = AIG()
    a, b, c = (aig.add_pi() for _ in range(3))
    f = aig.or_(aig.and_(a, b), aig.and_(a, c))
    g = aig.and_(a, aig.or_(b, c))
    aig.add_po(f)
    aig.add_po(g)
    return aig


def test_size_limit_skips_sweeping():
    aig = duplicated_logic_aig()
    swept = sat_sweep(aig, size_limit=1)
    # Above the size limit only structural cleanup happens; the two
    # equal-function cones survive separately.
    assert check_equivalence(aig, swept)
    full = sat_sweep(aig)
    assert full.num_ands() < swept.num_ands()


def test_max_pairs_zero_changes_nothing():
    aig = duplicated_logic_aig()
    swept = sat_sweep(aig, max_pairs=0)
    assert swept.num_ands() == aig.extract().num_ands()


def test_unknown_budget_is_safe():
    # With an absurdly tiny conflict budget every proof is "unknown" and
    # no merge happens — but the result stays equivalent.
    aig = ripple_carry_adder(5)
    swept = sat_sweep(aig, max_conflicts=0)
    assert check_equivalence(aig, swept)


def test_merge_does_not_deepen():
    aig = duplicated_logic_aig()
    swept = sat_sweep(aig)
    assert depth(swept) <= depth(aig)
    assert po_tts(swept) == po_tts(aig)


# -- the max_pairs budget is global, not per-class ---------------------------


def _pairwise_duplicates(num_pairs):
    """``num_pairs`` disjoint equivalence classes of two members each."""
    aig = AIG()
    for _ in range(num_pairs):
        a, b = aig.add_pi(), aig.add_pi()
        f = aig.and_(a, b)
        g = aig.and_(aig.and_(a, b), aig.or_(a, b))  # == a & b, distinct node
        aig.add_po(f)
        aig.add_po(g)
    return aig


def _counting_cnf(monkeypatch, calls):
    """Patch area_recovery's AigCnf so every solver query is counted."""

    class CountingCnf(area_recovery_mod.AigCnf):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            real = self.solver.solve

            def counted(*a, **k):
                calls.append(1)
                return real(*a, **k)

            self.solver.solve = counted

    monkeypatch.setattr(area_recovery_mod, "AigCnf", CountingCnf)


def test_sweep_pair_budget_caps_total_queries(monkeypatch):
    # Four two-member classes offer four candidate pairs; a budget of two
    # must stop the scan globally — remaining classes may not keep
    # burning SAT queries after the budget is gone.
    calls = []
    _counting_cnf(monkeypatch, calls)
    swept = sat_sweep(_pairwise_duplicates(4), max_pairs=2)
    assert len(calls) == 2
    assert check_equivalence(_pairwise_duplicates(4), swept)


def test_sweep_uses_one_query_per_candidate_pair(monkeypatch):
    calls = []
    _counting_cnf(monkeypatch, calls)
    sat_sweep(_pairwise_duplicates(4), max_pairs=100)
    assert len(calls) == 4


# -- redundancy-removal budgets ----------------------------------------------


def redundant_conjunct_aig():
    aig = AIG()
    a, b = aig.add_pi(), aig.add_pi()
    aig.add_po(aig.and_(aig.and_(a, b), aig.or_(a, b)))
    return aig


def test_redundancy_max_checks_zero_changes_nothing():
    aig = redundant_conjunct_aig()
    out = remove_redundant_edges(aig, max_checks=0)
    assert out.num_ands() == aig.extract().num_ands()
    assert check_equivalence(aig, out)


def test_redundancy_unknown_budget_is_safe():
    # Every bounded query returns unknown: no edge may be dropped, and the
    # result must stay equivalent (budget-unknown = keep edge).
    aig = ripple_carry_adder(5)
    out = remove_redundant_edges(aig, max_conflicts=0)
    assert check_equivalence(aig, out)


# -- the never-worsen-arrival merge guard ------------------------------------


def _skewed_pair_aig():
    """Two depth-equal realizations of ``a & b & c``.

    ``slow`` leads with the late input ``a``; ``fast`` hides it behind the
    early pair.  Both have unit depth 2, but under ``a``'s prescribed
    arrival of 4 their completion times are 6 vs 5.
    """
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    c = aig.add_pi("c")
    slow = aig.and_(aig.and_(a, b), c)
    fast = aig.and_(a, aig.and_(b, c))
    aig.add_po(slow, "slow")
    aig.add_po(fast, "fast")
    return aig


def test_arrival_guard_rejects_depth_neutral_worsening_merge():
    aig = _skewed_pair_aig()
    swept = sat_sweep(aig, delay_model=PrescribedArrival({"a": 4}))
    assert check_equivalence(aig, swept)
    engine = AigTimingEngine(swept, PrescribedArrival({"a": 4}))
    # Merging `fast` onto the earlier-id `slow` cone would be depth-neutral
    # but would move its completion from 5 to 6; the guard must reject it.
    assert engine.po_arrivals()[1] == 5


def test_same_merge_is_taken_under_unit_delay():
    aig = _skewed_pair_aig()
    swept = sat_sweep(aig)  # unit delay: the merge is arrival-neutral
    assert check_equivalence(aig, swept)
    assert swept.num_ands() < aig.extract().num_ands()


def test_sweep_on_unextracted_input_never_grows():
    """A live node must not merge onto a *dead* representative.

    Found by the ``area_recovery_equiv`` fuzz invariant (seed 1, case
    1111): a live node merging onto a dead earlier-id representative with
    a *larger* cone resurrects that cone and grows the extracted result.
    Dead representatives stay eligible (a smaller dead cone is a real
    win the seed goldens rely on), but a net-growing sweep must roll back
    to the structural cleanup.
    """
    aig = AIG()
    a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
    ab = aig.and_(a, b)
    bc = aig.and_(b, c)
    aig.and_(ab, bc)  # dead, == a&b&c, 3-AND cone, smallest class id
    live = aig.and_(a, bc)  # live, == a&b&c, 2-AND cone
    aig.add_po(live)
    assert aig.extract().num_ands() == 2
    swept = sat_sweep(aig)
    assert check_equivalence(aig, swept)
    assert swept.num_ands() <= 2
    # The redundancy engine only ever collapses nodes onto their own
    # (live) fan-ins, so it cannot resurrect dead cones either.
    out = remove_redundant_edges(aig)
    assert check_equivalence(aig, out)
    assert out.num_ands() <= 2
