"""Seeded generators: random AIGs, arrival maps, and optimizer configs.

Everything here is a pure function of the :class:`random.Random` instance
passed in, so a fuzz case is reproducible from ``(seed, case_index)``
alone.  Circuits are kept small (a few dozen AND nodes) — the differential
checks run full optimization flows per case, and decades of fuzzing
practice says small inputs find the same bugs faster.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..aig import AIG, lit_not

#: Gate "opcodes" the generator draws from; weights favour AND/OR so the
#: circuits look like real decomposed logic rather than XOR soup.
_OPS = ("and", "and", "or", "or", "xor", "mux", "nand")


def random_aig(
    rng: random.Random,
    num_pis: Optional[int] = None,
    num_gates: Optional[int] = None,
    num_pos: Optional[int] = None,
) -> AIG:
    """A random connected AIG with named PIs and POs.

    Operand choice is biased toward recent literals, which yields deep
    sensitizable chains (the regime the lookahead optimizer targets)
    instead of shallow balanced trees.
    """
    num_pis = num_pis if num_pis is not None else rng.randint(3, 8)
    num_gates = num_gates if num_gates is not None else rng.randint(6, 36)
    aig = AIG()
    pool: List[int] = [aig.add_pi(f"x{i}") for i in range(num_pis)]

    def pick() -> int:
        # Bias toward the tail of the pool: depth grows, cones overlap.
        if rng.random() < 0.6:
            lo = max(0, len(pool) - 6)
            lit = pool[rng.randrange(lo, len(pool))]
        else:
            lit = pool[rng.randrange(len(pool))]
        return lit_not(lit) if rng.random() < 0.3 else lit

    for _ in range(num_gates):
        op = rng.choice(_OPS)
        a, b = pick(), pick()
        if op == "and":
            lit = aig.and_(a, b)
        elif op == "or":
            lit = aig.or_(a, b)
        elif op == "xor":
            lit = aig.xor_(a, b)
        elif op == "nand":
            lit = aig.nand_(a, b)
        else:
            lit = aig.mux_(pick(), a, b)
        pool.append(lit)

    num_pos = num_pos if num_pos is not None else rng.randint(1, 4)
    for i in range(num_pos):
        # Deep literals first so at least one PO exercises the critical
        # machinery; constant-folded picks are fine (edge coverage).
        lo = max(0, len(pool) - 8)
        lit = pool[rng.randrange(lo, len(pool))]
        aig.add_po(lit_not(lit) if rng.random() < 0.3 else lit, f"y{i}")
    return aig


def random_arrival_map(
    rng: random.Random, aig: AIG
) -> Optional[Dict[str, int]]:
    """Random prescribed PI arrivals; ``None`` (unit delay) half the time."""
    if rng.random() < 0.5:
        return None
    names = [n for n in aig.pi_names if rng.random() < 0.7]
    if not names:
        return None
    return {name: rng.randint(0, 6) for name in names}


def random_config(rng: random.Random) -> Dict:
    """Random :class:`~repro.core.LookaheadOptimizer` keyword arguments.

    Bounded to keep a single fuzz case sub-second: few rounds, narrow
    simulation, and the BDD mode is reached through ``auto`` only (its
    PI limits make it rare at fuzz sizes, exactly like production).
    """
    walk_modes = rng.choice((("target",), ("full",), ("target", "full")))
    return {
        "max_rounds": rng.randint(1, 3),
        "mode": rng.choice(("auto", "tt", "sim")),
        "spcf_kind": rng.choice(("exact", "overapprox")),
        "sim_width": rng.choice((128, 256)),
        "seed": rng.randint(0, 3),
        "use_rules": rng.random() < 0.8,
        "max_outputs_per_round": rng.choice((None, 1, 2)),
        "area_recovery": rng.random() < 0.7,
        "area_effort": rng.choice(("low", "medium", "high")),
        "walk_modes": walk_modes,
    }
