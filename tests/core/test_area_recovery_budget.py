"""Budget/limit behavior of area recovery."""

from repro.adders import ripple_carry_adder
from repro.aig import AIG, depth, po_tts
from repro.cec import check_equivalence
from repro.core import sat_sweep


def duplicated_logic_aig():
    aig = AIG()
    a, b, c = (aig.add_pi() for _ in range(3))
    f = aig.or_(aig.and_(a, b), aig.and_(a, c))
    g = aig.and_(a, aig.or_(b, c))
    aig.add_po(f)
    aig.add_po(g)
    return aig


def test_size_limit_skips_sweeping():
    aig = duplicated_logic_aig()
    swept = sat_sweep(aig, size_limit=1)
    # Above the size limit only structural cleanup happens; the two
    # equal-function cones survive separately.
    assert check_equivalence(aig, swept)
    full = sat_sweep(aig)
    assert full.num_ands() < swept.num_ands()


def test_max_pairs_zero_changes_nothing():
    aig = duplicated_logic_aig()
    swept = sat_sweep(aig, max_pairs=0)
    assert swept.num_ands() == aig.extract().num_ands()


def test_unknown_budget_is_safe():
    # With an absurdly tiny conflict budget every proof is "unknown" and
    # no merge happens — but the result stays equivalent.
    aig = ripple_carry_adder(5)
    swept = sat_sweep(aig, max_conflicts=0)
    assert check_equivalence(aig, swept)


def test_merge_does_not_deepen():
    aig = duplicated_logic_aig()
    swept = sat_sweep(aig)
    assert depth(swept) <= depth(aig)
    assert po_tts(swept) == po_tts(aig)
