"""The 15 Table 2 benchmark circuits (functional stand-ins).

The MCNC/ISCAS-85 netlists and the OpenSPARC T1 RTL are not available
offline, so each circuit is a deterministic functional stand-in with the
paper's PI/PO counts and the same flavor of logic (see DESIGN.md §3.11).
ISCAS stand-ins implement the documented function class of the original
(priority interrupt control, ALUs, SECDED); the MCNC ``rot``/``dalu`` are a
barrel rotator and a dedicated ALU; ``i10`` and the OpenSPARC control
blocks use the seeded control fabric.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..aig import AIG, CONST0, lit_not
from . import blocks
from .fabric import control_fabric


def rot() -> AIG:
    """MCNC ``rot`` stand-in: 96-bit barrel rotator + status, 135/107."""
    aig = AIG()
    data = [aig.add_pi(f"d{i}") for i in range(96)]
    amount = [aig.add_pi(f"amt{i}") for i in range(6)]
    ctrl = [aig.add_pi(f"c{i}") for i in range(33)]
    rotated = blocks.rotate_left(aig, data, amount)
    # Mask the rotated word with a control-derived enable per 3-bit group.
    masked = []
    for i, bit in enumerate(rotated):
        en = ctrl[i % 33]
        masked.append(aig.and_(bit, aig.or_(en, ctrl[(i + 7) % 33])))
    for i in range(96):
        aig.add_po(masked[i], f"q{i}")
    # 11 status flags: segment parities, zero-detects, and a compare.
    for seg in range(4):
        aig.add_po(
            blocks.parity_tree(aig, masked[24 * seg : 24 * (seg + 1)]),
            f"par{seg}",
        )
    for seg in range(4):
        aig.add_po(
            lit_not(aig.or_many(masked[24 * seg : 24 * (seg + 1)])),
            f"zero{seg}",
        )
    eq, lt = blocks.ripple_compare(aig, masked[:16], masked[16:32])
    aig.add_po(eq, "eq")
    aig.add_po(lt, "lt")
    aig.add_po(aig.or_many(ctrl), "active")
    assert aig.num_pis == 135 and aig.num_pos == 107
    return aig


def dalu() -> AIG:
    """MCNC ``dalu`` stand-in: dedicated 16-bit ALU, 75/16."""
    aig = AIG()
    a = [aig.add_pi(f"a{i}") for i in range(16)]
    b = [aig.add_pi(f"b{i}") for i in range(16)]
    c = [aig.add_pi(f"c{i}") for i in range(16)]
    op = [aig.add_pi(f"op{i}") for i in range(2)]
    mode = [aig.add_pi(f"mode{i}") for i in range(9)]
    sel = [aig.add_pi(f"sel{i}") for i in range(2)]
    ctrl = [aig.add_pi(f"ctl{i}") for i in range(13)]
    cin = aig.add_pi("cin")
    alu_out, cout = blocks.alu_slice(aig, a, b, op, cin)
    # Second stage folds in the c operand under mode/select control.
    result = []
    for i in range(16):
        folded = aig.mux_(mode[i % 9], aig.xor_(alu_out[i], c[i]), alu_out[i])
        alt = blocks.mux_tree(
            aig, sel, [folded, c[i], alu_out[i], ctrl[i % 13]]
        )
        gated = aig.and_(alt, aig.or_(ctrl[(i + 3) % 13], cout))
        result.append(gated)
    for i, bit in enumerate(result):
        aig.add_po(bit, f"f{i}")
    assert aig.num_pis == 75 and aig.num_pos == 16
    return aig


def i10() -> AIG:
    """MCNC ``i10`` stand-in: large irregular control fabric, 257/224."""
    return control_fabric("i10", 257, 224, seed=0x110, blocks_per_po=0.35)


def c432() -> AIG:
    """ISCAS C432 stand-in: 27-channel priority interrupt controller, 36/7."""
    aig = AIG()
    requests = [aig.add_pi(f"req{i}") for i in range(27)]
    enables = [aig.add_pi(f"en{i}") for i in range(9)]
    # Channel i is gated by its group enable (3 groups of 9).
    gated = [
        aig.and_(requests[i], enables[i % 9]) for i in range(27)
    ]
    grants = blocks.priority_grant(aig, gated)
    code = blocks.encode_onehot(aig, grants, 5)
    for i, bit in enumerate(code):
        aig.add_po(bit, f"code{i}")
    aig.add_po(blocks.priority_valid(aig, gated), "valid")
    aig.add_po(blocks.parity_tree(aig, gated), "parity")
    assert aig.num_pis == 36 and aig.num_pos == 7
    return aig


def c880() -> AIG:
    """ISCAS C880 stand-in: 16-bit ALU with control, 60/26."""
    aig = AIG()
    a = [aig.add_pi(f"a{i}") for i in range(16)]
    b = [aig.add_pi(f"b{i}") for i in range(16)]
    op = [aig.add_pi(f"op{i}") for i in range(2)]
    mask = [aig.add_pi(f"m{i}") for i in range(16)]
    misc = [aig.add_pi(f"x{i}") for i in range(9)]
    cin = aig.add_pi("cin")
    alu_out, cout = blocks.alu_slice(aig, a, b, op, cin)
    result = [aig.and_(o, m) for o, m in zip(alu_out, mask)]
    for i, bit in enumerate(result):
        aig.add_po(bit, f"f{i}")
    aig.add_po(cout, "cout")
    aig.add_po(blocks.parity_tree(aig, result), "parity")
    eq, lt = blocks.ripple_compare(aig, result[:8], result[8:])
    aig.add_po(eq, "eq")
    aig.add_po(lt, "lt")
    grants = blocks.priority_grant(aig, misc)
    code = blocks.encode_onehot(aig, grants, 4)
    for i, bit in enumerate(code):
        aig.add_po(bit, f"g{i}")
    aig.add_po(aig.or_many(misc), "any")
    aig.add_po(aig.and_(cout, aig.or_many(mask)), "ovf")
    assert aig.num_pis == 60 and aig.num_pos == 26
    return aig


def c1908() -> AIG:
    """ISCAS C1908 stand-in: 16-bit SECDED corrector, 33/25."""
    aig = AIG()
    data = [aig.add_pi(f"d{i}") for i in range(16)]
    checks = [aig.add_pi(f"p{i}") for i in range(6)]
    ctrl = [aig.add_pi(f"c{i}") for i in range(11)]
    corrected, syndrome, single, double = blocks.secded_correct(
        aig, data, checks
    )
    enable = aig.or_many(ctrl[:4])
    for i, bit in enumerate(corrected):
        aig.add_po(aig.and_(bit, enable), f"q{i}")
    for i, bit in enumerate(syndrome):
        aig.add_po(bit, f"s{i}")
    aig.add_po(single, "sbe")
    aig.add_po(double, "dbe")
    aig.add_po(aig.and_(single, blocks.parity_tree(aig, ctrl)), "trap")
    aig.add_po(lit_not(aig.or_(single, double)), "ok")
    assert aig.num_pis == 33 and aig.num_pos == 25
    return aig


def c3540() -> AIG:
    """ISCAS C3540 stand-in: 8-bit two-mode ALU, 50/22."""
    aig = AIG()
    a = [aig.add_pi(f"a{i}") for i in range(8)]
    b = [aig.add_pi(f"b{i}") for i in range(8)]
    op = [aig.add_pi(f"op{i}") for i in range(2)]
    mode = [aig.add_pi(f"mode{i}") for i in range(8)]
    mask = [aig.add_pi(f"m{i}") for i in range(8)]
    ctrl = [aig.add_pi(f"c{i}") for i in range(15)]
    cin = aig.add_pi("cin")
    alu_out, cout = blocks.alu_slice(aig, a, b, op, cin)
    # Second "BCD-adjust-like" conditional increment chain.
    adjust = aig.and_(cout, aig.or_many(mode))
    adj_vec = [aig.and_(adjust, m) for m in mode]
    adjusted, cout2 = blocks.ripple_add(aig, alu_out, adj_vec)
    result = [aig.and_(x, m) for x, m in zip(adjusted, mask)]
    for i, bit in enumerate(result):
        aig.add_po(bit, f"f{i}")
    for i, bit in enumerate(alu_out):
        aig.add_po(aig.and_(bit, ctrl[i]), f"r{i}")
    aig.add_po(cout, "cout")
    aig.add_po(cout2, "cadj")
    aig.add_po(blocks.parity_tree(aig, result), "parity")
    eq, lt = blocks.ripple_compare(aig, result, alu_out)
    aig.add_po(eq, "eq")
    aig.add_po(lt, "lt")
    aig.add_po(aig.or_many(ctrl), "any")
    assert aig.num_pis == 50 and aig.num_pos == 22
    return aig


def _sparc(name: str, n_pi: int, n_po: int, seed: int, **kw) -> Callable[[], AIG]:
    def gen() -> AIG:
        return control_fabric(name, n_pi, n_po, seed, **kw)

    gen.__name__ = name
    gen.__doc__ = (
        f"OpenSPARC T1 ``{name}`` stand-in control fabric, {n_pi}/{n_po}."
    )
    return gen


sparc_exu_ecl_flat = _sparc("sparc_exu_ecl_flat", 572, 120, 0xEC1, blocks_per_po=0.35)
lsu_stb_ctl_flat = _sparc("lsu_stb_ctl_flat", 182, 60, 0x57B)
sparc_ifu_dcl_flat = _sparc("sparc_ifu_dcl_flat", 136, 40, 0xDC1)
sparc_ifu_dec_flat = _sparc("sparc_ifu_dec_flat", 131, 50, 0xDEC)
lsu_excpctl_flat = _sparc("lsu_excpctl_flat", 251, 70, 0xE8C, chain_len=16)
sparc_tlu_intctl_flat = _sparc("sparc_tlu_intctl_flat", 82, 30, 0x117)
sparc_ifu_fcl_flat = _sparc("sparc_ifu_fcl_flat", 465, 100, 0xFC1, blocks_per_po=0.4)
tlu_hyperv_flat = _sparc("tlu_hyperv_flat", 449, 90, 0x477, chain_len=14)


BENCHMARKS: Dict[str, Callable[[], AIG]] = {
    "rot": rot,
    "dalu": dalu,
    "i10": i10,
    "C432": c432,
    "C880": c880,
    "C1908": c1908,
    "C3540": c3540,
    "sparc_exu_ecl_flat": sparc_exu_ecl_flat,
    "lsu_stb_ctl_flat": lsu_stb_ctl_flat,
    "sparc_ifu_dcl_flat": sparc_ifu_dcl_flat,
    "sparc_ifu_dec_flat": sparc_ifu_dec_flat,
    "lsu_excpctl_flat": lsu_excpctl_flat,
    "sparc_tlu_intctl_flat": sparc_tlu_intctl_flat,
    "sparc_ifu_fcl_flat": sparc_ifu_fcl_flat,
    "tlu_hyperv_flat": tlu_hyperv_flat,
}
"""The 15 Table 2 circuits by paper name."""
