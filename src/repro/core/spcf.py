"""Speed-path characteristic functions (SPCF).

The SPCF of an output ``y`` at threshold ``delta`` is the set of input
minterms that sensitize paths of length >= ``delta`` logic levels in the
decomposed circuit (Sec. 3 of the paper).  Three computations are provided:

* :func:`spcf_exact_tt` — exact static-sensitization SPCF as a truth table,
  via a dynamic program over (node, required-length) pairs (the path-based
  exact algorithms of [7, 19] reformulated as a node recurrence);
* :func:`spcf_overapprox_tt` — the node-based over-approximation in the
  spirit of telescopic units [20, 21]: a side input may be either
  non-controlling *or itself critical*, which is a superset of the exact
  condition but far cheaper to reason about;
* :func:`spcf_signature` — a floating-mode timed-simulation estimate over a
  random pattern set, used on circuits too large for global functions.

The SPCF is *only a guide metric* (the paper, Sec. 3.1): approximate SPCFs
never compromise correctness of the synthesized lookahead circuit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aig import AIG, levels, lit_neg, lit_var, node_tts
from ..tt import TruthTable


def _sensitization_dp(
    aig: AIG,
    po_lit: int,
    delta: int,
    relaxed: bool,
    tts: Optional[List[TruthTable]] = None,
    arrivals: Optional[Sequence[int]] = None,
) -> TruthTable:
    """Shared DP for the exact and over-approximate SPCF truth tables.

    ``tts`` lets callers pass precomputed node truth tables so the
    Δ-relaxation loop (and the cross-round cone cache) tabulates the
    circuit once instead of once per Δ.

    ``arrivals`` are engine-reported arrival times (integer unit-gate
    model): Δ is interpreted relative to them, so with prescribed PI
    arrivals a path is Δ-critical when it *completes* at time >= Δ —
    a late PI absorbs the residual budget up to its own arrival time.
    """
    n = aig.num_pis
    if tts is None:
        tts = node_tts(aig)
    lvl = arrivals if arrivals is not None else levels(aig)
    const0 = TruthTable.const(False, n)
    const1 = TruthTable.const(True, n)
    memo: Dict[Tuple[int, int], TruthTable] = {}

    def lit_tt(lit: int) -> TruthTable:
        t = tts[lit_var(lit)]
        return ~t if lit_neg(lit) else t

    target = (lit_var(po_lit), delta)
    stack = [target]
    while stack:
        var, t = stack[-1]
        if (var, t) in memo:
            stack.pop()
            continue
        if t <= 0:
            memo[(var, t)] = const1
            stack.pop()
            continue
        if not aig.is_and(var):
            # A PI absorbs any residual budget within its arrival time
            # (always 0 under unit delay); the constant starts nothing.
            memo[(var, t)] = const1 if t <= lvl[var] else const0
            stack.pop()
            continue
        if lvl[var] < t:
            # A node arriving before t cannot terminate a t-path.
            memo[(var, t)] = const0
            stack.pop()
            continue
        f0, f1 = aig.fanins(var)
        v0, v1 = lit_var(f0), lit_var(f1)
        pending = [
            key for key in ((v0, t - 1), (v1, t - 1)) if key not in memo
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        crit0 = memo[(v0, t - 1)]
        crit1 = memo[(v1, t - 1)]
        side0 = lit_tt(f0)  # non-controlling value of input 0 (AND: 1)
        side1 = lit_tt(f1)
        if relaxed:
            through0 = crit0 & (side1 | crit1)
            through1 = crit1 & (side0 | crit0)
        else:
            through0 = crit0 & side1
            through1 = crit1 & side0
        memo[(var, t)] = through0 | through1
    return memo[target]


def spcf_exact_tt(
    aig: AIG,
    po_index: int,
    delta: int,
    tts: Optional[List[TruthTable]] = None,
    arrivals: Optional[Sequence[int]] = None,
) -> TruthTable:
    """Exact static-sensitization SPCF of a PO as a PI-space truth table."""
    return _sensitization_dp(
        aig, aig.pos[po_index], delta, relaxed=False, tts=tts,
        arrivals=arrivals,
    )


def spcf_overapprox_tt(
    aig: AIG,
    po_index: int,
    delta: int,
    tts: Optional[List[TruthTable]] = None,
    arrivals: Optional[Sequence[int]] = None,
) -> TruthTable:
    """Node-based over-approximate SPCF (superset of the exact SPCF)."""
    return _sensitization_dp(
        aig, aig.pos[po_index], delta, relaxed=True, tts=tts,
        arrivals=arrivals,
    )


# -- simulation-based SPCF ------------------------------------------------------


def unpack_patterns(words: Sequence[int], width: int) -> np.ndarray:
    """Packed pattern words -> bool matrix of shape (len(words), width)."""
    rows = []
    nbytes = (width + 7) // 8
    for w in words:
        raw = np.frombuffer(
            int(w).to_bytes(nbytes, "little"), dtype=np.uint8
        )
        bits = np.unpackbits(raw, bitorder="little")[:width]
        rows.append(bits.astype(bool))
    return np.array(rows) if rows else np.zeros((0, width), dtype=bool)


def pack_signature(bits: np.ndarray) -> int:
    """Bool vector -> packed Python-int signature (bit p = pattern p)."""
    raw = np.packbits(bits.astype(np.uint8), bitorder="little").tobytes()
    return int.from_bytes(raw, "little")


def timed_simulation(
    aig: AIG,
    pi_bits: np.ndarray,
    pi_arrivals: Optional[Sequence[int]] = None,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Floating-mode timed simulation.

    ``pi_bits`` has shape (num_pis, P).  Returns per-variable boolean value
    vectors and integer arrival-time vectors: a controlled AND output
    arrives one level after its earliest controlling input; an uncontrolled
    output one level after its latest input.  ``pi_arrivals`` (by PI
    position) seeds non-uniform input arrival times; default all zero.
    """
    num_patterns = pi_bits.shape[1] if pi_bits.size else 0
    values: List[np.ndarray] = [
        np.zeros(num_patterns, dtype=bool) for _ in range(aig.num_vars)
    ]
    arrivals: List[np.ndarray] = [
        np.zeros(num_patterns, dtype=np.int32) for _ in range(aig.num_vars)
    ]
    for i, pi in enumerate(aig.pis):
        values[pi] = pi_bits[i]
        if pi_arrivals is not None and pi_arrivals[i]:
            arrivals[pi] = np.full(
                num_patterns, pi_arrivals[i], dtype=np.int32
            )
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        a = values[lit_var(f0)]
        if lit_neg(f0):
            a = ~a
        b = values[lit_var(f1)]
        if lit_neg(f1):
            b = ~b
        ta = arrivals[lit_var(f0)]
        tb = arrivals[lit_var(f1)]
        both_one = a & b
        both_zero = ~a & ~b
        arrival = np.where(
            both_one,
            np.maximum(ta, tb),
            np.where(both_zero, np.minimum(ta, tb), np.where(a, tb, ta)),
        ) + 1
        values[var] = both_one
        arrivals[var] = arrival.astype(np.int32)
    return values, arrivals


def spcf_signature(
    aig: AIG,
    po_index: int,
    delta: int,
    pi_bits: np.ndarray,
    timed: Optional[Tuple[List[np.ndarray], List[np.ndarray]]] = None,
) -> int:
    """Packed signature of patterns whose floating-mode delay is >= delta."""
    if timed is None:
        timed = timed_simulation(aig, pi_bits)
    _values, arrivals = timed
    po_var = lit_var(aig.pos[po_index])
    return pack_signature(arrivals[po_var] >= delta)


def spcf_exact_bdd(
    aig: AIG,
    po_index: int,
    delta: int,
    bdd,
    size_limit: int = 500_000,
    arrivals: Optional[Sequence[int]] = None,
) -> Optional[int]:
    """Exact static-sensitization SPCF of a PO as a BDD reference.

    Same (node, required-length) dynamic program as the truth-table
    version, run on BDDs so circuits beyond the exhaustive-table limit get
    exact SPCFs too.  Returns None on manager blowup (caller falls back to
    the simulation estimate).
    """
    from ..bdd import FALSE, TRUE, aig_to_bdd, ref_not

    po_lit = aig.pos[po_index]
    lvl = arrivals if arrivals is not None else levels(aig)
    roots = [make_var_lit(v) for v in _cone_and_vars(aig, po_lit)]
    node_refs_list = aig_to_bdd(bdd, aig, roots, size_limit=size_limit)
    if node_refs_list is None:
        return None
    node_refs: Dict[int, int] = {0: FALSE}
    for i, pi in enumerate(aig.pis):
        node_refs[pi] = bdd.var(i)
    for lit, ref in zip(roots, node_refs_list):
        node_refs[lit_var(lit)] = ref

    def lit_ref(lit: int) -> int:
        r = node_refs[lit_var(lit)]
        return ref_not(r) if lit_neg(lit) else r

    memo: Dict[Tuple[int, int], int] = {}
    target = (lit_var(po_lit), delta)
    stack = [target]
    while stack:
        var, t = stack[-1]
        if (var, t) in memo:
            stack.pop()
            continue
        if t <= 0:
            memo[(var, t)] = TRUE
            stack.pop()
            continue
        if not aig.is_and(var):
            memo[(var, t)] = TRUE if t <= lvl[var] else FALSE
            stack.pop()
            continue
        if lvl[var] < t:
            memo[(var, t)] = FALSE
            stack.pop()
            continue
        f0, f1 = aig.fanins(var)
        v0, v1 = lit_var(f0), lit_var(f1)
        pending = [
            key for key in ((v0, t - 1), (v1, t - 1)) if key not in memo
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        through0 = bdd.and_(memo[(v0, t - 1)], lit_ref(f1))
        through1 = bdd.and_(memo[(v1, t - 1)], lit_ref(f0))
        memo[(var, t)] = bdd.or_(through0, through1)
        if bdd.size() > size_limit:
            return None
    return memo[target]


def _cone_and_vars(aig: AIG, po_lit: int):
    seen = set()
    stack = [lit_var(po_lit)]
    order = []
    while stack:
        v = stack.pop()
        if v in seen or not aig.is_and(v):
            continue
        seen.add(v)
        order.append(v)
        f0, f1 = aig.fanins(v)
        stack.append(lit_var(f0))
        stack.append(lit_var(f1))
    return order


def make_var_lit(var: int) -> int:
    """Positive literal of a variable (local helper)."""
    return var << 1


class Spcf:
    """An SPCF in the truth-table, BDD, or signature domain."""

    __slots__ = ("mode", "tt", "signature", "bdd", "ref", "count")

    def __init__(
        self,
        mode: str,
        tt: Optional[TruthTable] = None,
        signature: Optional[int] = None,
        bdd=None,
        ref: Optional[int] = None,
        num_pis: Optional[int] = None,
    ):
        self.mode = mode
        self.tt = tt
        self.signature = signature
        self.bdd = bdd
        self.ref = ref
        if mode == "tt":
            if tt is None:
                raise ValueError("tt mode requires a truth table")
            self.count = tt.count_ones()
        elif mode == "sim":
            if signature is None:
                raise ValueError("sim mode requires a signature")
            self.count = bin(signature).count("1")
        elif mode == "bdd":
            if bdd is None or ref is None or num_pis is None:
                raise ValueError("bdd mode requires bdd, ref, and num_pis")
            self.count = bdd.sat_count(ref, num_pis)
        else:
            raise ValueError(f"unknown SPCF mode {mode!r}")

    def is_empty(self) -> bool:
        return self.count == 0

    def __repr__(self) -> str:
        return f"Spcf(mode={self.mode}, count={self.count})"
