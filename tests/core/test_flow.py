"""Tests for the combined lookahead flow."""

from repro.adders import ripple_carry_adder
from repro.aig import depth
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer, lookahead_flow
from repro.opt import dc_map_effort_high


def test_flow_never_worse_than_conventional():
    aig = ripple_carry_adder(6)
    flow_out = lookahead_flow(
        aig, LookaheadOptimizer(max_rounds=4), max_iterations=2
    )
    conventional = dc_map_effort_high(aig)
    assert depth(flow_out) <= depth(conventional)
    assert check_equivalence(aig, flow_out)


def test_flow_beats_conventional_on_wide_adder():
    # The paper's headline: the decomposition wins where long sensitizable
    # chains remain after conventional optimization.
    aig = ripple_carry_adder(16)
    flow_out = lookahead_flow(aig)
    conventional = dc_map_effort_high(aig)
    assert depth(flow_out) < depth(conventional)
    assert check_equivalence(aig, flow_out)


def test_flow_iteration_limit_respected():
    aig = ripple_carry_adder(4)
    quick = lookahead_flow(
        aig, LookaheadOptimizer(max_rounds=1), max_iterations=1
    )
    assert check_equivalence(aig, quick)


def test_flow_idempotent_at_fixpoint():
    aig = ripple_carry_adder(4)
    opt = LookaheadOptimizer(max_rounds=6)
    once = lookahead_flow(aig, opt)
    twice = lookahead_flow(once, opt)
    assert depth(twice) <= depth(once)
    assert check_equivalence(aig, twice)
