"""Tests for the Simplify/Reduce algorithms and their window invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import ripple_carry_adder
from repro.aig import depth, levels, lit_var
from repro.core import (
    ExactModel,
    Spcf,
    build_sigma,
    primary_reduce,
    simplify_node,
    spcf_exact_tt,
)
from repro.core.simplify import shrink_window
from repro.netlist import compute_levels, node_level, renode
from repro.tt import TruthTable

from ..aig.test_aig import random_aig


def _cone_setup(seed, n_pis=5, n_nodes=25):
    """Random single-output cone network with exact model and SPCF."""
    aig = random_aig(seed, n_pis=n_pis, n_nodes=n_nodes, n_pos=1)
    d = levels(aig)[lit_var(aig.pos[0])]
    if d == 0:
        return None
    spcf_tt = spcf_exact_tt(aig, 0, d)
    if spcf_tt.is_const0:
        return None
    net = renode(aig, k=4).extract_po_cone(0)
    model = ExactModel(net)
    return aig, net, model, model.spcf_fn(Spcf("tt", tt=spcf_tt))


class TestShrinkWindow:
    def test_majority_becomes_xor(self):
        # The canonical CLA derivation: agreement(maj, c) quantified on the
        # late carry input becomes a XOR b.
        maj = TruthTable.from_function(lambda a, b, c: (a + b + c) >= 2, 3)
        c_fn = TruthTable.var(2, 3)
        agreement = ~(maj ^ c_fn)
        window = shrink_window(agreement, [0, 0, 6], late_threshold=6)
        xor_ab = TruthTable.var(0, 3) ^ TruthTable.var(1, 3)
        assert window == xor_ab

    def test_budget_quantification(self):
        t = TruthTable.from_function(lambda a, b: a and b, 2)
        # limit 0 forces quantifying everything: result is forall = const0.
        w = shrink_window(t, [1, 1], late_threshold=5, limit=0)
        assert w.is_const0

    def test_const1_untouched(self):
        w = shrink_window(TruthTable.const(True, 2), [9, 9], 1, limit=0)
        assert w.is_const1


class TestSimplifyInvariant:
    @given(st.integers(0, 60))
    @settings(deadline=None, max_examples=25)
    def test_window_guarantees_agreement(self, seed):
        setup = _cone_setup(seed)
        if setup is None:
            return
        _aig, net, model, spcf_fn = setup
        lv = compute_levels(net)
        for nid in list(net.topo_order()):
            node = net.nodes[nid]
            original = node.tt
            fl = [lv[f] for f in node.fanins]
            outcome = simplify_node(net, nid, fl, model, spcf_fn)
            if not outcome.changed:
                continue
            simplified = net.nodes[nid].tt
            window = outcome.window
            # THE invariant: wherever the window holds, functions agree.
            assert (window & (simplified ^ original)).is_const0
            # Level must strictly improve.
            assert node_level(simplified, fl) < node_level(original, fl)
            # Restore for the next node (each node tested independently).
            net.set_function(nid, original)
            model.recompute()


class TestPrimaryReduce:
    @given(st.integers(0, 60))
    @settings(deadline=None, max_examples=20)
    def test_sigma_implies_output_preserved(self, seed):
        setup = _cone_setup(seed)
        if setup is None:
            return
        _aig, net, model, spcf_fn = setup
        original_tt = net.po_tts()[0]
        result = primary_reduce(net, 0, model, spcf_fn)
        if result.sigma_nid is None:
            return
        model.recompute()
        sigma = model.fn(result.sigma_nid)
        y_pos = net.po_tts()[0]
        # Σ1 = 1 must imply y_pos == y.
        assert (sigma & (y_pos ^ original_tt)).is_const0

    @given(st.integers(0, 60))
    @settings(deadline=None, max_examples=20)
    def test_success_means_level_drop(self, seed):
        setup = _cone_setup(seed)
        if setup is None:
            return
        _aig, net, model, spcf_fn = setup
        root, _ = net.pos[0]
        before = compute_levels(net)[root]
        result = primary_reduce(net, 0, model, spcf_fn)
        after = compute_levels(net)[root]
        if result.success:
            assert after < before

    def test_adder_carry_walk_marks_nodes(self):
        aig = ripple_carry_adder(3)
        cout_po = 3
        d = levels(aig)[lit_var(aig.pos[cout_po])]
        spcf_tt = spcf_exact_tt(aig, cout_po, d)
        net = renode(aig, k=6).extract_po_cone(cout_po)
        model = ExactModel(net)
        result = primary_reduce(net, 0, model, model.spcf_fn(Spcf("tt", tt=spcf_tt)))
        assert result.success
        assert len(result.windows) >= 1


class TestBuildSigma:
    def test_sigma_is_conjunction(self):
        aig = ripple_carry_adder(2)
        net = renode(aig, k=4).extract_po_cone(2)
        model = ExactModel(net)
        # Fabricate two windows on two different nodes.
        internal = [n for n in net.topo_order()]
        windows = {}
        for nid in internal[:2]:
            node = net.nodes[nid]
            k = len(node.fanins)
            if k == 0:
                continue
            windows[nid] = TruthTable.var(0, k)
        if len(windows) < 2:
            return
        sigma_nid = build_sigma(net, windows)
        model.recompute()
        sigma = model.fn(sigma_nid)
        expected = None
        for nid, w in windows.items():
            node = net.nodes[nid]
            fanin_fns = [model.fn(f) for f in node.fanins]
            term = w.compose(fanin_fns)
            expected = term if expected is None else (expected & term)
        assert sigma == expected
