"""Cubes, SOP covers, two-level minimization, and algebraic factoring."""

from .cube import Cube
from .sop import Cover
from .isop import isop
from .qm import minimize_exact, prime_implicants
from .espresso import espresso, min_sop
from .factor import Expr, divide, factor, kernels

__all__ = [
    "Cube",
    "Cover",
    "isop",
    "minimize_exact",
    "prime_implicants",
    "espresso",
    "min_sop",
    "Expr",
    "divide",
    "factor",
    "kernels",
]
