"""Ablation B: reconstruction with vs without implication rules.

The paper credits its 28 implication-based rules for frequent level savings
during reconstruction; this bench quantifies that claim by running the
optimizer with the rule engine enabled and disabled.

Run:  pytest benchmarks/bench_ablation_rules.py --benchmark-only -s
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.adders import ripple_carry_adder
from repro.aig import depth
from repro.bench import BENCHMARKS
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer

CIRCUITS = {
    "adder8": lambda: ripple_carry_adder(8),
    "adder16": lambda: ripple_carry_adder(16),
    "C432": BENCHMARKS["C432"],
}

_results: Dict[str, Dict[str, int]] = {}


@pytest.mark.parametrize("circuit", list(CIRCUITS))
@pytest.mark.parametrize("rules", ["with-rules", "without-rules"])
def test_rules_ablation(benchmark, circuit, rules):
    aig = CIRCUITS[circuit]()

    def run():
        opt = LookaheadOptimizer(
            max_rounds=10, use_rules=(rules == "with-rules")
        )
        return opt.optimize(aig)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert check_equivalence(aig, out)
    _results.setdefault(circuit, {})[rules] = depth(out)


def test_print_rules_ablation(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n\nAblation B: final AIG depth with/without implication rules")
    print(f"{'circuit':10s}{'with-rules':>12}{'without-rules':>15}")
    for circuit, per in _results.items():
        print(
            f"{circuit:10s}{per.get('with-rules', '-'):>12}"
            f"{per.get('without-rules', '-'):>15}"
        )
        if "with-rules" in per and "without-rules" in per:
            assert per["with-rules"] <= per["without-rules"]
