"""The write-through memory-over-disk arrangement ``--store`` builds."""

from __future__ import annotations

from repro import perf
from repro.store import MISSING, MemoryStore, SqliteStore, TieredStore


def _tiers(tmp_path, memory_limit=4):
    disk = SqliteStore(str(tmp_path / "results.db"))
    return TieredStore(MemoryStore(default_limit=memory_limit), disk)


def test_write_through_lands_in_both_tiers(tmp_path):
    store = _tiers(tmp_path)
    store.put("ns", (1,), ("tt", 5, 2))
    assert store.memory.get("ns", (1,)) == ("tt", 5, 2)
    assert store.disk.get("ns", (1,)) == ("tt", 5, 2)
    assert store.get("ns", (1,)) == ("tt", 5, 2)
    store.close()


def test_disk_hit_promotes_into_memory(tmp_path):
    store = _tiers(tmp_path)
    store.disk.put("ns", (1,), "cold")  # simulate a prior process's write
    assert store.memory.get("ns", (1,)) is MISSING
    before = perf.counter("store.promote")
    assert store.get("ns", (1,)) == "cold"
    assert perf.counter("store.promote") == before + 1
    assert store.memory.get("ns", (1,)) == "cold"
    # Second lookup is a pure memory hit: no further promotion.
    assert store.get("ns", (1,)) == "cold"
    assert perf.counter("store.promote") == before + 1
    store.close()


def test_memory_eviction_does_not_lose_disk_copy(tmp_path):
    store = _tiers(tmp_path, memory_limit=2)
    for i in range(5):
        store.put("ns", (i,), i)
    assert store.memory.stats()["ns"]["entries"] == 2
    # Everything is still reachable through the disk tier.
    for i in range(5):
        assert store.get("ns", (i,)) == i
    store.close()


def test_invalidate_clears_both_tiers(tmp_path):
    store = _tiers(tmp_path)
    store.put("ns", (100, "a"), 1)
    store.put("ns", (200, "a"), 2)
    assert store.invalidate("ns", fingerprint=100) == 1
    assert store.get("ns", (100, "a")) is MISSING
    assert store.get("ns", (200, "a")) == 2
    assert store.invalidate() == 1
    assert store.get("ns", (200, "a")) is MISSING
    store.close()


def test_stats_merges_disk_and_memory_views(tmp_path):
    store = _tiers(tmp_path, memory_limit=2)
    for i in range(3):
        store.put("ns", (i,), i)
    stats = store.stats()
    assert stats["ns"]["entries"] == 3          # durable truth
    assert stats["ns"]["memory_entries"] == 2   # bounded hot set
    assert stats["ns"]["memory_limit"] == 2
    store.close()


def test_persistence_survives_a_fresh_tiered_store(tmp_path):
    store = _tiers(tmp_path)
    store.put("ns", (1,), ("tt", 9, 3))
    store.close()
    warm = _tiers(tmp_path)
    assert warm.persistent
    assert warm.path.endswith("results.db")
    assert warm.get("ns", (1,)) == ("tt", 9, 3)
    warm.close()
