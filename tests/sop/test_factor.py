"""Tests for algebraic division, kernels, and factoring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sop import Cover, Cube, divide, factor, kernels, min_sop
from repro.sop.factor import (
    best_kernel,
    common_cube,
    expr_to_cover,
    is_cube_free,
    _to_acubes,
)
from repro.tt import TruthTable


def tt_strategy(max_vars=5):
    return st.integers(1, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable, st.integers(0, (1 << (1 << n)) - 1), st.just(n)
        )
    )


def _acubes(texts):
    return _to_acubes(Cover.parse(texts))


class TestDivision:
    def test_exact_division(self):
        # f = a b + a c = a (b + c): divide by (b + c).
        f = _acubes(["-11", "1-1"])  # x1x0, x2x0 with x0 = a
        d = _acubes(["-1-", "1--"])  # x1, x2
        q, r = divide(f, d)
        assert q == [frozenset({(0, True)})]
        assert r == []

    def test_division_with_remainder(self):
        # f = ab + ac + d.
        f = _acubes(["--11", "-1-1", "1---"])
        d = _acubes(["--1-", "-1--"])
        q, r = divide(f, d)
        assert len(q) == 1 and len(r) == 1

    def test_non_divisor(self):
        f = _acubes(["--1"])
        d = _acubes(["11-"])
        q, r = divide(f, d)
        assert q == [] and len(r) == 1

    @given(tt_strategy(4))
    @settings(deadline=None)
    def test_divide_reconstructs(self, t):
        cover = min_sop(t)
        f = _to_acubes(cover)
        ker = best_kernel(f)
        if ker is None:
            return
        q, r = divide(f, ker)
        if not q:
            return
        # f == ker*q + r as cube sets.
        product = {kc | qc for kc in ker for qc in q}
        assert product | set(r) == set(f)


class TestKernels:
    def test_common_cube(self):
        f = _acubes(["-11", "111"])
        assert common_cube(f) == frozenset({(0, True), (1, True)})

    def test_cube_free(self):
        assert is_cube_free(_acubes(["-1-", "1--"]))
        assert not is_cube_free(_acubes(["-11", "1-1"]))

    def test_kernels_of_classic_example(self):
        # f = ace + bce + de + g (the classic SIS example, one-hot coded).
        # Variables: a=0,b=1,c=2,d=3,e=4,g=5.
        f = [
            frozenset({(0, True), (2, True), (4, True)}),
            frozenset({(1, True), (2, True), (4, True)}),
            frozenset({(3, True), (4, True)}),
            frozenset({(5, True)}),
        ]
        kernel_sets = [frozenset(k) for _c, k in kernels(f)]
        ab = frozenset(
            {frozenset({(0, True)}), frozenset({(1, True)})}
        )
        assert ab in kernel_sets  # (a + b) is a kernel (co-kernel ce)


class TestFactor:
    @given(tt_strategy())
    @settings(deadline=None)
    def test_factor_preserves_function(self, t):
        cover = min_sop(t)
        expr = factor(cover)
        assert expr_to_cover(expr, t.nvars).to_tt() == t

    @given(tt_strategy(4))
    @settings(deadline=None)
    def test_factor_never_more_literals_than_cover(self, t):
        cover = min_sop(t)
        assert factor(cover).num_literals() <= max(cover.num_literals(), 1)

    def test_factor_finds_sharing(self):
        # ab + ac + ad = a(b + c + d): 4 literals factored vs 6 flat.
        cov = Cover.parse(["--11", "-1-1", "1--1"])
        assert factor(cov).num_literals() == 4

    def test_constants(self):
        assert factor(Cover.empty(3)).kind == "const0"
        assert factor(Cover.tautology(3)).kind == "const1"
