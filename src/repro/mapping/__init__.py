"""Technology mapping, static timing analysis, and power estimation."""

from .library import (
    FREQUENCY_HZ,
    NOMINAL_LOAD_FF,
    VDD,
    Cell,
    default_library,
)
from .mapper import GateInstance, MappedNetlist, map_aig
from .sta import analyze, mapped_delay, required_times, signal_loads, slacks
from .power import dynamic_power_uw, switching_activities
from .verilog import write_verilog

__all__ = [
    "FREQUENCY_HZ",
    "NOMINAL_LOAD_FF",
    "VDD",
    "Cell",
    "default_library",
    "GateInstance",
    "MappedNetlist",
    "map_aig",
    "analyze",
    "mapped_delay",
    "required_times",
    "signal_loads",
    "slacks",
    "dynamic_power_uw",
    "switching_activities",
    "write_verilog",
]
