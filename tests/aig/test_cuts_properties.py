"""Property tests for cut enumeration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import (
    cut_volume,
    enumerate_cuts,
    fanin_cone_vars,
    lit_var,
    mffc_vars,
)

from .test_aig import random_aig


class TestCutEnumeration:
    @given(st.integers(0, 30), st.integers(3, 6))
    @settings(deadline=None, max_examples=15)
    def test_cuts_are_real_cuts(self, seed, k):
        # Every cut must separate the node from the PIs: walking the cone
        # from the root must terminate at cut leaves only.
        aig = random_aig(seed, n_pis=6, n_nodes=30)
        cuts = enumerate_cuts(aig, k=k)
        for var in aig.and_vars():
            for cut in cuts[var]:
                if not cut:
                    continue
                leaf_set = set(cut)
                stack = [var]
                seen = set()
                while stack:
                    v = stack.pop()
                    if v in leaf_set or v in seen:
                        continue
                    seen.add(v)
                    assert aig.is_and(v), (
                        f"cut {cut} of {var} does not cover PI {v}"
                    )
                    f0, f1 = aig.fanins(v)
                    stack.append(lit_var(f0))
                    stack.append(lit_var(f1))

    @given(st.integers(0, 30))
    @settings(deadline=None, max_examples=10)
    def test_no_dominated_cuts(self, seed):
        aig = random_aig(seed, n_pis=5, n_nodes=25)
        cuts = enumerate_cuts(aig, k=4)
        for var in aig.and_vars():
            non_trivial = [c for c in cuts[var] if c != (var,)]
            for i, a in enumerate(non_trivial):
                for j, b in enumerate(non_trivial):
                    if i != j:
                        assert not (
                            set(a) < set(b)
                        ), f"cut {b} dominated by {a}"

    @given(st.integers(0, 30))
    @settings(deadline=None, max_examples=10)
    def test_leaves_sorted_and_unique(self, seed):
        aig = random_aig(seed)
        cuts = enumerate_cuts(aig, k=5)
        for var_cuts in cuts:
            for cut in var_cuts:
                assert list(cut) == sorted(set(cut))

    @given(st.integers(0, 30))
    @settings(deadline=None, max_examples=10)
    def test_volume_bounded_by_cone(self, seed):
        aig = random_aig(seed, n_pis=5, n_nodes=25)
        cuts = enumerate_cuts(aig, k=4)
        for var in aig.and_vars():
            cone_ands = sum(
                1
                for v in fanin_cone_vars(aig, [var * 2])
                if aig.is_and(v)
            )
            for cut in cuts[var]:
                if cut and cut != (var,):
                    vol = cut_volume(aig, var, list(cut))
                    assert 1 <= vol <= cone_ands


class TestMffc:
    @given(st.integers(0, 30))
    @settings(deadline=None, max_examples=10)
    def test_mffc_contains_root(self, seed):
        aig = random_aig(seed, n_pis=5, n_nodes=25)
        for var in list(aig.and_vars())[:10]:
            mffc = mffc_vars(aig, var)
            assert var in mffc
            assert all(aig.is_and(v) for v in mffc)
