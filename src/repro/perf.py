"""Lightweight performance telemetry and the perf-layer configuration.

A process-global :class:`PerfRegistry` collects named counters and scoped
wall-time timers from the optimizer hot paths (rounds, cache hits, worker
utilization, per-phase timings).  The registry is cheap enough to leave on
unconditionally: a counter bump is one dict update, a timer two
``perf_counter`` calls.  ``repro.cli --profile`` prints the report after a
run; tests read individual counters through :func:`counter`.

This module also owns the perf-layer knobs:

* ``REPRO_WORKERS`` — worker-process count for the parallel per-output
  lookahead rounds.  Defaults to ``os.cpu_count()``; ``1`` means the
  serial in-process path (always used as fallback on 1-CPU machines).

Worker processes keep their own registry; the optimizer merges the phase
timings a worker reports back into the parent registry, so the report
always describes the whole computation regardless of the worker count.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple


class PerfRegistry:
    """Named counters and accumulated wall-time timers (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, Tuple[float, int]] = {}  # total s, calls
        # name -> [count, total s, max s, {log2-microsecond bucket: count}]
        self._hists: Dict[str, list] = {}

    # -- counters ----------------------------------------------------------

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- timers ------------------------------------------------------------

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds`` of wall time to timer ``name``."""
        with self._lock:
            total, count = self._timers.get(name, (0.0, 0))
            self._timers[name] = (total + seconds, count + calls)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Scope whose wall time is credited to timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def seconds(self, name: str) -> float:
        """Accumulated wall time of a timer (0.0 if never used)."""
        with self._lock:
            return self._timers.get(name, (0.0, 0))[0]

    # -- latency histograms ------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency sample into histogram ``name``.

        Samples land in logarithmic microsecond buckets (bucket ``b``
        holds latencies below ``2**b`` µs), cheap enough for per-SAT-query
        instrumentation while still answering tail questions (p50/p95).
        """
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = [0, 0.0, 0.0, {}]
            hist[0] += 1
            hist[1] += seconds
            if seconds > hist[2]:
                hist[2] = seconds
            bucket = int(seconds * 1e6).bit_length()
            buckets = hist[3]
            buckets[bucket] = buckets.get(bucket, 0) + 1

    def histogram(self, name: str) -> Optional[Dict]:
        """Snapshot of one histogram (None if never observed)."""
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                return None
            return {
                "count": hist[0],
                "total": hist[1],
                "max": hist[2],
                "buckets": dict(hist[3]),
            }

    def percentile(self, name: str, q: float) -> float:
        """Upper bound (seconds) of the bucket holding quantile ``q``."""
        hist = self.histogram(name)
        if hist is None or not hist["count"]:
            return 0.0
        need = q * hist["count"]
        seen = 0
        for bucket in sorted(hist["buckets"]):
            seen += hist["buckets"][bucket]
            if seen >= need:
                return (1 << bucket) * 1e-6
        return hist["max"]

    # -- aggregate views ---------------------------------------------------

    def reset(self) -> None:
        """Clear all counters, timers, and histograms."""
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._hists.clear()

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict copy of the current state (JSON-serializable)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {
                    name: {"seconds": total, "calls": calls}
                    for name, (total, calls) in self._timers.items()
                },
                "histograms": {
                    name: {
                        "count": hist[0],
                        "total": hist[1],
                        "max": hist[2],
                        "buckets": dict(hist[3]),
                    }
                    for name, hist in self._hists.items()
                },
            }

    def merge(self, snapshot: Dict[str, Dict]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self.incr(name, value)
        for name, entry in snapshot.get("timers", {}).items():
            self.add_time(name, entry["seconds"], entry.get("calls", 1))
        for name, entry in snapshot.get("histograms", {}).items():
            with self._lock:
                hist = self._hists.get(name)
                if hist is None:
                    hist = self._hists[name] = [0, 0.0, 0.0, {}]
                hist[0] += entry["count"]
                hist[1] += entry["total"]
                hist[2] = max(hist[2], entry["max"])
                for bucket, count in entry["buckets"].items():
                    bucket = int(bucket)  # JSON round-trips keys as strings
                    hist[3][bucket] = hist[3].get(bucket, 0) + count

    def ratio(self, hits: str, misses: str) -> float:
        """Hit rate ``hits / (hits + misses)`` of a counter pair (0.0 empty)."""
        h, m = self.counter(hits), self.counter(misses)
        return h / (h + m) if h + m else 0.0

    def report(self) -> str:
        """Human-readable multi-line report of every counter and timer."""
        snap = self.snapshot()
        lines = ["perf counters:"]
        if not snap["counters"]:
            lines.append("  (none)")
        for name in sorted(snap["counters"]):
            lines.append(f"  {name:<32s} {snap['counters'][name]:>10d}")
        if snap["histograms"]:
            lines.append("perf histograms:")
            for name in sorted(snap["histograms"]):
                entry = snap["histograms"][name]
                p50 = self.percentile(name, 0.50)
                p95 = self.percentile(name, 0.95)
                lines.append(
                    f"  {name:<32s} n={entry['count']}"
                    f" total={entry['total']:.3f}s"
                    f" max={entry['max'] * 1e3:.2f}ms"
                    f" p50<={p50 * 1e3:.2f}ms p95<={p95 * 1e3:.2f}ms"
                )
        lines.append("perf timers:")
        if not snap["timers"]:
            lines.append("  (none)")
        for name in sorted(snap["timers"]):
            entry = snap["timers"][name]
            lines.append(
                f"  {name:<32s} {entry['seconds']:>10.3f}s"
                f"  x{entry['calls']}"
            )
        for pair, label in (
            (("store.hit", "store.miss"), "result store hit rate"),
            (("serve.store.hit", "serve.store.miss"), "serve store hit rate"),
            (("cache.spcf.hit", "cache.spcf.miss"), "spcf cache hit rate"),
            (("cache.tts.hit", "cache.tts.miss"), "tts cache hit rate"),
            (("cache.dp.hit", "cache.dp.miss"), "spcf DP memo hit rate"),
            (
                ("secondary.witness.hit", "secondary.sat.calls"),
                "secondary witness hit rate",
            ),
            (
                ("area.prefilter.hit", "area.prefilter.miss"),
                "area prefilter hit rate",
            ),
        ):
            h, m = (snap["counters"].get(k, 0) for k in pair)
            if h + m:
                lines.append(f"  {label:<32s} {h / (h + m):>10.1%}")
        busy = snap["timers"].get("workers.busy", {}).get("seconds", 0.0)
        wall = snap["timers"].get("workers.capacity", {}).get("seconds", 0.0)
        if wall > 0:
            lines.append(f"  {'worker utilization':<32s} {busy / wall:>10.1%}")
        return "\n".join(lines)


PERF = PerfRegistry()
"""The process-global registry used by the optimizer and the CLI."""


def delta(before: Dict[str, Dict], after: Dict[str, Dict]) -> Dict[str, Dict]:
    """Difference of two :meth:`PerfRegistry.snapshot` dicts.

    Worker processes accumulate into their own process-global registry
    across tasks; a task that wants to report only *its* contribution
    snapshots the registry before and after and ships the delta back to
    the parent, which folds it in with :func:`merge`.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        d = value - before.get("counters", {}).get(name, 0)
        if d:
            counters[name] = d
    timers = {}
    for name, entry in after.get("timers", {}).items():
        prev = before.get("timers", {}).get(name, {"seconds": 0.0, "calls": 0})
        ds = entry["seconds"] - prev["seconds"]
        dc = entry.get("calls", 0) - prev.get("calls", 0)
        if ds or dc:
            timers[name] = {"seconds": ds, "calls": dc}
    histograms = {}
    for name, entry in after.get("histograms", {}).items():
        prev = before.get("histograms", {}).get(name)
        if prev is None:
            histograms[name] = entry
            continue
        dn = entry["count"] - prev["count"]
        if not dn:
            continue
        buckets = {}
        for bucket, count in entry["buckets"].items():
            dc = count - prev["buckets"].get(bucket, 0)
            if dc:
                buckets[bucket] = dc
        histograms[name] = {
            "count": dn,
            "total": entry["total"] - prev["total"],
            # The true window max is unrecoverable from aggregates; the
            # process max is a valid upper bound and merging takes max.
            "max": entry["max"],
            "buckets": buckets,
        }
    return {"counters": counters, "timers": timers, "histograms": histograms}


# Module-level conveniences bound to the global registry.
incr = PERF.incr
counter = PERF.counter
add_time = PERF.add_time
timer = PERF.timer
seconds = PERF.seconds
observe = PERF.observe
histogram = PERF.histogram
percentile = PERF.percentile
reset = PERF.reset
snapshot = PERF.snapshot
merge = PERF.merge
ratio = PERF.ratio
report = PERF.report


# -- configuration ----------------------------------------------------------

WORKERS_ENV = "REPRO_WORKERS"
"""Environment variable selecting the parallel-round worker count."""


def get_workers(override: Optional[int] = None) -> int:
    """Resolve the worker-process count for parallel lookahead rounds.

    Precedence: explicit ``override`` (e.g. ``LookaheadOptimizer(workers=)``)
    > the ``REPRO_WORKERS`` environment variable > ``os.cpu_count()``.
    The result is always >= 1; 1 selects the serial in-process path.
    """
    if override is not None:
        return max(1, int(override))
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1
