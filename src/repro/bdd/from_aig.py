"""Building BDDs from AIG cones."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..aig import AIG, lit_neg, lit_var
from .bdd import BDD, FALSE, ref_not


def aig_to_bdd(
    bdd: BDD,
    aig: AIG,
    roots: Sequence[int],
    pi_refs: Optional[Dict[int, int]] = None,
    size_limit: Optional[int] = None,
) -> Optional[List[int]]:
    """BDD references for the given AIG root literals.

    ``pi_refs`` maps PI *variables* to BDD references; by default PI number
    ``i`` maps to BDD variable ``i``.  Returns None if ``size_limit`` BDD
    nodes would be exceeded (caller falls back to another SPCF method).
    """
    refs: Dict[int, int] = {0: FALSE}
    if pi_refs is None:
        for i, pi in enumerate(aig.pis):
            refs[pi] = bdd.var(i)
    else:
        refs.update(pi_refs)
    order = _cone_order(aig, roots)
    for var in order:
        f0, f1 = aig.fanins(var)
        a = refs[lit_var(f0)]
        if lit_neg(f0):
            a = ref_not(a)
        b = refs[lit_var(f1)]
        if lit_neg(f1):
            b = ref_not(b)
        refs[var] = bdd.and_(a, b)
        if size_limit is not None and bdd.size() > size_limit:
            return None
    out = []
    for lit in roots:
        r = refs[lit_var(lit)]
        out.append(ref_not(r) if lit_neg(lit) else r)
    return out


def _cone_order(aig: AIG, roots: Iterable[int]) -> List[int]:
    """AND variables of the root cones in topological order."""
    needed = set()
    stack = [lit_var(r) for r in roots]
    while stack:
        v = stack.pop()
        if v in needed or not aig.is_and(v):
            continue
        needed.add(v)
        f0, f1 = aig.fanins(v)
        stack.append(lit_var(f0))
        stack.append(lit_var(f1))
    return [v for v in aig.and_vars() if v in needed]
