"""White-box tests of the three Simplify cases (Fig. 1) via a stub model."""

from repro.core.simplify import simplify_node
from repro.netlist import Network
from repro.tt import TruthTable


class StubModel:
    """Weight oracle: returns predetermined weights per cube pattern."""

    def __init__(self, weight_fn):
        self.weight_fn = weight_fn
        self.recomputed = 0

    def cube_weight(self, spcf_fn, nid, cube):
        return self.weight_fn(cube)

    def recompute(self):
        self.recomputed += 1


def majority_network():
    net = Network()
    pis = [net.add_pi(f"x{i}") for i in range(3)]
    maj = TruthTable.from_function(lambda a, b, c: (a + b + c) >= 2, 3)
    nid = net.add_node(pis, maj)
    net.add_po(nid)
    return net, nid, maj


class TestCaseA:
    def test_all_offset_zero_weight_grows_from_const0(self):
        # SPCF never drives the node to 0: off-set cubes weigh 0 -> case A.
        net, nid, maj = majority_network()
        model = StubModel(
            lambda cube: 0.0 if not maj.implies(~cube.to_tt() | maj) else 0.0
        )

        def weights(cube):
            # Off-set cubes (cube inside ~maj) weigh 0; on-set cubes > 0.
            return 0.9 if cube.to_tt().implies(maj) else 0.0

        model = StubModel(weights)
        # Late fan-in levels force a level-reduction opportunity.
        outcome = simplify_node(net, nid, [0, 0, 6], model, spcf_fn=None)
        assert outcome.changed
        simplified = net.nodes[nid].tt
        # Case A invariant: the new on-set is inside the old one and the
        # window (== simplified function, possibly shrunk) certifies it.
        assert simplified.implies(maj)
        assert (outcome.window & (simplified ^ maj)).is_const0

    def test_no_spcf_mass_still_safe(self):
        # With an empty SPCF every weight is 0 and case A fires vacuously;
        # the optimizer filters empty SPCFs earlier, but even here the
        # window invariant must hold.
        net, nid, maj = majority_network()
        model = StubModel(lambda cube: 0.0)
        outcome = simplify_node(net, nid, [0, 0, 0], model, spcf_fn=None)
        if outcome.changed:
            simplified = net.nodes[nid].tt
            assert (outcome.window & (simplified ^ maj)).is_const0


class TestCaseB:
    def test_all_onset_zero_weight_carves_from_const1(self):
        net, nid, maj = majority_network()

        def weights(cube):
            return 0.0 if cube.to_tt().implies(maj) else 0.8

        model = StubModel(weights)
        outcome = simplify_node(net, nid, [0, 0, 6], model, spcf_fn=None)
        assert outcome.changed
        simplified = net.nodes[nid].tt
        assert maj.implies(simplified)  # off-set only shrank
        assert (outcome.window & (simplified ^ maj)).is_const0


class TestCaseC:
    def test_mixed_weights_commit_both_sides(self):
        net, nid, maj = majority_network()

        def weights(cube):
            # The carry-chain pattern: cubes containing the late input
            # (position 2) carry weight; pure-early cubes don't.
            return 0.7 if (cube.mask >> 2) & 1 else 0.2

        model = StubModel(weights)
        # The window-depth budget (window_limit) is what Reduce passes in;
        # a tight budget forces the window off the late fan-in — the
        # canonical CLA outcome.
        outcome = simplify_node(
            net, nid, [0, 0, 6], model, spcf_fn=None, window_limit=2
        )
        assert outcome.changed
        simplified = net.nodes[nid].tt
        assert (outcome.window & (simplified ^ maj)).is_const0
        assert not outcome.window.depends_on(2)


class TestConstraints:
    def test_constant_node_untouched(self):
        net = Network()
        a = net.add_pi()
        nid = net.add_node([a], TruthTable.const(True, 1))
        net.add_po(nid)
        model = StubModel(lambda cube: 1.0)
        assert not simplify_node(net, nid, [3], model, None).changed

    def test_level_zero_node_untouched(self):
        net = Network()
        a = net.add_pi()
        nid = net.add_node([a], TruthTable.var(0, 1))
        net.add_po(nid)
        model = StubModel(lambda cube: 1.0)
        assert not simplify_node(net, nid, [0], model, None).changed
