"""Truth-table representation of small Boolean functions."""

from .truthtable import MAX_VARS, TruthTable, cube_tt
from .canon import NPNTransform, npn_canonical, p_canonical

__all__ = [
    "MAX_VARS",
    "TruthTable",
    "cube_tt",
    "NPNTransform",
    "npn_canonical",
    "p_canonical",
]
