"""`repro serve` — the long-lived optimization daemon on the result store.

The daemon (:class:`ReproDaemon`) absorbs optimize jobs over a local
JSON socket, batches same-config jobs onto warm per-config optimizers
with persistent worker pools, and answers repeated cones straight from
the shared persistent store; :class:`ServeClient` is the programmatic
client behind ``repro submit``.  See DESIGN 3.21 for the protocol and
failure semantics.
"""

from .client import ServeClient
from .daemon import ReproDaemon
from .protocol import (
    ProtocolError,
    ServeError,
    endpoint_path,
    read_endpoint,
)

__all__ = [
    "ProtocolError",
    "ReproDaemon",
    "ServeClient",
    "ServeError",
    "endpoint_path",
    "read_endpoint",
]
