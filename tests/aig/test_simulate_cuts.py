"""Tests for simulation, cones, cuts, and I/O."""

import io
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import (
    AIG,
    cone_pis,
    cut_tt,
    cut_volume,
    enumerate_cuts,
    evaluate,
    fanin_cone_vars,
    fanout_counts,
    lit_var,
    node_tts,
    po_tts,
    random_patterns,
    read_aag,
    read_blif,
    simulate,
    tfo_vars,
    write_aag,
    write_blif,
)
from repro.tt import TruthTable

from .test_aig import random_aig


class TestSimulation:
    @given(st.integers(0, 20))
    @settings(deadline=None, max_examples=10)
    def test_simulation_matches_tts(self, seed):
        aig = random_aig(seed)
        width = 64
        patterns = random_patterns(aig.num_pis, width, seed)
        values = simulate(aig, patterns, width)
        tts = node_tts(aig)
        for bit in range(width):
            assignment = [bool((w >> bit) & 1) for w in patterns]
            m = sum(1 << i for i, v in enumerate(assignment) if v)
            for var in aig.and_vars():
                assert bool((values[var] >> bit) & 1) == tts[var].value(m)

    def test_evaluate_single(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(aig.xor_(a, b))
        assert evaluate(aig, [True, False]) == [True]
        assert evaluate(aig, [True, True]) == [False]

    def test_wrong_pi_count_rejected(self):
        aig = random_aig(1)
        with pytest.raises(ValueError):
            simulate(aig, [0], 8)


class TestCones:
    def test_cone_and_tfo(self):
        aig = AIG()
        a, b, c = (aig.add_pi() for _ in range(3))
        ab = aig.and_(a, b)
        abc = aig.and_(ab, c)
        aig.add_po(abc)
        cone = fanin_cone_vars(aig, [abc])
        assert lit_var(a) in cone and lit_var(ab) in cone
        assert cone_pis(aig, [abc]) == [lit_var(a), lit_var(b), lit_var(c)]
        tfo = tfo_vars(aig, [lit_var(a)])
        assert lit_var(abc) in tfo

    def test_fanout_counts_include_pos(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        n = aig.and_(a, b)
        aig.add_po(n)
        aig.add_po(n)
        assert fanout_counts(aig)[lit_var(n)] == 2


class TestCuts:
    @given(st.integers(0, 20))
    @settings(deadline=None, max_examples=10)
    def test_cut_functions_match_global(self, seed):
        aig = random_aig(seed, n_pis=4, n_nodes=15)
        cuts = enumerate_cuts(aig, k=4)
        tts = node_tts(aig)
        for var in aig.and_vars():
            for cut in cuts[var]:
                if not cut:
                    continue
                local = cut_tt(aig, var, list(cut))
                # Compose the local function over leaf global functions.
                leaf_tts = [tts[leaf] for leaf in cut]
                assert local.compose(leaf_tts) == tts[var]

    def test_trivial_cut_always_present(self):
        aig = random_aig(3)
        cuts = enumerate_cuts(aig, k=4)
        for var in aig.and_vars():
            assert (var,) in cuts[var]

    def test_cut_size_bound(self):
        aig = random_aig(4, n_pis=8, n_nodes=40)
        for var, var_cuts in enumerate(enumerate_cuts(aig, k=3)):
            for cut in var_cuts:
                if cut != (var,):
                    assert len(cut) <= 3

    def test_cut_volume(self):
        aig = AIG()
        a, b, c = (aig.add_pi() for _ in range(3))
        ab = aig.and_(a, b)
        abc = aig.and_(ab, c)
        vol = cut_volume(
            aig, lit_var(abc), [lit_var(a), lit_var(b), lit_var(c)]
        )
        assert vol == 2

    def test_cut_tt_unreachable_pi_raises(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        n = aig.and_(a, b)
        with pytest.raises(ValueError):
            cut_tt(aig, lit_var(n), [lit_var(a)])


class TestIO:
    @given(st.integers(0, 20))
    @settings(deadline=None, max_examples=10)
    def test_aag_roundtrip(self, seed):
        aig = random_aig(seed)
        buf = io.StringIO()
        write_aag(aig, buf)
        buf.seek(0)
        back = read_aag(buf)
        assert po_tts(back) == po_tts(aig)
        assert back.pi_names == aig.pi_names

    @given(st.integers(0, 20))
    @settings(deadline=None, max_examples=10)
    def test_blif_roundtrip(self, seed):
        aig = random_aig(seed)
        buf = io.StringIO()
        write_blif(aig, buf)
        buf.seek(0)
        back = read_blif(buf)
        assert po_tts(back) == po_tts(aig)

    def test_blif_constant_output(self):
        aig = AIG()
        aig.add_pi("x")
        aig.add_po(1, "always1")
        buf = io.StringIO()
        write_blif(aig, buf)
        buf.seek(0)
        back = read_blif(buf)
        assert po_tts(back)[0].is_const1

    def test_read_aag_rejects_latches(self):
        with pytest.raises(ValueError):
            read_aag(io.StringIO("aag 1 0 1 0 0\n"))
