"""Parameter-sensitivity tests for the control-fabric generator."""

import pytest

from repro.aig import depth, simulate_random
from repro.bench import control_fabric
from repro.cec import check_equivalence


class TestParameters:
    def test_seed_changes_function(self):
        a = control_fabric("t", 30, 8, seed=1)
        b = control_fabric("t", 30, 8, seed=2)
        assert simulate_random(a, 64, 0) != simulate_random(b, 64, 0)

    def test_same_seed_same_function(self):
        a = control_fabric("t", 30, 8, seed=7)
        b = control_fabric("t", 30, 8, seed=7)
        assert check_equivalence(a, b)

    def test_chain_len_increases_depth(self):
        shallow = control_fabric("t", 60, 12, seed=3, chain_len=6)
        deep = control_fabric("t", 60, 12, seed=3, chain_len=24)
        assert depth(deep) > depth(shallow)

    def test_blocks_per_po_scales_size(self):
        small = control_fabric("t", 60, 12, seed=3, blocks_per_po=0.3)
        big = control_fabric("t", 60, 12, seed=3, blocks_per_po=1.2)
        assert big.num_ands() > small.num_ands()

    @pytest.mark.parametrize("n_pi,n_po", [(10, 3), (50, 20), (120, 40)])
    def test_exact_interface_counts(self, n_pi, n_po):
        aig = control_fabric("t", n_pi, n_po, seed=11)
        assert aig.num_pis == n_pi
        assert aig.num_pos == n_po

    def test_names_prefixed(self):
        aig = control_fabric("myblk", 10, 3, seed=0)
        assert all(n.startswith("myblk_in") for n in aig.pi_names)
        assert all(n.startswith("myblk_out") for n in aig.po_names)
