"""The :class:`ResultStore` protocol and the consumer-facing namespace view.

A result store is a namespaced key/value memo shared by every cache layer
in the system (SPCF payloads, rejected cones, UNSAT verdicts, SAT
witnesses, redundancy proofs).  The contract every backend implements:

* **namespaced** ``get``/``put``/``stats`` — namespaces isolate layers
  with different key schemas and lifetimes inside one store;
* **fingerprint keying** — by convention a key's leading element is the
  structural fingerprint the entry's validity depends on, which makes
  invalidation explicit (:meth:`ResultStore.invalidate`) and staleness
  impossible by construction (a mutated cone has a new fingerprint, so
  stale entries are simply never looked up again);
* **versioned serialization** — persistent backends store payloads
  through :mod:`repro.store.serialize`; a format bump or a corrupt row
  reads back as a miss, never as a wrong payload and never as a crash.

Consumers do not talk to backends directly: :meth:`ResultStore.namespace`
returns a :class:`Namespace` view that owns the ``store.<ns>.hit/miss``
perf counters and optional value encode/decode hooks, so a memo layer is
a handful of one-line delegations (see ``repro.core.cache.ConeCache``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from .. import perf

MISSING = object()
"""Sentinel distinguishing 'no entry' from a stored ``None``."""


class ResultStore:
    """Abstract namespaced key/value result store."""

    #: Whether entries survive the process (disk-backed somewhere).
    persistent = False

    def get(self, ns: str, key: Any) -> Any:
        """The stored value, or :data:`MISSING` if absent."""
        raise NotImplementedError

    def put(self, ns: str, key: Any, value: Any) -> None:
        raise NotImplementedError

    def invalidate(
        self, ns: Optional[str] = None, fingerprint: Optional[int] = None
    ) -> int:
        """Drop entries; returns how many were removed.

        ``ns=None`` clears every namespace; ``fingerprint`` restricts the
        delete to keys whose leading structural fingerprint matches (the
        explicit invalidation-by-fingerprint path).
        """
        raise NotImplementedError

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-namespace statistics: at least ``{"entries": n}`` each."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    # -- conveniences shared by all backends -------------------------------

    def namespace(
        self,
        name: str,
        encode: Optional[Callable[[Any], Any]] = None,
        decode: Optional[Callable[[Any], Any]] = None,
    ) -> "Namespace":
        """A counting view of one namespace (see :class:`Namespace`)."""
        return Namespace(self, name, encode=encode, decode=decode)

    def entries(self, ns: str) -> int:
        """Entry count of one namespace (0 if it does not exist)."""
        return int(self.stats().get(ns, {}).get("entries", 0))


class Namespace:
    """One memo layer's view of a store: counters plus value codec hooks.

    ``encode``/``decode`` adapt rich in-memory values (e.g. lists of
    ``TruthTable``) to the codec-safe tuples the backends persist; both
    the memory and disk tiers hold the encoded form, so a view with hooks
    pays one decode per hit and nothing else.
    """

    __slots__ = ("store", "name", "_encode", "_decode", "_hit", "_miss")

    def __init__(
        self,
        store: ResultStore,
        name: str,
        encode: Optional[Callable[[Any], Any]] = None,
        decode: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.store = store
        self.name = name
        self._encode = encode
        self._decode = decode
        self._hit = f"store.{name}.hit"
        self._miss = f"store.{name}.miss"

    def get(self, key: Any, default: Any = None) -> Any:
        value = self.store.get(self.name, key)
        if value is MISSING:
            perf.incr(self._miss)
            perf.incr("store.miss")
            return default
        perf.incr(self._hit)
        perf.incr("store.hit")
        return self._decode(value) if self._decode is not None else value

    def put(self, key: Any, value: Any) -> None:
        if self._encode is not None:
            value = self._encode(value)
        self.store.put(self.name, key, value)

    def contains(self, key: Any) -> bool:
        return self.get(key, MISSING) is not MISSING

    def clear(self) -> int:
        return self.store.invalidate(self.name)

    def invalidate(self, fingerprint: int) -> int:
        return self.store.invalidate(self.name, fingerprint=fingerprint)

    def entries(self) -> int:
        return self.store.entries(self.name)


class StoreConfig:
    """How a run's result store is built (the ``--store`` surface).

    ``path=None`` is a pure in-memory store (results die with the
    process); a path selects the tiered memory-over-SQLite arrangement.
    ``memory_entries`` bounds each in-memory namespace; ``limits`` gives
    specific namespaces their own bound (e.g. the UNSAT verdict set runs
    much larger than the SPCF payload table).
    """

    __slots__ = ("path", "memory_entries", "limits")

    def __init__(
        self,
        path: Optional[str] = None,
        memory_entries: int = 4096,
        limits: Optional[Dict[str, int]] = None,
    ) -> None:
        if memory_entries < 1:
            raise ValueError("memory_entries must be >= 1")
        self.path = path
        self.memory_entries = memory_entries
        self.limits = dict(limits) if limits else {}

    def build(self) -> ResultStore:
        from .memory import MemoryStore
        from .sqlite import SqliteStore
        from .tiered import TieredStore

        memory = MemoryStore(
            default_limit=self.memory_entries, limits=self.limits
        )
        if self.path is None:
            return memory
        return TieredStore(memory, SqliteStore(self.path))

    def __repr__(self) -> str:
        return f"StoreConfig(path={self.path!r})"


StoreSpec = Union[None, str, StoreConfig, ResultStore]
"""What callers may pass as a store: nothing, a DB path, a config, or a
ready-made store object."""


def resolve_store(spec: StoreSpec) -> Optional[ResultStore]:
    """Normalize a user-facing store spec to a store (or None = no store)."""
    if spec is None:
        return None
    if isinstance(spec, ResultStore):
        return spec
    if isinstance(spec, StoreConfig):
        return spec.build()
    if isinstance(spec, str):
        return StoreConfig(path=spec).build()
    raise TypeError(
        f"expected a path, StoreConfig, or ResultStore, got {spec!r}"
    )
