"""The rank dataset and model layer (repro/rank), no optimizer involved."""

from __future__ import annotations

import json

import pytest

from repro.rank import (
    FEATURE_NAMES,
    MIN_FIT_ROWS,
    RANK_MODEL_FORMAT,
    RankLogger,
    RankModel,
    decode_row,
    encode_row,
    fit_model,
    load_dataset,
    passthrough_model,
    resolve_model,
)


def _rows(n_accept=20, n_reject=20):
    """A separable synthetic dataset: accepts have small cones."""
    rows = []
    for i in range(n_accept):
        feats = [5.0 + i % 3, 4.0, 10.0, 0.0, 1.0, float(i % 2), 0.0]
        rows.append({"features": feats, "accept": 1})
    for i in range(n_reject):
        feats = [50.0 + i % 7, 20.0, 10.0, 0.0, 8.0, float(i % 2), 3.0]
        rows.append({"features": feats, "accept": 0})
    return rows


class TestDataset:
    def test_encode_row_is_canonical(self):
        row = {"b": 1, "a": [1.5, 2.0]}
        assert encode_row(row) == '{"a":[1.5,2.0],"b":1}'
        assert decode_row(encode_row(row)) == row

    def test_logger_appends_jsonl(self, tmp_path):
        path = tmp_path / "data.jsonl"
        with RankLogger(str(path)) as logger:
            logger.log({"features": [0.0] * 7, "accept": 1})
            logger.log({"features": [1.0] * 7, "accept": 0})
            assert len(logger) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert decode_row(lines[0])["accept"] == 1

    def test_load_dataset_concatenates_files(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(encode_row({"accept": 1}) + "\n")
        b.write_text(encode_row({"accept": 0}) + "\n\n")
        rows = load_dataset([str(a), str(b)])
        assert [r["accept"] for r in rows] == [1, 0]


class TestFit:
    def test_fit_is_deterministic(self):
        rows = _rows()
        m1, m2 = fit_model(rows), fit_model(rows)
        assert m1.canonical_json() == m2.canonical_json()
        assert m1.fingerprint() == m2.fingerprint()

    def test_separable_data_separates(self):
        model = fit_model(_rows())
        accept_scores = [
            model.score(r["features"]) for r in _rows() if r["accept"]
        ]
        reject_scores = [
            model.score(r["features"]) for r in _rows() if not r["accept"]
        ]
        assert min(accept_scores) > max(reject_scores)

    def test_recall_one_threshold_never_prunes_accepts(self):
        rows = _rows()
        model = fit_model(rows, target_recall=1.0)
        for row in rows:
            if row["accept"]:
                assert model.score(row["features"]) >= model.threshold

    def test_lower_recall_raises_threshold(self):
        rows = _rows()
        full = fit_model(rows, target_recall=1.0)
        half = fit_model(rows, target_recall=0.5)
        assert half.threshold >= full.threshold

    def test_degenerate_datasets_passthrough(self):
        few = _rows(2, 2)[: MIN_FIT_ROWS - 1]
        single_class = [
            {"features": [float(i)] * 7, "accept": 1} for i in range(40)
        ]
        for rows in (few, single_class, []):
            model = fit_model(rows)
            assert model.meta["degenerate"] is True
            assert model.threshold == 0.0  # scores are > 0: prunes nothing
            assert model.score([1e9] * 7) > model.threshold

    def test_bad_target_recall_rejected(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                fit_model(_rows(), target_recall=bad)

    def test_wrong_feature_width_rejected(self):
        rows = _rows()
        rows[0]["features"] = [1.0, 2.0]
        with pytest.raises(ValueError):
            fit_model(rows)


class TestArtifact:
    def test_save_load_roundtrip(self, tmp_path):
        model = fit_model(_rows())
        path = tmp_path / "model.json"
        model.save(str(path))
        back = RankModel.load(str(path))
        assert back.canonical_json() == model.canonical_json()
        assert back.fingerprint() == model.fingerprint()

    def test_payload_is_versioned(self):
        payload = fit_model(_rows()).payload()
        assert payload["format"] == RANK_MODEL_FORMAT
        assert payload["features"] == list(FEATURE_NAMES)

    def test_from_payload_rejects_malformed(self):
        good = fit_model(_rows()).payload()
        wrong_format = dict(good, format="not-a-model")
        wrong_version = dict(good, version=99)
        for bad in ({}, wrong_format, wrong_version):
            with pytest.raises(ValueError):
                RankModel.from_payload(bad)

    def test_resolve_model_accepts_model_payload_and_path(self, tmp_path):
        model = fit_model(_rows())
        path = tmp_path / "model.json"
        model.save(str(path))
        for spec in (model, model.payload(), str(path)):
            assert resolve_model(spec).fingerprint() == model.fingerprint()
        with pytest.raises(ValueError):
            resolve_model(42)

    def test_passthrough_scores_half(self):
        model = passthrough_model()
        assert model.score([123.0] * 7) == pytest.approx(0.5)
        assert model.threshold == 0.0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RankModel(
                weights=[0.0], bias=0.0, mean=[0.0, 0.0],
                scale=[1.0, 1.0], threshold=0.0,
                features=("a", "b"),
            )


def test_cli_rank_fit_writes_artifact(tmp_path, capsys):
    from repro.cli import main

    data = tmp_path / "data.jsonl"
    with RankLogger(str(data)) as logger:
        for row in _rows():
            logger.log(row)
    out = tmp_path / "model.json"
    assert main([
        "rank", "fit", "--data", str(data), "-o", str(out),
    ]) == 0
    model = RankModel.load(str(out))
    assert model.meta["rows"] == len(_rows())
    assert "fingerprint" in capsys.readouterr().out


def test_cli_rank_fit_empty_dataset_errors(tmp_path, capsys):
    from repro.cli import main

    data = tmp_path / "empty.jsonl"
    data.write_text("")
    out = tmp_path / "model.json"
    assert main(["rank", "fit", "--data", str(data), "-o", str(out)]) == 1


def test_cli_rank_fit_store_records_artifact(tmp_path):
    from repro.cli import main
    from repro.store import SqliteStore

    data = tmp_path / "data.jsonl"
    with RankLogger(str(data)) as logger:
        for row in _rows():
            logger.log(row)
    out = tmp_path / "model.json"
    db = tmp_path / "results.db"
    assert main([
        "rank", "fit", "--data", str(data), "-o", str(out),
        "--store", str(db),
    ]) == 0
    model = RankModel.load(str(out))
    store = SqliteStore(str(db))
    try:
        stored = store.namespace("rank_model").get(model.fingerprint())
        assert RankModel.from_payload(stored).fingerprint() \
            == model.fingerprint()
    finally:
        store.close()
