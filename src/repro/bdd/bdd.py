"""Reduced ordered BDDs with complement edges.

A function is referenced by ``ref = (node_id << 1) | complement``.  Node 0 is
the terminal; ``TRUE = 0`` and ``FALSE = 1`` (the complemented terminal).
Canonical form: the *high* (then) edge of a stored node is never
complemented.  Variables are ordered by index (level == variable).

Used for exact SPCF representation and exact cube-weight computation on
small/medium cones, and as an independent oracle in the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

TRUE = 0
FALSE = 1


def ref_not(ref: int) -> int:
    """Complement a function reference."""
    return ref ^ 1


def ref_node(ref: int) -> int:
    return ref >> 1


def ref_complemented(ref: int) -> bool:
    return bool(ref & 1)


class BDD:
    """A BDD manager (unique table + computed table)."""

    _TERMINAL_LEVEL = 1 << 30

    def __init__(self) -> None:
        # Parallel node arrays; node 0 is the terminal.
        self._var: List[int] = [self._TERMINAL_LEVEL]
        self._high: List[int] = [TRUE]
        self._low: List[int] = [TRUE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # -- node management -------------------------------------------------------

    def _mk(self, var: int, high: int, low: int) -> int:
        if high == low:
            return high
        # Canonicalize: high edge must be regular.
        out_neg = False
        if ref_complemented(high):
            high = ref_not(high)
            low = ref_not(low)
            out_neg = True
        key = (var, high, low)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._high.append(high)
            self._low.append(low)
            self._unique[key] = node
        ref = node << 1
        return ref_not(ref) if out_neg else ref

    def var(self, i: int) -> int:
        """Reference to the projection function ``x_i``."""
        return self._mk(i, TRUE, FALSE)

    def nvar(self, i: int) -> int:
        """Reference to ``!x_i``."""
        return ref_not(self.var(i))

    def level_of(self, ref: int) -> int:
        return self._var[ref_node(ref)]

    def cofactors(self, ref: int, var: int) -> Tuple[int, int]:
        """(high, low) cofactors with respect to ``var``."""
        node = ref_node(ref)
        if self._var[node] != var:
            return ref, ref
        neg = ref & 1
        return self._high[node] ^ neg, self._low[node] ^ neg

    def size(self) -> int:
        """Total nodes allocated in the manager."""
        return len(self._var)

    # -- core ITE ---------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h``."""
        # Terminal cases.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return ref_not(f)
        if g == f:
            g = TRUE
        elif g == ref_not(f):
            g = FALSE
        if h == f:
            h = FALSE
        elif h == ref_not(f):
            h = TRUE
        # Normalize for cache hits: ensure f regular by output complement.
        out_neg = False
        if ref_complemented(g):
            # ite(f,g,h) = !ite(f,!g,!h)
            g, h = ref_not(g), ref_not(h)
            out_neg = True
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return ref_not(cached) if out_neg else cached
        top = min(self.level_of(f), self.level_of(g), self.level_of(h))
        f1, f0 = self.cofactors(f, top)
        g1, g0 = self.cofactors(g, top)
        h1, h0 = self.cofactors(h, top)
        r1 = self.ite(f1, g1, h1)
        r0 = self.ite(f0, g0, h0)
        result = self._mk(top, r1, r0)
        self._ite_cache[key] = result
        return ref_not(result) if out_neg else result

    # -- derived operations -------------------------------------------------------

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def xor_(self, f: int, g: int) -> int:
        return self.ite(f, ref_not(g), g)

    def and_many(self, refs: Iterable[int]) -> int:
        acc = TRUE
        for r in refs:
            acc = self.and_(acc, r)
            if acc == FALSE:
                break
        return acc

    def or_many(self, refs: Iterable[int]) -> int:
        acc = FALSE
        for r in refs:
            acc = self.or_(acc, r)
            if acc == TRUE:
                break
        return acc

    def implies(self, f: int, g: int) -> bool:
        return self.and_(f, ref_not(g)) == FALSE

    def restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor ``f`` with respect to ``x_var = value``."""
        if self.level_of(f) > var:
            return f
        cache: Dict[int, int] = {}

        def rec(r: int) -> int:
            lvl = self.level_of(r)
            if lvl > var:
                return r
            if r in cache:
                return cache[r]
            hi, lo = self.cofactors(r, lvl)
            if lvl == var:
                out = hi if value else lo
            else:
                out = self._mk(lvl, rec(hi), rec(lo))
            cache[r] = out
            return out

        return rec(f)

    def exists(self, f: int, variables: Sequence[int]) -> int:
        out = f
        for v in sorted(variables, reverse=True):
            hi = self.restrict(out, v, True)
            lo = self.restrict(out, v, False)
            out = self.or_(hi, lo)
        return out

    def forall(self, f: int, variables: Sequence[int]) -> int:
        return ref_not(self.exists(ref_not(f), variables))

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        hi = self.restrict(f, var, True)
        lo = self.restrict(f, var, False)
        return self.ite(g, hi, lo)

    # -- queries --------------------------------------------------------------------

    def support(self, f: int) -> List[int]:
        seen = set()
        sup = set()
        stack = [ref_node(f)]
        while stack:
            node = stack.pop()
            if node in seen or node == 0:
                continue
            seen.add(node)
            sup.add(self._var[node])
            stack.append(ref_node(self._high[node]))
            stack.append(ref_node(self._low[node]))
        return sorted(sup)

    def eval(self, f: int, assignment: Dict[int, bool]) -> bool:
        ref = f
        while ref_node(ref) != 0:
            node = ref_node(ref)
            value = assignment.get(self._var[node], False)
            nxt = self._high[node] if value else self._low[node]
            ref = nxt ^ (ref & 1)
        return not ref_complemented(ref)

    def sat_count(self, f: int, nvars: int) -> int:
        """Number of satisfying minterms over ``nvars`` variables (0..nvars-1)."""
        cache: Dict[int, int] = {}
        full = 1 << nvars

        def count(ref: int) -> int:
            """Exact on-set size of ``ref`` over the full nvars space."""
            if ref == TRUE:
                return full
            if ref == FALSE:
                return 0
            if ref in cache:
                return cache[ref]
            node = ref_node(ref)
            hi = self._high[node] ^ (ref & 1)
            lo = self._low[node] ^ (ref & 1)
            # f = x·hi + !x·lo with hi, lo independent of x, so the sum
            # below is even and the halving is exact.
            out = (count(hi) + count(lo)) // 2
            cache[ref] = out
            return out

        if self.level_of(f) < self._TERMINAL_LEVEL and self.level_of(f) >= nvars:
            raise ValueError("function depends on variables beyond nvars")
        return count(f)

    def pick_one(self, f: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment over the support, or None if UNSAT."""
        if f == FALSE:
            return None
        out: Dict[int, bool] = {}
        ref = f
        while ref_node(ref) != 0:
            node = ref_node(ref)
            hi = self._high[node] ^ (ref & 1)
            lo = self._low[node] ^ (ref & 1)
            if hi != FALSE:
                out[self._var[node]] = True
                ref = hi
            else:
                out[self._var[node]] = False
                ref = lo
        return out

    def node_count(self, f: int) -> int:
        """Number of distinct nodes in the DAG of ``f`` (terminal included)."""
        seen = set()
        stack = [ref_node(f)]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node != 0:
                stack.append(ref_node(self._high[node]))
                stack.append(ref_node(self._low[node]))
        return len(seen)
