"""Structural guarantees of the named baseline flows."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import ripple_carry_adder
from repro.aig import depth
from repro.opt import (
    BASELINE_FLOWS,
    abc_resyn2rs,
    dc_map_effort_high,
    sis_best,
)

from ..aig.test_aig import random_aig


def test_baseline_flow_registry():
    assert set(BASELINE_FLOWS) == {"sis", "abc", "dc"}
    aig = ripple_carry_adder(3)
    for name, flow in BASELINE_FLOWS.items():
        out = flow(aig)
        assert out.num_pos == aig.num_pos, name


@given(st.integers(0, 20))
@settings(deadline=None, max_examples=6)
def test_dc_dominates_academic_flows(seed):
    # dc_map_effort_high includes both academic flows among its
    # candidates, so it can never be deeper than either.
    aig = random_aig(seed, n_pis=6, n_nodes=40, n_pos=3)
    d_dc = depth(dc_map_effort_high(aig))
    assert d_dc <= depth(sis_best(aig))
    assert d_dc <= depth(abc_resyn2rs(aig))


@given(st.integers(0, 20))
@settings(deadline=None, max_examples=6)
def test_flows_deterministic(seed):
    aig = random_aig(seed, n_pis=5, n_nodes=30, n_pos=2)
    a = dc_map_effort_high(aig)
    b = dc_map_effort_high(aig)
    assert a.num_ands() == b.num_ands()
    assert depth(a) == depth(b)


def test_resyn2rs_never_grows_adder():
    aig = ripple_carry_adder(8)
    out = abc_resyn2rs(aig)
    assert out.num_ands() <= aig.num_ands()
