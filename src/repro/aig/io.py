"""Readers/writers: ASCII AIGER and a BLIF subset.

Enough interchange support that circuits produced here can be inspected with
standard tools (ABC reads both formats) and external AIGs can be imported.
"""

from __future__ import annotations

from typing import Dict, List, TextIO, Tuple

from ..sop import Cover
from .aig import AIG, CONST0, lit_neg, lit_not, lit_var, make_lit


def write_aag(aig: AIG, fh: TextIO) -> None:
    """Write ASCII AIGER (``aag``) format."""
    ands = list(aig.and_vars())
    # AIGER requires PIs first, then ANDs, in increasing variable order;
    # our append-only AIG may interleave, so renumber.
    order: Dict[int, int] = {0: 0}
    for i, var in enumerate(aig.pis):
        order[var] = i + 1
    for i, var in enumerate(ands):
        order[var] = aig.num_pis + 1 + i

    def ren(lit: int) -> int:
        return make_lit(order[lit_var(lit)], lit_neg(lit))

    m = aig.num_pis + len(ands)
    fh.write(f"aag {m} {aig.num_pis} 0 {aig.num_pos} {len(ands)}\n")
    for var in aig.pis:
        fh.write(f"{make_lit(order[var])}\n")
    for po in aig.pos:
        fh.write(f"{ren(po)}\n")
    for var in ands:
        f0, f1 = aig.fanins(var)
        a, b = ren(f0), ren(f1)
        if a < b:
            a, b = b, a
        fh.write(f"{make_lit(order[var])} {a} {b}\n")
    for i, name in enumerate(aig.pi_names):
        fh.write(f"i{i} {name}\n")
    for i, name in enumerate(aig.po_names):
        fh.write(f"o{i} {name}\n")


def read_aag(fh: TextIO) -> AIG:
    """Read ASCII AIGER (combinational subset, no latches)."""
    header = fh.readline().split()
    if not header or header[0] != "aag":
        raise ValueError("not an ASCII AIGER file")
    _m, num_i, num_l, num_o, num_a = map(int, header[1:6])
    if num_l:
        raise ValueError("latches are not supported")
    aig = AIG()
    lit_map: Dict[int, int] = {0: CONST0, 1: lit_not(CONST0)}

    def resolve(ext_lit: int) -> int:
        base = ext_lit & ~1
        if base not in lit_map:
            raise ValueError(f"undefined literal {ext_lit}")
        lit = lit_map[base]
        return lit_not(lit) if ext_lit & 1 else lit

    pi_ext = []
    for _ in range(num_i):
        ext = int(fh.readline())
        pi_ext.append(ext)
        lit_map[ext & ~1] = aig.add_pi()
    po_ext = [int(fh.readline()) for _ in range(num_o)]
    for _ in range(num_a):
        parts = fh.readline().split()
        out_ext, a_ext, b_ext = map(int, parts[:3])
        lit_map[out_ext & ~1] = aig.and_(resolve(a_ext), resolve(b_ext))
    for ext in po_ext:
        aig.add_po(resolve(ext))
    # Optional symbol table.
    for line in fh:
        line = line.strip()
        if not line or line == "c":
            break
        kind, _, name = line.partition(" ")
        if kind.startswith("i") and kind[1:].isdigit():
            aig.pi_names[int(kind[1:])] = name
        elif kind.startswith("o") and kind[1:].isdigit():
            aig.po_names[int(kind[1:])] = name
    return aig


def write_blif(aig: AIG, fh: TextIO, model: str = "top") -> None:
    """Write the AIG as BLIF with 2-input AND ``.names`` blocks."""
    fh.write(f".model {model}\n")
    fh.write(".inputs " + " ".join(aig.pi_names) + "\n")
    fh.write(".outputs " + " ".join(aig.po_names) + "\n")

    def sig(lit: int) -> str:
        var = lit_var(lit)
        if var == 0:
            return "const1" if lit_neg(lit) else "const0"
        if aig.is_pi(var):
            base = aig.pi_names[aig.pis.index(var)]
        else:
            base = f"n{var}"
        if lit_neg(lit):
            inv = f"{base}_bar"
            return inv
        return base

    emitted_inv = set()
    emitted_const = set()

    def ensure(lit: int) -> str:
        var = lit_var(lit)
        name = sig(lit)
        if var == 0 and name not in emitted_const:
            emitted_const.add(name)
            fh.write(f".names {name}\n")
            if name == "const1":
                fh.write("1\n")
        if lit_neg(lit) and var != 0 and name not in emitted_inv:
            emitted_inv.add(name)
            fh.write(f".names {sig(lit & ~1)} {name}\n0 1\n")
        return name

    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        a = ensure(f0)
        b = ensure(f1)
        fh.write(f".names {a} {b} n{var}\n11 1\n")
    for po_lit, po_name in zip(aig.pos, aig.po_names):
        src = ensure(po_lit)
        fh.write(f".names {src} {po_name}\n1 1\n")
    fh.write(".end\n")


def read_blif(fh: TextIO) -> AIG:
    """Read a combinational BLIF file (single model, ``.names`` only).

    Handles ``#`` comments, ``\\`` line continuations, and — as real
    benchmark BLIF requires — ``.names`` blocks that reference signals
    defined later in the file: blocks are collected in a first pass and
    instantiated in dependency order, so file order is irrelevant.
    """
    tokens_lines: List[List[str]] = []
    buffer = ""
    for raw in fh:
        line = raw.split("#", 1)[0].rstrip("\n")
        if line.endswith("\\"):
            buffer += line[:-1] + " "
            continue
        buffer += line
        if buffer.strip():
            tokens_lines.append(buffer.split())
        buffer = ""

    aig = AIG()
    signals: Dict[str, int] = {}
    outputs: List[str] = []
    blocks: List[Tuple[List[str], str, List[str]]] = []
    i = 0
    while i < len(tokens_lines):
        toks = tokens_lines[i]
        if toks[0] == ".inputs":
            for name in toks[1:]:
                signals[name] = aig.add_pi(name)
        elif toks[0] == ".outputs":
            outputs.extend(toks[1:])
        elif toks[0] == ".names":
            inputs = toks[1:-1]
            out = toks[-1]
            cubes: List[str] = []
            j = i + 1
            while j < len(tokens_lines) and not tokens_lines[j][0].startswith("."):
                cubes.append(" ".join(tokens_lines[j]))
                j += 1
            blocks.append((inputs, out, cubes))
            i = j - 1
        elif toks[0] in (".model", ".end"):
            pass
        else:
            raise ValueError(f"unsupported BLIF construct {toks[0]}")
        i += 1

    # Second pass: instantiate each block once all its inputs exist.  For
    # in-order files this processes the blocks in file order; out-of-order
    # files just take extra sweeps.
    pending = blocks
    while pending:
        deferred: List[Tuple[List[str], str, List[str]]] = []
        for inputs, out, cubes in pending:
            if all(name in signals for name in inputs):
                signals[out] = _names_to_lit(aig, signals, inputs, cubes)
            else:
                deferred.append((inputs, out, cubes))
        if len(deferred) == len(pending):
            will_define = {out for _ins, out, _c in deferred}
            missing = sorted(
                {
                    name
                    for inputs, _out, _c in deferred
                    for name in inputs
                    if name not in signals and name not in will_define
                }
            )
            if missing:
                raise ValueError(
                    "undefined signal(s): " + ", ".join(missing)
                )
            raise ValueError(
                "combinational cycle among .names outputs: "
                + ", ".join(sorted(will_define))
            )
        pending = deferred

    for name in outputs:
        if name not in signals:
            raise ValueError(f"undefined output {name}")
        aig.add_po(signals[name], name)
    return aig


def _names_to_lit(
    aig: AIG, signals: Dict[str, int], inputs: List[str], cube_lines: List[str]
) -> int:
    for name in inputs:
        if name not in signals:  # read_blif resolves order; defensive only
            raise ValueError(f"undefined signal {name}")
    if not inputs:
        # Constant: a line "1" means const1, no lines means const0.
        return lit_not(CONST0) if any(l.strip() == "1" for l in cube_lines) else CONST0
    or_terms = []
    out_is_zero = None
    for line in cube_lines:
        parts = line.split()
        pattern, out_bit = (parts[0], parts[1]) if len(parts) == 2 else ("", parts[0])
        if out_is_zero is None:
            out_is_zero = out_bit == "0"
        elif out_is_zero != (out_bit == "0"):
            raise ValueError("mixed on-set/off-set .names block")
        lits = []
        for ch, name in zip(pattern, inputs):
            if ch == "1":
                lits.append(signals[name])
            elif ch == "0":
                lits.append(lit_not(signals[name]))
        or_terms.append(aig.and_many(lits) if lits else lit_not(CONST0))
    result = aig.or_many(or_terms) if or_terms else CONST0
    if out_is_zero:
        result = lit_not(result)
    return result


def cover_to_aig_lit(aig: AIG, cover: Cover, input_lits: List[int]) -> int:
    """Instantiate an SOP cover over the given input literals."""
    if cover.is_empty():
        return CONST0
    or_terms = []
    for cube in cover:
        lits = [
            input_lits[var] if pol else lit_not(input_lits[var])
            for var, pol in cube.literals()
        ]
        or_terms.append(aig.and_many(lits) if lits else lit_not(CONST0))
    return aig.or_many(or_terms)
