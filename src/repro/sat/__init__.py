"""CDCL SAT solving, CNF encodings of AIGs, and portfolio racing."""

from .solver import DEFAULT_CONFIG, Solver, SolverConfig, luby
from .cnf import AigCnf, implies, is_satisfiable
from .portfolio import (
    DEFAULT_CONFIGS,
    GLOBAL_UNSAT_CACHE,
    MODES as PORTFOLIO_MODES,
    PortfolioConfig,
    PortfolioRunner,
    UnsatCache,
    resolve_portfolio,
)

__all__ = [
    "Solver",
    "SolverConfig",
    "DEFAULT_CONFIG",
    "DEFAULT_CONFIGS",
    "luby",
    "AigCnf",
    "implies",
    "is_satisfiable",
    "PORTFOLIO_MODES",
    "PortfolioConfig",
    "PortfolioRunner",
    "UnsatCache",
    "GLOBAL_UNSAT_CACHE",
    "resolve_portfolio",
]
