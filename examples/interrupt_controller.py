"""Anatomy of a lookahead decomposition on priority-interrupt logic.

Uses the C432 stand-in (a 27-channel priority interrupt controller, the
kind of serial-chain control logic the technique targets) to show the
internals of one decomposition level: the SPCF of the critical output, the
window function Σ1 the primary simplification discovers, and the depth of
the reconstructed output — before handing the circuit to the full flow.

Run:  python examples/interrupt_controller.py
"""

from repro.aig import depth, levels, lit_var, random_patterns
from repro.bench import BENCHMARKS
from repro.cec import check_equivalence
from repro.core import (
    LookaheadOptimizer,
    SignatureModel,
    Spcf,
    primary_reduce,
    spcf_signature,
    timed_simulation,
    unpack_patterns,
)
from repro.netlist import compute_levels, renode


def main() -> None:
    aig = BENCHMARKS["C432"]()
    d = depth(aig)
    lvl = levels(aig)
    print(
        f"C432 stand-in: {aig.num_pis} PIs, {aig.num_pos} POs, "
        f"{aig.num_ands()} ANDs, depth {d}"
    )

    # -- one decomposition level, by hand -----------------------------------
    critical = [
        i for i, po in enumerate(aig.pos) if lvl[lit_var(po)] == d
    ]
    po_index = critical[0]
    print(f"\ncritical output: {aig.po_names[po_index]} (level {d})")

    width = 1024
    pi_words = random_patterns(aig.num_pis, width, seed=0)
    timed = timed_simulation(aig, unpack_patterns(pi_words, width))
    for delta in range(d, d - 4, -1):
        sig = spcf_signature(aig, po_index, delta, None, timed=timed)
        print(
            f"  SPCF(delta={delta}): {bin(sig).count('1')} / {width} "
            "speed-path patterns"
        )

    spcf = Spcf(
        "sim",
        signature=spcf_signature(aig, po_index, d - 2, None, timed=timed),
    )
    net = renode(aig, k=6)
    cone = net.extract_po_cone(po_index)
    model = SignatureModel(cone, pi_words, width)
    before = compute_levels(cone)[cone.pos[0][0]]
    result = primary_reduce(cone, 0, model, model.spcf_fn(spcf))
    after = compute_levels(cone)[cone.pos[0][0]]
    print(
        f"\nprimary simplification: {len(result.windows)} nodes simplified, "
        f"cone level {before} -> {after}"
    )
    if result.sigma_nid is not None:
        sigma_level = compute_levels(cone)[result.sigma_nid]
        print(f"window function Σ1 sits at network level {sigma_level}")

    # -- and the full optimizer ----------------------------------------------
    optimized = LookaheadOptimizer(max_rounds=6).optimize(aig)
    assert check_equivalence(aig, optimized)
    print(f"\nfull optimizer: depth {d} -> {depth(optimized)} (equivalent)")


if __name__ == "__main__":
    main()
