"""Generator properties: well-formed, seeded-reproducible fuzz cases."""

from __future__ import annotations

import random

from repro.aig import depth
from repro.verify import (
    dump_aig,
    make_case,
    random_aig,
    random_arrival_map,
    random_config,
)


class TestRandomAig:
    def test_well_formed(self):
        for s in range(20):
            aig = random_aig(random.Random(s))
            assert aig.num_pis >= 1
            assert aig.num_pos >= 1
            assert aig.pi_names == [f"x{i}" for i in range(aig.num_pis)]
            assert aig.po_names == [f"y{i}" for i in range(aig.num_pos)]
            assert depth(aig) >= 0

    def test_same_seed_same_circuit(self):
        a = random_aig(random.Random(7))
        b = random_aig(random.Random(7))
        assert dump_aig(a) == dump_aig(b)

    def test_different_seeds_differ(self):
        dumps = {dump_aig(random_aig(random.Random(s))) for s in range(10)}
        assert len(dumps) > 1


class TestRandomConfigAndArrivals:
    def test_config_keys_accepted_by_optimizer(self):
        from repro.core import LookaheadOptimizer

        for s in range(10):
            cfg = random_config(random.Random(s))
            with LookaheadOptimizer(**cfg):
                pass  # constructing with every knob must not raise

    def test_arrival_map_names_are_pis(self):
        rng = random.Random(3)
        for _ in range(20):
            aig = random_aig(rng)
            arrivals = random_arrival_map(rng, aig)
            if arrivals is None:
                continue
            assert set(arrivals) <= set(aig.pi_names)
            assert all(t >= 0 for t in arrivals.values())


class TestMakeCase:
    def test_reproducible_from_seed_and_index(self):
        a = make_case(5, 17)
        b = make_case(5, 17)
        assert dump_aig(a.aig) == dump_aig(b.aig)
        assert a.config == b.config
        assert a.arrival_times == b.arrival_times

    def test_distinct_indices_distinct_cases(self):
        dumps = {dump_aig(make_case(0, i).aig) for i in range(8)}
        assert len(dumps) > 1
