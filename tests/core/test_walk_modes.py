"""Tests contrasting the two Reduce walk strategies."""

from repro.adders import ripple_carry_adder
from repro.aig import levels, lit_var
from repro.core import ExactModel, Spcf, primary_reduce, spcf_exact_tt
from repro.netlist import compute_levels, renode


def _setup(n=4):
    aig = ripple_carry_adder(n)
    cout_po = n
    d = levels(aig)[lit_var(aig.pos[cout_po])]
    spcf = spcf_exact_tt(aig, cout_po, d)
    net = renode(aig, k=6)
    return aig, net, cout_po, spcf


def test_full_walk_marks_at_least_as_many_nodes():
    aig, net, po, spcf = _setup()
    cone_t = net.extract_po_cone(po)
    model_t = ExactModel(cone_t)
    target = primary_reduce(
        cone_t, 0, model_t, model_t.spcf_fn(Spcf("tt", tt=spcf)),
        walk_mode="target",
    )
    cone_f = net.extract_po_cone(po)
    model_f = ExactModel(cone_f)
    full = primary_reduce(
        cone_f, 0, model_f, model_f.spcf_fn(Spcf("tt", tt=spcf)),
        walk_mode="full",
    )
    assert len(full.windows) >= len(target.windows)


def test_both_modes_preserve_window_invariant():
    for mode in ("target", "full"):
        aig, net, po, spcf = _setup()
        cone = net.extract_po_cone(po)
        model = ExactModel(cone)
        original = cone.po_tts()[0]
        result = primary_reduce(
            cone, 0, model, model.spcf_fn(Spcf("tt", tt=spcf)),
            walk_mode=mode,
        )
        if result.sigma_nid is None:
            continue
        model.recompute()
        sigma = model.fn(result.sigma_nid)
        y_pos = cone.po_tts()[0]
        assert (sigma & (y_pos ^ original)).is_const0, mode


def test_full_walk_reduces_cone_more_or_equal():
    aig, net, po, spcf = _setup(5)
    results = {}
    for mode in ("target", "full"):
        cone = net.extract_po_cone(po)
        model = ExactModel(cone)
        primary_reduce(
            cone, 0, model, model.spcf_fn(Spcf("tt", tt=spcf)),
            walk_mode=mode,
        )
        root, _ = cone.pos[0]
        results[mode] = compute_levels(cone)[root]
    assert results["full"] <= results["target"]


def test_unknown_walk_mode_behaves_like_full():
    # Any walk_mode other than 'target' skips the early break.
    aig, net, po, spcf = _setup()
    cone = net.extract_po_cone(po)
    model = ExactModel(cone)
    result = primary_reduce(
        cone, 0, model, model.spcf_fn(Spcf("tt", tt=spcf)),
        walk_mode="everything",
    )
    assert result.windows  # walk ran
