"""And-Inverter Graphs with structural hashing.

An AIG is the paper's *decomposed logic circuit*: a DAG of two-input AND
nodes whose edges may be complemented.  Nodes are identified by integer
*variables*; signals are *literals* ``lit = 2*var + neg``.  Variable 0 is
the constant-false node, so literal 0 is constant 0 and literal 1 constant 1.

The graph is append-only: nodes are created in topological order, which
makes levelized traversals a simple ``range`` loop.  Optimizations build new
AIGs rather than mutating in place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

CONST0 = 0  #: literal constant false
CONST1 = 1  #: literal constant true


def lit_var(lit: int) -> int:
    """Variable index of a literal."""
    return lit >> 1


def lit_neg(lit: int) -> bool:
    """Complement flag of a literal."""
    return bool(lit & 1)


def lit_not(lit: int) -> int:
    """Complement a literal."""
    return lit ^ 1


def lit_notif(lit: int, cond: bool) -> int:
    """Complement a literal iff ``cond``."""
    return lit ^ 1 if cond else lit


def make_lit(var: int, neg: bool = False) -> int:
    """Build a literal from a variable and complement flag."""
    return (var << 1) | int(neg)


class AIG:
    """Structurally hashed And-Inverter Graph."""

    def __init__(self) -> None:
        # Variable 0 is the constant node; it has no fanins.
        self._fanin0: List[int] = [0]
        self._fanin1: List[int] = [0]
        self._is_pi: List[bool] = [False]
        self.pis: List[int] = []  # PI variable ids in creation order
        self.pos: List[int] = []  # PO literals in creation order
        self.pi_names: List[str] = []
        self.po_names: List[str] = []
        self._strash: Dict[Tuple[int, int], int] = {}

    # -- construction --------------------------------------------------------

    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input; returns its (positive) literal."""
        var = len(self._fanin0)
        self._fanin0.append(0)
        self._fanin1.append(0)
        self._is_pi.append(True)
        self.pis.append(var)
        self.pi_names.append(name if name is not None else f"pi{len(self.pis) - 1}")
        return make_lit(var)

    def add_pis(self, count: int, prefix: str = "pi") -> List[int]:
        """Create ``count`` primary inputs named ``prefix0..``."""
        start = len(self.pis)
        return [self.add_pi(f"{prefix}{start + i}") for i in range(count)]

    def add_po(self, lit: int, name: Optional[str] = None) -> int:
        """Register a primary output literal; returns its PO index."""
        self._check_lit(lit)
        self.pos.append(lit)
        self.po_names.append(name if name is not None else f"po{len(self.pos) - 1}")
        return len(self.pos) - 1

    def and_(self, a: int, b: int) -> int:
        """AND of two literals with constant folding and structural hashing."""
        self._check_lit(a)
        self._check_lit(b)
        if a == CONST0 or b == CONST0 or a == lit_not(b):
            return CONST0
        if a == CONST1:
            return b
        if b == CONST1 or a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        var = self._strash.get(key)
        if var is None:
            var = len(self._fanin0)
            self._fanin0.append(a)
            self._fanin1.append(b)
            self._is_pi.append(False)
            self._strash[key] = var
        return make_lit(var)

    # -- introspection --------------------------------------------------------

    def _check_lit(self, lit: int) -> None:
        if not 0 <= lit_var(lit) < len(self._fanin0):
            raise ValueError(f"literal {lit} references unknown variable")

    @property
    def num_vars(self) -> int:
        """Total variable count including the constant node."""
        return len(self._fanin0)

    @property
    def num_pis(self) -> int:
        return len(self.pis)

    @property
    def num_pos(self) -> int:
        return len(self.pos)

    def num_ands(self) -> int:
        """Number of AND nodes (the paper's AIG 'gates' metric)."""
        return sum(
            1 for v in range(self.num_vars) if self.is_and(v)
        )

    def is_pi(self, var: int) -> bool:
        return self._is_pi[var]

    def is_const(self, var: int) -> bool:
        return var == 0

    def is_and(self, var: int) -> bool:
        return var != 0 and not self._is_pi[var]

    def fanins(self, var: int) -> Tuple[int, int]:
        """Fan-in literals of an AND variable."""
        if not self.is_and(var):
            raise ValueError(f"variable {var} is not an AND node")
        return self._fanin0[var], self._fanin1[var]

    def and_vars(self) -> Iterable[int]:
        """AND variables in topological (creation) order."""
        for var in range(1, self.num_vars):
            if not self._is_pi[var]:
                yield var

    def pi_index(self, var: int) -> int:
        """Position of a PI variable in the PI list."""
        if not self._is_pi[var]:
            raise ValueError(f"variable {var} is not a PI")
        return self.pis.index(var)

    # -- derived operators ----------------------------------------------------

    def or_(self, a: int, b: int) -> int:
        return lit_not(self.and_(lit_not(a), lit_not(b)))

    def nand_(self, a: int, b: int) -> int:
        return lit_not(self.and_(a, b))

    def nor_(self, a: int, b: int) -> int:
        return self.and_(lit_not(a), lit_not(b))

    def xor_(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, lit_not(b)), self.and_(lit_not(a), b))

    def xnor_(self, a: int, b: int) -> int:
        return lit_not(self.xor_(a, b))

    def mux_(self, sel: int, t: int, e: int) -> int:
        """Multiplexer: ``sel ? t : e``."""
        return self.or_(self.and_(sel, t), self.and_(lit_not(sel), e))

    def implies_(self, a: int, b: int) -> int:
        return self.or_(lit_not(a), b)

    def and_many(self, lits: Sequence[int]) -> int:
        """Balanced AND tree over a list of literals."""
        return self._tree(list(lits), self.and_)

    def or_many(self, lits: Sequence[int]) -> int:
        """Balanced OR tree over a list of literals."""
        return self._tree(list(lits), self.or_)

    def xor_many(self, lits: Sequence[int]) -> int:
        """Balanced XOR tree over a list of literals."""
        return self._tree(list(lits), self.xor_)

    @staticmethod
    def _tree(lits: List[int], op) -> int:
        if not lits:
            raise ValueError("empty operand list")
        while len(lits) > 1:
            nxt = [op(lits[i], lits[i + 1]) for i in range(0, len(lits) - 1, 2)]
            if len(lits) % 2:
                nxt.append(lits[-1])
            lits = nxt
        return lits[0]

    # -- copying --------------------------------------------------------------

    def copy_cone(
        self,
        dest: "AIG",
        mapping: Dict[int, int],
        lits: Sequence[int],
    ) -> List[int]:
        """Copy the cones of ``lits`` into ``dest``.

        ``mapping`` maps source variables to destination literals and must
        already contain every PI (and constant var 0 maps implicitly).
        Returns the destination literals for ``lits``; extends ``mapping``.
        """
        mapping.setdefault(0, CONST0)
        out = []
        for lit in lits:
            out.append(self._copy_rec(dest, mapping, lit))
        return out

    def _copy_rec(self, dest: "AIG", mapping: Dict[int, int], lit: int) -> int:
        stack = [lit_var(lit)]
        while stack:
            var = stack[-1]
            if var in mapping:
                stack.pop()
                continue
            if self._is_pi[var]:
                raise KeyError(f"PI variable {var} missing from mapping")
            f0, f1 = self._fanin0[var], self._fanin1[var]
            pending = [v for v in (lit_var(f0), lit_var(f1)) if v not in mapping]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            a = lit_notif(mapping[lit_var(f0)], lit_neg(f0))
            b = lit_notif(mapping[lit_var(f1)], lit_neg(f1))
            mapping[var] = dest.and_(a, b)
        return lit_notif(mapping[lit_var(lit)], lit_neg(lit))

    def extract(self, po_lits: Optional[Sequence[int]] = None) -> "AIG":
        """Structurally rebuild keeping only logic reachable from the POs.

        This performs dangling-node removal and re-strashing in one pass
        (ABC's ``cleanup`` + ``strash``).  PI set and order are preserved.
        """
        if po_lits is None:
            po_lits = self.pos
        dest = AIG()
        mapping: Dict[int, int] = {0: CONST0}
        for var, name in zip(self.pis, self.pi_names):
            mapping[var] = dest.add_pi(name)
        new_pos = self.copy_cone(dest, mapping, po_lits)
        for lit, name in zip(new_pos, self.po_names[: len(new_pos)]):
            dest.add_po(lit, name)
        # Extra POs beyond existing names get default names.
        for lit in new_pos[len(self.po_names):]:
            dest.add_po(lit)
        return dest

    def __repr__(self) -> str:
        return (
            f"AIG(pis={self.num_pis}, pos={self.num_pos}, "
            f"ands={self.num_ands()})"
        )
