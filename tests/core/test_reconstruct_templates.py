"""Systematic tests of the implication-rule template engine."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, lit_not, node_tts, lit_var, lit_neg
from repro.cec import lits_equivalent
from repro.core import TEMPLATES, build_ite, reconstruct
from repro.netlist import ArrivalAwareBuilder
from repro.tt import TruthTable


def _tt_of(aig, lit):
    tts = node_tts(aig)
    t = tts[lit_var(lit)]
    return ~t if lit_neg(lit) else t


def random_triple(seed):
    rng = random.Random(seed)
    aig = AIG()
    xs = [aig.add_pi() for _ in range(4)]
    def mk():
        a = rng.choice(xs) ^ rng.randint(0, 1)
        b = rng.choice(xs) ^ rng.randint(0, 1)
        return getattr(aig, rng.choice(["and_", "or_", "xor_"]))(a, b)
    return aig, mk(), mk(), mk()


class TestTemplateSoundness:
    @given(st.integers(0, 200))
    @settings(deadline=None, max_examples=40)
    def test_selected_candidate_always_equivalent(self, seed):
        aig, s, a, b = random_triple(seed)
        builder = ArrivalAwareBuilder(aig)
        best = reconstruct(builder, s, a, b)
        ite_tt = (
            (_tt_of(aig, s) & _tt_of(aig, a))
            | (~_tt_of(aig, s) & _tt_of(aig, b))
        )
        assert _tt_of(aig, best) == ite_tt

    @given(st.integers(0, 100))
    @settings(deadline=None, max_examples=20)
    def test_template_validation_matches_semantics(self, seed):
        # For every template: the engine may only pick it when it is
        # truth-table-equivalent to the ITE.
        aig, s, a, b = random_triple(seed)
        builder = ArrivalAwareBuilder(aig)
        base = build_ite(builder, s, a, b)
        base_tt = _tt_of(aig, base)
        for name, template in TEMPLATES:
            candidate = template(builder, s, a, b)
            sim_says = lits_equivalent(aig, candidate, base)
            tt_says = _tt_of(aig, candidate) == base_tt
            assert sim_says == tt_says, name


class TestKnownRules:
    def _builder(self):
        aig = AIG()
        s = aig.add_pi("s")
        x = aig.add_pi("x")
        y = aig.add_pi("y")
        return aig, ArrivalAwareBuilder(aig), s, x, y

    def test_const_then_branch(self):
        # ITE(s, 1, b) == s | b.
        aig, builder, s, x, _ = self._builder()
        out = reconstruct(builder, s, lit_not(0), x)
        assert _tt_of(aig, out) == (_tt_of(aig, s) | _tt_of(aig, x))

    def test_const_else_branch(self):
        # ITE(s, a, 0) == s & a.
        aig, builder, s, x, _ = self._builder()
        out = reconstruct(builder, s, x, 0)
        assert _tt_of(aig, out) == (_tt_of(aig, s) & _tt_of(aig, x))

    def test_equal_branches_drop_select(self):
        aig, builder, s, x, _ = self._builder()
        out = reconstruct(builder, s, x, x)
        assert out == x

    def test_select_itself(self):
        # ITE(s, 1, 0) == s.
        aig, builder, s, _, _ = self._builder()
        out = reconstruct(builder, s, lit_not(0), 0)
        assert out == s

    def test_inverted_select(self):
        # ITE(s, 0, 1) == !s.
        aig, builder, s, _, _ = self._builder()
        out = reconstruct(builder, s, 0, lit_not(0))
        assert out == lit_not(s)

    def test_implied_else_collapses(self):
        # b = x&y implies a = x: ITE(s, x, x&y) == s&x | x&y == x&(s|y).
        aig, builder, s, x, y = self._builder()
        b = builder.and_(x, y)
        out = reconstruct(builder, s, x, b)
        expected = (
            (_tt_of(aig, s) & _tt_of(aig, x))
            | (~_tt_of(aig, s) & _tt_of(aig, b))
        )
        assert _tt_of(aig, out) == expected
        base = build_ite(builder, s, x, b)
        assert builder.level(out) <= builder.level(base)
