"""The paper's logic-level model for technology-independent networks.

Node levels are computed from the *minimum SOP* of the node's on-set and
off-set: each prime-implicant cube contributes an optimal (arrival-aware)
AND tree, the cubes combine through an optimal OR tree, and the node level
is the smaller of the on-set and off-set values (output inversion is free,
as in an AIG).  Optimal binary-tree depth over weighted leaves is obtained
with the classic Huffman-style merge of the two earliest arrivals.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

from ..sop import Cover, min_sop
from ..tt import TruthTable
from .network import Network

_SOP_CACHE: Dict[Tuple[int, int], Tuple[Cover, Cover]] = {}


def min_sops(tt: TruthTable) -> Tuple[Cover, Cover]:
    """Cached (on-set, off-set) minimum SOPs of a local function."""
    key = (tt.bits, tt.nvars)
    cached = _SOP_CACHE.get(key)
    if cached is None:
        cached = (min_sop(tt), min_sop(~tt))
        _SOP_CACHE[key] = cached
    return cached


def tree_level(arrivals: Sequence[int]) -> int:
    """Depth of the optimal binary tree combining leaves with arrival times.

    Repeatedly merges the two earliest leaves; the result is the minimum
    achievable arrival at the tree root (0 for a single leaf or no leaves).
    """
    if len(arrivals) <= 1:
        return arrivals[0] if arrivals else 0
    heap = list(arrivals)
    heapq.heapify(heap)
    while len(heap) > 1:
        a = heapq.heappop(heap)
        b = heapq.heappop(heap)
        heapq.heappush(heap, max(a, b) + 1)
    return heap[0]


def cover_level(cover: Cover, fanin_levels: Sequence[int]) -> int:
    """Arrival of an SOP cover as AND trees feeding an OR tree."""
    if cover.is_empty():
        return 0  # constant
    cube_levels = []
    for cube in cover:
        arrivals = [fanin_levels[var] for var, _pol in cube.literals()]
        cube_levels.append(tree_level(arrivals))
    return tree_level(cube_levels)


def node_level(tt: TruthTable, fanin_levels: Sequence[int]) -> int:
    """Paper's node level: min over the on-set and off-set minimum SOPs."""
    if tt.is_const0 or tt.is_const1:
        return 0
    on_cover, off_cover = min_sops(tt)
    return min(
        cover_level(on_cover, fanin_levels),
        cover_level(off_cover, fanin_levels),
    )


def compute_levels(net: Network, model=None) -> Dict[int, int]:
    """Level of every node in the network (PIs at the model's arrivals).

    Facade over :class:`repro.timing.NetworkTimingEngine`; hold an engine
    directly for incremental re-analysis across edits.
    """
    from ..timing import NetworkTimingEngine

    return dict(NetworkTimingEngine(net, model).levels())


def network_depth(net: Network, model=None) -> int:
    """Max PO level of the network."""
    from ..timing import NetworkTimingEngine

    return NetworkTimingEngine(net, model).depth()


def po_level(net: Network, po_index: int, levels: Dict[int, int]) -> int:
    nid, _neg = net.pos[po_index]
    return levels[nid]


def critical_inputs(
    tt: TruthTable, fanin_levels: Sequence[int]
) -> List[int]:
    """Fan-in positions whose level reduction is necessary to reduce the node.

    A fan-in is critical when, with every *other* fan-in arriving instantly,
    the node still cannot beat its current level.  If no single fan-in is
    individually necessary (ties), the latest-arriving fan-ins are returned
    so the critical walk always has somewhere to go.
    """
    current = node_level(tt, fanin_levels)
    if current == 0 or not fanin_levels:
        return []
    necessary = []
    for i in range(len(fanin_levels)):
        relaxed = [0] * len(fanin_levels)
        relaxed[i] = fanin_levels[i]
        if node_level(tt, relaxed) >= current:
            necessary.append(i)
    if necessary:
        return necessary
    peak = max(fanin_levels)
    return [i for i, l in enumerate(fanin_levels) if l == peak]
