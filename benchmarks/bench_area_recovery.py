"""Area-recovery speed bench: legacy rebuild+CEC vs the incremental engine.

Times redundancy removal on the Table-2 circuits.  The *legacy* algorithm
(kept verbatim below as the measurement baseline) restarted its edge scan
from node zero after every accepted drop and proved each candidate with a
whole-AIG rebuild plus a full CEC run; the incremental engine
(:class:`repro.core.RedundancyEngine`) answers each edge with one bounded
two-assumption SAT query against a persistent CNF, behind a shared
simulation prefilter.

Rows are *merged* into ``BENCH_speed.json`` (flows ``area-legacy`` /
``area-incremental``) next to the lookahead rows; rerun this script after
``benchmarks/bench_speed.py`` regenerates that file from scratch.

Run standalone:  python benchmarks/bench_area_recovery.py [--skip-legacy]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.aig import AIG, CONST0, depth, lit_neg, lit_notif, lit_var
from repro.core import remove_redundant_edges

DEFAULT_OUTPUT = "BENCH_speed.json"
CIRCUITS = ("rot", "C432")


# -- the pre-engine algorithm, kept as the measurement baseline --------------


def _legacy_rebuild_without_edge(aig: AIG, target_var: int, drop_idx: int):
    dest = AIG()
    mapping: Dict[int, int] = {0: CONST0}
    for var, name in zip(aig.pis, aig.pi_names):
        mapping[var] = dest.add_pi(name)

    def mapped(lit: int) -> int:
        return lit_notif(mapping[lit_var(lit)], lit_neg(lit))

    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        if var == target_var:
            kept = f1 if drop_idx == 0 else f0
            mapping[var] = mapped(kept)
        else:
            mapping[var] = dest.and_(mapped(f0), mapped(f1))
    for po, name in zip(aig.pos, aig.po_names):
        dest.add_po(mapped(po), name)
    return dest.extract()


def legacy_remove_redundant_edges(
    aig: AIG, max_checks: int = 2000, sim_width: int = 512, seed: int = 1
):
    """The O(n²)-rebuilds hot path this PR replaced (verbatim)."""
    from repro.cec import check_equivalence

    current = aig.extract()
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for var in list(current.and_vars()):
            if checks >= max_checks:
                break
            for drop_idx in (0, 1):
                checks += 1
                candidate = _legacy_rebuild_without_edge(
                    current, var, drop_idx
                )
                if candidate.num_ands() >= current.num_ands():
                    continue
                if check_equivalence(current, candidate, sim_width, seed):
                    current = candidate
                    improved = True
                    break
            if improved:
                break
    return current


# -- the bench ---------------------------------------------------------------


def run_bench(skip_legacy: bool = False, verbose: bool = True) -> List[dict]:
    from repro.bench import BENCHMARKS

    rows: List[dict] = []
    variants = [("area-incremental", remove_redundant_edges)]
    if not skip_legacy:
        variants.append(("area-legacy", legacy_remove_redundant_edges))
    for name in CIRCUITS:
        aig = BENCHMARKS[name]()
        for flow, fn in variants:
            start = time.perf_counter()
            out = fn(aig)
            seconds = time.perf_counter() - start
            rows.append(
                {
                    "circuit": name,
                    "flow": flow,
                    "seconds": round(seconds, 4),
                    "depth": depth(out),
                    "ands": out.num_ands(),
                }
            )
            if verbose:
                print(
                    f"{name:10s} {flow:18s} {seconds:8.2f}s "
                    f"depth {depth(out):3d} ands {out.num_ands():5d}"
                )
    return rows


def merge_rows(rows: List[dict], path: str) -> None:
    """Replace matching (circuit, flow) rows in ``path``; keep the rest."""
    existing: List[dict] = []
    if os.path.exists(path):
        with open(path) as fh:
            existing = json.load(fh)
    fresh = {(r["circuit"], r["flow"]) for r in rows}
    merged = [
        r for r in existing if (r["circuit"], r["flow"]) not in fresh
    ] + rows
    with open(path, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-legacy", action="store_true",
        help="only time the incremental engine (the legacy baseline "
             "takes ~20s on rot)",
    )
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    rows = run_bench(skip_legacy=args.skip_legacy)
    merge_rows(rows, args.output)
    print(f"merged {len(rows)} rows into {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
