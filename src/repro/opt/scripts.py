"""Named optimization flows mirroring the paper's comparison tools.

The paper compares lookahead synthesis against SIS (scripts ``delay``,
``rugged``, ``algebraic``, ``speed_up``), ABC (``resyn2rs``), and Synopsys
DC (``-map-effort high -area-effort high``), reporting each tool's best
result.  These closed tools cannot be run here; per the substitution rule
the flows are rebuilt from the same named algorithms on our substrate:

* :func:`abc_resyn2rs` — the balance/rewrite/refactor alternation of the
  ``resyn2rs`` script;
* :func:`sis_best` — network-level minimization (espresso per node via our
  SOP engine) plus the ``speed_up`` tree-height reduction, best-of;
* :func:`dc_map_effort_high` — a high-effort conventional flow: every
  baseline script is run and the best result kept, matching how a mature
  commercial tool dominates the academic flows it subsumes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..aig import AIG, depth
from ..netlist import network_to_aig, renode
from .balance import balance
from .rewrite import refactor, rewrite
from .speedup import speed_up


def _quality(aig: AIG) -> Tuple[int, int]:
    return depth(aig), aig.num_ands()


def _best(candidates: List[AIG]) -> AIG:
    return min(candidates, key=_quality)


def abc_resyn2rs(aig: AIG) -> AIG:
    """The ``resyn2rs`` script shape: b, rw, rf, b, rw, rwz, b, rfz, rwz, b."""
    current = aig.extract()
    for step in (
        balance,
        rewrite,
        refactor,
        balance,
        rewrite,
        rewrite,
        balance,
        refactor,
        rewrite,
        balance,
    ):
        candidate = step(current)
        if _quality(candidate) <= _quality(current):
            current = candidate
    return current


def sis_minimize(aig: AIG) -> AIG:
    """SIS ``rugged``-style pass: node minimization on the clustered network.

    renode produces the multi-level network; converting back through
    ``min_sop`` + factoring is the espresso/gkx-style node minimization.
    """
    net = renode(aig, k=8, max_cuts=6)
    return network_to_aig(net)


def sis_best(aig: AIG) -> AIG:
    """Best of the SIS-style scripts (delay / rugged / algebraic / speed_up)."""
    candidates = [aig.extract()]
    candidates.append(sis_minimize(aig))
    candidates.append(speed_up(aig))
    candidates.append(speed_up(sis_minimize(aig)))
    candidates.append(balance(sis_minimize(aig)))
    return _best(candidates)


def dc_map_effort_high(aig: AIG) -> AIG:
    """High-effort conventional flow (the Synopsys DC stand-in).

    Commercial map-effort-high synthesis subsumes the academic scripts and
    adds bounded delay-directed restructuring: one delay-objective rewrite
    pass plus balancing, on top of the best academic result.
    """
    candidates = [aig.extract()]
    resyn = abc_resyn2rs(aig)
    candidates.append(resyn)
    candidates.append(sis_best(aig))
    candidates.append(speed_up(resyn))
    delay_pass = balance(rewrite(_best(candidates), objective="delay"))
    candidates.append(delay_pass)
    candidates.append(speed_up(delay_pass))
    return _best(candidates)


BASELINE_FLOWS: Dict[str, Callable[[AIG], AIG]] = {
    "sis": sis_best,
    "abc": abc_resyn2rs,
    "dc": dc_map_effort_high,
}
"""The paper's three comparison columns."""
