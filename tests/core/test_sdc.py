"""Tests for SDC-based node minimization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, po_tts
from repro.core import ExactModel
from repro.core.sdc import sdc_minimize
from repro.netlist import Network, renode
from repro.tt import TruthTable

from ..aig.test_aig import random_aig


def test_correlated_fanins_simplify():
    # Node computes XOR(g, h) with g = a&b and h = a&b duplicated through
    # different structure: the vectors g != h are SDCs, so the node
    # becomes constant 0.
    net = Network()
    a, b = net.add_pi("a"), net.add_pi("b")
    and_tt = TruthTable.from_function(lambda x, y: x and y, 2)
    g = net.add_node([a, b], and_tt)
    h = net.add_node([b, a], and_tt)
    xor_tt = TruthTable.from_function(lambda x, y: x != y, 2)
    top = net.add_node([g, h], xor_tt)
    net.add_po(top)
    model = ExactModel(net)
    changed = sdc_minimize(net, model)
    assert changed >= 1
    assert net.po_tts()[0].is_const0


@given(st.integers(0, 40))
@settings(deadline=None, max_examples=15)
def test_preserves_po_functions(seed):
    aig = random_aig(seed, n_pis=5, n_nodes=30, n_pos=3)
    net = renode(aig, k=4)
    before = net.po_tts()
    model = ExactModel(net)
    sdc_minimize(net, model)
    assert net.po_tts() == before


def test_wide_nodes_skipped():
    net = Network()
    pis = [net.add_pi() for _ in range(10)]
    wide = net.add_node(
        pis, TruthTable.from_function(lambda *xs: any(xs), 10)
    )
    net.add_po(wide)
    model = ExactModel(net)
    assert sdc_minimize(net, model) == 0
