"""Tests for cubes and SOP covers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sop import Cube, Cover
from repro.tt import TruthTable


def cube_strategy(nvars=4):
    return st.tuples(
        st.integers(0, (1 << nvars) - 1), st.integers(0, (1 << nvars) - 1)
    ).map(lambda mv: Cube(mv[0], mv[1], nvars))


class TestCube:
    def test_parse_and_print_roundtrip(self):
        for text in ("1-0", "---", "111", "0-1"):
            assert Cube.parse(text).to_string() == text

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Cube.parse("1x0")

    def test_contains_minterm(self):
        c = Cube.parse("1-0")  # x2=1, x0=0
        assert c.contains_minterm(0b100)
        assert c.contains_minterm(0b110)
        assert not c.contains_minterm(0b101)

    def test_from_literals_conflict(self):
        with pytest.raises(ValueError):
            Cube.from_literals([(0, True), (0, False)], 3)

    @given(cube_strategy(), cube_strategy())
    def test_covers_matches_tt(self, a, b):
        assert a.covers(b) == b.to_tt().implies(a.to_tt())

    @given(cube_strategy(), cube_strategy())
    def test_intersect_matches_tt(self, a, b):
        inter = a.intersect(b)
        tt = a.to_tt() & b.to_tt()
        if inter is None:
            assert tt.is_const0
        else:
            assert inter.to_tt() == tt

    @given(cube_strategy())
    def test_size_matches_tt(self, c):
        assert c.size() == c.to_tt().count_ones()

    @given(cube_strategy(), st.integers(0, 3), st.booleans())
    def test_cofactor_matches_tt(self, c, var, pol):
        cof = c.cofactor(var, pol)
        tt_cof = c.to_tt().cofactor(var, pol)
        if cof is None:
            assert tt_cof.is_const0
        else:
            assert cof.to_tt() == tt_cof

    def test_distance(self):
        a = Cube.parse("11-")
        b = Cube.parse("00-")
        assert a.distance(b) == 2


class TestCover:
    def test_tautology_and_empty(self):
        assert Cover.tautology(3).to_tt().is_const1
        assert Cover.empty(3).to_tt().is_const0

    def test_parse_multi(self):
        cov = Cover.parse(["1-0", "011"])
        assert len(cov) == 2
        assert cov.num_literals() == 5

    def test_scc_removes_contained(self):
        cov = Cover.parse(["1--", "11-", "111"])
        reduced = cov.single_cube_containment()
        assert len(reduced) == 1
        assert reduced.to_tt() == cov.to_tt()

    @given(st.lists(cube_strategy(), min_size=1, max_size=6))
    def test_scc_preserves_function(self, cubes):
        cov = Cover(cubes, 4)
        assert cov.single_cube_containment().to_tt() == cov.to_tt()

    @given(st.lists(cube_strategy(), min_size=0, max_size=6),
           st.integers(0, 3), st.booleans())
    def test_cofactor_matches_tt(self, cubes, var, pol):
        cov = Cover(cubes, 4)
        assert cov.cofactor(var, pol).to_tt() == cov.to_tt().cofactor(var, pol)
