"""Builder purity of ``reconstruct``: losing candidates leave no nodes.

The same shared-builder bug class ``LookaheadOptimizer._rebuild`` fixed
for whole reconstructions: template candidates must be judged in a
scratch AIG, because dead loser nodes in the caller's builder perturb
fanout counts — and with a fanout-sensitive delay model
(:class:`repro.timing.LoadAwareDelay`) fanout counts feed straight back
into the arrival levels that drive acceptance decisions.
"""

from repro.aig import AIG, lit_not
from repro.cec import lits_equivalent
from repro.core import build_ite, reconstruct
from repro.netlist import ArrivalAwareBuilder
from repro.timing import LoadAwareDelay


def test_template_win_adds_only_the_winner_nodes():
    # ITE(s, s|x, b) == s|b: the one-AND "s|b" template beats the
    # three-AND Shannon base, so exactly one node may be added.
    aig = AIG()
    s, x, b = aig.add_pi("s"), aig.add_pi("x"), aig.add_pi("b")
    builder = ArrivalAwareBuilder(aig)
    a = builder.or_(s, x)
    before = aig.num_ands()
    result = reconstruct(builder, s, a, b)
    assert aig.num_ands() == before + 1
    # The result is the or: functionally ITE(s, a, b).
    check = AIG()
    cs, cx, cb = check.add_pi("s"), check.add_pi("x"), check.add_pi("b")
    cbuilder = ArrivalAwareBuilder(check)
    ca = cbuilder.or_(cs, cx)
    ite = build_ite(cbuilder, cs, ca, cb)
    want = cbuilder.or_(cs, cb)
    assert lits_equivalent(check, ite, want)


def test_base_win_matches_ablation_node_count():
    # Independent s/a/b: no template is valid, the Shannon base wins, and
    # the rules path must add exactly the nodes the ablation path adds.
    def build(use_rules):
        aig = AIG()
        s, a, b = aig.add_pi("s"), aig.add_pi("a"), aig.add_pi("b")
        builder = ArrivalAwareBuilder(aig)
        before = aig.num_ands()
        result = reconstruct(builder, s, a, b, use_rules=use_rules)
        return aig.num_ands() - before, aig, result

    added_rules, aig_r, res_r = build(True)
    added_base, aig_b, res_b = build(False)
    assert added_rules == added_base == 3  # s&a, !s&b, or


def test_purity_under_fanout_sensitive_model():
    # Under LoadAwareDelay dead loser nodes would inflate fanout counts
    # and change arrival levels; with scratch judging the builder's AIG
    # holds only the winner, so the result stays functionally right.
    aig = AIG()
    s, x, b = aig.add_pi("s"), aig.add_pi("x"), aig.add_pi("b")
    builder = ArrivalAwareBuilder(aig, LoadAwareDelay())
    a = builder.or_(s, x)
    before = aig.num_ands()
    result = reconstruct(builder, s, a, b)
    base = build_ite(builder, s, a, b)
    assert lits_equivalent(aig, result, base)
    # No loser templates survive in the builder: only the winner and the
    # reference base built above.
    assert aig.num_ands() <= before + 1 + 3


def test_reconstruct_result_always_equivalent_to_ite():
    # A spread of implication structures between s, a, b: whatever wins,
    # the returned literal must realize ITE(s, a, b).
    recipes = [
        lambda bld, s, x, b: (s, bld.or_(s, x), b),      # s -> a
        lambda bld, s, x, b: (s, bld.and_(s, x), b),     # a -> s
        lambda bld, s, x, b: (s, x, bld.or_(lit_not(s), x)),  # !s -> b
        lambda bld, s, x, b: (s, x, b),                  # independent
        lambda bld, s, x, b: (s, b, b),                  # a == b
    ]
    for i, recipe in enumerate(recipes):
        aig = AIG()
        s, x, b0 = aig.add_pi("s"), aig.add_pi("x"), aig.add_pi("b")
        builder = ArrivalAwareBuilder(aig)
        sigma, a, b = recipe(builder, s, x, b0)
        result = reconstruct(builder, sigma, a, b)
        base = build_ite(builder, sigma, a, b)
        assert lits_equivalent(aig, result, base), f"recipe {i}"
