"""Unified result store: every memo layer behind one pluggable backend.

The subsystem that makes "re-run the flow, skip the work already done"
a property of the whole system instead of five ad-hoc dicts:

* :mod:`repro.store.base` — the :class:`ResultStore` protocol, the
  per-layer :class:`Namespace` view, and :class:`StoreConfig`;
* :mod:`repro.store.memory` — bounded LRU :class:`MemoryStore`;
* :mod:`repro.store.sqlite` — persistent WAL-mode :class:`SqliteStore`;
* :mod:`repro.store.tiered` — write-through :class:`TieredStore`;
* :mod:`repro.store.runtime` — the per-process runtime store the memo
  layers consult (fork-aware, spec-shippable to pool workers);
* :mod:`repro.store.serialize` — versioned key/payload codec.

See DESIGN.md §3.20 for keying conventions and the warm==cold guarantee.
"""

from .base import (
    MISSING,
    Namespace,
    ResultStore,
    StoreConfig,
    StoreSpec,
    resolve_store,
)
from .memory import MemoryStore
from .serialize import (
    PAYLOAD_VERSION,
    StoreDecodeError,
    dumps,
    encode_key,
    key_fingerprint,
    loads,
)
from .sqlite import SCHEMA_VERSION, SqliteStore
from .tiered import TieredStore

__all__ = [
    "MISSING",
    "Namespace",
    "ResultStore",
    "StoreConfig",
    "StoreSpec",
    "resolve_store",
    "MemoryStore",
    "SqliteStore",
    "TieredStore",
    "SCHEMA_VERSION",
    "PAYLOAD_VERSION",
    "StoreDecodeError",
    "dumps",
    "loads",
    "encode_key",
    "key_fingerprint",
]
