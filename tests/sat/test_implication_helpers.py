"""Tests for the circuit-level implication helper APIs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import lit_not, node_tts, lit_var, lit_neg
from repro.sat import implies, is_satisfiable

from ..aig.test_aig import random_aig


def _tt(aig, lit):
    t = node_tts(aig)[lit_var(lit)]
    return ~t if lit_neg(lit) else t


@given(st.integers(0, 60))
@settings(deadline=None, max_examples=15)
def test_implies_matches_truth_tables(seed):
    import random

    rng = random.Random(seed)
    aig = random_aig(seed, n_pis=4, n_nodes=18, n_pos=1)
    ands = [v for v in aig.and_vars()]
    if len(ands) < 2:
        return
    a = ands[rng.randrange(len(ands))] * 2 ^ rng.randint(0, 1)
    b = ands[rng.randrange(len(ands))] * 2 ^ rng.randint(0, 1)
    assert implies(aig, a, b) == _tt(aig, a).implies(_tt(aig, b))


@given(st.integers(0, 60))
@settings(deadline=None, max_examples=15)
def test_satisfiable_matches_truth_tables(seed):
    aig = random_aig(seed, n_pis=4, n_nodes=18, n_pos=1)
    po = aig.pos[0]
    sat, model = is_satisfiable(aig, po)
    assert sat == (not _tt(aig, po).is_const0)
    if sat:
        m = sum(1 << i for i, b in enumerate(model) if b)
        assert _tt(aig, po).value(m)


def test_implication_with_assumptions():
    from repro.aig import AIG

    aig = AIG()
    a, b, c = (aig.add_pi() for _ in range(3))
    ab = aig.and_(a, b)
    abc = aig.and_(ab, c)
    sat, model = is_satisfiable(aig, ab, assumptions_lits=[lit_not(c)])
    assert sat and model[0] and model[1] and not model[2]
    sat, _ = is_satisfiable(aig, abc, assumptions_lits=[lit_not(c)])
    assert not sat
