"""Edge-case tests for AIGER/BLIF readers and writers."""

import io

import pytest

from repro.aig import (
    AIG,
    CONST0,
    CONST1,
    lit_not,
    po_tts,
    read_aag,
    read_blif,
    write_aag,
    write_blif,
)
from repro.tt import TruthTable


class TestAigerEdgeCases:
    def test_constant_outputs(self):
        aig = AIG()
        aig.add_pi("x")
        aig.add_po(CONST0, "zero")
        aig.add_po(CONST1, "one")
        buf = io.StringIO()
        write_aag(aig, buf)
        buf.seek(0)
        back = read_aag(buf)
        tts = po_tts(back)
        assert tts[0].is_const0 and tts[1].is_const1

    def test_inverted_pi_output(self):
        aig = AIG()
        x = aig.add_pi("x")
        aig.add_po(lit_not(x), "nx")
        buf = io.StringIO()
        write_aag(aig, buf)
        buf.seek(0)
        back = read_aag(buf)
        assert po_tts(back)[0] == ~TruthTable.var(0, 1)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            read_aag(io.StringIO("aig 1 1 0 0 0\n"))

    def test_undefined_literal_rejected(self):
        # PO references literal 8 which is never defined.
        text = "aag 2 1 0 1 0\n2\n8\n"
        with pytest.raises(ValueError):
            read_aag(io.StringIO(text))

    def test_symbol_table_roundtrip(self):
        aig = AIG()
        a = aig.add_pi("request_valid")
        b = aig.add_pi("grant_enable")
        aig.add_po(aig.and_(a, b), "grant_out")
        buf = io.StringIO()
        write_aag(aig, buf)
        buf.seek(0)
        back = read_aag(buf)
        assert back.pi_names == ["request_valid", "grant_enable"]
        assert back.po_names == ["grant_out"]


class TestBlifEdgeCases:
    def test_multiline_continuation(self):
        text = (
            ".model t\n"
            ".inputs a \\\n b\n"
            ".outputs y\n"
            ".names a b y\n"
            "11 1\n"
            ".end\n"
        )
        aig = read_blif(io.StringIO(text))
        assert aig.num_pis == 2
        assert po_tts(aig)[0] == (
            TruthTable.var(0, 2) & TruthTable.var(1, 2)
        )

    def test_offset_names_block(self):
        # Off-set specification: output is 0 on the listed cubes.
        text = (
            ".model t\n.inputs a b\n.outputs y\n"
            ".names a b y\n11 0\n.end\n"
        )
        aig = read_blif(io.StringIO(text))
        assert po_tts(aig)[0] == ~(
            TruthTable.var(0, 2) & TruthTable.var(1, 2)
        )

    def test_constant_names_blocks(self):
        text = (
            ".model t\n.inputs a\n.outputs one zero\n"
            ".names one\n1\n"
            ".names zero\n"
            ".end\n"
        )
        aig = read_blif(io.StringIO(text))
        tts = po_tts(aig)
        assert tts[0].is_const1 and tts[1].is_const0

    def test_comment_stripping(self):
        text = (
            "# header comment\n"
            ".model t\n.inputs a\n.outputs y\n"
            ".names a y  # pass-through\n1 1\n.end\n"
        )
        aig = read_blif(io.StringIO(text))
        assert po_tts(aig)[0] == TruthTable.var(0, 1)

    def test_undefined_signal_rejected(self):
        text = ".model t\n.inputs a\n.outputs y\n.names ghost y\n1 1\n.end\n"
        with pytest.raises(ValueError, match="undefined signal"):
            read_blif(io.StringIO(text))

    def test_out_of_order_names_blocks(self):
        # Regression: real benchmark BLIF lists .names in arbitrary order;
        # the reader must resolve forward references (here y = a AND b via
        # an intermediate t defined *after* its use).
        text = (
            ".model t\n.inputs a b\n.outputs y\n"
            ".names t y\n1 1\n"
            ".names a b t\n11 1\n"
            ".end\n"
        )
        aig = read_blif(io.StringIO(text))
        assert po_tts(aig)[0] == TruthTable.var(0, 2) & TruthTable.var(1, 2)

    def test_out_of_order_deep_chain(self):
        # A whole chain listed backwards, with the .inputs line after a
        # .names block for good measure.
        text = (
            ".model t\n.outputs y\n"
            ".names s2 y\n1 1\n"
            ".names s1 b s2\n11 1\n"
            ".inputs a b\n"
            ".names a s1\n0 1\n"
            ".end\n"
        )
        aig = read_blif(io.StringIO(text))
        expect = ~TruthTable.var(0, 2) & TruthTable.var(1, 2)
        assert po_tts(aig)[0] == expect

    def test_out_of_order_matches_in_order(self):
        fwd = (
            ".model t\n.inputs a b c\n.outputs y\n"
            ".names a b u\n11 1\n"
            ".names u c y\n10 1\n01 1\n"
            ".end\n"
        )
        rev = (
            ".model t\n.inputs a b c\n.outputs y\n"
            ".names u c y\n10 1\n01 1\n"
            ".names a b u\n11 1\n"
            ".end\n"
        )
        a = read_blif(io.StringIO(fwd))
        b = read_blif(io.StringIO(rev))
        assert po_tts(a) == po_tts(b)

    def test_cyclic_names_rejected(self):
        text = (
            ".model t\n.inputs a\n.outputs y\n"
            ".names q y\n1 1\n"
            ".names y q\n1 1\n"
            ".end\n"
        )
        with pytest.raises(ValueError, match="cycle"):
            read_blif(io.StringIO(text))

    def test_unsupported_construct_rejected(self):
        text = ".model t\n.inputs a\n.outputs y\n.latch a y\n.end\n"
        with pytest.raises(ValueError):
            read_blif(io.StringIO(text))

    def test_writer_reader_on_shared_inverters(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        na = lit_not(a)
        aig.add_po(aig.and_(na, b))
        aig.add_po(aig.and_(na, lit_not(b)))
        buf = io.StringIO()
        write_blif(aig, buf)
        buf.seek(0)
        back = read_blif(buf)
        assert po_tts(back) == po_tts(aig)
