"""Regression tests for the candidate-selection loop bugfix sweep.

Three historical bugs: the per-round budget was applied *before* the
known-rejected filter (warm rounds burned their whole window on cones
the cache had already rejected), the iteration loops re-evaluated the
incumbent's quality every round, and bad ``walk_modes`` values failed
deep inside a round instead of at construction.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.adders import ripple_carry_adder
from repro.core import (
    WALK_MODES,
    LookaheadOptimizer,
    lookahead_flow,
    normalize_job_config,
    validate_walk_modes,
)
from repro.core.lookahead import BUDGET_WINDOWS


def _sim_optimizer(**kwargs):
    opts = dict(seed=1, max_rounds=2, mode="sim", sim_width=256, workers=1)
    opts.update(kwargs)
    return LookaheadOptimizer(**opts)


# -- satellite 1: budget after the rejected filter ---------------------------


class TestWindowSelection:
    def test_rejected_candidates_never_occupy_budget_slots(self):
        aig = ripple_carry_adder(8)
        with _sim_optimizer(max_outputs_per_round=2) as opt:
            mode = opt._resolve_mode(aig)
            critical = list(range(len(aig.pos)))
            keys = [
                opt._candidate_keys(aig, po, mode, "target")
                for po in critical
            ]
            # Mark the first two candidates as already rejected in this
            # call: the budget window must hold the *next* two instead.
            opt._call_rejected.add(keys[0][2])
            opt._call_rejected.add(keys[1][2])
            window, tail = opt._select_window(aig, critical, mode, "target")
        assert [entry[0] for entry in window] == [critical[2], critical[3]]
        assert tail == critical[4:]

    def test_unlimited_budget_keeps_everything_unrejected(self):
        aig = ripple_carry_adder(6)
        with _sim_optimizer(max_outputs_per_round=None) as opt:
            mode = opt._resolve_mode(aig)
            critical = list(range(len(aig.pos)))
            window, tail = opt._select_window(aig, critical, mode, "target")
        assert [entry[0] for entry in window] == critical
        assert tail == []

    def test_zero_accept_window_slides_once(self, monkeypatch):
        aig = ripple_carry_adder(8)
        seen = []
        with _sim_optimizer(max_outputs_per_round=3) as opt:
            monkeypatch.setattr(
                opt, "_run_window",
                lambda a, net, window, *rest: seen.append(window) or None,
            )
            from repro.netlist import renode
            from repro.timing import AigTimingEngine

            engine = AigTimingEngine(aig, opt._delay_model())
            critical = list(range(len(aig.pos)))  # every PO eligible
            net = renode(aig, opt.k)
            perf.reset()
            rebuilt = opt._windowed_round(
                aig, lambda: net, critical,
                engine.arrivals(), opt._resolve_mode(aig), "target",
            )
        assert rebuilt is None
        assert len(seen) == BUDGET_WINDOWS
        assert perf.counter("rounds.window_slides") == BUDGET_WINDOWS - 1
        # The slid window continues down the critical queue.
        first = [entry[0] for entry in seen[0]]
        second = [entry[0] for entry in seen[1]]
        assert first == critical[:3] and second == critical[3:6]

    def test_unbounded_round_never_slides(self, monkeypatch):
        aig = ripple_carry_adder(6)
        seen = []
        with _sim_optimizer(max_outputs_per_round=None) as opt:
            monkeypatch.setattr(
                opt, "_run_window",
                lambda a, net, window, *rest: seen.append(window) or None,
            )
            from repro.netlist import renode
            from repro.timing import AigTimingEngine

            engine = AigTimingEngine(aig, opt._delay_model())
            net = renode(aig, opt.k)
            rebuilt = opt._windowed_round(
                aig, lambda: net, list(range(len(aig.pos))),
                engine.arrivals(), opt._resolve_mode(aig), "target",
            )
        assert rebuilt is None
        assert len(seen) == 1  # a budgetless window is already everything

    def test_warm_second_call_identical_and_cheaper(self):
        """Same-optimizer rerun replays verdicts without re-burning SPCF."""
        import io

        from repro.aig import write_aag

        def dump(a):
            buf = io.StringIO()
            write_aag(a, buf)
            return buf.getvalue()

        aig = ripple_carry_adder(8)
        with _sim_optimizer(max_outputs_per_round=4) as opt:
            first = opt.optimize(aig)
            perf.reset()
            second = opt.optimize(aig)
            warm_spcf = perf.counter("cache.spcf.miss")
        assert dump(first) == dump(second)
        assert warm_spcf == 0  # every cone verdict replayed from cache


# -- satellite 2: incumbent quality cached across rounds ---------------------


class TestQualityCaching:
    def test_optimizer_evaluates_incumbent_once_per_walk(self):
        aig = ripple_carry_adder(6)
        with _sim_optimizer(
            max_rounds=8, walk_modes=("target", "full")
        ) as opt:
            perf.reset()
            opt.optimize(aig)
            evals = perf.counter("quality.evals")
            rounds = perf.counter("rounds")
        # One incumbent evaluation per walk strategy plus at most one per
        # round that produced a candidate — never two per round.
        assert evals <= 2 + rounds

    def test_fixed_point_exits_before_budget(self):
        aig = ripple_carry_adder(6)
        with _sim_optimizer(max_rounds=1, walk_modes=("target",)) as opt:
            optimized = opt.optimize(aig)
        with _sim_optimizer(max_rounds=50, walk_modes=("target",)) as opt:
            perf.reset()
            again = opt.optimize(optimized)
            rounds = perf.counter("rounds")
        # Progress stalls long before the round budget: the loop must
        # stop at the first non-improving round, not burn all 50.
        assert rounds < 50
        assert again.num_ands() <= optimized.num_ands() * 2


# -- satellite 3: walk_modes validated at construction -----------------------


class TestWalkModeValidation:
    BAD = ("bogus",)

    def expected_message(self):
        try:
            validate_walk_modes(self.BAD)
        except ValueError as exc:
            return str(exc)
        raise AssertionError("validator accepted a bad walk mode")

    def test_validator_accepts_all_good_subsets(self):
        assert validate_walk_modes(["target"]) == ("target",)
        assert validate_walk_modes(("full", "target")) == ("full", "target")
        assert validate_walk_modes(list(WALK_MODES)) == WALK_MODES

    def test_validator_rejects_bad_shapes(self):
        for bad in ("target", [], (), None, 42, ["target", "bogus"]):
            with pytest.raises(ValueError):
                validate_walk_modes(bad)

    def test_constructor_flow_and_jobs_reject_identically(self):
        message = self.expected_message()
        with pytest.raises(ValueError) as from_ctor:
            LookaheadOptimizer(walk_modes=self.BAD)
        with pytest.raises(ValueError) as from_flow:
            lookahead_flow(ripple_carry_adder(2), walk_modes=self.BAD)
        with pytest.raises(ValueError) as from_jobs:
            normalize_job_config({"walk_modes": list(self.BAD)})
        assert str(from_ctor.value) == message
        assert str(from_flow.value) == message
        assert str(from_jobs.value) == message

    def test_cli_rejects_identically(self, tmp_path):
        from repro.aig import write_aag
        from repro.cli import main

        circuit = tmp_path / "rca2.aag"
        with open(circuit, "w") as fh:
            write_aag(ripple_carry_adder(2), fh)
        with pytest.raises(ValueError) as from_cli:
            main([
                "optimize", str(circuit), "--flow", "lookahead-only",
                "--walk-modes", "bogus",
            ])
        assert str(from_cli.value) == self.expected_message()

    def test_constructor_rejects_before_any_work(self):
        # The error must come from construction, not the first round.
        with pytest.raises(ValueError):
            LookaheadOptimizer(walk_modes=("target", "sideways"))
