"""Wire framing and endpoint-file discovery for the optimize daemon."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.serve import ProtocolError, ServeError, endpoint_path
from repro.serve.protocol import (
    DEFAULT_HOST,
    MAX_MESSAGE_BYTES,
    parse_hostport,
    read_endpoint,
    recv_message,
    remove_endpoint,
    write_endpoint,
)


class TestFraming:
    def _recv(self, raw: bytes):
        return recv_message(io.BytesIO(raw))

    def test_roundtrip(self):
        obj = {"op": "submit", "circuit": "aag 0 0 0 0 0\n", "n": 3}
        line = json.dumps(obj).encode() + b"\n"
        assert self._recv(line) == obj

    def test_eof_is_none(self):
        assert self._recv(b"") is None

    def test_garbage_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            self._recv(b"this is not json\n")

    def test_non_object_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            self._recv(b"[1, 2, 3]\n")

    def test_oversized_message_rejected(self):
        class HugeLine:
            def readline(self, limit):
                return b"x" * (MAX_MESSAGE_BYTES + 1)

        with pytest.raises(ProtocolError):
            recv_message(HugeLine())


class TestHostport:
    def test_full(self):
        assert parse_hostport("10.0.0.1:4321") == ("10.0.0.1", 4321)

    def test_bare_port(self):
        assert parse_hostport("4321") == (DEFAULT_HOST, 4321)
        assert parse_hostport(":4321") == (DEFAULT_HOST, 4321)

    def test_bad_port_raises(self):
        with pytest.raises(ServeError):
            parse_hostport("host:not-a-port")


class TestEndpointFiles:
    def test_write_read_roundtrip(self, tmp_path):
        path = endpoint_path(str(tmp_path / "store.db"))
        assert path.endswith("store.db.serve.json")
        write_endpoint(path, "127.0.0.1", 12345, str(tmp_path / "store.db"))
        record = read_endpoint(path)
        assert record["host"] == "127.0.0.1"
        assert record["port"] == 12345
        assert record["pid"] == os.getpid()

    def test_read_missing_is_no_daemon(self, tmp_path):
        with pytest.raises(ServeError) as exc:
            read_endpoint(str(tmp_path / "absent.serve.json"))
        assert exc.value.code == "no-daemon"

    def test_read_corrupt_raises(self, tmp_path):
        path = tmp_path / "ep.serve.json"
        path.write_text("{truncated")
        with pytest.raises(ServeError):
            read_endpoint(str(path))

    def test_remove_only_own_record(self, tmp_path):
        path = str(tmp_path / "ep.serve.json")
        # A record owned by some other (dead) daemon stays put ...
        with open(path, "w") as fh:
            json.dump({"host": "h", "port": 1, "pid": -1}, fh)
        remove_endpoint(path)
        assert os.path.exists(path)
        # ... our own record is removed.
        write_endpoint(path, "127.0.0.1", 2, None)
        remove_endpoint(path)
        assert not os.path.exists(path)
