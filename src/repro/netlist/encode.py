"""CNF encoding of technology-independent networks.

Each node's on-set minimum SOP is Tseitin-encoded (one auxiliary variable
per cube).  Used by the secondary simplification's exact cube-reachability
checks on circuits too large for global truth tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..sat import Solver
from .levels import min_sops
from .network import Network


def encode_network(
    solver: Solver,
    net: Network,
    pi_vars: Optional[Sequence[int]] = None,
    roots: Optional[Iterable[int]] = None,
    var_of: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Encode the network into ``solver``; returns node id -> solver var.

    ``pi_vars`` allows sharing PI variables across multiple encodings (for
    care-set checks spanning two networks).  ``roots`` restricts the
    encoding to the transitive fan-in cones of the given nodes; every PI
    still gets a variable, but nodes outside the cones get neither a
    variable nor clauses — keeping total assignments (and thus SAT-side
    propagation cost) proportional to the queried cone, not the network.

    ``var_of`` extends an existing encoding in place: nodes already in
    the map are assumed encoded and skipped (no variable, no clauses),
    so repeated calls with growing ``roots`` lazily encode a network cone
    by cone.  The clause stream of such a call sequence is a function of
    the root batches alone, so replaying the batches into a fresh solver
    reproduces the variable numbering exactly.
    """
    if var_of is None:
        var_of = {}
    if pi_vars is None:
        pi_vars = [solver.new_var() for _ in range(len(net.pis))]
    if len(pi_vars) != len(net.pis):
        raise ValueError("one solver variable per PI required")
    for pi, sv in zip(net.pis, pi_vars):
        var_of[pi] = sv
    keep = None if roots is None else net.fanin_cone(roots)
    for nid in net.topo_order():
        if keep is not None and nid not in keep:
            continue
        if nid in var_of:
            continue  # already encoded by an earlier extension call
        node = net.nodes[nid]
        out = solver.new_var()
        var_of[nid] = out
        tt = node.tt
        if tt.is_const0:
            solver.add_clause([-out])
            continue
        if tt.is_const1:
            solver.add_clause([out])
            continue
        on_cover, _ = min_sops(tt)
        aux_vars: List[int] = []
        for cube in on_cover:
            lits = [
                (var_of[node.fanins[var]] if pol else -var_of[node.fanins[var]])
                for var, pol in cube.literals()
            ]
            if len(lits) == 1:
                aux_vars.append(lits[0])
                continue
            aux = solver.new_var()
            aux_vars.append(aux)
            for l in lits:
                solver.add_clause([-aux, l])
            solver.add_clause([aux] + [-l for l in lits])
        # out <-> OR(aux_vars)
        solver.add_clause([-out] + aux_vars)
        for a in aux_vars:
            solver.add_clause([out, -a])
    return var_of
