"""Property tests for the paper's SOP level model."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import cover_level, node_level, tree_level
from repro.sop import Cover, min_sop
from repro.tt import TruthTable


def brute_force_tree_level(arrivals):
    """Minimum root arrival over all binary merge orders (exponential)."""
    if len(arrivals) <= 1:
        return arrivals[0] if arrivals else 0
    best = None
    items = list(arrivals)
    for i, j in itertools.combinations(range(len(items)), 2):
        merged = [items[k] for k in range(len(items)) if k not in (i, j)]
        merged.append(max(items[i], items[j]) + 1)
        sub = brute_force_tree_level(merged)
        if best is None or sub < best:
            best = sub
    return best


class TestTreeLevel:
    @given(st.lists(st.integers(0, 6), min_size=0, max_size=6))
    @settings(deadline=None, max_examples=40)
    def test_matches_brute_force(self, arrivals):
        assert tree_level(arrivals) == brute_force_tree_level(arrivals)

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=10))
    def test_bounds(self, arrivals):
        result = tree_level(arrivals)
        assert result >= max(arrivals)
        # Upper bound: max arrival + ceil(log2(n)).
        import math

        assert result <= max(arrivals) + math.ceil(
            math.log2(max(len(arrivals), 1)) + 1e-9
        ) + (0 if len(arrivals) == 1 else 0) or len(arrivals) == 1

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=8),
           st.integers(0, 7))
    def test_monotone_in_arrivals(self, arrivals, idx):
        idx %= len(arrivals)
        bumped = list(arrivals)
        bumped[idx] += 1
        assert tree_level(bumped) >= tree_level(arrivals)


def tt_strategy(max_vars=4):
    return st.integers(2, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable, st.integers(0, (1 << (1 << n)) - 1), st.just(n)
        )
    )


class TestNodeLevel:
    @given(tt_strategy())
    @settings(deadline=None, max_examples=30)
    def test_complement_invariant(self, t):
        # Output inversion is free in an AIG: level(f) == level(!f).
        levels = [0] * t.nvars
        assert node_level(t, levels) == node_level(~t, levels)

    @given(tt_strategy(), st.integers(0, 3))
    @settings(deadline=None, max_examples=30)
    def test_monotone_in_fanin_levels(self, t, idx):
        idx %= t.nvars
        base = [1] * t.nvars
        bumped = list(base)
        bumped[idx] += 2
        assert node_level(t, bumped) >= node_level(t, base)

    def test_single_literal_is_free(self):
        t = TruthTable.var(1, 3)
        assert node_level(t, [5, 7, 3]) == 7
        assert node_level(~t, [5, 7, 3]) == 7

    @given(tt_strategy())
    @settings(deadline=None, max_examples=30)
    def test_no_worse_than_on_set_cover(self, t):
        if t.is_const0 or t.is_const1:
            return
        levels = [0] * t.nvars
        on_cover = min_sop(t)
        assert node_level(t, levels) <= cover_level(on_cover, levels)


class TestCoverLevel:
    def test_single_cube_is_and_tree(self):
        cov = Cover.parse(["1111"])
        assert cover_level(cov, [0, 0, 0, 0]) == 2

    def test_wide_or_of_literals(self):
        cov = Cover.parse(["---1", "--1-", "-1--", "1---"])
        assert cover_level(cov, [0, 0, 0, 0]) == 2

    def test_empty_cover_is_constant(self):
        assert cover_level(Cover.empty(3), [4, 4, 4]) == 0
