"""CDCL SAT solving and CNF encodings of AIGs."""

from .solver import Solver, luby
from .cnf import AigCnf, implies, is_satisfiable

__all__ = ["Solver", "luby", "AigCnf", "implies", "is_satisfiable"]
