"""Arrival-aware optimization: the non-uniform-arrival regime end to end.

The headline scenario: a ripple-carry adder whose high-order input bits
arrive late (bit ``i`` at time ``i`` — the classic cascaded-datapath
skew).  Optimizing for raw depth balances the carry chain symmetrically;
optimizing against the prescribed arrivals instead hides logic under the
early bits' head start, reaching a completion time the uniform-arrival
flow cannot.
"""

import io

import pytest

from repro.adders.generators import ripple_carry_adder
from repro.aig.io import write_aag
from repro.cec import check_equivalence
from repro.core.flow import lookahead_flow
from repro.core.lookahead import LookaheadOptimizer
from repro.timing import AigTimingEngine, PrescribedArrival


def staircase_skew(n):
    return {f"{p}{i}": i for p in "ab" for i in range(n)}


def completion(aig, skew):
    return AigTimingEngine(aig, PrescribedArrival(skew)).depth()


def aag_bytes(aig):
    buf = io.StringIO()
    write_aag(aig, buf)
    return buf.getvalue()


class TestSkewedAdderWin:
    def test_skew_aware_optimization_beats_uniform(self):
        n = 8
        aig = ripple_carry_adder(n)
        skew = staircase_skew(n)
        uniform = LookaheadOptimizer(max_rounds=6).optimize(aig)
        skewed = LookaheadOptimizer(
            max_rounds=6, arrival_times=skew
        ).optimize(aig)
        assert check_equivalence(aig, skewed)
        # The arrival-aware run must strictly beat both the raw circuit
        # and the uniform-arrival optimization on completion time —
        # the result that was unreachable before prescribed arrivals.
        assert completion(skewed, skew) < completion(aig, skew)
        assert completion(skewed, skew) < completion(uniform, skew)

    def test_uniform_flow_unchanged_by_empty_arrivals(self):
        aig = ripple_carry_adder(4)
        base = LookaheadOptimizer(max_rounds=4).optimize(aig)
        empty = LookaheadOptimizer(
            max_rounds=4, arrival_times={}
        ).optimize(aig)
        assert aag_bytes(base) == aag_bytes(empty)

    def test_zero_arrivals_bit_identical_to_unit(self):
        aig = ripple_carry_adder(4)
        base = LookaheadOptimizer(max_rounds=4).optimize(aig)
        zeros = {name: 0 for name in aig.pi_names}
        zeroed = LookaheadOptimizer(
            max_rounds=4, arrival_times=zeros
        ).optimize(aig)
        assert aag_bytes(base) == aag_bytes(zeroed)


class TestArrivalFlow:
    def test_flow_accepts_arrivals(self):
        n = 4
        aig = ripple_carry_adder(n)
        skew = staircase_skew(n)
        out = lookahead_flow(aig, max_iterations=2, arrival_times=skew)
        assert check_equivalence(aig, out)
        assert completion(out, skew) <= completion(aig, skew)


class TestCli:
    def test_optimize_with_arrival_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "rca.aag"
        with open(path, "w") as fh:
            write_aag(ripple_carry_adder(3), fh)
        rc = main(
            [
                "optimize",
                str(path),
                "--flow",
                "lookahead-only",
                "--arrival",
                "a2=4,b2=4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "completion (prescribed arrivals)" in out

    def test_stats_with_arrival_file(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path = tmp_path / "rca.aag"
        with open(path, "w") as fh:
            write_aag(ripple_carry_adder(3), fh)
        arr = tmp_path / "arr.json"
        arr.write_text(json.dumps({"a2": 4, "b2": 4}))
        rc = main(["stats", str(path), "--arrival-file", str(arr)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical outputs" in out

    def test_unknown_pi_warns(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "rca.aag"
        with open(path, "w") as fh:
            write_aag(ripple_carry_adder(2), fh)
        rc = main(["stats", str(path), "--arrival", "nosuch=3"])
        assert rc == 0
        assert "unknown inputs" in capsys.readouterr().err
