"""Parametric control-logic fabric generator.

Used for the MCNC circuit ``i10`` and the OpenSPARC T1 control blocks, whose
netlists are unavailable offline: a seeded, deterministic mix of priority
chains, ripple comparators, CAM matches, decodes, parities, and mux trees
over shared input slices — irregular multi-level control logic with long
sensitizable chains and heavy logic sharing, the regime the paper targets.
"""

from __future__ import annotations

import random
from typing import List

from ..aig import AIG, lit_not
from . import blocks


def _slice(rng: random.Random, pool: List[int], n: int) -> List[int]:
    """A random (with replacement-free preference) slice of signals."""
    n = min(n, len(pool))
    return rng.sample(pool, n)


def control_fabric(
    name: str,
    n_pi: int,
    n_po: int,
    seed: int,
    blocks_per_po: float = 0.6,
    chain_len: int = 12,
) -> AIG:
    """Build a control fabric with exactly ``n_pi`` PIs and ``n_po`` POs."""
    rng = random.Random(seed)
    aig = AIG()
    pis = [aig.add_pi(f"{name}_in{i}") for i in range(n_pi)]
    pool: List[int] = list(pis)
    products: List[int] = []

    n_blocks = max(4, int(n_po * blocks_per_po))
    for b in range(n_blocks):
        kind = rng.randrange(6)
        if kind == 0:
            reqs = _slice(rng, pool, rng.randint(chain_len // 2, chain_len))
            grants = blocks.priority_grant(aig, reqs)
            products.extend(grants[-3:])
            products.append(blocks.priority_valid(aig, reqs))
        elif kind == 1:
            w = rng.randint(4, chain_len // 2 + 4)
            a = _slice(rng, pool, w)
            bvec = _slice(rng, pool, w)
            eq, lt = blocks.ripple_compare(aig, a, bvec)
            products.extend([eq, lt])
        elif kind == 2:
            w = rng.randint(4, chain_len // 2 + 4)
            a = _slice(rng, pool, w)
            bvec = _slice(rng, pool, w)
            sums, cout = blocks.ripple_add(aig, a, bvec)
            products.append(cout)
            products.extend(sums[-2:])
        elif kind == 3:
            key = _slice(rng, pool, 6)
            entry = _slice(rng, pool, 6)
            valid = rng.choice(pool)
            products.append(blocks.cam_match(aig, key, entry, valid))
        elif kind == 4:
            sel = _slice(rng, pool, 3)
            lines = blocks.decoder(aig, sel)
            gate = rng.choice(pool)
            products.extend(aig.and_(l, gate) for l in lines[:4])
        else:
            bits = _slice(rng, pool, rng.randint(5, 9))
            products.append(blocks.parity_tree(aig, bits))
        # Fold a little of the new logic back into the shared pool.
        pool.extend(products[-2:])

    # Glue layer: random gates over products + PIs for sharing/irregularity.
    glue: List[int] = []
    for _ in range(2 * n_po):
        a = rng.choice(products) ^ rng.randint(0, 1)
        b = rng.choice(pool) ^ rng.randint(0, 1)
        op = rng.choice(["and_", "or_", "xor_"])
        glue.append(getattr(aig, op)(a, b))
    candidates = products + glue

    for i in range(n_po):
        sel = _slice(rng, pis, 2)
        choices = [rng.choice(candidates) for _ in range(4)]
        out = blocks.mux_tree(aig, sel, choices)
        extra = rng.choice(candidates)
        out = aig.or_(out, aig.and_(extra, rng.choice(pis)))
        aig.add_po(out, f"{name}_out{i}")
    return aig
