"""Sum-of-products covers."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from ..tt import TruthTable
from .cube import Cube


class Cover:
    """A sum-of-products cover: an OR of :class:`Cube` terms."""

    __slots__ = ("cubes", "nvars")

    def __init__(self, cubes: Iterable[Cube], nvars: int):
        self.cubes: List[Cube] = list(cubes)
        self.nvars = nvars
        for c in self.cubes:
            if c.nvars != nvars:
                raise ValueError("cube/cover variable-count mismatch")

    @classmethod
    def empty(cls, nvars: int) -> "Cover":
        """The constant-0 cover."""
        return cls([], nvars)

    @classmethod
    def tautology(cls, nvars: int) -> "Cover":
        """The constant-1 cover (single full cube)."""
        return cls([Cube.full(nvars)], nvars)

    @classmethod
    def parse(cls, lines: Iterable[str]) -> "Cover":
        """Parse PLA-style cube lines (all the same width)."""
        cubes = [Cube.parse(line.strip()) for line in lines if line.strip()]
        if not cubes:
            raise ValueError("cannot infer nvars from an empty cover")
        return cls(cubes, cubes[0].nvars)

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __repr__(self) -> str:
        return f"Cover([{', '.join(c.to_string() for c in self.cubes)}])"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Cover)
            and self.nvars == other.nvars
            and self.to_tt() == other.to_tt()
        )

    def __hash__(self) -> int:
        return hash(self.to_tt())

    # -- queries -----------------------------------------------------------

    def num_literals(self) -> int:
        """Total literal count (the classic area proxy)."""
        return sum(c.num_literals() for c in self.cubes)

    def to_tt(self) -> TruthTable:
        """Truth table of the cover."""
        t = TruthTable.const(False, self.nvars)
        for c in self.cubes:
            t |= c.to_tt()
        return t

    def contains_minterm(self, minterm: int) -> bool:
        return any(c.contains_minterm(minterm) for c in self.cubes)

    def is_empty(self) -> bool:
        return not self.cubes

    # -- transforms ----------------------------------------------------------

    def single_cube_containment(self) -> "Cover":
        """Drop cubes covered by another single cube of the cover."""
        kept: List[Cube] = []
        # Larger cubes first so a cube is only compared against cubes that
        # could possibly cover it.
        ordered = sorted(self.cubes, key=lambda c: c.num_literals())
        for c in ordered:
            if not any(k.covers(c) for k in kept):
                kept.append(c)
        return Cover(kept, self.nvars)

    def cofactor(self, var: int, pol: bool) -> "Cover":
        """Cover cofactor with respect to ``x_var = pol``."""
        cubes = []
        for c in self.cubes:
            cc = c.cofactor(var, pol)
            if cc is not None:
                cubes.append(cc)
        return Cover(cubes, self.nvars)

    def with_cube(self, cube: Cube) -> "Cover":
        return Cover(self.cubes + [cube], self.nvars)
