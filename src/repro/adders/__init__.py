"""Adder generators for the case study and Table 1."""

from .generators import (
    brent_kung_adder,
    carry_lookahead_adder,
    carry_select_adder,
    carry_skip_adder,
    kogge_stone_adder,
    optimal_cla_levels,
    ripple_carry_adder,
    sklansky_adder,
)

__all__ = [
    "brent_kung_adder",
    "carry_lookahead_adder",
    "carry_select_adder",
    "carry_skip_adder",
    "kogge_stone_adder",
    "optimal_cla_levels",
    "ripple_carry_adder",
    "sklansky_adder",
]
