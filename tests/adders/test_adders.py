"""Tests for the adder generators (case-study workloads)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import (
    brent_kung_adder,
    carry_lookahead_adder,
    carry_select_adder,
    carry_skip_adder,
    kogge_stone_adder,
    optimal_cla_levels,
    ripple_carry_adder,
    sklansky_adder,
)
from repro.aig import depth, evaluate

GENERATORS = [
    ripple_carry_adder,
    carry_lookahead_adder,
    carry_select_adder,
    carry_skip_adder,
    kogge_stone_adder,
    sklansky_adder,
    brent_kung_adder,
]


def check_adds(aig, n, cases):
    for a, b, c in cases:
        bits = (
            [bool((a >> i) & 1) for i in range(n)]
            + [bool((b >> i) & 1) for i in range(n)]
            + [bool(c)]
        )
        out = evaluate(aig, bits)
        got = sum(1 << i for i in range(n) if out[i])
        got += (1 << n) if out[n] else 0
        assert got == a + b + c, f"{a}+{b}+{c} != {got}"


@pytest.mark.parametrize("gen", GENERATORS)
@pytest.mark.parametrize("n", [1, 2, 3])
def test_exhaustive_small(gen, n):
    aig = gen(n)
    check_adds(
        aig, n, itertools.product(range(1 << n), range(1 << n), range(2))
    )


@pytest.mark.parametrize("gen", GENERATORS)
@given(st.integers(0, 10_000))
@settings(deadline=None, max_examples=10)
def test_random_wide(gen, seed):
    import random

    rng = random.Random(seed)
    n = rng.choice([4, 8, 16])
    aig = gen(n)
    cases = [
        (rng.randrange(1 << n), rng.randrange(1 << n), rng.randrange(2))
        for _ in range(25)
    ]
    check_adds(aig, n, cases)


def test_interface_shape():
    aig = ripple_carry_adder(4)
    assert aig.num_pis == 9  # a0..3, b0..3, cin
    assert aig.num_pos == 5  # s0..3, cout
    assert aig.po_names[-1] == "cout"


def test_ripple_depth_linear():
    # Each extra bit slice adds a constant number of levels: d(2n) = 2d(n)-2.
    depths = [depth(ripple_carry_adder(n)) for n in (2, 4, 8)]
    assert depths == sorted(depths)
    assert depths[1] == 2 * depths[0] - 2
    assert depths[2] == 2 * depths[1] - 2


def test_prefix_adders_logarithmic():
    for gen in (kogge_stone_adder, sklansky_adder):
        d16 = depth(gen(16))
        d_ripple = depth(ripple_carry_adder(16))
        assert d16 < d_ripple / 2


def test_optimal_levels_table1_column():
    assert [optimal_cla_levels(n) for n in (2, 4, 8, 16)] == [5, 7, 9, 11]
