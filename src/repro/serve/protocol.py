"""Wire protocol and endpoint discovery for the optimize daemon.

The daemon speaks newline-delimited JSON over a loopback TCP socket: one
request object per connection, one response object back.  JSON because
every field is text/ints anyway (circuits travel as ASCII AIGER), and
newline framing because the payloads contain no raw newlines after
``json.dumps`` — a client in any language is a ``connect; write line;
read line``.

Requests are ``{"op": ..., ...}``; ops and their fields:

* ``submit`` — ``circuit`` (AIGER/BLIF text), ``format`` ("aag"|"blif",
  default "aag"), ``options`` (job options dict, see
  :func:`repro.core.flow.normalize_job_config`), ``timeout`` (seconds),
  ``return_circuit`` (bool, default true).  Blocks until the job
  finishes, times out, or is rejected.
* ``status`` — live daemon snapshot (queue depth, jobs in flight,
  counters, latency percentiles, store stats).
* ``ping`` — liveness probe.
* ``shutdown`` — ``drain`` (bool, default true): ack immediately, then
  stop accepting, finish queued jobs, and exit.

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": msg,
"code": slug}``.

**Endpoint discovery.**  The daemon binds an ephemeral port by default
and records ``{"host", "port", "pid", "store"}`` in an *endpoint file*
next to the store database (``<store>.serve.json``), so clients need
only the store path they already share with the daemon.  A stale file
(daemon gone) is detected by the connect failing, not by PID liveness
guesses.
"""

from __future__ import annotations

import json
import os
import socket
from typing import Any, Dict, Optional, Tuple

DEFAULT_HOST = "127.0.0.1"

MAX_MESSAGE_BYTES = 256 << 20
"""Upper bound on one framed message; far above any real circuit, low
enough that a garbage peer cannot balloon daemon memory."""

ENDPOINT_SUFFIX = ".serve.json"


class ServeError(Exception):
    """Client-visible serve failure (connection, rejection, protocol)."""

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code


class ProtocolError(ServeError):
    def __init__(self, message: str) -> None:
        super().__init__(message, code="protocol")


def send_message(sock: socket.socket, obj: Dict[str, Any]) -> None:
    """Frame and send one message (object -> one JSON line)."""
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"
    sock.sendall(data)


def recv_message(fh) -> Optional[Dict[str, Any]]:
    """Read one framed message from a socket file; ``None`` on EOF."""
    line = fh.readline(MAX_MESSAGE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError("message exceeds MAX_MESSAGE_BYTES")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"malformed message: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("message is not a JSON object")
    return obj


def error_response(message: str, code: str = "error") -> Dict[str, Any]:
    return {"ok": False, "error": message, "code": code}


# -- endpoint files ----------------------------------------------------------


def endpoint_path(store_path: Optional[str]) -> str:
    """Where a daemon over ``store_path`` advertises its endpoint.

    A storeless (in-memory) daemon falls back to the conventional store
    location so `repro submit` with no flags still finds it.
    """
    if store_path is None:
        from ..store.runtime import default_store_path

        store_path = default_store_path()
    return store_path + ENDPOINT_SUFFIX


def write_endpoint(
    path: str, host: str, port: int, store: Optional[str]
) -> None:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    record = {"host": host, "port": port, "pid": os.getpid(), "store": store}
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(record, fh)
    os.replace(tmp, path)  # atomic: clients never read a torn file


def read_endpoint(path: str) -> Dict[str, Any]:
    try:
        with open(path) as fh:
            record = json.load(fh)
    except OSError:
        raise ServeError(
            f"no daemon endpoint at {path} (is `repro serve` running?)",
            code="no-daemon",
        ) from None
    except ValueError as exc:
        raise ServeError(f"corrupt endpoint file {path}: {exc}") from None
    if not isinstance(record, dict) or "port" not in record:
        raise ServeError(f"corrupt endpoint file {path}")
    record.setdefault("host", DEFAULT_HOST)
    return record


def remove_endpoint(path: str) -> None:
    """Best-effort removal, but only of *our* endpoint record."""
    try:
        with open(path) as fh:
            record = json.load(fh)
        if isinstance(record, dict) and record.get("pid") == os.getpid():
            os.remove(path)
    except (OSError, ValueError):
        pass


def parse_hostport(text: str) -> Tuple[str, int]:
    """``host:port`` (or bare ``:port`` / ``port``) -> (host, port)."""
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = "", text
    try:
        return host or DEFAULT_HOST, int(port)
    except ValueError:
        raise ServeError(f"bad endpoint {text!r}; expected HOST:PORT") from None
