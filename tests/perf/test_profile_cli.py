"""End-to-end ``--profile`` telemetry through the CLI.

The tiered SPCF kernels record their chosen tier and prefilter activity
in ``spcf.*`` counters; these tests drive ``repro optimize --profile``
exactly as a user would (capturing stderr) and assert the counters
surface in the report — including through worker processes, whose
counter deltas are merged back into the parent registry.
"""

import sys

import pytest

from repro import perf
from repro.adders import ripple_carry_adder
from repro.aig import write_aag
from repro.cli import main
from repro.core import LookaheadOptimizer


@pytest.fixture
def rca4_path(tmp_path):
    path = tmp_path / "rca4.aag"
    with open(path, "w") as fh:
        write_aag(ripple_carry_adder(4), fh)
    return str(path)


def _profile_output(capsys, rca4_path, *extra):
    argv = [
        "optimize", rca4_path, "--flow", "lookahead-only",
        "--profile", "--workers", "1", *extra,
    ]
    assert main(argv) == 0
    return capsys.readouterr().err


def test_profile_reports_spcf_counters(capsys, rca4_path):
    err = _profile_output(capsys, rca4_path)
    assert "perf counters:" in err
    assert "spcf.tier.exact" in err
    assert "reduce.steps" in err


def test_profile_spcf_tier_knob_switches_counter(capsys, rca4_path):
    err = _profile_output(capsys, rca4_path, "--spcf-tier", "signature")
    assert "spcf.tier.signature" in err
    assert "spcf.tier.exact" not in err


def test_prefilter_counters_zero_when_disabled(rca4_path):
    # Drive the optimizer directly so the counter can be read exactly.
    perf.reset()
    aig = ripple_carry_adder(4)
    with LookaheadOptimizer(
        max_rounds=2, workers=1, spcf_prefilter=False
    ) as opt:
        opt.optimize(aig)
    assert perf.counter("spcf.prefilter_hits") == 0
    assert perf.counter("spcf.tier.exact") > 0


def test_worker_counters_merge_into_parent():
    """Parallel rounds must report the same spcf.* tiers as serial."""
    aig = ripple_carry_adder(6)
    perf.reset()
    with LookaheadOptimizer(max_rounds=1, mode="sim", workers=1) as opt:
        opt.optimize(aig)
    serial = perf.counter("spcf.tier.signature")
    perf.reset()
    with LookaheadOptimizer(max_rounds=1, mode="sim", workers=2) as opt:
        opt.optimize(aig)
    parallel = perf.counter("spcf.tier.signature")
    assert serial > 0
    assert parallel == serial


def test_fuzz_profile_flag(capsys, tmp_path):
    assert main([
        "fuzz", "--seed", "0", "--budget", "2", "--max-cases", "3",
        "--artifact-dir", str(tmp_path), "--profile",
    ]) == 0
    err = capsys.readouterr().err
    assert "perf counters:" in err
