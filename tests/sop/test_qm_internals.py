"""Focused tests for Quine-McCluskey internals and the covering search."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sop import minimize_exact, prime_implicants
from repro.sop.qm import _CoverSearch, _greedy_cover
from repro.tt import TruthTable


class TestCoverSearch:
    def test_finds_optimal_cover(self):
        # Universe {0..3}; rows: {0,1}, {2,3}, {1,2}, {0}, {3}.
        rows = [0b0011, 0b1100, 0b0110, 0b0001, 0b1000]
        costs = [1, 1, 1, 1, 1]
        chosen = _CoverSearch(rows, costs).solve(0b1111)
        assert chosen is not None
        assert len(chosen) == 2
        covered = 0
        for i in chosen:
            covered |= rows[i]
        assert covered == 0b1111

    def test_respects_costs(self):
        # One big expensive row vs two cheap rows.
        rows = [0b111, 0b011, 0b100]
        costs = [10, 1, 1]
        chosen = _CoverSearch(rows, costs).solve(0b111)
        assert sorted(chosen) == [1, 2]

    def test_greedy_cover_is_valid(self):
        rows = [0b0101, 0b1010, 0b0011]
        chosen = _greedy_cover(rows, [1, 1, 1], 0b1111)
        covered = 0
        for i in chosen:
            covered |= rows[i]
        assert covered == 0b1111


class TestPrimesAgainstKnownFunctions:
    def test_xor_primes_are_minterms(self):
        xor = TruthTable.from_function(lambda a, b: a != b, 2)
        primes = prime_implicants(xor)
        assert all(p.num_literals() == 2 for p in primes)
        assert len(primes) == 2

    def test_tautology_prime_is_full_cube(self):
        t = TruthTable.const(True, 3)
        primes = prime_implicants(t)
        assert len(primes) == 1
        assert primes[0].num_literals() == 0

    def test_dc_expands_primes(self):
        # on = minterm 0; dc = everything else except minterm 3: the prime
        # grows beyond the bare minterm.
        on = TruthTable.from_minterms([0], 2)
        dc = TruthTable.from_minterms([1, 2], 2)
        primes = prime_implicants(on, dc)
        best = min(p.num_literals() for p in primes)
        assert best == 1


class TestMinimizeExactQuality:
    @given(st.integers(1, (1 << 16) - 2))
    @settings(deadline=None, max_examples=30)
    def test_cube_count_is_minimal_vs_bruteforce_bound(self, bits):
        # Sanity: the exact minimizer never uses more cubes than there are
        # on-set minterms, and at least ceil(onset / largest-prime-size).
        t = TruthTable(bits, 4)
        cover = minimize_exact(t)
        assert len(cover) <= t.count_ones()
        largest = max(c.size() for c in cover)
        assert len(cover) >= (t.count_ones() + largest - 1) // largest

    def test_classic_example(self):
        # f = Σm(0,1,2,5,6,7) over 3 vars: minimal SOP has 3 cubes... the
        # cyclic core example: minimum is 3 cubes.
        t = TruthTable.from_minterms([0, 1, 2, 5, 6, 7], 3)
        cover = minimize_exact(t)
        assert cover.to_tt() == t
        assert len(cover) == 3
