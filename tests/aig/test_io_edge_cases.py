"""Edge-case tests for AIGER/BLIF readers and writers."""

import io

import pytest

from repro.aig import (
    AIG,
    CONST0,
    CONST1,
    lit_not,
    po_tts,
    read_aag,
    read_blif,
    write_aag,
    write_blif,
)
from repro.tt import TruthTable


class TestAigerEdgeCases:
    def test_constant_outputs(self):
        aig = AIG()
        aig.add_pi("x")
        aig.add_po(CONST0, "zero")
        aig.add_po(CONST1, "one")
        buf = io.StringIO()
        write_aag(aig, buf)
        buf.seek(0)
        back = read_aag(buf)
        tts = po_tts(back)
        assert tts[0].is_const0 and tts[1].is_const1

    def test_inverted_pi_output(self):
        aig = AIG()
        x = aig.add_pi("x")
        aig.add_po(lit_not(x), "nx")
        buf = io.StringIO()
        write_aag(aig, buf)
        buf.seek(0)
        back = read_aag(buf)
        assert po_tts(back)[0] == ~TruthTable.var(0, 1)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            read_aag(io.StringIO("aig 1 1 0 0 0\n"))

    def test_undefined_literal_rejected(self):
        # PO references literal 8 which is never defined.
        text = "aag 2 1 0 1 0\n2\n8\n"
        with pytest.raises(ValueError):
            read_aag(io.StringIO(text))

    def test_symbol_table_roundtrip(self):
        aig = AIG()
        a = aig.add_pi("request_valid")
        b = aig.add_pi("grant_enable")
        aig.add_po(aig.and_(a, b), "grant_out")
        buf = io.StringIO()
        write_aag(aig, buf)
        buf.seek(0)
        back = read_aag(buf)
        assert back.pi_names == ["request_valid", "grant_enable"]
        assert back.po_names == ["grant_out"]


class TestBlifEdgeCases:
    def test_multiline_continuation(self):
        text = (
            ".model t\n"
            ".inputs a \\\n b\n"
            ".outputs y\n"
            ".names a b y\n"
            "11 1\n"
            ".end\n"
        )
        aig = read_blif(io.StringIO(text))
        assert aig.num_pis == 2
        assert po_tts(aig)[0] == (
            TruthTable.var(0, 2) & TruthTable.var(1, 2)
        )

    def test_offset_names_block(self):
        # Off-set specification: output is 0 on the listed cubes.
        text = (
            ".model t\n.inputs a b\n.outputs y\n"
            ".names a b y\n11 0\n.end\n"
        )
        aig = read_blif(io.StringIO(text))
        assert po_tts(aig)[0] == ~(
            TruthTable.var(0, 2) & TruthTable.var(1, 2)
        )

    def test_constant_names_blocks(self):
        text = (
            ".model t\n.inputs a\n.outputs one zero\n"
            ".names one\n1\n"
            ".names zero\n"
            ".end\n"
        )
        aig = read_blif(io.StringIO(text))
        tts = po_tts(aig)
        assert tts[0].is_const1 and tts[1].is_const0

    def test_comment_stripping(self):
        text = (
            "# header comment\n"
            ".model t\n.inputs a\n.outputs y\n"
            ".names a y  # pass-through\n1 1\n.end\n"
        )
        aig = read_blif(io.StringIO(text))
        assert po_tts(aig)[0] == TruthTable.var(0, 1)

    def test_undefined_signal_rejected(self):
        text = ".model t\n.inputs a\n.outputs y\n.names ghost y\n1 1\n.end\n"
        with pytest.raises(ValueError):
            read_blif(io.StringIO(text))

    def test_unsupported_construct_rejected(self):
        text = ".model t\n.inputs a\n.outputs y\n.latch a y\n.end\n"
        with pytest.raises(ValueError):
            read_blif(io.StringIO(text))

    def test_writer_reader_on_shared_inverters(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        na = lit_not(a)
        aig.add_po(aig.and_(na, b))
        aig.add_po(aig.and_(na, lit_not(b)))
        buf = io.StringIO()
        write_blif(aig, buf)
        buf.seek(0)
        back = read_blif(buf)
        assert po_tts(back) == po_tts(aig)
