"""The long-lived optimization daemon behind ``repro serve``.

One process owns the runtime result store and absorbs a stream of
optimize jobs from local clients (:mod:`repro.serve.client`): the
architectural shape the store was built for — most real traffic is
repeated sub-structures, and a daemon answering every client from one
warm store turns the disk-warm replay win (rot 38s → ~5s) into an
*every-request* win across users.

Anatomy:

* **Listener** — a threading TCP server on loopback; each connection
  carries one JSON request (:mod:`repro.serve.protocol`).  Submit
  handlers enqueue a job and block until it finishes, so clients get
  synchronous answers over an asynchronous queue.
* **Job queue + batching** — jobs wait in a bounded FIFO.  A runner
  pops the head job and *drains every queued job with the same config
  key* (up to ``max_batch``) into one batch: batched jobs share a warm
  optimizer back-to-back, so the persistent worker pool and the hot
  in-memory store tier never cool between them.
* **Optimizer pool** — one :class:`LookaheadOptimizer` per distinct job
  config (:func:`repro.core.flow.job_config_key`), kept alive across
  jobs.  Its ``ProcessPoolExecutor`` is the persistent worker pool that
  shards per-output cone tasks; workers adopt the store through the
  picklable spec shipped in task tuples, exactly as on the CLI path.
* **Timeouts with cancellation** — each job runs under a watchdog.  On
  expiry the client is answered immediately (``code="timeout"``) and the
  optimizer instance is *poisoned*: removed from the pool so no later
  job can block behind the runaway computation, and closed by whichever
  thread touches it last.  Cancellation of the compute itself is
  cooperative (the abandoned thread finishes its current flow and its
  result is discarded) — bounded by construction because each poisoned
  run strands at most one thread and one pool.
* **Graceful drain** — SIGTERM/SIGINT (or a ``shutdown`` request) stops
  accepting, lets runners finish every queued job, answers all waiting
  clients, closes the optimizer pool and the store, removes the
  endpoint file, and exits 0.  Jobs still queued when ``drain_timeout``
  expires are failed with ``code="shutdown"`` rather than left hanging.

Telemetry: ``serve.jobs.{submitted,completed,failed,timeout,rejected}``
counters, ``serve.batches``/``serve.batch.jobs``, per-job store-delta
counters ``serve.store.{hit,miss}`` (the aggregate serve hit rate line
in ``perf.report()``), and ``serve.job.{latency,queue_wait}``
histograms; the live view (queue depth, jobs in flight, p50/p95) is the
``status`` op, surfaced by ``repro serve --status``.  Per-job store
hit-rates are exact with one runner (the default) and approximate when
several runners interleave on the shared registry.
"""

from __future__ import annotations

import io
import os
import signal
import socket
import socketserver
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .. import perf
from ..aig import AIG, depth, read_aag, read_blif, write_aag
from ..cec import check_equivalence
from ..core.flow import (
    execute_optimize_job,
    job_config_key,
    make_job_optimizer,
    normalize_job_config,
)
from ..store import runtime as store_runtime
from .protocol import (
    DEFAULT_HOST,
    ProtocolError,
    ServeError,
    endpoint_path,
    error_response,
    recv_message,
    remove_endpoint,
    send_message,
    write_endpoint,
)

RESPONSE_GRACE_S = 30.0
"""Extra slack a submit handler waits past the job deadline before
declaring the job lost (runners always answer first in practice)."""


class Job:
    """One queued optimize request and its eventual response."""

    __slots__ = (
        "id", "config", "key", "aig", "timeout", "submitted", "deadline",
        "return_circuit", "done", "response", "_lock",
    )

    def __init__(
        self,
        job_id: int,
        config: Dict[str, Any],
        aig: AIG,
        timeout: float,
        return_circuit: bool,
    ) -> None:
        self.id = job_id
        self.config = config
        self.key = job_config_key(config)
        self.aig = aig
        self.timeout = timeout
        self.submitted = time.monotonic()
        self.deadline = self.submitted + timeout
        self.return_circuit = return_circuit
        self.done = threading.Event()
        self.response: Optional[Dict[str, Any]] = None
        self._lock = threading.Lock()

    def finish(self, response: Dict[str, Any]) -> bool:
        """Set the response exactly once; False if already finished.

        The single commit point arbitrates the watchdog/worker race: a
        late worker result after a timeout answer is simply discarded.
        """
        with self._lock:
            if self.response is not None:
                return False
            self.response = response
        self.done.set()
        return True


class _JobQueue:
    """Bounded FIFO with same-key batch extraction and drain semantics."""

    def __init__(self, limit: int) -> None:
        self._items: Deque[Job] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.limit = limit

    def put(self, job: Job) -> None:
        with self._cond:
            if self._closed:
                raise ServeError("daemon is draining", code="draining")
            if len(self._items) >= self.limit:
                raise ServeError("job queue is full", code="queue-full")
            self._items.append(job)
            self._cond.notify()

    def pop_batch(self, max_batch: int) -> Optional[List[Job]]:
        """Head job plus queued same-key jobs; ``None`` = closed and empty.

        Blocks while open and empty.  After :meth:`close`, keeps handing
        out the backlog (that *is* the drain) until empty.
        """
        with self._cond:
            while not self._items and not self._closed:
                self._cond.wait()
            if not self._items:
                return None
            head = self._items.popleft()
            batch = [head]
            if max_batch > 1:
                kept: List[Job] = []
                for job in self._items:
                    if len(batch) < max_batch and job.key == head.key:
                        batch.append(job)
                    else:
                        kept.append(job)
                self._items = deque(kept)
            return batch

    def drain_remaining(self) -> List[Job]:
        with self._cond:
            items, self._items = list(self._items), deque()
            return items

    def depth(self) -> int:
        with self._cond:
            return len(self._items)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class _OptimizerEntry:
    """A pooled per-config optimizer; the lock serializes its users."""

    __slots__ = ("key", "optimizer", "poisoned", "lock")

    def __init__(self, key: Tuple, optimizer) -> None:
        self.key = key
        self.optimizer = optimizer
        self.poisoned = False
        self.lock = threading.Lock()


class _Handler(socketserver.StreamRequestHandler):
    daemon: "ReproDaemon"  # bound by _Server

    def handle(self) -> None:
        daemon = self.server.repro_daemon  # type: ignore[attr-defined]
        try:
            request = recv_message(self.rfile)
        except ProtocolError as exc:
            self._reply(error_response(str(exc), exc.code))
            return
        if request is None:
            return
        try:
            response = daemon.handle_request(request)
        except ServeError as exc:
            response = error_response(str(exc), exc.code)
        except Exception as exc:  # a bad request must never kill the daemon
            response = error_response(f"{type(exc).__name__}: {exc}")
        self._reply(response)

    def _reply(self, response: Dict[str, Any]) -> None:
        try:
            send_message(self.connection, response)
        except OSError:
            pass  # client went away; the job result stays in the store


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True  # handler threads must never block process exit

    def __init__(self, addr, daemon: "ReproDaemon") -> None:
        super().__init__(addr, _Handler)
        self.repro_daemon = daemon


class ReproDaemon:
    """The serve daemon: listener, queue, runners, optimizer pool."""

    def __init__(
        self,
        store: Optional[str] = None,
        workers: Optional[int] = None,
        host: str = DEFAULT_HOST,
        port: int = 0,
        job_timeout: float = 600.0,
        max_batch: int = 8,
        queue_limit: int = 256,
        runners: int = 1,
        pool_limit: int = 8,
        drain_timeout: float = 120.0,
        endpoint_file: Optional[str] = None,
    ) -> None:
        if runners < 1:
            raise ValueError("runners must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.store_path = store
        self.workers = workers
        self.host = host
        self.port = port  # 0 = ephemeral; the bound port replaces it
        self.job_timeout = job_timeout
        self.max_batch = max_batch
        self.runners = runners
        self.pool_limit = pool_limit
        self.drain_timeout = drain_timeout
        self.endpoint_file = endpoint_file or endpoint_path(store)
        self._queue = _JobQueue(queue_limit)
        self._pool: Dict[Tuple, _OptimizerEntry] = {}
        self._pool_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._in_flight = 0
        self._next_job_id = 1
        self._draining = False
        self._started = 0.0
        self._server: Optional[_Server] = None
        self._server_thread: Optional[threading.Thread] = None
        self._runner_threads: List[threading.Thread] = []
        self._stop_event = threading.Event()
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind, configure the store, spin up runners, advertise."""
        if self.store_path is not None:
            store_runtime.configure(
                store_runtime.make_config(self.store_path)
            )
        self._server = _Server((self.host, self.port), self)
        self.port = self._server.server_address[1]
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-listener",
            daemon=True,
        )
        self._server_thread.start()
        for i in range(self.runners):
            thread = threading.Thread(
                target=self._runner_loop,
                name=f"repro-serve-runner-{i}",
                daemon=True,
            )
            thread.start()
            self._runner_threads.append(thread)
        self._started = time.monotonic()
        write_endpoint(self.endpoint_file, self.host, self.port,
                       self.store_path)

    def request_stop(self) -> None:
        """Ask the daemon to drain and exit (signal-handler safe)."""
        self._stop_event.set()

    def stop(self) -> None:
        """Drain and tear everything down (idempotent)."""
        with self._state_lock:
            if self._stopped:
                return
            self._stopped = True
            self._draining = True
        remove_endpoint(self.endpoint_file)
        if self._server is not None:
            self._server.shutdown()  # no new connections dispatched
            self._server.server_close()
        self._queue.close()
        deadline = time.monotonic() + self.drain_timeout
        for thread in self._runner_threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        # Anything still queued after the drain window gets an answer,
        # not an eternally blocked client.
        for job in self._queue.drain_remaining():
            if job.finish(error_response("daemon shut down", "shutdown")):
                perf.incr("serve.jobs.failed")
        with self._pool_lock:
            entries, self._pool = list(self._pool.values()), {}
        for entry in entries:
            entry.optimizer.close()
        self._stop_event.set()

    def wait(self) -> None:
        """Block until a stop is requested (signal or shutdown op)."""
        self._stop_event.wait()

    def serve_forever(self, on_ready=None) -> None:
        """Run until SIGTERM/SIGINT (or a shutdown request), then drain.

        Must be called from the main thread (signal handlers).
        ``on_ready`` is invoked with the daemon once the socket is bound
        and the endpoint advertised (the CLI prints the address there).
        """
        previous = {
            sig: signal.signal(sig, lambda *_: self.request_stop())
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        self.start()
        try:
            if on_ready is not None:
                on_ready(self)
            self.wait()
        finally:
            self.stop()
            for sig, handler in previous.items():
                signal.signal(sig, handler)

    # -- request handling (listener threads) --------------------------------

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid()}
        if op == "status":
            return {"ok": True, "status": self.status()}
        if op == "shutdown":
            threading.Thread(target=self._shutdown_later, daemon=True).start()
            return {"ok": True, "draining": self._queue.depth()}
        if op == "submit":
            return self._handle_submit(request)
        raise ServeError(f"unknown op {op!r}", code="bad-request")

    def _shutdown_later(self) -> None:
        # Give the ack a moment to flush before the listener dies.
        time.sleep(0.05)
        self.request_stop()
        self.stop()

    def _handle_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining:
            perf.incr("serve.jobs.rejected")
            raise ServeError("daemon is draining", code="draining")
        text = request.get("circuit")
        if not isinstance(text, str) or not text:
            raise ServeError("submit requires circuit text", "bad-request")
        fmt = request.get("format", "aag")
        try:
            if fmt == "blif":
                aig = read_blif(io.StringIO(text))
            elif fmt == "aag":
                aig = read_aag(io.StringIO(text))
            else:
                raise ServeError(f"unknown format {fmt!r}", "bad-request")
        except ServeError:
            raise
        except Exception as exc:
            raise ServeError(f"unreadable circuit: {exc}", "bad-request")
        try:
            config = normalize_job_config(request.get("options"))
        except ValueError as exc:
            raise ServeError(str(exc), code="bad-request")
        arrivals = config.get("arrivals")
        if arrivals:
            unknown = sorted(set(arrivals) - set(aig.pi_names))
            if unknown:
                raise ServeError(
                    "arrival times for unknown inputs: " + ", ".join(unknown),
                    code="bad-request",
                )
        timeout = request.get("timeout")
        timeout = float(timeout) if timeout else self.job_timeout
        if timeout <= 0:
            raise ServeError("timeout must be positive", "bad-request")
        with self._state_lock:
            job_id = self._next_job_id
            self._next_job_id += 1
        job = Job(
            job_id, config, aig, timeout,
            bool(request.get("return_circuit", True)),
        )
        try:
            self._queue.put(job)
        except ServeError:
            perf.incr("serve.jobs.rejected")
            raise
        perf.incr("serve.jobs.submitted")
        if not job.done.wait(timeout + RESPONSE_GRACE_S):
            # Runners always answer (the watchdog guarantees it); this is
            # pure belt-and-braces against a wedged runner thread.
            job.finish(error_response("job lost by daemon", "internal"))
        response = dict(job.response or error_response("job lost", "internal"))
        response.setdefault("job", job.id)
        return response

    def status(self) -> Dict[str, Any]:
        with self._state_lock:
            in_flight = self._in_flight
        store = store_runtime.get_store()
        counters = {
            name: perf.counter(f"serve.jobs.{name}")
            for name in ("submitted", "completed", "failed", "timeout",
                         "rejected")
        }
        hits = perf.counter("serve.store.hit")
        misses = perf.counter("serve.store.miss")
        return {
            "pid": os.getpid(),
            "host": self.host,
            "port": self.port,
            "store": self.store_path,
            "persistent": bool(store.persistent),
            "workers": perf.get_workers(self.workers),
            "runners": self.runners,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "draining": self._draining,
            "queue_depth": self._queue.depth(),
            "in_flight": in_flight,
            "jobs": counters,
            "batches": perf.counter("serve.batches"),
            "store_hits": hits,
            "store_misses": misses,
            "store_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "job_latency_ms": {
                "p50": perf.percentile("serve.job.latency", 0.50) * 1e3,
                "p95": perf.percentile("serve.job.latency", 0.95) * 1e3,
            },
            "store_entries": {
                ns: info.get("entries", 0)
                for ns, info in store.stats().items()
            },
        }

    # -- job execution (runner threads) -------------------------------------

    def _runner_loop(self) -> None:
        while True:
            batch = self._queue.pop_batch(self.max_batch)
            if batch is None:
                return  # drained and closed
            perf.incr("serve.batches")
            perf.incr("serve.batch.jobs", len(batch))
            entry = self._checkout(batch[0])
            try:
                for job in batch:
                    if entry.poisoned:
                        self._checkin(entry)
                        entry = self._checkout(job)
                    self._run_job(job, entry)
            finally:
                self._checkin(entry)

    def _checkout(self, job: Job) -> _OptimizerEntry:
        with self._pool_lock:
            entry = self._pool.get(job.key)
            if entry is None or entry.poisoned:
                entry = _OptimizerEntry(
                    job.key,
                    make_job_optimizer(job.config, workers=self.workers),
                )
                self._pool[job.key] = entry
                while len(self._pool) > self.pool_limit:
                    if not self._evict_one(keep=entry):
                        break  # everything else busy: run over budget
        entry.lock.acquire()  # serializes runners sharing one config
        return entry

    def _evict_one(self, keep: _OptimizerEntry) -> bool:
        """Drop one idle pooled optimizer (pool lock held).

        Returns False when every other entry is checked out — the caller
        must accept running over budget rather than spin or block a
        runner on the pool lock.
        """
        for key, entry in list(self._pool.items()):
            if entry is keep:
                continue
            if entry.lock.acquire(blocking=False):
                del self._pool[key]
                entry.lock.release()
                entry.optimizer.close()
                return True
        return False

    def _checkin(self, entry: _OptimizerEntry) -> None:
        entry.lock.release()

    def _run_job(self, job: Job, entry: _OptimizerEntry) -> None:
        now = time.monotonic()
        remaining = job.deadline - now
        if remaining <= 0:
            # Expired while queued: never start work nobody is waiting on.
            perf.incr("serve.jobs.timeout")
            self._finish_job(
                job, error_response(
                    f"job timed out after {job.timeout:.1f}s in queue",
                    "timeout",
                ),
            )
            return
        perf.observe("serve.job.queue_wait", now - job.submitted)
        with self._state_lock:
            self._in_flight += 1
        try:
            worker = threading.Thread(
                target=self._execute,
                args=(job, entry),
                name=f"repro-serve-job-{job.id}",
                daemon=True,
            )
            worker.start()
            worker.join(remaining)
            if not job.done.is_set():
                # Watchdog: answer now, poison the optimizer so the next
                # job gets a fresh one instead of queueing behind this.
                with self._pool_lock:
                    entry.poisoned = True
                    if self._pool.get(entry.key) is entry:
                        del self._pool[entry.key]
                perf.incr("serve.jobs.timeout")
                self._finish_job(
                    job, error_response(
                        f"job timed out after {job.timeout:.1f}s", "timeout"
                    ),
                )
                if not worker.is_alive():
                    # Finished in the race window; close here because the
                    # worker observed poisoned=False (close is idempotent).
                    entry.optimizer.close()
        finally:
            with self._state_lock:
                self._in_flight -= 1

    def _execute(self, job: Job, entry: _OptimizerEntry) -> None:
        hits0 = perf.counter("store.hit")
        misses0 = perf.counter("store.miss")
        start = time.perf_counter()
        response: Dict[str, Any]
        try:
            optimized = execute_optimize_job(
                job.aig, job.config, optimizer=entry.optimizer
            )
            if job.config["verify"] and not check_equivalence(
                job.aig, optimized
            ):
                raise AssertionError("optimized circuit is not equivalent")
            elapsed = time.perf_counter() - start
            hits = perf.counter("store.hit") - hits0
            misses = perf.counter("store.miss") - misses0
            perf.incr("serve.store.hit", hits)
            perf.incr("serve.store.miss", misses)
            result = {
                "input": {"depth": depth(job.aig),
                          "ands": job.aig.num_ands()},
                "depth": depth(optimized),
                "ands": optimized.num_ands(),
                "elapsed_s": round(elapsed, 6),
                "store": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": (
                        hits / (hits + misses) if hits + misses else 0.0
                    ),
                },
            }
            if job.return_circuit:
                buf = io.StringIO()
                write_aag(optimized, buf)
                result["circuit"] = buf.getvalue()
            response = {"ok": True, "job": job.id, "result": result}
        except Exception as exc:  # the daemon outlives any failing job
            response = error_response(
                f"{type(exc).__name__}: {exc}", "failed"
            )
        if self._finish_job(job, response):
            # Count only the answer the client saw: a post-timeout result
            # landing here was already reported as a timeout.
            perf.incr(
                "serve.jobs.completed"
                if response.get("ok")
                else "serve.jobs.failed"
            )
        if entry.poisoned:
            # We are the abandoned post-timeout thread: the pool no
            # longer references this optimizer, so reap it here.
            entry.optimizer.close()

    def _finish_job(self, job: Job, response: Dict[str, Any]) -> bool:
        committed = job.finish(response)
        if committed:
            perf.observe(
                "serve.job.latency", time.monotonic() - job.submitted
            )
        return committed
