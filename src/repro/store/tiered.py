"""Memory-over-disk tiered result store (write-through).

The arrangement ``--store PATH`` builds: a bounded :class:`MemoryStore`
absorbs the hot working set at dict speed while every put also lands in
the :class:`SqliteStore` beneath it, so results survive the process.  A
memory miss falls through to disk; a disk hit is *promoted* into the
memory tier so repeated lookups of warm entries never touch SQLite
again.

Because the memory tier holds values post-``dumps``-compatible (each
namespace's encode hook runs in the :class:`~repro.store.base.Namespace`
view before the store sees the value), promotion is a plain re-insert —
no re-encoding, no identity hazards.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .. import perf
from .base import MISSING, ResultStore
from .memory import MemoryStore
from .sqlite import SqliteStore


class TieredStore(ResultStore):
    """Write-through memory tier in front of a persistent tier."""

    def __init__(self, memory: MemoryStore, disk: ResultStore) -> None:
        self.memory = memory
        self.disk = disk

    @property
    def persistent(self) -> bool:  # type: ignore[override]
        return self.disk.persistent

    @property
    def path(self) -> Optional[str]:
        return getattr(self.disk, "path", None)

    def get(self, ns: str, key: Any) -> Any:
        value = self.memory.get(ns, key)
        if value is not MISSING:
            return value
        value = self.disk.get(ns, key)
        if value is not MISSING:
            perf.incr("store.promote")
            self.memory.put(ns, key, value)
        return value

    def put(self, ns: str, key: Any, value: Any) -> None:
        self.memory.put(ns, key, value)
        self.disk.put(ns, key, value)

    def invalidate(
        self, ns: Optional[str] = None, fingerprint: Optional[int] = None
    ) -> int:
        removed = self.disk.invalidate(ns, fingerprint)
        self.memory.invalidate(ns, fingerprint)
        return removed

    def stats(self) -> Dict[str, Dict[str, Any]]:
        merged: Dict[str, Dict[str, Any]] = {}
        for name, info in self.disk.stats().items():
            merged[name] = dict(info)
        for name, info in self.memory.stats().items():
            slot = merged.setdefault(name, {"entries": 0})
            slot["memory_entries"] = info["entries"]
            slot["memory_limit"] = info["limit"]
        return merged

    def close(self) -> None:
        self.disk.close()

    def __repr__(self) -> str:
        return f"TieredStore({self.memory!r}, {self.disk!r})"
